//! # ysinm — "Your State is Not Mine" reproduction workspace
//!
//! Umbrella crate re-exporting the full reproduction of Wang et al.,
//! *Your State is Not Mine: A Closer Look at Evading Stateful Internet
//! Censorship* (IMC 2017). See README.md for the architecture tour and
//! EXPERIMENTS.md for the paper-vs-measured record.

pub use intang_apps as apps;
pub use intang_core as intang;
pub use intang_experiments as experiments;
pub use intang_gfw as gfw;
pub use intang_ignorepath as ignorepath;
pub use intang_middlebox as middlebox;
pub use intang_netsim as netsim;
pub use intang_packet as packet;
pub use intang_tcpstack as tcpstack;
