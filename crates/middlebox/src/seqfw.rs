//! A server-side sequence-checking firewall (§3.4, "Interference from
//! server-side middleboxes" and §7.1): it tracks the client's stream
//! position but — unlike the server behind it — validates neither
//! checksums, MD5 options nor ACK numbers. An insertion data packet that
//! the *server* would ignore therefore advances the firewall's expected
//! sequence, and the real request then looks like a stale duplicate and is
//! dropped: **Failure 1**.

use intang_netsim::{Ctx, Direction, Element};
use intang_packet::tcp::seq;
use intang_packet::{FourTuple, FxHashMap, TcpPacket, Wire};
use intang_telemetry::{Counter, MetricsSheet};

#[derive(Debug, Clone, Copy)]
struct Track {
    /// Next expected client sequence number.
    expected: u32,
    established: bool,
}

/// Strict in-order sequence firewall on the server side of the path.
pub struct SeqStrictFirewall {
    label: String,
    conns: FxHashMap<FourTuple, Track>,
    /// When true the box validates TCP checksums and so *drops* corrupt
    /// insertion packets instead of accepting them (harmless variant).
    pub validate_checksum: bool,
    pub blocked: u64,
}

impl SeqStrictFirewall {
    pub fn new(label: &str) -> SeqStrictFirewall {
        SeqStrictFirewall {
            label: label.to_string(),
            conns: FxHashMap::default(),
            validate_checksum: false,
            blocked: 0,
        }
    }
}

impl Element for SeqStrictFirewall {
    fn name(&self) -> &str {
        &self.label
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        m.add(Counter::MiddleboxSeqfwBlocked, self.blocked);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        // Only client→server traffic is sequence-checked.
        if dir != Direction::ToServer {
            ctx.send(dir, wire);
            return;
        }
        let Some(hdr) = wire.headers() else {
            ctx.send(dir, wire);
            return;
        };
        let Some(seg) = hdr.tcp().copied() else {
            ctx.send(dir, wire);
            return;
        };
        if self.validate_checksum {
            let l4 = &wire[usize::from(hdr.ip_payload_start)..usize::from(hdr.ip_payload_end)];
            if !TcpPacket::new_unchecked(l4).verify_checksum(hdr.src, hdr.dst) {
                self.blocked += 1;
                return;
            }
        }
        let flags = seg.flags;
        let key = FourTuple::new(hdr.src, seg.src_port, hdr.dst, seg.dst_port).canonical();
        if flags.syn() {
            self.conns.insert(
                key,
                Track {
                    expected: seg.seq.wrapping_add(1),
                    established: true,
                },
            );
            ctx.send(dir, wire);
            return;
        }
        if flags.rst() {
            self.conns.remove(&key);
            ctx.send(dir, wire);
            return;
        }
        let Some(track) = self.conns.get_mut(&key) else {
            ctx.send(dir, wire);
            return;
        };
        let plen = u32::from(seg.payload_end - seg.payload_start);
        if plen == 0 || !track.established {
            ctx.send(dir, wire);
            return;
        }
        let sn = seg.seq;
        if sn == track.expected {
            track.expected = track.expected.wrapping_add(plen);
            ctx.send(dir, wire);
        } else if seq::lt(sn, track.expected) {
            // Stale duplicate: drop (the strict behavior that turns an
            // accepted insertion packet into a hung connection).
            self.blocked += 1;
        } else {
            // Future data (gap): forwarded; real firewalls buffer or pass.
            ctx.send(dir, wire);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Duration, Instant, Link, Simulation};
    use intang_packet::{Ipv4Packet, PacketBuilder, TcpFlags};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    struct Sink {
        got: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push(wire);
        }
    }

    fn c() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn s() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 9)
    }

    fn setup(validate_checksum: bool) -> (Simulation, Rc<RefCell<Vec<Wire>>>) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(4);
        sim.add_element(Box::new(PassThrough::new("gfw-side")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        let mut fw = SeqStrictFirewall::new("seqfw");
        fw.validate_checksum = validate_checksum;
        sim.add_element(Box::new(fw));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(Sink { got: got.clone() }));
        (sim, got)
    }

    fn payload_of(w: &Wire) -> Vec<u8> {
        let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
        TcpPacket::new_checked(ip.payload()).unwrap().payload().to_vec()
    }

    #[test]
    fn accepted_junk_blocks_real_request() {
        // Bad-checksum insertion junk at seq 101, then the real request at
        // the same seq: the box (not validating checksums) accepted the
        // junk, so the real request is dropped — Failure 1.
        let (mut sim, got) = setup(false);
        let syn = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).seq(100).build();
        let junk = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"XXXXX")
            .bad_checksum()
            .build();
        let real = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"GET /")
            .build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(0));
        sim.inject_at(0, Direction::ToServer, junk, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, real, Instant(2_000));
        sim.run_to_quiescence(100);
        let got = got.borrow();
        assert_eq!(got.len(), 2, "SYN + junk pass; real request blocked");
        assert_eq!(payload_of(&got[1]), b"XXXXX");
    }

    #[test]
    fn checksum_validating_variant_is_harmless() {
        let (mut sim, got) = setup(true);
        let syn = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).seq(100).build();
        let junk = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"XXXXX")
            .bad_checksum()
            .build();
        let real = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"GET /")
            .build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(0));
        sim.inject_at(0, Direction::ToServer, junk, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, real, Instant(2_000));
        sim.run_to_quiescence(100);
        let got = got.borrow();
        assert_eq!(got.len(), 2, "SYN + real request pass; junk dropped by the box");
        assert_eq!(payload_of(&got[1]), b"GET /");
    }

    #[test]
    fn in_order_stream_passes() {
        let (mut sim, got) = setup(false);
        let syn = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).seq(100).build();
        let d1 = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"ab")
            .build();
        let d2 = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(103)
            .payload(b"cd")
            .build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(0));
        sim.inject_at(0, Direction::ToServer, d1, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, d2, Instant(2_000));
        sim.run_to_quiescence(100);
        assert_eq!(got.borrow().len(), 3);
    }

    #[test]
    fn server_to_client_traffic_untouched() {
        let (mut sim, _got) = setup(false);
        let resp = PacketBuilder::tcp(s(), c(), 80, 40000)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"200 OK")
            .build();
        sim.inject_at(2, Direction::ToClient, resp, Instant(0));
        sim.run_to_quiescence(100);
        // No panic, no block counting.
    }
}
