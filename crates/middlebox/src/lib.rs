//! # intang-middlebox
//!
//! In-path middlebox models. These are the "unexpected network conditions"
//! that §3.4 identifies as a primary cause of evasion failures:
//!
//! * **Client-side** boxes (Table 2): fragment droppers/reassemblers and
//!   field filters that discard exactly the malformations insertion packets
//!   rely on (wrong checksums, flag-less segments, bare FINs/RSTs);
//! * **NAT / stateful firewalls** whose connection state is torn down by
//!   insertion RSTs, blocking all later packets (Failure 1);
//! * **Server-side sequence-checking firewalls** that *accept* junk
//!   insertion data (they validate neither checksums, MD5 options nor ACK
//!   numbers) and then drop the real request as a duplicate (Failure 1).
//!
//! Each model is a netsim [`Element`](intang_netsim::Element); the
//! [`profiles`] module builds the
//! exact four client-side stacks of Table 2.

pub mod filter;
pub mod fragment;
pub mod profiles;
pub mod seqfw;
pub mod stateful;

pub use filter::{FieldFilter, FilterSpec};
pub use fragment::{FragmentHandler, FragmentMode};
pub use profiles::ClientSideProfile;
pub use seqfw::SeqStrictFirewall;
pub use stateful::StatefulFirewall;
