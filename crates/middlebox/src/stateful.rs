//! A NAT-like stateful firewall whose connection tracking is itself
//! vulnerable to insertion packets (§3.4, "Interference from client-side
//! middleboxes"): an insertion RST traversing the box tears down its
//! conntrack entry, after which the box blocks every later packet of the
//! flow — the connection hangs with no censor reset, i.e. **Failure 1**.

use intang_netsim::{Ctx, Direction, Element};
use intang_packet::{FourTuple, FxHashMap, Wire};
use intang_telemetry::{Counter, MetricsSheet};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Open,
    /// Torn down by an RST/FIN; subsequent packets are blocked until a
    /// fresh SYN re-opens the flow.
    Dead,
}

/// Connection-tracking firewall.
pub struct StatefulFirewall {
    label: String,
    conns: FxHashMap<FourTuple, ConnState>,
    /// Tear down tracked state on any RST passing through.
    pub rst_tears_down: bool,
    /// Tear down tracked state on bare FINs passing through.
    pub fin_tears_down: bool,
    pub blocked: u64,
}

impl StatefulFirewall {
    pub fn new(label: &str) -> StatefulFirewall {
        StatefulFirewall {
            label: label.to_string(),
            conns: FxHashMap::default(),
            rst_tears_down: true,
            fin_tears_down: false,
            blocked: 0,
        }
    }
}

impl Element for StatefulFirewall {
    fn name(&self) -> &str {
        &self.label
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        m.add(Counter::MiddleboxConntrackBlocked, self.blocked);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        // Non-TCP and unparseable traffic is not conntracked; the cached
        // header index means no re-parse when the wire was seen upstream.
        let Some((tuple, flags)) = wire.headers().and_then(|h| {
            let t = h.tcp()?;
            Some((FourTuple::new(h.src, t.src_port, h.dst, t.dst_port), t.flags))
        }) else {
            ctx.send(dir, wire);
            return;
        };
        let key = tuple.canonical();

        match self.conns.get(&key).copied() {
            Some(ConnState::Dead) => {
                if flags.syn() && !flags.ack() {
                    // A fresh SYN re-opens the flow.
                    self.conns.insert(key, ConnState::Open);
                    ctx.send(dir, wire);
                } else {
                    self.blocked += 1;
                }
            }
            Some(ConnState::Open) => {
                if (flags.rst() && self.rst_tears_down) || (flags.fin() && !flags.ack() && self.fin_tears_down) {
                    // The box accepts the (insertion) teardown packet and
                    // still forwards it — its own state is now desynced
                    // from the endpoints'.
                    self.conns.insert(key, ConnState::Dead);
                }
                ctx.send(dir, wire);
            }
            None => {
                if flags.syn() {
                    self.conns.insert(key, ConnState::Open);
                }
                // Untracked non-SYN traffic passes (conservative NAT).
                ctx.send(dir, wire);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Duration, Instant, Link, Simulation};
    use intang_packet::{PacketBuilder, TcpFlags};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    struct Sink {
        got: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push(wire);
        }
    }

    fn c() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn s() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 9)
    }

    fn setup() -> (Simulation, Rc<RefCell<Vec<Wire>>>) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(3);
        sim.add_element(Box::new(PassThrough::new("client")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(StatefulFirewall::new("nat")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(Sink { got: got.clone() }));
        (sim, got)
    }

    #[test]
    fn insertion_rst_blocks_later_packets() {
        let (mut sim, got) = setup();
        let syn = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).seq(100).build();
        let rst = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::RST).seq(101).ttl(4).build();
        let data = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .seq(101)
            .payload(b"GET /")
            .build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(0));
        sim.inject_at(0, Direction::ToServer, rst, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, data, Instant(2_000));
        sim.run_to_quiescence(100);
        // SYN and the RST itself pass; the later data is blocked — the
        // paper's Failure 1 mechanism.
        assert_eq!(got.borrow().len(), 2);
    }

    #[test]
    fn fresh_syn_reopens_flow() {
        let (mut sim, got) = setup();
        let syn = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).build();
        let rst = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::RST).build();
        sim.inject_at(0, Direction::ToServer, syn.clone(), Instant(0));
        sim.inject_at(0, Direction::ToServer, rst, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, syn.clone(), Instant(2_000));
        let data = PacketBuilder::tcp(c(), s(), 40000, 80)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"x")
            .build();
        sim.inject_at(0, Direction::ToServer, data, Instant(3_000));
        sim.run_to_quiescence(100);
        assert_eq!(got.borrow().len(), 4, "everything passes once re-opened");
    }

    #[test]
    fn unrelated_flow_unaffected() {
        let (mut sim, got) = setup();
        let syn_a = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::SYN).build();
        let rst_a = PacketBuilder::tcp(c(), s(), 40000, 80).flags(TcpFlags::RST).build();
        let syn_b = PacketBuilder::tcp(c(), s(), 40001, 80).flags(TcpFlags::SYN).build();
        let data_b = PacketBuilder::tcp(c(), s(), 40001, 80)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"y")
            .build();
        sim.inject_at(0, Direction::ToServer, syn_a, Instant(0));
        sim.inject_at(0, Direction::ToServer, rst_a, Instant(1_000));
        sim.inject_at(0, Direction::ToServer, syn_b, Instant(2_000));
        sim.inject_at(0, Direction::ToServer, data_b, Instant(3_000));
        sim.run_to_quiescence(100);
        assert_eq!(got.borrow().len(), 4);
    }
}
