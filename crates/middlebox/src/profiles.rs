//! The four client-side middlebox profiles of Table 2.
//!
//! | Packet type        | Aliyun (6/11) | QCloud (3/11) | Unicom SJZ | Unicom TJ |
//! |--------------------|---------------|---------------|------------|-----------|
//! | IP fragments       | Discarded     | Reassembled   | Reassembled| Reassembled |
//! | Wrong TCP checksum | Pass          | Pass          | Pass       | Dropped   |
//! | No TCP flag        | Pass          | Pass          | Pass       | Dropped   |
//! | RST packets        | Pass          | Sometimes     | Pass       | Pass      |
//! | FIN packets        | Sometimes     | Pass          | Dropped    | Dropped   |

use crate::filter::{FieldFilter, FilterSpec};
use crate::fragment::{FragmentHandler, FragmentMode};
use intang_netsim::Element;

/// Probability used for Table 2's "Sometimes dropped" cells.
pub const SOMETIMES: f64 = 0.4;

/// A named client-side middlebox profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientSideProfile {
    Aliyun,
    QCloud,
    UnicomShijiazhuang,
    UnicomTianjin,
    /// No interfering middleboxes at all (control).
    Clean,
}

impl ClientSideProfile {
    pub fn fragment_mode(self) -> FragmentMode {
        match self {
            ClientSideProfile::Aliyun => FragmentMode::Drop,
            ClientSideProfile::Clean => FragmentMode::Pass,
            _ => FragmentMode::Reassemble,
        }
    }

    pub fn filter_spec(self) -> FilterSpec {
        match self {
            ClientSideProfile::Aliyun => FilterSpec {
                drop_bare_fin: SOMETIMES,
                ..FilterSpec::default()
            },
            ClientSideProfile::QCloud => FilterSpec {
                drop_bare_rst: SOMETIMES,
                ..FilterSpec::default()
            },
            ClientSideProfile::UnicomShijiazhuang => FilterSpec {
                drop_bare_fin: 1.0,
                ..FilterSpec::default()
            },
            ClientSideProfile::UnicomTianjin => FilterSpec {
                drop_bad_checksum: 1.0,
                drop_no_flag: 1.0,
                drop_bare_fin: 1.0,
                ..FilterSpec::default()
            },
            ClientSideProfile::Clean => FilterSpec::passes_everything(),
        }
    }

    /// Build the middlebox chain for this profile (inserted between the
    /// client host and the censor tap).
    pub fn build(self) -> Vec<Box<dyn Element>> {
        vec![
            Box::new(FragmentHandler::new(self.label(), self.fragment_mode())),
            Box::new(FieldFilter::new(self.label(), self.filter_spec())),
        ]
    }

    pub fn label(self) -> &'static str {
        match self {
            ClientSideProfile::Aliyun => "aliyun-mb",
            ClientSideProfile::QCloud => "qcloud-mb",
            ClientSideProfile::UnicomShijiazhuang => "unicom-sjz-mb",
            ClientSideProfile::UnicomTianjin => "unicom-tj-mb",
            ClientSideProfile::Clean => "clean-mb",
        }
    }

    pub fn all_paper_profiles() -> [ClientSideProfile; 4] {
        [
            ClientSideProfile::Aliyun,
            ClientSideProfile::QCloud,
            ClientSideProfile::UnicomShijiazhuang,
            ClientSideProfile::UnicomTianjin,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_cells_encoded_exactly() {
        use ClientSideProfile::*;
        assert_eq!(Aliyun.fragment_mode(), FragmentMode::Drop);
        for p in [QCloud, UnicomShijiazhuang, UnicomTianjin] {
            assert_eq!(p.fragment_mode(), FragmentMode::Reassemble);
        }
        // Wrong checksum: only Tianjin drops.
        assert_eq!(UnicomTianjin.filter_spec().drop_bad_checksum, 1.0);
        for p in [Aliyun, QCloud, UnicomShijiazhuang] {
            assert_eq!(p.filter_spec().drop_bad_checksum, 0.0);
        }
        // No flag: only Tianjin drops.
        assert_eq!(UnicomTianjin.filter_spec().drop_no_flag, 1.0);
        // RST: only QCloud, sometimes.
        assert_eq!(QCloud.filter_spec().drop_bare_rst, SOMETIMES);
        assert_eq!(Aliyun.filter_spec().drop_bare_rst, 0.0);
        // FIN: Aliyun sometimes; both Unicoms always; QCloud passes.
        assert_eq!(Aliyun.filter_spec().drop_bare_fin, SOMETIMES);
        assert_eq!(UnicomShijiazhuang.filter_spec().drop_bare_fin, 1.0);
        assert_eq!(UnicomTianjin.filter_spec().drop_bare_fin, 1.0);
        assert_eq!(QCloud.filter_spec().drop_bare_fin, 0.0);
    }

    #[test]
    fn build_produces_two_elements() {
        let chain = ClientSideProfile::Aliyun.build();
        assert_eq!(chain.len(), 2);
    }
}
