//! Fragment-policy middleboxes (Table 2, "IP fragments" row).
//!
//! Aliyun vantage points could not emit IP fragments at all ("Discarded");
//! every other vantage point had a box that *reassembled* fragments into a
//! whole datagram before forwarding — which hands the GFW the complete
//! HTTP request and deterministically defeats the out-of-order IP-fragment
//! strategy (§3.4).

use intang_netsim::{Ctx, Direction, Element};
use intang_packet::frag::{OverlapPolicy, Reassembler};
use intang_packet::{Ipv4Packet, Wire};
use intang_telemetry::{Counter, MetricsSheet};

/// What the box does with fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragmentMode {
    /// Forward fragments untouched (no box on path).
    Pass,
    /// Discard all fragments (Aliyun).
    Drop,
    /// Buffer and reassemble into one datagram before forwarding.
    Reassemble,
}

/// A fragment-policy middlebox (client-egress direction).
pub struct FragmentHandler {
    label: String,
    mode: FragmentMode,
    reasm: Reassembler,
    pub dropped: u64,
    pub reassembled: u64,
}

impl FragmentHandler {
    pub fn new(label: &str, mode: FragmentMode) -> FragmentHandler {
        FragmentHandler {
            label: label.to_string(),
            mode,
            // Reassembling boxes keep the later copy, like most OS stacks.
            reasm: Reassembler::new(OverlapPolicy::LastWins),
            dropped: 0,
            reassembled: 0,
        }
    }

    pub fn mode(&self) -> FragmentMode {
        self.mode
    }
}

impl Element for FragmentHandler {
    fn name(&self) -> &str {
        &self.label
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        m.add(Counter::MiddleboxFragDrops, self.dropped);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        if dir != Direction::ToServer {
            ctx.send(dir, wire);
            return;
        }
        let is_fragment = Ipv4Packet::new_checked(&wire[..]).map(|p| p.is_fragment()).unwrap_or(false);
        if !is_fragment {
            ctx.send(dir, wire);
            return;
        }
        match self.mode {
            FragmentMode::Pass => ctx.send(dir, wire),
            FragmentMode::Drop => {
                self.dropped += 1;
            }
            FragmentMode::Reassemble => {
                if let Some(full) = self.reasm.push(wire) {
                    self.reassembled += 1;
                    // The reassembled datagram is a rewritten packet; check
                    // it at the rewrite site so a stale checksum is pinned
                    // on this box rather than on a downstream hop.
                    intang_simcheck::check_wire(&full, &self.label);
                    ctx.send(dir, full);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Duration, Instant, Link, Simulation};
    use intang_packet::{frag, IpProtocol, Ipv4Repr, PacketBuilder, TcpFlags};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    struct Sink {
        got: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push(wire);
        }
    }

    fn fragments() -> Vec<Wire> {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(203, 0, 113, 9);
        let whole = PacketBuilder::tcp(c, s, 1, 80)
            .flags(TcpFlags::PSH_ACK)
            .payload(&[0x42u8; 64])
            .ident(7)
            .build();
        frag::fragment_at(&whole, &[24])
    }

    fn run(mode: FragmentMode, wires: Vec<Wire>) -> Vec<Wire> {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(2);
        sim.add_element(Box::new(PassThrough::new("client")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(FragmentHandler::new("frag", mode)));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(Sink { got: got.clone() }));
        for (i, w) in wires.into_iter().enumerate() {
            sim.inject_at(0, Direction::ToServer, w, Instant(i as u64 * 100));
        }
        sim.run_to_quiescence(100);
        let v = got.borrow().clone();
        v
    }

    #[test]
    fn drop_mode_discards_fragments() {
        assert!(run(FragmentMode::Drop, fragments()).is_empty());
    }

    #[test]
    fn pass_mode_forwards_fragments_as_is() {
        let out = run(FragmentMode::Pass, fragments());
        assert_eq!(out.len(), 2);
        assert!(Ipv4Packet::new_checked(&out[0][..]).unwrap().is_fragment());
    }

    #[test]
    fn reassemble_mode_emits_one_whole_datagram() {
        let out = run(FragmentMode::Reassemble, fragments());
        assert_eq!(out.len(), 1);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert!(!ip.is_fragment());
        assert_eq!(ip.payload().len(), 20 + 64, "TCP header + payload restored");
    }

    #[test]
    fn reassembling_box_defeats_garbage_overlap() {
        // The §3.2 IP-fragment evasion: garbage first at [8,16), real data
        // second. A LastWins reassembling middlebox restores the *real*
        // bytes — handing the GFW the sensitive payload.
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(203, 0, 113, 9);
        let base = Ipv4Repr {
            ident: 9,
            ..Ipv4Repr::new(c, s, IpProtocol::Tcp)
        };
        let garbage = frag::raw_fragment(&base, 8, true, &[0xAA; 8]);
        let real = frag::raw_fragment(&base, 8, false, b"ultrasur");
        let head = frag::raw_fragment(&base, 0, true, &[0x20; 8]);
        let out = run(FragmentMode::Reassemble, vec![garbage, real, head]);
        assert_eq!(out.len(), 1);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        assert_eq!(&ip.payload()[8..], b"ultrasur", "real data restored for the censor to see");
    }

    #[test]
    fn non_fragment_unaffected_in_all_modes() {
        let c = Ipv4Addr::new(10, 0, 0, 1);
        let s = Ipv4Addr::new(203, 0, 113, 9);
        let plain = PacketBuilder::tcp(c, s, 1, 80).flags(TcpFlags::SYN).build();
        for mode in [FragmentMode::Pass, FragmentMode::Drop, FragmentMode::Reassemble] {
            assert_eq!(run(mode, vec![plain.clone()]).len(), 1);
        }
    }
}
