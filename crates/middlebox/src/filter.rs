//! Field filters: middleboxes that sanitize "anomalous" packets — which is
//! precisely what insertion packets are.

use intang_netsim::{Ctx, Direction, Element};
use intang_packet::{IpProtocol, Ipv4Packet, TcpPacket, Wire};
use intang_telemetry::{Counter, MetricsSheet};

/// Drop probabilities per packet anomaly (0.0 = pass, 1.0 = always drop).
/// "Sometimes dropped" cells of Table 2 use intermediate values.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterSpec {
    /// Wrong TCP checksum.
    pub drop_bad_checksum: f64,
    /// Segment with no TCP flags at all.
    pub drop_no_flag: f64,
    /// FIN without ACK (the shape of FIN insertion packets).
    pub drop_bare_fin: f64,
    /// RST segments (QCloud "sometimes drops RST packets").
    pub drop_bare_rst: f64,
    /// Segments with an unsolicited MD5 option. The paper found **no**
    /// middlebox dropping these — the knob exists to let experiments show
    /// exactly that.
    pub drop_md5: f64,
    /// Datagrams whose IP total length exceeds the buffer.
    pub drop_inflated_iplen: f64,
}

impl FilterSpec {
    pub fn passes_everything() -> FilterSpec {
        FilterSpec::default()
    }
}

/// An in-path filter applying [`FilterSpec`] to client-egress traffic.
///
/// Filtering is applied to the `ToServer` direction (the direction
/// insertion packets travel); returning traffic passes untouched, matching
/// how the paper probes these boxes (client → controlled server, §3.4).
pub struct FieldFilter {
    label: String,
    spec: FilterSpec,
    /// Count of dropped packets (observable in tests).
    pub dropped: u64,
}

impl FieldFilter {
    pub fn new(label: &str, spec: FilterSpec) -> FieldFilter {
        FieldFilter {
            label: label.to_string(),
            spec,
            dropped: 0,
        }
    }
}

impl Element for FieldFilter {
    fn name(&self) -> &str {
        &self.label
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        m.add(Counter::MiddleboxFilterDrops, self.dropped);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        if dir != Direction::ToServer {
            ctx.send(dir, wire);
            return;
        }
        let drop_prob = drop_probability(&self.spec, &wire);
        if drop_prob > 0.0 && ctx.rng.chance(drop_prob) {
            self.dropped += 1;
            return;
        }
        ctx.send(dir, wire);
    }
}

/// The probability this packet would be dropped under `spec`.
pub fn drop_probability(spec: &FilterSpec, wire: &[u8]) -> f64 {
    let Ok(ip) = Ipv4Packet::new_checked(wire) else { return 0.0 };
    if ip.is_fragment() {
        return 0.0; // fragment policy lives in FragmentHandler
    }
    let mut p: f64 = 0.0;
    if !ip.total_len_consistent() {
        p = p.max(spec.drop_inflated_iplen);
    }
    if ip.protocol() != IpProtocol::Tcp {
        return p;
    }
    let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return p };
    if !tcp.verify_checksum(ip.src_addr(), ip.dst_addr()) {
        p = p.max(spec.drop_bad_checksum);
    }
    let flags = tcp.flags();
    if flags.is_empty() {
        p = p.max(spec.drop_no_flag);
    }
    if flags.fin() && !flags.ack() {
        p = p.max(spec.drop_bare_fin);
    }
    if flags.rst() {
        p = p.max(spec.drop_bare_rst);
    }
    if tcp.has_md5_option() {
        p = p.max(spec.drop_md5);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Duration, Instant, Link, Simulation};
    use intang_packet::{PacketBuilder, TcpFlags};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    fn c() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn s() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 9)
    }

    struct Sink {
        got: Rc<RefCell<Vec<Wire>>>,
    }
    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push(wire);
        }
    }

    fn run_through(spec: FilterSpec, wire: Wire) -> usize {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(5);
        sim.add_element(Box::new(PassThrough::new("client")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(FieldFilter::new("mb", spec)));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(Sink { got: got.clone() }));
        sim.inject_at(0, Direction::ToServer, wire, Instant::ZERO);
        sim.run_to_quiescence(50);
        let n = got.borrow().len();
        n
    }

    #[test]
    fn deterministic_drops() {
        let spec = FilterSpec {
            drop_bad_checksum: 1.0,
            drop_no_flag: 1.0,
            drop_bare_fin: 1.0,
            ..FilterSpec::default()
        };
        let bad_csum = PacketBuilder::tcp(c(), s(), 1, 80)
            .flags(TcpFlags::ACK)
            .payload(b"x")
            .bad_checksum()
            .build();
        assert_eq!(run_through(spec, bad_csum), 0);
        let noflag = PacketBuilder::tcp(c(), s(), 1, 80).flags(TcpFlags::NONE).payload(b"x").build();
        assert_eq!(run_through(spec, noflag), 0);
        let bare_fin = PacketBuilder::tcp(c(), s(), 1, 80).flags(TcpFlags::FIN).build();
        assert_eq!(run_through(spec, bare_fin), 0);
        // Healthy traffic passes.
        let ok = PacketBuilder::tcp(c(), s(), 1, 80)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"GET /")
            .build();
        assert_eq!(run_through(spec, ok), 1);
        // FIN/ACK (a normal close) is NOT a bare FIN.
        let finack = PacketBuilder::tcp(c(), s(), 1, 80).flags(TcpFlags::FIN_ACK).build();
        assert_eq!(run_through(spec, finack), 1);
    }

    #[test]
    fn md5_never_dropped_by_paper_profiles() {
        // §5.3: no middlebox encountered drops unsolicited-MD5 segments.
        let spec = FilterSpec {
            drop_bad_checksum: 1.0,
            drop_no_flag: 1.0,
            drop_bare_fin: 1.0,
            drop_bare_rst: 1.0,
            ..FilterSpec::default()
        };
        let md5 = PacketBuilder::tcp(c(), s(), 1, 80)
            .flags(TcpFlags::PSH_ACK)
            .payload(b"x")
            .md5_option()
            .build();
        assert_eq!(run_through(spec, md5), 1);
    }

    #[test]
    fn probabilistic_drop_roughly_calibrated() {
        let spec = FilterSpec {
            drop_bare_rst: 0.5,
            ..FilterSpec::default()
        };
        let mut passed = 0;
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(77);
        sim.add_element(Box::new(PassThrough::new("client")));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(FieldFilter::new("mb", spec)));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(Sink { got: got.clone() }));
        for i in 0..200 {
            let rst = PacketBuilder::tcp(c(), s(), 1, 80).flags(TcpFlags::RST).seq(i).build();
            sim.inject_at(0, Direction::ToServer, rst, Instant(u64::from(i) * 1000));
        }
        sim.run_to_quiescence(2_000);
        passed += got.borrow().len();
        assert!((60..140).contains(&passed), "≈50% of RSTs pass, got {passed}");
    }

    #[test]
    fn returning_traffic_untouched() {
        let spec = FilterSpec {
            drop_bare_rst: 1.0,
            ..FilterSpec::default()
        };
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        sim.add_element(Box::new(Sink { got: got.clone() }));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(FieldFilter::new("mb", spec)));
        sim.add_link(Link::new(Duration::from_millis(1), 0));
        sim.add_element(Box::new(PassThrough::new("server")));
        let rst = PacketBuilder::tcp(s(), c(), 80, 1).flags(TcpFlags::RST).build();
        sim.inject_at(2, Direction::ToClient, rst, Instant::ZERO);
        sim.run_to_quiescence(50);
        assert_eq!(got.borrow().len(), 1, "GFW resets still reach the client");
    }
}
