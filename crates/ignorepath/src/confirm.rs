//! Probing tests: confirm the abstract disposition model against the
//! *executable* stack and censor. The paper validates its candidate
//! insertion packets against the live GFW; we validate against the
//! simulated one — same methodology, same observable (does state change?).

#[cfg(test)]
use crate::disposition::server_disposition;
use crate::disposition::{Disposition, PacketClass, StateContext};
use intang_packet::{PacketBuilder, TcpFlags, TcpOption, Wire};
use intang_tcpstack::{StackProfile, TcpEndpoint, TcpState};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);
const CPORT: u16 = 40_000;

/// Drive an executable endpoint into `state` and return it along with the
/// connection's (next client seq, next server-seq-to-ack).
fn endpoint_in_state(profile: StackProfile, state: StateContext) -> (TcpEndpoint, u32, u32) {
    let mut server = TcpEndpoint::new(SERVER, profile);
    server.listen(80);
    // Handshake SYN.
    let client_isn = 5_000u32;
    // The handshake negotiates timestamps so PAWS has a reference even in
    // SYN_RECV (Table 3's last row applies there too).
    let syn = PacketBuilder::tcp(CLIENT, SERVER, CPORT, 80)
        .seq(client_isn)
        .flags(TcpFlags::SYN)
        .option(TcpOption::Timestamps { tsval: 400_000, tsecr: 0 })
        .build();
    server.on_packet(syn, 0);
    let outs = server.poll_transmit();
    assert_eq!(outs.len(), 1, "SYN/ACK expected");
    let synack = intang_packet::Ipv4Packet::new_checked(&outs[0][..]).unwrap();
    let t = intang_packet::TcpPacket::new_checked(synack.payload()).unwrap();
    let server_isn = t.seq_number();
    if state == StateContext::Established {
        let ack = PacketBuilder::tcp(CLIENT, SERVER, CPORT, 80)
            .seq(client_isn.wrapping_add(1))
            .ack(server_isn.wrapping_add(1))
            .flags(TcpFlags::ACK)
            .build();
        server.on_packet(ack, 1_000);
    }
    (server, client_isn.wrapping_add(1), server_isn.wrapping_add(1))
}

/// Build the probe packet for `class` against a connection at
/// (seq, ack) = (`cseq`, `sack`).
fn probe_packet(class: PacketClass, cseq: u32, sack: u32) -> Wire {
    let base = PacketBuilder::tcp(CLIENT, SERVER, CPORT, 80).seq(cseq).ack(sack);
    match class {
        PacketClass::InflatedIpTotalLen => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").inflated_total_len(16).build(),
        PacketClass::ShortTcpHeader => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").short_data_offset().build(),
        PacketClass::BadChecksum => {
            let w = base.flags(TcpFlags::PSH_ACK).payload(b"JJ").bad_checksum().build();
            intang_simcheck::expect_bad_checksum(&w);
            w
        }
        PacketClass::RstAckWrongAck => base.flags(TcpFlags::RST_ACK).ack(sack.wrapping_add(77_777)).build(),
        PacketClass::AckWrongAck => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").ack(sack.wrapping_add(77_777)).build(),
        PacketClass::UnsolicitedMd5 => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").md5_option().build(),
        PacketClass::NoFlag => base.flags(TcpFlags::NONE).payload(b"JJ").build(),
        PacketClass::FinOnly => base.flags(TcpFlags::FIN).build(),
        PacketClass::OldTimestamp => base
            .flags(TcpFlags::PSH_ACK)
            .payload(b"JJ")
            .option(TcpOption::Timestamps { tsval: 1, tsecr: 0 })
            .build(),
        PacketClass::ValidRst => base.flags(TcpFlags::RST).build(),
        PacketClass::ValidData => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").build(),
    }
}

/// Fire `class` at an executable endpoint in `state`; classify what
/// actually happened.
pub fn observe_disposition(profile: StackProfile, state: StateContext, class: PacketClass) -> Disposition {
    let (mut server, cseq, sack) = endpoint_in_state(profile, state);
    // Seed a current timestamp so PAWS has something to compare against.
    if state == StateContext::Established {
        let warm = PacketBuilder::tcp(CLIENT, SERVER, CPORT, 80)
            .seq(cseq)
            .ack(sack)
            .flags(TcpFlags::ACK)
            .option(TcpOption::Timestamps { tsval: 500_000, tsecr: 0 })
            .build();
        server.on_packet(warm, 2_000);
        server.poll_transmit();
    }
    let before_state = current_conn_state(&mut server);
    let probe = probe_packet(class, cseq, sack);
    server.on_packet(probe, 3_000);
    server.poll_transmit();
    let after_state = current_conn_state(&mut server);
    let handle = intang_tcpstack::SocketHandle(0);
    let sock = server.socket_ref(handle);

    if after_state == Some(TcpState::Closed) || sock.reset_by_peer {
        return Disposition::Reset;
    }
    // Accept = the connection consumed payload or moved state.
    let consumed = sock.recv_len() > 0 || sock.rcv_nxt() != expected_rcv_nxt(state, cseq);
    if consumed || before_state != after_state {
        Disposition::Accept
    } else {
        Disposition::Ignore
    }
}

fn expected_rcv_nxt(_state: StateContext, cseq: u32) -> u32 {
    cseq
}

fn current_conn_state(server: &mut TcpEndpoint) -> Option<TcpState> {
    let h = intang_tcpstack::SocketHandle(0);
    Some(server.socket_ref(h).state())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abstract_model_matches_executable_stack_linux44() {
        let profile = StackProfile::linux_4_4();
        for state in StateContext::all() {
            for class in PacketClass::all() {
                // RST/ACK-wrong-ack in ESTABLISHED resets; FIN handling in
                // SYN_RECV is a corner the abstract model marks per
                // ESTABLISHED semantics — probe both as specified.
                let predicted = server_disposition(&profile, state, class);
                let observed = observe_disposition(profile, state, class);
                assert_eq!(observed, predicted, "{class:?} in {state:?}");
            }
        }
    }

    #[test]
    fn abstract_model_matches_old_kernels() {
        for profile in [
            StackProfile::linux_2_4_37(),
            StackProfile::linux_2_6_34(),
            StackProfile::linux_pre_3_8(),
        ] {
            for class in [
                PacketClass::UnsolicitedMd5,
                PacketClass::NoFlag,
                PacketClass::BadChecksum,
                PacketClass::ValidData,
            ] {
                let predicted = server_disposition(&profile, StateContext::Established, class);
                let observed = observe_disposition(profile, StateContext::Established, class);
                assert_eq!(observed, predicted, "{class:?} on {:?}", profile.version);
            }
        }
    }
}
