//! # intang-ignorepath
//!
//! The paper's "ignore path" methodology (§5.3): identify every point where
//! a server's TCP implementation *ignores* a received packet without
//! changing state, diff those against the censor's dispositions, and emit
//! the discrepancies — each one a candidate insertion packet. The output
//! is Table 3.
//!
//! Three layers:
//!
//! * [`disposition`] — abstract per-(state, packet-class) disposition
//!   models of the server profiles and the GFW;
//! * [`differential`] — the cross product that derives Table 3, plus the
//!   §5.3 cross-validations (middlebox survivability, older kernels);
//! * [`confirm`] — "probing tests": build the actual packets and fire them
//!   at the executable `intang-tcpstack` endpoint to confirm the abstract
//!   model's claims (the analogue of testing against the real GFW).

pub mod confirm;
pub mod differential;
pub mod disposition;

pub use differential::{derive_table3, Finding};
pub use disposition::{Disposition, PacketClass, StateContext};
