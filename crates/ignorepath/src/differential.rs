//! The differential pass: server-ignores ∧ censor-accepts ⇒ candidate
//! insertion packet. The output reproduces Table 3 row for row, and the
//! §5.3 cross-validations annotate each finding with middlebox
//! survivability and old-kernel caveats.

use crate::disposition::{gfw_disposition, server_disposition, version_caveat, Disposition, PacketClass, StateContext};
use intang_gfw::GfwConfig;
use intang_middlebox::filter::drop_probability;
use intang_middlebox::ClientSideProfile;
use intang_packet::{PacketBuilder, TcpFlags, TcpOption};
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

/// One discrepancy: a (state, packet-class) where the server ignores and
/// the censor processes.
#[derive(Debug, Clone)]
pub struct Finding {
    pub states: Vec<StateContext>,
    pub class: PacketClass,
    /// Table 2 client-side profiles whose filters would drop the packet
    /// (middlebox cross-validation).
    pub dropped_by: Vec<&'static str>,
    /// Old-kernel caveats (§5.3 cross-version validation).
    pub version_caveats: Vec<String>,
}

impl Finding {
    /// Render in Table 3's column layout. Parse-level discrepancies apply
    /// in *any* state (the paper's first three rows).
    pub fn render_row(&self) -> [String; 4] {
        let any_state = matches!(
            self.class,
            PacketClass::InflatedIpTotalLen | PacketClass::ShortTcpHeader | PacketClass::BadChecksum
        );
        let (tcp_state, gfw_state) = if any_state {
            ("Any".to_string(), "Any".to_string())
        } else if self.states.len() == 2 {
            ("SYN_RECV/ESTABLISHED".to_string(), "ESTABLISHED/RESYNC".to_string())
        } else {
            (self.states[0].label().to_string(), "ESTABLISHED/RESYNC".to_string())
        };
        [
            tcp_state,
            gfw_state,
            self.class.flags_label().to_string(),
            self.class.condition().to_string(),
        ]
    }
}

/// A representative wire packet for a class (used for middlebox
/// cross-validation and by the probing tests).
pub fn representative_packet(class: PacketClass) -> intang_packet::Wire {
    let c = Ipv4Addr::new(10, 0, 0, 1);
    let s = Ipv4Addr::new(203, 0, 113, 80);
    let base = PacketBuilder::tcp(c, s, 40_000, 80).seq(1001).ack(9001);
    match class {
        PacketClass::InflatedIpTotalLen => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").inflated_total_len(32).build(),
        PacketClass::ShortTcpHeader => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").short_data_offset().build(),
        PacketClass::BadChecksum => {
            let w = base.flags(TcpFlags::PSH_ACK).payload(b"JJ").bad_checksum().build();
            intang_simcheck::expect_bad_checksum(&w);
            w
        }
        PacketClass::RstAckWrongAck => base.flags(TcpFlags::RST_ACK).ack(0xdead_0000).build(),
        PacketClass::AckWrongAck => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").ack(0xdead_0000).build(),
        PacketClass::UnsolicitedMd5 => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").md5_option().build(),
        PacketClass::NoFlag => base.flags(TcpFlags::NONE).payload(b"JJ").build(),
        PacketClass::FinOnly => base.flags(TcpFlags::FIN).build(),
        PacketClass::OldTimestamp => base
            .flags(TcpFlags::PSH_ACK)
            .payload(b"JJ")
            .option(TcpOption::Timestamps { tsval: 1, tsecr: 0 })
            .build(),
        PacketClass::ValidRst => base.flags(TcpFlags::RST).build(),
        PacketClass::ValidData => base.flags(TcpFlags::PSH_ACK).payload(b"JJ").build(),
    }
}

/// Run the differential analysis of `server` against `censor`.
///
/// ```
/// use intang_ignorepath::derive_table3;
/// use intang_tcpstack::StackProfile;
/// use intang_gfw::GfwConfig;
///
/// let findings = derive_table3(&StackProfile::linux_4_4(), &GfwConfig::evolved());
/// assert_eq!(findings.len(), 9, "the nine Table 3 rows");
/// ```
pub fn derive_table3(server: &StackProfile, censor: &GfwConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    for class in PacketClass::all() {
        let mut states = Vec::new();
        for state in StateContext::all() {
            let srv = server_disposition(server, state, class);
            let gfw = gfw_disposition(censor, state, class);
            // A discrepancy: the server's state is untouched while the
            // censor processes the packet (Accept) or mutates its TCB
            // (Reset — usable for teardown insertions).
            if srv == Disposition::Ignore && gfw != Disposition::Ignore {
                states.push(state);
            }
        }
        if states.is_empty() {
            continue;
        }
        // Middlebox cross-validation: would any Table 2 profile drop it?
        let wire = representative_packet(class);
        let dropped_by = ClientSideProfile::all_paper_profiles()
            .into_iter()
            .filter(|p| drop_probability(&p.filter_spec(), &wire) > 0.0)
            .map(ClientSideProfile::label)
            .collect();
        // Cross-version validation.
        let version_caveats = StackProfile::all()
            .iter()
            .filter_map(|p| version_caveat(p.version, class).map(|c| format!("{}: {}", p.version, c)))
            .collect();
        findings.push(Finding {
            states,
            class,
            dropped_by,
            version_caveats,
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table3() -> Vec<Finding> {
        derive_table3(&StackProfile::linux_4_4(), &GfwConfig::evolved())
    }

    #[test]
    fn reproduces_all_nine_table3_rows() {
        let findings = table3();
        let classes: Vec<PacketClass> = findings.iter().map(|f| f.class).collect();
        for expected in [
            PacketClass::InflatedIpTotalLen,
            PacketClass::ShortTcpHeader,
            PacketClass::BadChecksum,
            PacketClass::RstAckWrongAck,
            PacketClass::AckWrongAck,
            PacketClass::UnsolicitedMd5,
            PacketClass::NoFlag,
            PacketClass::FinOnly,
            PacketClass::OldTimestamp,
        ] {
            assert!(classes.contains(&expected), "missing Table 3 row {expected:?}");
        }
        assert_eq!(findings.len(), 9, "exactly the nine discrepancy rows; controls excluded");
    }

    #[test]
    fn controls_never_appear() {
        let classes: Vec<PacketClass> = table3().iter().map(|f| f.class).collect();
        assert!(!classes.contains(&PacketClass::ValidRst));
        assert!(!classes.contains(&PacketClass::ValidData));
    }

    #[test]
    fn rstack_wrong_ack_limited_to_syn_recv() {
        let findings = table3();
        let f = findings.iter().find(|f| f.class == PacketClass::RstAckWrongAck).unwrap();
        assert_eq!(f.states, vec![StateContext::SynRecv], "Table 3 row 4 applies to SYN_RECV only");
    }

    #[test]
    fn md5_survives_every_middlebox_profile() {
        // §5.3: "insertion packets leveraging the unsolicited MD5 header
        // ... are never dropped by the middleboxes we encounter".
        let findings = table3();
        let md5 = findings.iter().find(|f| f.class == PacketClass::UnsolicitedMd5).unwrap();
        assert!(md5.dropped_by.is_empty());
        let old_ts = findings.iter().find(|f| f.class == PacketClass::OldTimestamp).unwrap();
        assert!(old_ts.dropped_by.is_empty());
        let bad_ack = findings.iter().find(|f| f.class == PacketClass::AckWrongAck).unwrap();
        assert!(bad_ack.dropped_by.is_empty());
        // ...while bad checksums and flag-less packets are dropped somewhere
        // (Unicom Tianjin).
        let bad_csum = findings.iter().find(|f| f.class == PacketClass::BadChecksum).unwrap();
        assert_eq!(bad_csum.dropped_by, vec!["unicom-tj-mb"]);
        let noflag = findings.iter().find(|f| f.class == PacketClass::NoFlag).unwrap();
        assert_eq!(noflag.dropped_by, vec!["unicom-tj-mb"]);
    }

    #[test]
    fn version_caveats_surface() {
        let findings = table3();
        let md5 = findings.iter().find(|f| f.class == PacketClass::UnsolicitedMd5).unwrap();
        assert!(md5.version_caveats.iter().any(|c| c.contains("2.4.37")));
        let noflag = findings.iter().find(|f| f.class == PacketClass::NoFlag).unwrap();
        assert!(noflag.version_caveats.iter().any(|c| c.contains("2.6.34")));
    }

    #[test]
    fn render_matches_table3_wording() {
        let findings = table3();
        let md5 = findings.iter().find(|f| f.class == PacketClass::UnsolicitedMd5).unwrap();
        let row = md5.render_row();
        assert_eq!(row[0], "SYN_RECV/ESTABLISHED");
        assert_eq!(row[1], "ESTABLISHED/RESYNC");
        assert_eq!(row[3], "Has unsolicited MD5 Optional Header");
    }

    #[test]
    fn old_kernel_server_yields_fewer_discrepancies() {
        let modern = table3();
        let old = derive_table3(&StackProfile::linux_2_4_37(), &GfwConfig::evolved());
        assert!(old.len() < modern.len(), "2.4.37 ignores fewer packet classes");
        assert!(!old.iter().any(|f| f.class == PacketClass::UnsolicitedMd5));
        assert!(!old.iter().any(|f| f.class == PacketClass::NoFlag));
    }
}
