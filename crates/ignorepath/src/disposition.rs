//! Abstract disposition models: how a server stack and the censor treat a
//! perturbed packet in a given state.

use intang_tcpstack::{LinuxVersion, StackProfile, SynInEstablished};

/// Perturbation classes probed by the analysis — the candidate insertion
/// packet shapes of Table 3 (plus a few that the analysis must *reject*,
/// like plain RSTs, to show the methodology discriminates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// IP total length field larger than the actual buffer.
    InflatedIpTotalLen,
    /// TCP data offset below 20 bytes.
    ShortTcpHeader,
    /// Wrong TCP checksum.
    BadChecksum,
    /// RST/ACK carrying a wrong acknowledgment number.
    RstAckWrongAck,
    /// Pure ACK (or data) carrying a wrong acknowledgment number.
    AckWrongAck,
    /// Any segment with an unsolicited MD5 signature option.
    UnsolicitedMd5,
    /// A segment with no TCP flags at all.
    NoFlag,
    /// A segment with only the FIN flag.
    FinOnly,
    /// An otherwise-valid segment whose timestamp is PAWS-stale.
    OldTimestamp,
    /// Control case: a well-formed RST (must NOT be a discrepancy).
    ValidRst,
    /// Control case: well-formed in-window data.
    ValidData,
}

impl PacketClass {
    pub fn all() -> [PacketClass; 11] {
        [
            PacketClass::InflatedIpTotalLen,
            PacketClass::ShortTcpHeader,
            PacketClass::BadChecksum,
            PacketClass::RstAckWrongAck,
            PacketClass::AckWrongAck,
            PacketClass::UnsolicitedMd5,
            PacketClass::NoFlag,
            PacketClass::FinOnly,
            PacketClass::OldTimestamp,
            PacketClass::ValidRst,
            PacketClass::ValidData,
        ]
    }

    /// Wording used by Table 3's "Condition" column.
    pub fn condition(&self) -> &'static str {
        match self {
            PacketClass::InflatedIpTotalLen => "IP total length > actual length",
            PacketClass::ShortTcpHeader => "TCP Header Length < 20",
            PacketClass::BadChecksum => "TCP checksum incorrect",
            PacketClass::RstAckWrongAck => "Wrong acknowledgement number",
            PacketClass::AckWrongAck => "Wrong acknowledgement number",
            PacketClass::UnsolicitedMd5 => "Has unsolicited MD5 Optional Header",
            PacketClass::NoFlag => "TCP packet with no flag",
            PacketClass::FinOnly => "TCP packet with only FIN flag",
            PacketClass::OldTimestamp => "Timestamps too old",
            PacketClass::ValidRst => "well-formed RST (control)",
            PacketClass::ValidData => "well-formed data (control)",
        }
    }

    /// The "TCP Flags" column.
    pub fn flags_label(&self) -> &'static str {
        match self {
            PacketClass::InflatedIpTotalLen | PacketClass::ShortTcpHeader | PacketClass::BadChecksum => "Any",
            PacketClass::RstAckWrongAck => "RST+ACK",
            PacketClass::AckWrongAck | PacketClass::OldTimestamp => "ACK",
            PacketClass::UnsolicitedMd5 => "Any",
            PacketClass::NoFlag => "No flag",
            PacketClass::FinOnly => "FIN",
            PacketClass::ValidRst => "RST",
            PacketClass::ValidData => "ACK",
        }
    }
}

/// The receiver-relevant TCP states (§5.3 prunes the rest: e.g. TIME_WAIT
/// cannot receive data, so its ignore paths are fruitless).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateContext {
    SynRecv,
    Established,
}

impl StateContext {
    pub fn all() -> [StateContext; 2] {
        [StateContext::SynRecv, StateContext::Established]
    }

    pub fn label(&self) -> &'static str {
        match self {
            StateContext::SynRecv => "SYN_RECV",
            StateContext::Established => "ESTABLISHED",
        }
    }
}

/// What the receiving implementation does with the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// State unchanged; packet dropped silently or with a bare ACK. The
    /// "ignore" outcome the analysis hunts for.
    Ignore,
    /// The packet is processed and updates connection state.
    Accept,
    /// The packet resets/tears down the connection.
    Reset,
}

/// Disposition of a server running `profile`, in `state`, receiving `class`.
/// Mirrors the executable stack in `intang-tcpstack` (confirmed against it
/// by [`crate::confirm`]).
pub fn server_disposition(profile: &StackProfile, state: StateContext, class: PacketClass) -> Disposition {
    use Disposition::*;
    match class {
        PacketClass::InflatedIpTotalLen => {
            if profile.validate_ip_total_len {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::ShortTcpHeader => Ignore, // unparseable everywhere
        PacketClass::BadChecksum => {
            if profile.validate_checksum {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::RstAckWrongAck => match state {
            // Table 3: ignored in SYN_RECV when the ACK is wrong.
            StateContext::SynRecv => {
                if profile.validate_ack_number {
                    Ignore
                } else {
                    Reset
                }
            }
            // In ESTABLISHED, RST validation is sequence-based: the wrong
            // ACK does not save the connection (§5.3: "even if the RST/ACK
            // has a wrong ACK number ... it will still be able to reset").
            StateContext::Established => Reset,
        },
        PacketClass::AckWrongAck => {
            if profile.validate_ack_number {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::UnsolicitedMd5 => {
            if profile.md5_check {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::NoFlag => {
            // Accepted by pre-3.8 oddballs and by kernels that don't
            // require the ACK flag at all (2.6.34 / 2.4.37, §5.3).
            if profile.accept_no_flag_data || !profile.require_ack_flag {
                Accept
            } else {
                Ignore
            }
        }
        PacketClass::FinOnly => {
            if profile.require_ack_flag {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::OldTimestamp => {
            if profile.paws {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::ValidRst => Reset,
        PacketClass::ValidData => Accept,
    }
}

/// Disposition of the censor. The GFW validates none of the probed fields
/// (Table 3, "GFW State" column shows it stays ESTABLISHED/RESYNC and
/// processes the packet).
pub fn gfw_disposition(cfg: &intang_gfw::GfwConfig, _state: StateContext, class: PacketClass) -> Disposition {
    use Disposition::*;
    match class {
        PacketClass::InflatedIpTotalLen => {
            if cfg.validate_ip_total_len {
                Ignore
            } else {
                Accept
            }
        }
        // The censor still parses a short-data-offset header permissively
        // in our model? No: the checked parser rejects it, like the GFW's
        // own reassembly front-end accepting the raw bytes. The paper lists
        // it as a discrepancy: the GFW processes such packets.
        PacketClass::ShortTcpHeader => Accept,
        PacketClass::BadChecksum => {
            if cfg.validate_checksum {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::RstAckWrongAck | PacketClass::ValidRst => Reset, // teardown or resync: state changes either way
        PacketClass::AckWrongAck => {
            if cfg.check_ack {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::UnsolicitedMd5 => {
            if cfg.check_md5 {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::NoFlag => Accept, // data bytes are consumed regardless of flags
        PacketClass::FinOnly => {
            if matches!(cfg.generation, intang_gfw::GfwGeneration::Old) {
                Reset // old model tears down on FIN
            } else {
                Accept
            }
        }
        PacketClass::OldTimestamp => {
            if cfg.check_timestamp {
                Ignore
            } else {
                Accept
            }
        }
        PacketClass::ValidData => Accept,
    }
}

/// §5.3 cross-version notes: does this class stop being an insertion packet
/// against `version`?
pub fn version_caveat(version: LinuxVersion, class: PacketClass) -> Option<&'static str> {
    match (version, class) {
        (LinuxVersion::L2_6_34 | LinuxVersion::L2_4_37, PacketClass::NoFlag) => Some("data without ACK flag is accepted — insertion fails"),
        (LinuxVersion::L2_4_37, PacketClass::UnsolicitedMd5) => Some("no MD5 option check (pre-RFC 2385 support) — insertion fails"),
        (LinuxVersion::Pre3_8, PacketClass::NoFlag) => Some("no-flag data sometimes accepted — insertion fails"),
        (LinuxVersion::L3_14, PacketClass::ValidData) => None,
        _ => None,
    }
}

/// Does `profile`'s SYN handling in ESTABLISHED matter for SYN insertions
/// after the handshake (§5.2's Resync+Desync caveat)?
pub fn syn_insertion_hazard(profile: &StackProfile) -> bool {
    profile.syn_in_established == SynInEstablished::Reset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux44_ignores_every_table3_class() {
        let p = StackProfile::linux_4_4();
        for class in [
            PacketClass::InflatedIpTotalLen,
            PacketClass::ShortTcpHeader,
            PacketClass::BadChecksum,
            PacketClass::AckWrongAck,
            PacketClass::UnsolicitedMd5,
            PacketClass::NoFlag,
            PacketClass::FinOnly,
            PacketClass::OldTimestamp,
        ] {
            for state in StateContext::all() {
                assert_eq!(server_disposition(&p, state, class), Disposition::Ignore, "{class:?} in {state:?}");
            }
        }
        assert_eq!(
            server_disposition(&p, StateContext::SynRecv, PacketClass::RstAckWrongAck),
            Disposition::Ignore
        );
    }

    #[test]
    fn controls_are_not_discrepancies() {
        let p = StackProfile::linux_4_4();
        let g = intang_gfw::GfwConfig::evolved();
        for state in StateContext::all() {
            assert_eq!(server_disposition(&p, state, PacketClass::ValidRst), Disposition::Reset);
            assert_eq!(server_disposition(&p, state, PacketClass::ValidData), Disposition::Accept);
            assert_eq!(gfw_disposition(&g, state, PacketClass::ValidData), Disposition::Accept);
        }
    }

    #[test]
    fn rstack_wrong_ack_still_resets_established() {
        // §5.3: effective control packets cannot be built from data-only
        // discrepancies.
        let p = StackProfile::linux_4_4();
        assert_eq!(
            server_disposition(&p, StateContext::Established, PacketClass::RstAckWrongAck),
            Disposition::Reset
        );
    }

    #[test]
    fn old_kernel_caveats_match_section53() {
        assert!(version_caveat(LinuxVersion::L2_4_37, PacketClass::UnsolicitedMd5).is_some());
        assert!(version_caveat(LinuxVersion::L2_6_34, PacketClass::NoFlag).is_some());
        assert!(version_caveat(LinuxVersion::L4_4, PacketClass::UnsolicitedMd5).is_none());
    }
}
