//! A counting global allocator, gated behind the `alloc-count` feature.
//!
//! Wraps [`std::alloc::System`] and bumps a relaxed atomic on every
//! `alloc`/`realloc`. Binaries opt in by installing it:
//!
//! ```ignore
//! #[cfg(feature = "alloc-count")]
//! #[global_allocator]
//! static ALLOC: intang_telemetry::alloc::CountingAlloc = intang_telemetry::alloc::CountingAlloc;
//! ```
//!
//! `bench_sweep` uses it to report `allocs_per_trial`: the wire pool and
//! scratch buffers are supposed to drive steady-state *packet* allocations
//! to zero, and this is the instrument that catches a regression. The
//! feature is off by default — the counter costs one atomic add per
//! allocation, which is noise for a benchmark but not something the
//! library should impose on every build.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Heap allocations (`alloc` + `realloc` calls) since process start or the
/// last [`reset_alloc_count`].
pub fn alloc_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Zero the allocation counter (warm-up boundary).
pub fn reset_alloc_count() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
}

/// The counting allocator. Delegates every operation to [`System`].
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}
