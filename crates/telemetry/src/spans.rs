//! Scoped span profiler: where does a sweep worker's wall-clock go?
//!
//! The sweep executor reports per-worker busy time but nothing below it,
//! which leaves questions like the 4-thread slowdown in BENCH_sweep.json
//! unanswerable from the artifact alone. This module attributes worker
//! time to a small fixed set of subsystem buckets ([`SpanId`]) via scoped
//! guards over the monotonic clock:
//!
//! ```ignore
//! let _s = spans::span(SpanId::DpiScan);
//! // … work …
//! // guard drop charges the elapsed time to the bucket
//! ```
//!
//! Spans nest: a guard's *self time* is its elapsed time minus the time
//! spent in child spans opened beneath it, so bucket totals are disjoint
//! and sum to (at most) the instrumented region. Alongside the per-bucket
//! totals the profiler keeps the full stack *path* of every span (packed
//! 8 bits per level), which exports as folded-stack text — one line per
//! observed stack, `trial;gfw;dpi_scan 123456` — directly consumable by
//! standard flamegraph tooling.
//!
//! Profiling is wall-clock and therefore **not deterministic**; it never
//! feeds experiment output, only the BENCH `profile` section and the
//! `--profile-folded` export. Disabled (the default) the cost per span
//! site is one thread-local flag test; no state is touched.

use crate::json::u64_array;
use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

/// Fixed subsystem buckets. Self-times across buckets are disjoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanId {
    /// One full trial: build, drive, classify.
    Trial,
    /// The simulator's event pop/dispatch loop (excluding element work
    /// that is instrumented separately below).
    EventLoop,
    /// GFW device processing (excluding the DPI scan itself).
    Gfw,
    /// DPI keyword scan over reassembled payload bytes.
    DpiScan,
    /// Internet checksum kernels.
    Checksum,
    /// Endpoint TCP stack processing (hosts).
    Tcpstack,
    /// The INTANG shim (strategy engine).
    Intang,
    /// Per-trial fault-plan derivation.
    FaultDerive,
    /// Waiting on and pushing into the ordered merge.
    TelemetryMerge,
    /// Claiming work from the shared cursor (steal overhead).
    IdleSteal,
}

impl SpanId {
    pub const COUNT: usize = 10;

    pub const ALL: [SpanId; SpanId::COUNT] = [
        SpanId::Trial,
        SpanId::EventLoop,
        SpanId::Gfw,
        SpanId::DpiScan,
        SpanId::Checksum,
        SpanId::Tcpstack,
        SpanId::Intang,
        SpanId::FaultDerive,
        SpanId::TelemetryMerge,
        SpanId::IdleSteal,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpanId::Trial => "trial",
            SpanId::EventLoop => "event_loop",
            SpanId::Gfw => "gfw",
            SpanId::DpiScan => "dpi_scan",
            SpanId::Checksum => "checksum",
            SpanId::Tcpstack => "tcpstack",
            SpanId::Intang => "intang",
            SpanId::FaultDerive => "fault_derive",
            SpanId::TelemetryMerge => "telemetry_merge",
            SpanId::IdleSteal => "idle_steal",
        }
    }
}

/// A stack path packed 8 bits per level, root in the highest populated
/// byte (`0` = empty path). Depth beyond 8 saturates into the parent's
/// path rather than corrupting it.
fn extend_path(parent: u64, id: SpanId) -> u64 {
    if parent >= 1 << 56 {
        parent
    } else {
        (parent << 8) | (id as u64 + 1)
    }
}

/// Decode a packed path into `a;b;c` bucket names.
pub fn decode_path(mut key: u64) -> String {
    let mut codes = [0u8; 8];
    let mut n = 0;
    while key != 0 {
        codes[n] = (key & 0xff) as u8;
        n += 1;
        key >>= 8;
    }
    let mut out = String::new();
    for &code in codes[..n].iter().rev() {
        if !out.is_empty() {
            out.push(';');
        }
        match SpanId::ALL.get(code as usize - 1) {
            Some(id) => out.push_str(id.name()),
            None => out.push_str("unknown"),
        }
    }
    out
}

/// Accumulated profile: per-bucket self-nanoseconds plus per-stack-path
/// self-nanoseconds (sorted by packed path for stable output).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SpanSheet {
    pub self_nanos: [u64; SpanId::COUNT],
    paths: Vec<(u64, u64)>,
}

impl SpanSheet {
    pub fn new() -> SpanSheet {
        SpanSheet::default()
    }

    fn add_path(&mut self, key: u64, nanos: u64) {
        match self.paths.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.paths[i].1 += nanos,
            Err(i) => self.paths.insert(i, (key, nanos)),
        }
    }

    /// `(packed path, self nanos)` pairs, sorted by path.
    pub fn paths(&self) -> &[(u64, u64)] {
        &self.paths
    }

    pub fn total_self_nanos(&self) -> u64 {
        self.self_nanos.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.total_self_nanos() == 0 && self.paths.is_empty()
    }

    pub fn merge(&mut self, other: &SpanSheet) {
        for (mine, theirs) in self.self_nanos.iter_mut().zip(&other.self_nanos) {
            *mine += theirs;
        }
        for &(key, nanos) in &other.paths {
            self.add_path(key, nanos);
        }
    }

    /// Folded-stack text: one line per observed stack path,
    /// `bucket;bucket;bucket <self nanoseconds>`.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for &(key, nanos) in &self.paths {
            out.push_str(&decode_path(key));
            out.push(' ');
            out.push_str(&nanos.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-bucket self-nanoseconds as a JSON array aligned with
    /// [`SpanId::ALL`].
    pub fn to_json_array(&self) -> String {
        u64_array(&self.self_nanos)
    }
}

struct Frame {
    id: SpanId,
    start: std::time::Instant,
    child_nanos: u64,
    path: u64,
}

struct ThreadSpans {
    stack: Vec<Frame>,
    sheet: SpanSheet,
}

thread_local! {
    static STATE: RefCell<ThreadSpans> = RefCell::new(ThreadSpans {
        stack: Vec::with_capacity(8),
        sheet: SpanSheet::new(),
    });
}

/// RAII guard: charges elapsed-minus-children to the bucket on drop.
/// Inert (zero state) when profiling was disabled at construction.
#[must_use = "a span guard charges its bucket when dropped"]
pub struct SpanGuard {
    active: bool,
}

/// Open a span. Call sites pay one thread-local flag read when disabled.
#[inline]
pub fn span(id: SpanId) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.stack.last().map_or(0, |f| f.path);
        let path = extend_path(parent, id);
        s.stack.push(Frame {
            id,
            start: std::time::Instant::now(),
            child_nanos: 0,
            path,
        });
    });
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            let Some(frame) = s.stack.pop() else { return };
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            let self_nanos = elapsed.saturating_sub(frame.child_nanos);
            s.sheet.self_nanos[frame.id as usize] += self_nanos;
            s.sheet.add_path(frame.path, self_nanos);
            if let Some(parent) = s.stack.last_mut() {
                parent.child_nanos += elapsed;
            }
        });
    }
}

/// Take (and reset) this thread's accumulated profile. Workers call this
/// once their claim loop ends; the caller merges sheets across workers.
pub fn take_thread() -> SpanSheet {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        debug_assert!(s.stack.is_empty(), "take_thread inside an open span");
        std::mem::take(&mut s.sheet)
    })
}

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| matches!(std::env::var("INTANG_SPANS"), Ok(v) if !v.is_empty() && v != "0"))
}

thread_local! {
    static THREAD_ON: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Is span profiling enabled on this thread? Checked at every span site,
/// so it stays a bare thread-local read.
#[inline]
pub fn enabled() -> bool {
    THREAD_ON.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Thread-local override (`Some(on)`) or defer to the environment
/// (`None`). Returns the previous override so callers can restore it.
pub fn set_thread(on: Option<bool>) -> Option<bool> {
    THREAD_ON.with(|c| c.replace(on))
}

/// The current thread-local override, for replaying onto worker threads.
pub fn thread_override() -> Option<bool> {
    THREAD_ON.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_spans<T>(f: impl FnOnce() -> T) -> T {
        let prev = set_thread(Some(true));
        let out = f();
        set_thread(prev);
        out
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let prev = set_thread(Some(false));
        {
            let _a = span(SpanId::Trial);
            let _b = span(SpanId::Gfw);
        }
        set_thread(prev);
        assert!(take_thread().is_empty());
    }

    #[test]
    fn nesting_splits_self_time_and_paths() {
        let sheet = with_spans(|| {
            {
                let _t = span(SpanId::Trial);
                {
                    let _g = span(SpanId::Gfw);
                    let _d = span(SpanId::DpiScan);
                    std::hint::black_box(0u64);
                }
            }
            take_thread()
        });
        assert!(sheet.self_nanos[SpanId::Trial as usize] > 0 || sheet.self_nanos[SpanId::Gfw as usize] > 0 || sheet.total_self_nanos() > 0);
        let paths: Vec<String> = sheet.paths().iter().map(|&(k, _)| decode_path(k)).collect();
        assert_eq!(paths, vec!["trial", "trial;gfw", "trial;gfw;dpi_scan"]);
        // Self times are disjoint: their sum cannot exceed the outermost
        // span's wall time, which add_path recorded for each path too.
        let folded = sheet.folded();
        assert_eq!(folded.lines().count(), 3);
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
            assert!(!stack.is_empty());
            count.parse::<u64>().expect("count parses");
        }
    }

    #[test]
    fn merge_adds_buckets_and_paths() {
        let a = with_spans(|| {
            let _t = span(SpanId::Checksum);
            drop(_t);
            take_thread()
        });
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.self_nanos[SpanId::Checksum as usize], 2 * a.self_nanos[SpanId::Checksum as usize]);
        assert_eq!(b.paths().len(), 1);
    }

    #[test]
    fn path_depth_saturates() {
        let mut p = 0u64;
        for _ in 0..12 {
            p = extend_path(p, SpanId::Trial);
        }
        assert!(p < 1 << 57);
        assert_eq!(decode_path(p).matches("trial").count(), 8);
    }

    #[test]
    fn decode_unknown_code_is_harmless() {
        assert_eq!(decode_path(0xff), "unknown");
        assert_eq!(decode_path(0), "");
    }
}
