//! Minimal JSON/JSONL emission, std-only.
//!
//! The build environment has no registry access, so instead of serde this
//! module provides a tiny append-only builder that covers exactly what the
//! telemetry exporters need: flat-ish objects of strings, integers, floats
//! and nested arrays/objects, one record per line.

use std::io::{self, Write};

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An in-progress JSON object. Fields are emitted in insertion order;
/// callers are responsible for key uniqueness.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl Default for JsonObject {
    fn default() -> JsonObject {
        JsonObject::new()
    }
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        escape_into(key, &mut self.buf);
        self.buf.push(':');
    }

    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        escape_into(value, &mut self.buf);
        self
    }

    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Floats are emitted with enough precision to round-trip; non-finite
    /// values become `null` (JSON has no NaN/Inf).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.key(key);
        if value.is_finite() {
            self.buf.push_str(&format_f64(value));
        } else {
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Insert pre-rendered JSON (a nested object or array) verbatim.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    pub fn finish(&self) -> String {
        let mut s = self.buf.clone();
        s.push('}');
        s
    }
}

fn format_f64(value: f64) -> String {
    let s = format!("{value}");
    // `{}` on an integral f64 prints "3"; keep it valid JSON either way
    // (bare integers are valid), so no fixup needed beyond finiteness.
    s
}

/// Render a slice of u64 as a JSON array.
pub fn u64_array(values: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

/// Render a slice of strings as a JSON array of string literals.
pub fn str_array(values: &[&str]) -> String {
    let mut s = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        escape_into(v, &mut s);
    }
    s.push(']');
    s
}

/// Line-oriented JSONL sink over any `Write`.
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    w: W,
}

impl<W: Write> JsonlWriter<W> {
    pub fn new(w: W) -> JsonlWriter<W> {
        JsonlWriter { w }
    }

    /// Write one record (pre-rendered JSON, no trailing newline expected).
    pub fn record(&mut self, json: &str) -> io::Result<()> {
        debug_assert!(!json.contains('\n'), "JSONL records must be single-line");
        self.w.write_all(json.as_bytes())?;
        self.w.write_all(b"\n")
    }

    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    pub fn into_inner(self) -> W {
        self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn object_builder_produces_valid_json() {
        let mut o = JsonObject::new();
        o.str("kind", "snapshot")
            .u64("trials", 42)
            .f64("rate", 0.5)
            .bool("ok", true)
            .raw("buckets", &u64_array(&[1, 2, 3]));
        assert_eq!(
            o.finish(),
            r#"{"kind":"snapshot","trials":42,"rate":0.5,"ok":true,"buckets":[1,2,3]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = JsonObject::new();
        o.f64("x", f64::NAN).f64("y", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn empty_object_and_arrays() {
        assert_eq!(JsonObject::new().finish(), "{}");
        assert_eq!(u64_array(&[]), "[]");
        assert_eq!(str_array(&["a", "b"]), r#"["a","b"]"#);
    }

    #[test]
    fn jsonl_writer_appends_newlines() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record("{\"a\":1}").unwrap();
        w.record("{\"b\":2}").unwrap();
        let buf = w.into_inner();
        assert_eq!(String::from_utf8(buf).unwrap(), "{\"a\":1}\n{\"b\":2}\n");
    }
}
