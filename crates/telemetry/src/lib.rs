//! # intang-telemetry
//!
//! The reproduction's stand-in for INTANG's **measurement module** (§6):
//! the real daemon logs every connection's strategy, outcome and failure
//! cause to a local store and reports upstream — that pipeline is how the
//! paper's Table 5/6 success rates and the §5 failure-vector analysis were
//! produced at all. This crate provides the same capability for the
//! simulated system, as three pieces:
//!
//! * [`metrics`] — an allocation-free [`MetricsSheet`]: fixed-slot counters
//!   and log₂ histograms with named instruments for every hot path (GFW
//!   resets by type, censor TCB lifecycle, blacklist activity, DPI bytes
//!   scanned, netsim events/drops/TTL expiries, per-strategy trial
//!   outcomes). Each sweep worker owns a shard; shards merge
//!   deterministically in cell-index order, so parallel metrics are
//!   byte-identical to a serial run.
//! * [`merge`] — the streaming in-order merge ([`OrderedFold`]): sweep
//!   workers retire per-cell results in stealing order, the fold observes
//!   them in cell-index order, and only the out-of-order reorder window is
//!   ever buffered (constant memory in the sweep size).
//! * [`diagnose`] — the per-trial failure-diagnosis pass: classifies every
//!   unsuccessful trial into one of the paper's §5 failure vectors from
//!   the trial's counters.
//! * [`json`] — a minimal JSONL writer (std-only; the build environment has
//!   no registry access) used to export metrics snapshots and diagnosis
//!   records.
//! * [`series`] — deterministic, sim-time-driven gauge time-series with
//!   log₂ down-compaction (constant memory), merged in cell-index order
//!   like the metrics sheet.
//! * [`spans`] — a scoped span profiler over the monotonic clock with
//!   fixed subsystem buckets and folded-stack export (diagnostics only;
//!   wall-clock, never part of experiment output).
//!
//! The crate depends on nothing, so every layer — netsim, gfw, middlebox,
//! tcpstack, core, experiments, bench — can write into the same sheet.

#[cfg(feature = "alloc-count")]
pub mod alloc;
pub mod diagnose;
pub mod json;
pub mod merge;
pub mod metrics;
pub mod series;
pub mod spans;

pub use diagnose::{classify, FailureVector, TrialEvidence, TrialOutcome};
pub use merge::OrderedFold;
pub use metrics::{Counter, HistId, Histogram, MetricsSheet};
pub use series::{GaugeId, GaugeSample, GaugeSeries, SeriesSheet};
pub use spans::{span, SpanGuard, SpanId, SpanSheet};

/// Schema version stamped on every exported JSONL record (`metrics`,
/// `diagnosis`, `series`). Bumped whenever a record's shape changes;
/// records written before the field existed are implicitly version 1.
pub const SCHEMA_VERSION: u64 = 2;
