//! The metrics registry: a fixed-slot, allocation-free sheet of named
//! counters and log₂ histograms.
//!
//! Design: every instrument is a compile-time slot in a plain array — no
//! maps, no strings, no locks on the hot path. Incrementing is an array
//! add; merging two sheets is element-wise addition, which is associative
//! and commutative, so as long as shards are folded in a deterministic
//! order (the sweep executor folds per-cell sheets in cell-index order)
//! the merged sheet is byte-identical to a serial run at any worker count.

macro_rules! counters {
    ($($variant:ident => $name:literal,)*) => {
        /// Every named counter instrument in the system.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum Counter { $($variant),* }

        impl Counter {
            pub const COUNT: usize = [$(Counter::$variant),*].len();
            pub const ALL: [Counter; Self::COUNT] = [$(Counter::$variant),*];

            /// Stable snake_case export name (the JSONL key).
            pub fn name(self) -> &'static str {
                match self { $(Counter::$variant => $name),* }
            }
        }
    };
}

counters! {
    // Simulation substrate.
    NetsimEvents => "netsim_events",
    NetsimDelivered => "netsim_delivered",
    NetsimLost => "netsim_lost",
    NetsimTtlExpired => "netsim_ttl_expired",
    TraceEventsDropped => "trace_events_dropped",
    // Censor (GFW tap).
    GfwTcbsCreated => "gfw_tcbs_created",
    GfwTcbsRemoved => "gfw_tcbs_removed",
    GfwTcbsEvicted => "gfw_tcbs_evicted",
    GfwTcbResyncs => "gfw_tcb_resyncs",
    GfwDetections => "gfw_detections",
    GfwType1ResetsInjected => "gfw_type1_resets_injected",
    GfwType2ResetsInjected => "gfw_type2_resets_injected",
    GfwForgedSynacks => "gfw_forged_synacks",
    GfwDnsPoisoned => "gfw_dns_poisoned",
    GfwBlacklistInserts => "gfw_blacklist_inserts",
    GfwBlacklistHits => "gfw_blacklist_hits",
    GfwProbesLaunched => "gfw_probes_launched",
    GfwIpBlockedDrops => "gfw_ip_blocked_drops",
    GfwDpiBytesScanned => "gfw_dpi_bytes_scanned",
    // Middleboxes.
    MiddleboxFilterDrops => "middlebox_filter_drops",
    MiddleboxFragDrops => "middlebox_frag_drops",
    MiddleboxSeqfwBlocked => "middlebox_seqfw_blocked",
    MiddleboxConntrackBlocked => "middlebox_conntrack_blocked",
    // Host TCP stacks.
    StackSegmentsRx => "stack_segments_rx",
    StackSegmentsTx => "stack_segments_tx",
    StackResetsRx => "stack_resets_rx",
    StackSegmentsIgnored => "stack_segments_ignored",
    // The INTANG shim.
    IntangInsertionsSent => "intang_insertions_sent",
    IntangProbesSent => "intang_probes_sent",
    IntangType1ResetsSeen => "intang_type1_resets_seen",
    IntangType2ResetsSeen => "intang_type2_resets_seen",
    IntangFlows => "intang_flows",
    IntangResetsPreRequest => "intang_resets_pre_request",
    IntangResetsPostRequest => "intang_resets_post_request",
    // Trial outcomes (recorded by the sweep executor).
    TrialsRun => "trials_run",
    TrialSuccess => "trial_success",
    TrialFailure1 => "trial_failure1",
    TrialFailure2 => "trial_failure2",
    // Fault-injection layer (all zero unless a FaultPlan is active).
    NetsimDuplicated => "netsim_duplicated",
    NetsimReordered => "netsim_reordered",
    NetsimMtuDropped => "netsim_mtu_dropped",
    NetsimBurstLosses => "netsim_burst_losses",
    FaultRouteFlaps => "fault_route_flaps",
    GfwInjectionsSuppressed => "gfw_injections_suppressed",
    GfwDeviceFlaps => "gfw_device_flaps",
    GfwBlacklistJitterApplied => "gfw_blacklist_jitter_applied",
    IntangReprotects => "intang_reprotects",
    IntangRetriesAbandoned => "intang_retries_abandoned",
    IntangTtlReprobes => "intang_ttl_reprobes",
    SimcheckViolations => "simcheck_violations",
    // ---- cross-flow interference (metropolis workloads) ----------------
    // Blacklist volleys fired at a flow *other* than the one whose
    // detection inserted the pair — one user's keyword resetting a
    // neighbor sharing the (src, dst) pair.
    GfwBlacklistCollateralResets => "gfw_blacklist_collateral_resets",
    // Resync-storm episodes: bursts of TCB resynchronizations dense
    // enough to clear the configured storm window.
    GfwResyncStorms => "gfw_resync_storms",
    // ---- metropolis load generator --------------------------------------
    MetroFlowsSpawned => "metro_flows_spawned",
    MetroFlowsSucceeded => "metro_flows_succeeded",
    MetroFlowsReset => "metro_flows_reset",
    MetroFlowsStalled => "metro_flows_stalled",
    // ---- scriptable censor profiles --------------------------------------
    // Blockpages injected by censor models that answer forbidden requests
    // with a spoofed HTTP response (Turkmenistan per Nourin et al.) rather
    // than resets alone.
    GfwBlockpagesInjected => "gfw_blockpages_injected",
    // One bump per censor device, tagged by the profile it was compiled
    // from, so sweep exports show which censor model produced a run.
    GfwProfilePriorDevices => "gfw_profile_prior_devices",
    GfwProfileEvolvedDevices => "gfw_profile_evolved_devices",
    GfwProfileTurkmenistanDevices => "gfw_profile_turkmenistan_devices",
    GfwProfileCustomDevices => "gfw_profile_custom_devices",
}

macro_rules! hists {
    ($($variant:ident => $name:literal,)*) => {
        /// Every named histogram instrument.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum HistId { $($variant),* }

        impl HistId {
            pub const COUNT: usize = [$(HistId::$variant),*].len();
            pub const ALL: [HistId; Self::COUNT] = [$(HistId::$variant),*];

            pub fn name(self) -> &'static str {
                match self { $(HistId::$variant => $name),* }
            }
        }
    };
}

hists! {
    // Simulation events per trial / resets seen by the shim per trial /
    // DPI bytes scanned by the censor per trial.
    TrialEvents => "trial_events",
    TrialResetsSeen => "trial_resets_seen",
    TrialDpiBytes => "trial_dpi_bytes",
    // Per-flow fetch latency (µs) across a metropolis run.
    MetroFlowLatencyUs => "metro_flow_latency_us",
}

/// Number of log₂ buckets: bucket `i` counts values `v` with
/// `bucket_of(v) == i`, i.e. `v == 0` in bucket 0 and otherwise
/// `floor(log2(v)) + 1`, saturating at the last bucket.
pub const HIST_BUCKETS: usize = 33;

/// A fixed-bucket log₂ histogram with exact count and sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Per-strategy outcome slots: the 20 fixed `StrategyId`s plus one slot for
/// "adaptive" (the engine chose per flow).
pub const STRATEGY_SLOTS: usize = 21;
/// Slot used when no fixed strategy was configured (adaptive mode).
pub const ADAPTIVE_SLOT: usize = STRATEGY_SLOTS - 1;

/// Outcome column indices inside a strategy slot.
pub const OUTCOME_SUCCESS: usize = 0;
pub const OUTCOME_FAILURE1: usize = 1;
pub const OUTCOME_FAILURE2: usize = 2;

/// One shard of the metrics registry. `Default` is the zero sheet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSheet {
    counters: [u64; Counter::COUNT],
    hists: [Histogram; HistId::COUNT],
    /// `[strategy slot][outcome]` trial counts.
    strategy_outcomes: [[u64; 3]; STRATEGY_SLOTS],
}

impl Default for MetricsSheet {
    fn default() -> MetricsSheet {
        MetricsSheet {
            counters: [0; Counter::COUNT],
            hists: [Histogram::default(); HistId::COUNT],
            strategy_outcomes: [[0; 3]; STRATEGY_SLOTS],
        }
    }
}

impl MetricsSheet {
    pub fn new() -> MetricsSheet {
        MetricsSheet::default()
    }

    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.counters[c as usize] += 1;
    }

    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        self.counters[c as usize] += n;
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    #[inline]
    pub fn observe(&mut self, h: HistId, v: u64) {
        self.hists[h as usize].observe(v);
    }

    pub fn hist(&self, h: HistId) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Record one trial outcome for a strategy slot (see
    /// [`STRATEGY_SLOTS`]; pass [`ADAPTIVE_SLOT`] for adaptive mode).
    /// Out-of-range slots are clamped into the adaptive slot rather than
    /// panicking — a forward-compatibility guard for new strategy ids.
    pub fn record_strategy_outcome(&mut self, slot: usize, outcome: usize) {
        let slot = if slot < STRATEGY_SLOTS { slot } else { ADAPTIVE_SLOT };
        self.strategy_outcomes[slot][outcome.min(2)] += 1;
    }

    pub fn strategy_outcomes(&self, slot: usize) -> [u64; 3] {
        self.strategy_outcomes[slot.min(STRATEGY_SLOTS - 1)]
    }

    /// Element-wise addition; the deterministic-merge primitive.
    pub fn merge(&mut self, other: &MetricsSheet) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
        for (row_a, row_b) in self.strategy_outcomes.iter_mut().zip(&other.strategy_outcomes) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a += b;
            }
        }
    }

    /// All counters with a non-zero value, in declaration order.
    pub fn nonzero_counters(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().filter_map(move |&c| {
            let v = self.counter(c);
            (v != 0).then_some((c, v))
        })
    }

    /// All histograms with at least one observation, in declaration order.
    pub fn nonzero_hists(&self) -> impl Iterator<Item = (HistId, &Histogram)> + '_ {
        HistId::ALL.iter().filter_map(move |&h| {
            let hist = self.hist(h);
            (!hist.is_empty()).then_some((h, hist))
        })
    }

    pub fn is_zero(&self) -> bool {
        *self == MetricsSheet::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_unique_and_snake_case() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate counter name");
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'), "{n}");
        }
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.buckets[0], 1, "zero bucket");
        assert_eq!(h.buckets[1], 1, "v=1");
        assert_eq!(h.buckets[2], 2, "v=2,3");
        assert_eq!(h.buckets[11], 1, "v=1024");
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1030);
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_values_saturate_the_last_bucket() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn merge_is_elementwise_addition() {
        let mut a = MetricsSheet::new();
        a.inc(Counter::GfwDetections);
        a.add(Counter::GfwDpiBytesScanned, 100);
        a.observe(HistId::TrialEvents, 7);
        a.record_strategy_outcome(3, OUTCOME_SUCCESS);

        let mut b = MetricsSheet::new();
        b.add(Counter::GfwDetections, 2);
        b.observe(HistId::TrialEvents, 9);
        b.record_strategy_outcome(3, OUTCOME_FAILURE2);
        b.record_strategy_outcome(ADAPTIVE_SLOT, OUTCOME_SUCCESS);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter(Counter::GfwDetections), 3);
        assert_eq!(merged.counter(Counter::GfwDpiBytesScanned), 100);
        assert_eq!(merged.hist(HistId::TrialEvents).count, 2);
        assert_eq!(merged.strategy_outcomes(3), [1, 0, 1]);
        assert_eq!(merged.strategy_outcomes(ADAPTIVE_SLOT), [1, 0, 0]);

        // Merge order cannot matter (element-wise addition commutes).
        let mut other_order = b.clone();
        other_order.merge(&a);
        assert_eq!(merged, other_order);
    }

    #[test]
    fn out_of_range_slot_clamps_to_adaptive() {
        let mut m = MetricsSheet::new();
        m.record_strategy_outcome(999, OUTCOME_FAILURE1);
        assert_eq!(m.strategy_outcomes(ADAPTIVE_SLOT), [0, 1, 0]);
    }

    #[test]
    fn zero_sheet_reports_nothing() {
        let m = MetricsSheet::new();
        assert!(m.is_zero());
        assert_eq!(m.nonzero_counters().count(), 0);
        assert_eq!(m.nonzero_hists().count(), 0);
    }
}
