//! Streaming in-order merge of indexed results produced out of order.
//!
//! The sweep executor's workers retire (vantage point, site) cells in
//! whatever order the work-stealing cursor hands them out, but every
//! consumer of sweep telemetry requires *cell-index order* — that ordering
//! is what makes parallel metrics byte-identical to a serial run. The old
//! executor achieved it by buffering every cell's full result until the
//! end of the sweep (`O(cells)` live sheets). [`OrderedFold`] achieves the
//! same ordering with a reorder buffer: results are folded into the
//! accumulator the moment they become the next expected index, so the
//! buffer only ever holds the out-of-order window — in practice a handful
//! of cells around each straggler, not the whole sweep.
//!
//! The fold function observes items in strict index order `0, 1, 2, ...`
//! regardless of push order, which is exactly the serial fold — so any
//! accumulator built this way is byte-identical to a single-threaded run.

use std::collections::BTreeMap;

/// Reorder buffer + streaming fold. `T` is one producer's result, `S` the
/// accumulated state, and the fold observes `(state, index, item)` in
/// strict index order.
#[derive(Debug)]
pub struct OrderedFold<T, S, F: FnMut(&mut S, usize, T)> {
    state: S,
    fold: F,
    /// Next index the fold expects.
    next: usize,
    /// Results that arrived ahead of `next`, keyed by index.
    pending: BTreeMap<usize, T>,
    /// Largest number of results ever buffered at once (diagnostics: the
    /// memory high-water mark of the reorder window).
    high_water: usize,
}

impl<T, S, F: FnMut(&mut S, usize, T)> OrderedFold<T, S, F> {
    pub fn new(state: S, fold: F) -> OrderedFold<T, S, F> {
        OrderedFold {
            state,
            fold,
            next: 0,
            pending: BTreeMap::new(),
            high_water: 0,
        }
    }

    /// Accept result `index`. Folds it (and any buffered successors) as
    /// soon as the in-order prefix extends to cover them.
    ///
    /// Panics if `index` was already pushed — every index must be produced
    /// exactly once.
    pub fn push(&mut self, index: usize, item: T) {
        assert!(index >= self.next, "index {index} already folded (next = {})", self.next);
        let clash = self.pending.insert(index, item);
        assert!(clash.is_none(), "index {index} pushed twice");
        self.high_water = self.high_water.max(self.pending.len());
        while let Some(item) = self.pending.remove(&self.next) {
            (self.fold)(&mut self.state, self.next, item);
            self.next += 1;
        }
    }

    /// Indices folded so far (equals the length of the in-order prefix).
    pub fn folded(&self) -> usize {
        self.next
    }

    /// Results currently waiting in the reorder buffer.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Memory high-water mark: the most results ever buffered at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Consume the fold, returning the accumulated state and the buffer
    /// high-water mark.
    ///
    /// Panics if results are still waiting on a gap (an index was never
    /// pushed) — finishing with holes would silently drop folded-ahead
    /// results.
    pub fn finish(self) -> (S, usize) {
        assert!(
            self.pending.is_empty(),
            "OrderedFold finished with {} result(s) stuck behind missing index {}",
            self.pending.len(),
            self.next
        );
        (self.state, self.high_water)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_pushes_fold_immediately() {
        let mut f = OrderedFold::new(Vec::new(), |acc: &mut Vec<usize>, i, item: usize| {
            assert_eq!(i, item);
            acc.push(item);
        });
        for i in 0..5 {
            f.push(i, i);
            assert_eq!(f.folded(), i + 1);
            assert_eq!(f.pending(), 0);
        }
        let (acc, high) = f.finish();
        assert_eq!(acc, vec![0, 1, 2, 3, 4]);
        // In-order arrival buffers exactly one item at a time.
        assert_eq!(high, 1);
    }

    #[test]
    fn out_of_order_pushes_fold_in_index_order() {
        let mut f = OrderedFold::new(Vec::new(), |acc: &mut Vec<usize>, _i, item: usize| acc.push(item));
        for i in [3, 1, 4, 0, 2, 5] {
            f.push(i, i * 10);
        }
        let (acc, high) = f.finish();
        assert_eq!(acc, vec![0, 10, 20, 30, 40, 50]);
        assert!(high >= 3, "3,1,4 buffered before 0 arrived; high_water = {high}");
    }

    #[test]
    fn high_water_tracks_straggler_window() {
        let mut f = OrderedFold::new(0usize, |acc: &mut usize, _i, item: usize| *acc += item);
        // Index 0 is the straggler: everything else queues behind it.
        for i in 1..=7 {
            f.push(i, 1);
            assert_eq!(f.folded(), 0);
        }
        assert_eq!(f.pending(), 7);
        f.push(0, 1);
        assert_eq!(f.pending(), 0);
        let (sum, high) = f.finish();
        assert_eq!(sum, 8);
        assert_eq!(high, 8);
    }

    #[test]
    #[should_panic(expected = "pushed twice")]
    fn duplicate_pending_index_panics() {
        let mut f = OrderedFold::new((), |_: &mut (), _, _: usize| {});
        f.push(1, 1);
        f.push(1, 2);
    }

    #[test]
    #[should_panic(expected = "already folded")]
    fn duplicate_folded_index_panics() {
        let mut f = OrderedFold::new((), |_: &mut (), _, _: usize| {});
        f.push(0, 1);
        f.push(0, 2);
    }

    #[test]
    #[should_panic(expected = "stuck behind missing index")]
    fn finish_with_gap_panics() {
        let mut f = OrderedFold::new((), |_: &mut (), _, _: usize| {});
        f.push(2, 1);
        let _ = f.finish();
    }
}
