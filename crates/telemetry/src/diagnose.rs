//! Per-trial failure diagnosis: map an unsuccessful trial onto exactly one
//! of the paper's §5 failure vectors.
//!
//! §5 of the paper attributes residual failures to a small set of causes:
//! the GFW resetting the connection before the request is even sent
//! (insertion packets themselves detected), resets after the forbidden
//! request (evasion simply failed), the 90-second IP-pair *blacklist* left
//! over from an earlier detection (forged SYN/ACKs and resets with no new
//! detection), the evolved GFW *resyncing* its TCB and re-detecting, and
//! non-censor interference — middleboxes dropping the insertion packets or
//! the flow stalling into a timeout. The classifier below reproduces that
//! taxonomy from per-trial counters; precedence runs from most specific
//! evidence to least, so every unsuccessful trial gets exactly one vector.

use crate::metrics::{Counter, MetricsSheet};

/// Paper outcome taxonomy for one trial (§4.2): success, Failure 1
/// (silent hang — no data and no resets), Failure 2 (reset teardown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrialOutcome {
    Success,
    /// Failure 1: the connection hangs without ever seeing a reset.
    SilentFailure,
    /// Failure 2: the connection is torn down by injected resets.
    ResetFailure,
}

impl TrialOutcome {
    pub fn name(self) -> &'static str {
        match self {
            TrialOutcome::Success => "success",
            TrialOutcome::SilentFailure => "failure1_silent",
            TrialOutcome::ResetFailure => "failure2_reset",
        }
    }
}

/// The §5 failure vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureVector {
    /// Resets arrived before the forbidden request was sent: the censor
    /// reacted to the handshake/insertion phase itself.
    ResetPreRequest,
    /// Resets arrived only after the request: DPI saw the keyword despite
    /// the evasion strategy.
    ResetPostRequest,
    /// Evidence of the 90 s IP-pair blacklist from a prior detection
    /// (forged SYN/ACKs, blacklist hits) rather than a fresh detection.
    BlacklistResidual,
    /// The evolved GFW resynchronized its TCB mid-flow and re-detected.
    ResyncTriggered,
    /// A non-censor middlebox dropped packets the strategy depended on.
    MiddleboxInterference,
    /// The flow stalled with no resets and no middlebox evidence.
    Timeout,
    /// Reset failure with no reset evidence in the counters — indicates an
    /// instrumentation gap, surfaced rather than mis-binned.
    Unclassified,
}

impl FailureVector {
    pub const ALL: [FailureVector; 7] = [
        FailureVector::ResetPreRequest,
        FailureVector::ResetPostRequest,
        FailureVector::BlacklistResidual,
        FailureVector::ResyncTriggered,
        FailureVector::MiddleboxInterference,
        FailureVector::Timeout,
        FailureVector::Unclassified,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FailureVector::ResetPreRequest => "reset_pre_request",
            FailureVector::ResetPostRequest => "reset_post_request",
            FailureVector::BlacklistResidual => "blacklist_residual",
            FailureVector::ResyncTriggered => "resync_triggered",
            FailureVector::MiddleboxInterference => "middlebox_interference",
            FailureVector::Timeout => "timeout",
            FailureVector::Unclassified => "unclassified",
        }
    }
}

/// The counter evidence `classify` consumes, extracted from one trial's
/// [`MetricsSheet`]. Kept as a plain struct so unit tests can hand-build
/// each §5 scenario without a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialEvidence {
    /// Resets the shim saw before the first payload byte went out.
    pub resets_pre_request: u64,
    /// Resets the shim saw after the request was on the wire.
    pub resets_post_request: u64,
    /// Censor-side blacklist hits (flow matched an existing IP-pair entry).
    pub blacklist_hits: u64,
    /// Forged SYN/ACKs injected by the censor (blacklist behavior).
    pub forged_synacks: u64,
    /// Censor TCB resynchronizations (evolved-model behavior).
    pub tcb_resyncs: u64,
    /// Fresh DPI detections this trial.
    pub gfw_detections: u64,
    /// Packets dropped by non-censor middleboxes (filters, fragment
    /// handlers, seq/stateful firewalls).
    pub middlebox_drops: u64,
    /// Packets dropped because the destination IP was null-routed.
    pub ip_blocked_drops: u64,
    /// Packets dropped by an injected path-MTU clamp (fault layer). Treated
    /// as middlebox interference: an MTU-clamping hop is a middlebox from
    /// the flow's point of view, and the failure mode is identical.
    pub link_fault_drops: u64,
}

impl TrialEvidence {
    /// Pull the evidence counters out of a per-trial sheet.
    pub fn from_sheet(m: &MetricsSheet) -> TrialEvidence {
        TrialEvidence {
            resets_pre_request: m.counter(Counter::IntangResetsPreRequest),
            resets_post_request: m.counter(Counter::IntangResetsPostRequest),
            blacklist_hits: m.counter(Counter::GfwBlacklistHits),
            forged_synacks: m.counter(Counter::GfwForgedSynacks),
            tcb_resyncs: m.counter(Counter::GfwTcbResyncs),
            gfw_detections: m.counter(Counter::GfwDetections),
            middlebox_drops: m.counter(Counter::MiddleboxFilterDrops)
                + m.counter(Counter::MiddleboxFragDrops)
                + m.counter(Counter::MiddleboxSeqfwBlocked)
                + m.counter(Counter::MiddleboxConntrackBlocked),
            ip_blocked_drops: m.counter(Counter::GfwIpBlockedDrops),
            link_fault_drops: m.counter(Counter::NetsimMtuDropped),
        }
    }
}

/// Assign a §5 failure vector to one trial. Returns `None` for successful
/// trials; every unsuccessful trial maps to exactly one vector.
///
/// Precedence within reset failures runs most-specific-first: blacklist
/// evidence beats resync evidence beats the pre/post-request split,
/// because a blacklisted pair produces resets regardless of what the
/// strategy did this flow, and a resync re-detection explains post-request
/// resets better than "DPI saw the keyword" alone.
pub fn classify(outcome: TrialOutcome, ev: &TrialEvidence) -> Option<FailureVector> {
    match outcome {
        TrialOutcome::Success => None,
        TrialOutcome::ResetFailure => Some(classify_reset(ev)),
        TrialOutcome::SilentFailure => Some(classify_silent(ev)),
    }
}

fn classify_reset(ev: &TrialEvidence) -> FailureVector {
    if ev.blacklist_hits > 0 || ev.forged_synacks > 0 {
        FailureVector::BlacklistResidual
    } else if ev.tcb_resyncs > 0 && ev.gfw_detections > 0 {
        FailureVector::ResyncTriggered
    } else if ev.resets_pre_request > 0 && ev.resets_post_request == 0 {
        FailureVector::ResetPreRequest
    } else if ev.resets_post_request > 0 {
        FailureVector::ResetPostRequest
    } else {
        // The trial ended in resets but the shim recorded none in either
        // window — counter plumbing is missing a path. Surface it.
        FailureVector::Unclassified
    }
}

fn classify_silent(ev: &TrialEvidence) -> FailureVector {
    if ev.middlebox_drops + ev.ip_blocked_drops + ev.link_fault_drops > 0 {
        FailureVector::MiddleboxInterference
    } else {
        FailureVector::Timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> TrialEvidence {
        TrialEvidence::default()
    }

    #[test]
    fn success_has_no_vector() {
        assert_eq!(classify(TrialOutcome::Success, &base()), None);
        // Even with noisy counters, success is success.
        let noisy = TrialEvidence {
            gfw_detections: 3,
            resets_post_request: 1,
            ..base()
        };
        assert_eq!(classify(TrialOutcome::Success, &noisy), None);
    }

    #[test]
    fn reset_pre_request_vector() {
        // §5: insertion packets themselves tripped the censor during the
        // handshake — resets land before any payload.
        let ev = TrialEvidence {
            resets_pre_request: 2,
            gfw_detections: 1,
            ..base()
        };
        assert_eq!(classify(TrialOutcome::ResetFailure, &ev), Some(FailureVector::ResetPreRequest));
    }

    #[test]
    fn reset_post_request_vector() {
        // §5: DPI saw the forbidden keyword despite the strategy.
        let ev = TrialEvidence {
            resets_post_request: 3,
            gfw_detections: 1,
            ..base()
        };
        assert_eq!(classify(TrialOutcome::ResetFailure, &ev), Some(FailureVector::ResetPostRequest));
        // Resets in both windows count as post-request (the request made
        // it out; the earlier resets didn't kill the flow).
        let both = TrialEvidence {
            resets_pre_request: 1,
            ..ev
        };
        assert_eq!(classify(TrialOutcome::ResetFailure, &both), Some(FailureVector::ResetPostRequest));
    }

    #[test]
    fn blacklist_residual_vector() {
        // §5: the 90 s IP-pair blacklist from an earlier detection —
        // forged SYN/ACKs and resets with no fresh detection needed.
        let ev = TrialEvidence {
            blacklist_hits: 4,
            forged_synacks: 1,
            resets_post_request: 2,
            ..base()
        };
        assert_eq!(classify(TrialOutcome::ResetFailure, &ev), Some(FailureVector::BlacklistResidual));
        // Forged SYN/ACK alone is blacklist evidence too.
        let synack_only = TrialEvidence {
            forged_synacks: 1,
            resets_pre_request: 1,
            ..base()
        };
        assert_eq!(
            classify(TrialOutcome::ResetFailure, &synack_only),
            Some(FailureVector::BlacklistResidual)
        );
    }

    #[test]
    fn resync_triggered_vector() {
        // §5: evolved GFW resynced its TCB mid-flow and re-detected.
        let ev = TrialEvidence {
            tcb_resyncs: 1,
            gfw_detections: 1,
            resets_post_request: 2,
            ..base()
        };
        assert_eq!(classify(TrialOutcome::ResetFailure, &ev), Some(FailureVector::ResyncTriggered));
        // A resync without a detection is not the resync vector — the
        // resets must be attributable to the re-detection.
        let no_detect = TrialEvidence {
            tcb_resyncs: 1,
            resets_post_request: 2,
            ..base()
        };
        assert_eq!(
            classify(TrialOutcome::ResetFailure, &no_detect),
            Some(FailureVector::ResetPostRequest)
        );
    }

    #[test]
    fn middlebox_interference_vector() {
        // §5: a non-censor middlebox ate the insertion packets; the flow
        // dies silently.
        let ev = TrialEvidence {
            middlebox_drops: 2,
            ..base()
        };
        assert_eq!(
            classify(TrialOutcome::SilentFailure, &ev),
            Some(FailureVector::MiddleboxInterference)
        );
        let null_routed = TrialEvidence {
            ip_blocked_drops: 5,
            ..base()
        };
        assert_eq!(
            classify(TrialOutcome::SilentFailure, &null_routed),
            Some(FailureVector::MiddleboxInterference)
        );
        // An injected path-MTU clamp silently eating frames presents the
        // same way and must not fall through to `timeout`.
        let clamped = TrialEvidence {
            link_fault_drops: 3,
            ..base()
        };
        assert_eq!(
            classify(TrialOutcome::SilentFailure, &clamped),
            Some(FailureVector::MiddleboxInterference)
        );
    }

    #[test]
    fn timeout_vector() {
        // §5: silent hang with no drop evidence at all.
        assert_eq!(classify(TrialOutcome::SilentFailure, &base()), Some(FailureVector::Timeout));
    }

    #[test]
    fn unclassified_surfaces_instrumentation_gaps() {
        // A reset failure with zero reset counters means a plumbing bug;
        // it must not be silently folded into another vector.
        assert_eq!(classify(TrialOutcome::ResetFailure, &base()), Some(FailureVector::Unclassified));
    }

    #[test]
    fn every_unsuccessful_outcome_gets_exactly_one_vector() {
        // Sweep a grid of evidence combinations: classify is total.
        let vals = [0u64, 1];
        for a in vals {
            for b in vals {
                for c in vals {
                    for d in vals {
                        for e in vals {
                            let ev = TrialEvidence {
                                resets_pre_request: a,
                                resets_post_request: b,
                                blacklist_hits: c,
                                tcb_resyncs: d,
                                gfw_detections: e,
                                ..base()
                            };
                            assert!(classify(TrialOutcome::ResetFailure, &ev).is_some());
                            assert!(classify(TrialOutcome::SilentFailure, &ev).is_some());
                        }
                    }
                }
            }
        }
    }
}
