//! Deterministic gauge time-series sampled on a *sim-time* cadence.
//!
//! The per-trial counters (metrics.rs) say what happened by the end of a
//! trial; they cannot say *when*. This module adds the time axis: every
//! [`CADENCE_US`] of simulated time the simulation snapshots a small set
//! of gauges — censor TCB-table occupancy, blacklist size, active flows,
//! event-queue depth, inflight packets, leased buffers — into a
//! [`SeriesSheet`].
//!
//! Two properties make the result safe to ship from a parallel sweep:
//!
//! - **Constant memory.** A [`GaugeSeries`] holds at most [`SERIES_CAP`]
//!   bins. When a push would exceed the capacity the series *compacts*:
//!   adjacent bin pairs merge (sums and counts add, maxima take the max)
//!   and the per-bin tick stride doubles. A series therefore costs the
//!   same whether the sim ran for 25 simulated seconds or 25 hours, and
//!   its resolution degrades log₂-gracefully instead of truncating.
//! - **Determinism.** Sampling is driven by the simulation clock, reads
//!   gauge values that are themselves deterministic, and merging (trial →
//!   cell → sweep) is associative, so a sweep merged in cell-index order
//!   is byte-identical at any worker count.
//!
//! Sampling is disabled by default and enabled per-process with
//! `INTANG_SERIES=1` or per-thread with [`set_thread`] (the same pattern
//! as `intang_netsim::batch`); when disabled the hot path pays one cached
//! boolean test per simulation, nothing per event.

use crate::json::{u64_array, JsonObject};
use std::cell::Cell;
use std::sync::OnceLock;

/// Simulated time between gauge samples, in microseconds (100 ms: a 25 s
/// trial yields 251 ticks, which exercises two compactions in production).
pub const CADENCE_US: u64 = 100_000;

/// Maximum bins a series retains; a push beyond this compacts 2:1.
pub const SERIES_CAP: usize = 64;

/// The gauges sampled each tick. Gauge values are instantaneous readings
/// (not counters): table sizes, queue depths, live-object counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeId {
    /// TCB-table entries across prior-generation (pre-2015) GFW devices.
    GfwTcbsOld,
    /// TCB-table entries across evolved-generation GFW devices.
    GfwTcbsEvolved,
    /// Blacklisted (ip, ip) pairs across all GFW devices.
    GfwBlacklist,
    /// Flows the INTANG shim is currently tracking.
    IntangFlows,
    /// Events pending in the simulator queue (heap + wheel + overflow).
    EventQueueDepth,
    /// Deliver events in flight (packets on the wire, excluding timers).
    InflightPackets,
    /// Wire buffers reachable from a live packet handle on this thread,
    /// relative to the sim's construction baseline.
    WireBuffers,
    /// Objects leased from thread-local arenas (taken, not yet returned),
    /// relative to the sim's construction baseline.
    ArenaLeased,
    /// Metropolis load generator: flows spawned and not yet retired.
    MetroLiveFlows,
    /// Metropolis origin servers: live per-connection cells.
    MetroServerCells,
}

impl GaugeId {
    pub const COUNT: usize = 10;

    pub const ALL: [GaugeId; GaugeId::COUNT] = [
        GaugeId::GfwTcbsOld,
        GaugeId::GfwTcbsEvolved,
        GaugeId::GfwBlacklist,
        GaugeId::IntangFlows,
        GaugeId::EventQueueDepth,
        GaugeId::InflightPackets,
        GaugeId::WireBuffers,
        GaugeId::ArenaLeased,
        GaugeId::MetroLiveFlows,
        GaugeId::MetroServerCells,
    ];

    pub fn name(self) -> &'static str {
        match self {
            GaugeId::GfwTcbsOld => "gfw_tcbs_old",
            GaugeId::GfwTcbsEvolved => "gfw_tcbs_evolved",
            GaugeId::GfwBlacklist => "gfw_blacklist",
            GaugeId::IntangFlows => "intang_flows",
            GaugeId::EventQueueDepth => "event_queue_depth",
            GaugeId::InflightPackets => "inflight_packets",
            GaugeId::WireBuffers => "wire_buffers",
            GaugeId::ArenaLeased => "arena_leased",
            GaugeId::MetroLiveFlows => "metro_live_flows",
            GaugeId::MetroServerCells => "metro_server_cells",
        }
    }
}

/// One snapshot of every gauge, filled by `Element::sample_gauges`
/// implementors plus the simulator's own substrate readings.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSample {
    vals: [u64; GaugeId::COUNT],
}

impl GaugeSample {
    /// Accumulate into a gauge (several elements may contribute — e.g.
    /// two GFW devices both add their TCB counts).
    pub fn add(&mut self, id: GaugeId, v: u64) {
        self.vals[id as usize] += v;
    }

    pub fn get(&self, id: GaugeId) -> u64 {
        self.vals[id as usize]
    }
}

/// One bin of a series: the aggregate of `count` samples.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Bin {
    pub sum: u64,
    pub max: u64,
    pub count: u64,
}

impl Bin {
    fn absorb(&mut self, other: Bin) {
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

/// Fixed-capacity time-series of one gauge.
///
/// Bin `i` covers sample ticks `[i*stride, (i+1)*stride)`; tick `t` was
/// taken at simulated time `t * CADENCE_US`. Merging two series (the same
/// gauge observed by different trials) aligns their strides by compacting
/// the finer one, then adds bins element-wise — an associative operation,
/// so any fixed fold order yields identical bytes.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    stride: u32,
    ticks: u64,
    bins: Vec<Bin>,
}

impl GaugeSeries {
    /// Ticks of simulated time each bin covers (a power of two; 0 only on
    /// a series that never received a sample).
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Samples pushed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    pub fn is_empty(&self) -> bool {
        self.ticks == 0
    }

    /// Record the sample for the next tick.
    pub fn push(&mut self, v: u64) {
        if self.stride == 0 {
            self.stride = 1;
        }
        let mut idx = (self.ticks / u64::from(self.stride)) as usize;
        while idx >= SERIES_CAP {
            self.compact();
            idx = (self.ticks / u64::from(self.stride)) as usize;
        }
        if idx == self.bins.len() {
            self.bins.push(Bin::default());
        }
        let bin = &mut self.bins[idx];
        bin.sum += v;
        bin.max = bin.max.max(v);
        bin.count += 1;
        self.ticks += 1;
    }

    /// Halve the resolution: merge adjacent bin pairs, double the stride.
    fn compact(&mut self) {
        let mut out = Vec::with_capacity(self.bins.len().div_ceil(2));
        for pair in self.bins.chunks(2) {
            let mut bin = pair[0];
            if let Some(&second) = pair.get(1) {
                bin.absorb(second);
            }
            out.push(bin);
        }
        self.bins = out;
        self.stride = self.stride.saturating_mul(2);
    }

    /// Fold another observation of the same gauge in (element-wise over
    /// sim time, after aligning strides to the coarser of the two).
    pub fn merge(&mut self, other: &GaugeSeries) {
        if other.ticks == 0 {
            return;
        }
        if self.ticks == 0 {
            *self = other.clone();
            return;
        }
        while self.stride < other.stride {
            self.compact();
        }
        let mut o;
        let other = if other.stride < self.stride {
            o = other.clone();
            while o.stride < self.stride {
                o.compact();
            }
            &o
        } else {
            other
        };
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), Bin::default());
        }
        for (mine, theirs) in self.bins.iter_mut().zip(&other.bins) {
            mine.absorb(*theirs);
        }
        self.ticks = self.ticks.max(other.ticks);
    }

    /// Render as a JSON object: `{"stride":…,"ticks":…,"sum":[…],
    /// "max":[…],"count":[…]}` — the shared shape for JSONL rows and the
    /// BENCH_sweep `series` section.
    pub fn to_json(&self) -> String {
        let sums: Vec<u64> = self.bins.iter().map(|b| b.sum).collect();
        let maxes: Vec<u64> = self.bins.iter().map(|b| b.max).collect();
        let counts: Vec<u64> = self.bins.iter().map(|b| b.count).collect();
        let mut o = JsonObject::new();
        o.u64("stride", u64::from(self.stride));
        o.u64("ticks", self.ticks);
        o.raw("sum", &u64_array(&sums));
        o.raw("max", &u64_array(&maxes));
        o.raw("count", &u64_array(&counts));
        o.finish()
    }
}

/// All gauges' series for one trial / cell / sweep.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SeriesSheet {
    series: [GaugeSeries; GaugeId::COUNT],
}

impl SeriesSheet {
    pub fn new() -> SeriesSheet {
        SeriesSheet::default()
    }

    /// Record one full [`GaugeSample`] (one tick across every gauge).
    pub fn push_sample(&mut self, sample: &GaugeSample) {
        for id in GaugeId::ALL {
            self.series[id as usize].push(sample.get(id));
        }
    }

    pub fn series(&self, id: GaugeId) -> &GaugeSeries {
        &self.series[id as usize]
    }

    pub fn is_empty(&self) -> bool {
        self.series.iter().all(GaugeSeries::is_empty)
    }

    pub fn merge(&mut self, other: &SeriesSheet) {
        for id in GaugeId::ALL {
            self.series[id as usize].merge(&other.series[id as usize]);
        }
    }
}

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| matches!(std::env::var("INTANG_SERIES"), Ok(v) if !v.is_empty() && v != "0"))
}

thread_local! {
    static THREAD_ON: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Is gauge sampling enabled for simulations built on this thread?
/// Checked once per `Simulation::new` and cached there.
pub fn enabled() -> bool {
    THREAD_ON.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Thread-local override (`Some(on)`) or defer to the environment
/// (`None`). Returns the previous override so callers can restore it.
pub fn set_thread(on: Option<bool>) -> Option<bool> {
    THREAD_ON.with(|c| c.replace(on))
}

/// The current thread-local override, for replaying onto worker threads.
pub fn thread_override() -> Option<bool> {
    THREAD_ON.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: u64) -> GaugeSeries {
        let mut s = GaugeSeries::default();
        for v in 0..n {
            s.push(v);
        }
        s
    }

    #[test]
    fn fills_without_compaction_up_to_cap() {
        let s = filled(SERIES_CAP as u64);
        assert_eq!(s.stride(), 1);
        assert_eq!(s.bins().len(), SERIES_CAP);
        assert_eq!(s.ticks(), SERIES_CAP as u64);
        assert!(s.bins().iter().all(|b| b.count == 1));
    }

    #[test]
    fn compacts_at_the_boundary_preserving_totals() {
        let s = filled(SERIES_CAP as u64 + 1);
        assert_eq!(s.stride(), 2);
        assert_eq!(s.bins().len(), SERIES_CAP / 2 + 1);
        let total: u64 = s.bins().iter().map(|b| b.sum).sum();
        let count: u64 = s.bins().iter().map(|b| b.count).sum();
        let n = SERIES_CAP as u64 + 1;
        assert_eq!(total, n * (n - 1) / 2);
        assert_eq!(count, n);
        // The first compacted bin covers ticks {0, 1}.
        assert_eq!(s.bins()[0], Bin { sum: 1, max: 1, count: 2 });
    }

    #[test]
    fn double_compaction_reaches_stride_four() {
        // 251 ticks is the production shape: a 25 s horizon at 100 ms.
        let s = filled(251);
        assert_eq!(s.stride(), 4);
        assert_eq!(s.bins().len(), 63);
        let count: u64 = s.bins().iter().map(|b| b.count).sum();
        assert_eq!(count, 251);
        assert_eq!(s.bins().last().unwrap().count, 3); // 248, 249, 250
        assert_eq!(s.bins().last().unwrap().max, 250);
    }

    #[test]
    fn merge_aligns_strides_and_is_associative() {
        let a = filled(10); // stride 1
        let b = filled(SERIES_CAP as u64 + 1); // stride 2
        let c = filled(251); // stride 4

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.stride(), 4);
        let total: u64 = ab_c.bins().iter().map(|b| b.sum).sum();
        let expect = |n: u64| n * (n - 1) / 2;
        assert_eq!(total, expect(10) + expect(SERIES_CAP as u64 + 1) + expect(251));
    }

    #[test]
    fn merge_into_empty_clones() {
        let mut s = GaugeSeries::default();
        s.merge(&filled(7));
        assert_eq!(s, filled(7));
        let before = s.clone();
        s.merge(&GaugeSeries::default());
        assert_eq!(s, before);
    }

    #[test]
    fn sheet_push_and_merge() {
        let mut a = SeriesSheet::new();
        let mut g = GaugeSample::default();
        g.add(GaugeId::GfwBlacklist, 3);
        g.add(GaugeId::GfwBlacklist, 2);
        a.push_sample(&g);
        assert_eq!(a.series(GaugeId::GfwBlacklist).bins()[0].sum, 5);
        assert_eq!(a.series(GaugeId::IntangFlows).bins()[0].sum, 0);
        assert_eq!(a.series(GaugeId::IntangFlows).ticks(), 1);

        let mut b = SeriesSheet::new();
        b.push_sample(&g);
        b.merge(&a);
        assert_eq!(b.series(GaugeId::GfwBlacklist).bins()[0], Bin { sum: 10, max: 5, count: 2 });
    }

    #[test]
    fn json_shape() {
        let s = filled(3);
        assert_eq!(s.to_json(), r#"{"stride":1,"ticks":3,"sum":[0,1,2],"max":[0,1,2],"count":[1,1,1]}"#);
    }

    #[test]
    fn thread_override_round_trips() {
        assert_eq!(thread_override(), None);
        let prev = set_thread(Some(true));
        assert_eq!(prev, None);
        assert!(enabled());
        assert_eq!(set_thread(prev), Some(true));
        assert_eq!(thread_override(), None);
    }
}
