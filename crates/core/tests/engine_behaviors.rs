//! Engine-level integration: the INTANG element standing alone in a small
//! world — hop measurement, probe-ICMP consumption, per-destination δ
//! iteration, and DNS forwarding through the shim.

use intang_core::{Discrepancy, IntangConfig, IntangElement, StrategyKind};
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{PacketBuilder, TcpFlags};
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 33);

/// client-edge — INTANG — 6-hop link — echo-less server edge.
/// Injecting the client's SYN at element 0 exercises the shim's egress.
fn measurement_world(cfg: IntangConfig) -> (Simulation, intang_core::IntangHandle) {
    let mut sim = Simulation::new(9);
    sim.add_element(Box::new(PassThrough::new("client-edge")));
    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let (el, handle) = IntangElement::new(CLIENT, cfg);
    sim.add_element(Box::new(el));
    sim.add_link(Link::new(Duration::from_millis(2), 6));
    sim.add_element(Box::new(PassThrough::new("server-edge")));
    (sim, handle)
}

#[test]
fn hop_measurement_learns_the_path_length() {
    let (mut sim, handle) = measurement_world(IntangConfig::fixed(StrategyKind::ImprovedTeardown));
    let syn = PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80).seq(100).flags(TcpFlags::SYN).build();
    sim.inject_at(0, Direction::ToServer, syn, Instant::ZERO);
    sim.run_until(Instant(2_000_000));
    // The world has 6 routers; SYN/ACK never comes (passive edge), so the
    // estimate derives from ICMP alone: farthest router 6 ⇒ estimate 7.
    assert_eq!(handle.hops_to(SERVER), Some(7));
    let stats = handle.stats();
    assert_eq!(stats.probes_sent, u64::from(IntangConfig::default().max_probe_ttl));
    assert_eq!(stats.flows, 1);
}

#[test]
fn measurement_probes_icmp_is_consumed_not_leaked_to_client() {
    // The client edge would record anything forwarded to it.
    use std::cell::RefCell;
    use std::rc::Rc;
    struct Recorder {
        got: Rc<RefCell<u32>>,
    }
    impl intang_netsim::Element for Recorder {
        fn name(&self) -> &str {
            "client-edge"
        }
        fn on_packet(&mut self, ctx: &mut intang_netsim::Ctx<'_>, dir: Direction, wire: intang_packet::Wire) {
            if dir == Direction::ToClient {
                if let Ok(ip) = intang_packet::Ipv4Packet::new_checked(&wire[..]) {
                    if ip.protocol() == intang_packet::IpProtocol::Icmp {
                        *self.got.borrow_mut() += 1;
                    }
                }
            } else {
                ctx.send(dir, wire);
            }
        }
    }
    let got = Rc::new(RefCell::new(0));
    let mut sim = Simulation::new(9);
    sim.add_element(Box::new(Recorder { got: got.clone() }));
    sim.add_link(Link::new(Duration::from_micros(50), 0));
    let (el, _handle) = IntangElement::new(CLIENT, IntangConfig::fixed(StrategyKind::ImprovedTeardown));
    sim.add_element(Box::new(el));
    sim.add_link(Link::new(Duration::from_millis(2), 6));
    sim.add_element(Box::new(PassThrough::new("server-edge")));
    let syn = PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80).seq(100).flags(TcpFlags::SYN).build();
    sim.inject_at(0, Direction::ToServer, syn, Instant::ZERO);
    sim.run_until(Instant(2_000_000));
    assert_eq!(*got.borrow(), 0, "probe time-exceeded replies never reach the client host");
}

#[test]
fn delta_iteration_recovers_a_co_located_censor() {
    // Topology: client — INTANG — 5 routers — GFW — 1 router — server edge.
    // With δ=2 the insertion TTL is (7-2)=5: it dies at router 5, one short
    // of the censor ⇒ detection ⇒ resets. The §7.1 iteration then lowers δ.
    let build = || {
        let mut sim = Simulation::new(17);
        sim.add_element(Box::new(PassThrough::new("client-edge")));
        sim.add_link(Link::new(Duration::from_micros(50), 0));
        let cfg = IntangConfig {
            strategy: Some(StrategyKind::InOrderOverlap(Discrepancy::SmallTtl)),
            redundancy: 1,
            ..IntangConfig::default()
        };
        let (el, ih) = IntangElement::new(CLIENT, cfg);
        sim.add_element(Box::new(el));
        sim.add_link(Link::new(Duration::from_millis(1), 5));
        let mut gcfg = GfwConfig::evolved();
        gcfg.overload_miss_prob = 0.0;
        let (gfw, gh) = GfwElement::new(gcfg);
        sim.add_element(Box::new(gfw));
        sim.add_link(Link::new(Duration::from_millis(1), 1));
        let (server_host, _sh) =
            intang_apps::host::HostElement::new("server", SERVER, intang_tcpstack::StackProfile::linux_4_4(), Box::new(ServerApp));
        let sidx = sim.add_element(server_host.into_boxed(Direction::ToClient));
        // Kick-off poll so the listener registers before any probe lands.
        sim.schedule_timer(sidx, Instant::ZERO, 0);
        (sim, ih, gh)
    };
    struct ServerApp;
    impl intang_apps::HostDriver for ServerApp {
        fn poll(&mut self, now: Instant, tcp: &mut intang_tcpstack::TcpEndpoint, _u: &mut intang_apps::UdpLayer) {
            tcp.listen(80);
            for h in tcp.take_accepted() {
                let _ = h;
            }
            // Echo nothing; just accept and ack (drain all sockets).
            for i in 0..64 {
                let handle = intang_tcpstack::SocketHandle(i);
                // Drain defensively; out-of-range would panic, so stop at
                // the live count.
                if i >= tcp.live_sockets() {
                    break;
                }
                let _ = tcp.socket(handle).recv_drain();
                let _ = now;
            }
        }
    }

    // Session 1: δ=2 → insertion dies short of the censor → detection.
    let (mut sim, ih, gh) = build();
    let syn = PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80).seq(100).flags(TcpFlags::SYN).build();
    sim.inject_at(0, Direction::ToServer, syn, Instant::ZERO);
    // Drive the handshake by hand: the client edge is passive, so fabricate
    // the client's followups after the (real) SYN/ACK returns.
    sim.run_until(Instant(3_000_000));
    // The client edge is passive (no real stack), so hand the shim the
    // keyword request directly: it intercepts the first payload and fires
    // the strategy exactly as it would for a live socket.
    let req = PacketBuilder::tcp(CLIENT, SERVER, 40_000, 80)
        .seq(101)
        .ack(1)
        .flags(TcpFlags::PSH_ACK)
        .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
        .build();
    sim.inject_at(0, Direction::ToServer, req, Instant(3_000_000));
    sim.run_until(Instant(8_000_000));
    assert_eq!(ih.hops_to(SERVER), Some(7), "5 + 1 routers, reached at TTL 7");
    assert!(gh.detected_any(), "with delta=2 the junk expires before the co-located censor");
    assert_eq!(ih.delta_for(SERVER), Some(1), "the iteration lowered delta after the failure");
}
