//! Insertion-packet crafting.
//!
//! An insertion packet must be processed by the censor but ignored by the
//! server (§3.2). Each [`Discrepancy`] is one way to guarantee the latter;
//! Table 5 prescribes which discrepancies are usable for which packet
//! type (control packets cannot rely on data-only ignore paths):
//!
//! | Packet | TTL | MD5 | Bad ACK | Timestamp |
//! |--------|-----|-----|---------|-----------|
//! | SYN    |  ✓  |     |         |           |
//! | RST    |  ✓  |  ✓  |         |           |
//! | Data   |  ✓  |  ✓  |    ✓    |     ✓     |

use intang_packet::{PacketBuilder, TcpFlags, Wire};
use std::net::Ipv4Addr;

/// A server-side ignore path exploited by an insertion packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discrepancy {
    /// TTL large enough to pass the censor but too small to reach the
    /// server (needs a hop estimate).
    SmallTtl,
    /// Wrong TCP checksum (server drops; censor doesn't validate).
    BadChecksum,
    /// Unsolicited RFC 2385 MD5 signature option.
    Md5Option,
    /// ACK number acknowledging data the server never sent.
    BadAck,
    /// RFC 7323 timestamp far in the past (PAWS discard).
    OldTimestamp,
    /// No TCP flags at all.
    NoFlag,
    /// IP total-length field larger than the buffer (Table 3 row 1 — "the
    /// only [IP-layer] feature we find useful", though some middleboxes
    /// still check it, §5.3).
    InflatedIpLen,
}

/// What kind of packet the insertion is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InsertionKind {
    Syn,
    SynAck,
    Rst,
    RstAck,
    Fin,
    Data,
}

impl InsertionKind {
    /// The Table 5 whitelist: discrepancies that are safe *and* effective
    /// for this packet type. (SYN/ACK follows the SYN row; FIN follows the
    /// RST row — both are control packets where data-only ignore paths
    /// such as bad-ACK do not apply.)
    pub fn preferred_discrepancies(self) -> &'static [Discrepancy] {
        match self {
            InsertionKind::Syn | InsertionKind::SynAck => &[Discrepancy::SmallTtl],
            InsertionKind::Rst | InsertionKind::RstAck | InsertionKind::Fin => &[Discrepancy::SmallTtl, Discrepancy::Md5Option],
            InsertionKind::Data => &[
                Discrepancy::SmallTtl,
                Discrepancy::Md5Option,
                Discrepancy::BadAck,
                Discrepancy::OldTimestamp,
            ],
        }
    }

    pub fn flags(self) -> TcpFlags {
        match self {
            InsertionKind::Syn => TcpFlags::SYN,
            InsertionKind::SynAck => TcpFlags::SYN_ACK,
            InsertionKind::Rst => TcpFlags::RST,
            InsertionKind::RstAck => TcpFlags::RST_ACK,
            InsertionKind::Fin => TcpFlags::FIN,
            InsertionKind::Data => TcpFlags::PSH_ACK,
        }
    }
}

/// Everything needed to emit one insertion packet.
///
/// ```
/// use intang_core::insertion::{InsertionSpec, InsertionKind, Discrepancy};
///
/// // A TTL-scoped teardown RST (Table 5's preferred RST construction).
/// let spec = InsertionSpec {
///     src: "10.0.0.1".parse().unwrap(),
///     dst: "93.184.216.34".parse().unwrap(),
///     src_port: 40000,
///     dst_port: 80,
///     kind: InsertionKind::Rst,
///     seq: 12345,
///     ack: 0,
///     payload: vec![],
///     disc: Discrepancy::SmallTtl,
///     ttl_limit: Some(12), // measured hops − δ
/// };
/// assert!(spec.is_preferred());
/// let wire = spec.build();
/// let ip = intang_packet::Ipv4Packet::new_checked(&wire[..]).unwrap();
/// assert_eq!(ip.ttl(), 12);
/// ```
#[derive(Debug, Clone)]
pub struct InsertionSpec {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub kind: InsertionKind,
    pub seq: u32,
    pub ack: u32,
    pub payload: Vec<u8>,
    pub disc: Discrepancy,
    /// Hop-scoped TTL for [`Discrepancy::SmallTtl`] (estimated hops − δ).
    pub ttl_limit: Option<u8>,
}

impl InsertionSpec {
    /// Serialize under the chosen discrepancy.
    pub fn build(&self) -> Wire {
        let mut b = PacketBuilder::tcp(self.src, self.dst, self.src_port, self.dst_port)
            .seq(self.seq)
            .ack(self.ack)
            .flags(match self.disc {
                Discrepancy::NoFlag => TcpFlags::NONE,
                _ => self.kind.flags(),
            })
            .payload(&self.payload);
        match self.disc {
            Discrepancy::SmallTtl => {
                b = b.ttl(self.ttl_limit.unwrap_or(8));
            }
            Discrepancy::BadChecksum => {
                b = b.bad_checksum();
            }
            Discrepancy::Md5Option => {
                b = b.md5_option();
            }
            Discrepancy::BadAck => {
                // Overwrite the ACK with one far beyond anything the server
                // sent: Linux discards the entire segment (tcp_ack).
                b = b.ack(self.ack.wrapping_add(0x2000_0000));
            }
            Discrepancy::OldTimestamp => {
                // A PAWS-stale timestamp (tsval far behind any current one).
                b = b.timestamps(1, 0);
            }
            Discrepancy::NoFlag => {}
            Discrepancy::InflatedIpLen => {
                b = b.inflated_total_len(24);
            }
        }
        let wire = b.build();
        if self.disc == Discrepancy::BadChecksum {
            // The corrupt checksum is the point of this insertion packet —
            // tell simcheck so wire-integrity checking doesn't flag it.
            // No-op unless checking is enabled.
            intang_simcheck::expect_bad_checksum(&wire);
        }
        wire
    }

    /// Is this (kind, discrepancy) combination on the Table 5 whitelist?
    pub fn is_preferred(&self) -> bool {
        self.kind.preferred_discrepancies().contains(&self.disc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::{Ipv4Packet, TcpOption, TcpPacket};

    fn spec(kind: InsertionKind, disc: Discrepancy) -> InsertionSpec {
        InsertionSpec {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(203, 0, 113, 5),
            src_port: 40000,
            dst_port: 80,
            kind,
            seq: 1000,
            ack: 2000,
            payload: if kind == InsertionKind::Data {
                b"JUNKJUNK".to_vec()
            } else {
                Vec::new()
            },
            disc,
            ttl_limit: Some(11),
        }
    }

    #[test]
    fn table5_whitelist() {
        use Discrepancy::*;
        use InsertionKind::*;
        assert_eq!(Syn.preferred_discrepancies(), &[SmallTtl]);
        assert_eq!(Rst.preferred_discrepancies(), &[SmallTtl, Md5Option]);
        assert!(Data.preferred_discrepancies().contains(&BadAck));
        assert!(Data.preferred_discrepancies().contains(&OldTimestamp));
        assert!(
            !Rst.preferred_discrepancies().contains(&BadAck),
            "a bad-ACK RST still resets a server"
        );
        assert!(spec(Data, Md5Option).is_preferred());
        assert!(!spec(Syn, BadChecksum).is_preferred());
    }

    #[test]
    fn small_ttl_applied() {
        let wire = spec(InsertionKind::Rst, Discrepancy::SmallTtl).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert_eq!(ip.ttl(), 11);
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.flags(), TcpFlags::RST);
        assert!(t.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn md5_option_applied() {
        let wire = spec(InsertionKind::Data, Discrepancy::Md5Option).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(t.has_md5_option());
        assert_eq!(t.payload(), b"JUNKJUNK");
    }

    #[test]
    fn bad_ack_shifts_far_forward() {
        let wire = spec(InsertionKind::Data, Discrepancy::BadAck).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.ack_number(), 2000u32.wrapping_add(0x2000_0000));
    }

    #[test]
    fn old_timestamp_applied() {
        let wire = spec(InsertionKind::Data, Discrepancy::OldTimestamp).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.options(), vec![TcpOption::Timestamps { tsval: 1, tsecr: 0 }]);
    }

    #[test]
    fn no_flag_strips_flags() {
        let wire = spec(InsertionKind::Data, Discrepancy::NoFlag).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(t.flags().is_empty());
    }

    #[test]
    fn inflated_ip_len_flagged() {
        let wire = spec(InsertionKind::Data, Discrepancy::InflatedIpLen).build();
        let ip = intang_packet::Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(!ip.total_len_consistent());
        // Not on the Table 5 whitelist: middleboxes may check it.
        assert!(!spec(InsertionKind::Data, Discrepancy::InflatedIpLen).is_preferred());
    }

    #[test]
    fn bad_checksum_detectable() {
        let wire = spec(InsertionKind::Syn, Discrepancy::BadChecksum).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(!t.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }
}
