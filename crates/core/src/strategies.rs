//! All evasion strategies the paper measures, implemented against the
//! [`crate::strategy::Strategy`] interception interface.
//!
//! Timing convention: insertion packets are injected at offset 0 (with
//! redundancy, §3.4), and the original packet is forwarded after
//! [`crate::strategy::ShimCtx::after_redundancy`] so it always trails its
//! insertions on the wire.

use crate::insertion::{Discrepancy, InsertionKind, InsertionSpec};
use crate::strategy::{FlowState, ShimCtx, Strategy, StrategyKind, Verdict};
use intang_netsim::Duration;
use intang_packet::{frag, IpProtocol, Ipv4Repr, PacketBuilder, TcpFlags, TcpRepr, Wire};

/// Offset the desynchronization / fake-SYN sequence numbers sit at: far
/// outside any plausible receive window (§5.1).
const OUT_OF_WINDOW: u32 = 0x4000_0000;

/// Build an insertion spec for the flow, defaulting unset fields from the
/// intercepted segment.
fn spec_for(flow: &FlowState, seg: &TcpRepr, kind: InsertionKind, disc: Discrepancy, delta: u8) -> InsertionSpec {
    InsertionSpec {
        src: flow.tuple.src,
        dst: flow.tuple.dst,
        src_port: flow.tuple.src_port,
        dst_port: flow.tuple.dst_port,
        kind,
        seq: seg.seq,
        ack: seg.ack,
        payload: Vec::new(),
        disc,
        ttl_limit: flow.insertion_ttl(delta),
    }
}

/// Pick the best Table 5 discrepancy available: TTL when a hop estimate
/// exists, otherwise the first non-TTL whitelist entry (MD5 for control
/// packets, MD5 for data too).
fn best_disc(flow: &FlowState, kind: InsertionKind) -> Discrepancy {
    let prefs = kind.preferred_discrepancies();
    if flow.hops.is_some() && flow.prefer_ttl {
        prefs[0] // SmallTtl always heads the whitelist
    } else {
        prefs
            .iter()
            .copied()
            .find(|d| *d != Discrepancy::SmallTtl)
            .unwrap_or(Discrepancy::BadChecksum)
    }
}

// ---------------------------------------------------------------------
// §3.2 existing strategies
// ---------------------------------------------------------------------

/// TCB creation: a fake SYN (wrong ISN) before the real handshake, so the
/// censor anchors on a bogus sequence. Defeated by the evolved model's
/// resynchronization on the SYN/ACK (§4).
pub struct TcbCreationSyn {
    pub disc: Discrepancy,
    pub delta: u8,
}

impl Strategy for TcbCreationSyn {
    fn kind(&self) -> StrategyKind {
        StrategyKind::TcbCreationSyn(self.disc)
    }

    fn on_syn(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let mut spec = spec_for(flow, seg, InsertionKind::Syn, self.disc, self.delta);
        spec.seq = seg.seq.wrapping_add(OUT_OF_WINDOW) ^ 0x00ff_00ff;
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

/// Out-of-order overlapping IP fragments: garbage tail first (the censor
/// keeps it, first-wins), real tail second (receivers keep it, last-wins),
/// then the head to fill the gap (§3.2).
pub struct OutOfOrderIpFrag;

impl Strategy for OutOfOrderIpFrag {
    fn kind(&self) -> StrategyKind {
        StrategyKind::OutOfOrderIpFrag
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let segment = seg.emit(flow.tuple.src, flow.tuple.dst);
        // Cut right after the TCP header, rounded up to fragment granularity.
        let header_len = usize::from(segment[12] >> 4) * 4;
        let cut = (header_len + 7) & !7;
        if segment.len() <= cut {
            return Verdict::Forward; // nothing beyond the header to hide
        }
        let ident = ctx.rng.next_u16();
        let base = Ipv4Repr {
            ident,
            ..Ipv4Repr::new(flow.tuple.src, flow.tuple.dst, IpProtocol::Tcp)
        };
        let tail_real = &segment[cut..];
        let tail_junk: Vec<u8> = (0..tail_real.len()).map(|_| (ctx.rng.next_u16() & 0x7f) as u8 | 0x20).collect();
        let head = &segment[..cut];
        ctx.inject_once(frag::raw_fragment(&base, cut, false, &tail_junk), Duration::ZERO);
        ctx.inject_once(frag::raw_fragment(&base, cut, false, tail_real), Duration::from_millis(2));
        ctx.inject_once(frag::raw_fragment(&base, 0, true, head), Duration::from_millis(4));
        Verdict::Replace
    }
}

/// Out-of-order overlapping TCP segments: real tail first, garbage tail
/// second (the Khattak-model censor prefers the latter), then the head.
pub struct OutOfOrderTcpSeg;

/// Payload split point: the sensitive content must not fit entirely in the
/// head (HTTP keywords sit after `GET /`; DNS names after the 14-byte
/// header+frame).
const SEG_CUT: usize = 8;

impl Strategy for OutOfOrderTcpSeg {
    fn kind(&self) -> StrategyKind {
        StrategyKind::OutOfOrderTcpSeg
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        if seg.payload.len() <= SEG_CUT {
            return Verdict::Forward;
        }
        let cut = SEG_CUT;
        let mk = |seq: u32, payload: Vec<u8>, ack: u32| {
            PacketBuilder::tcp(flow.tuple.src, flow.tuple.dst, flow.tuple.src_port, flow.tuple.dst_port)
                .seq(seq)
                .ack(ack)
                .flags(TcpFlags::PSH_ACK)
                .payload(&payload)
                .build()
        };
        let tail_real = seg.payload[cut..].to_vec();
        let tail_junk: Vec<u8> = (0..tail_real.len()).map(|_| (ctx.rng.next_u16() & 0x7f) as u8 | 0x20).collect();
        let head = seg.payload[..cut].to_vec();
        let tail_seq = seg.seq.wrapping_add(cut as u32);
        ctx.inject_once(mk(tail_seq, tail_real, seg.ack), Duration::ZERO);
        ctx.inject_once(mk(tail_seq, tail_junk, seg.ack), Duration::from_millis(2));
        ctx.inject_once(mk(seg.seq, head, seg.ack), Duration::from_millis(4));
        Verdict::Replace
    }
}

/// In-order data overlapping: prefill the censor's buffer with junk at the
/// current sequence; the real request then looks like stale data (§3.2).
pub struct InOrderOverlap {
    pub disc: Discrepancy,
    pub delta: u8,
}

impl Strategy for InOrderOverlap {
    fn kind(&self) -> StrategyKind {
        StrategyKind::InOrderOverlap(self.disc)
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let mut spec = spec_for(flow, seg, InsertionKind::Data, self.disc, self.delta);
        spec.payload = vec![b'J'; seg.payload.len()];
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

/// TCB teardown with RST / RST-ACK / FIN insertion packets (§3.2).
pub struct Teardown {
    pub kind: InsertionKind,
    pub disc: Discrepancy,
    pub delta: u8,
}

impl Strategy for Teardown {
    fn kind(&self) -> StrategyKind {
        match self.kind {
            InsertionKind::Rst => StrategyKind::TeardownRst(self.disc),
            InsertionKind::RstAck => StrategyKind::TeardownRstAck(self.disc),
            _ => StrategyKind::TeardownFin(self.disc),
        }
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let spec = spec_for(flow, seg, self.kind, self.disc, self.delta);
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

// ---------------------------------------------------------------------
// §5.2 / §7.1 new and improved strategies
// ---------------------------------------------------------------------

/// The desynchronization building block (§5.1): a 1-byte data packet with
/// an out-of-window sequence number. Inherently ignored by the server
/// (duplicate-ACK path) — no extra discrepancy needed.
fn desync_packet(flow: &FlowState, seg: &TcpRepr) -> Wire {
    PacketBuilder::tcp(flow.tuple.src, flow.tuple.dst, flow.tuple.src_port, flow.tuple.dst_port)
        .seq(seg.seq.wrapping_add(OUT_OF_WINDOW))
        .ack(seg.ack)
        .flags(TcpFlags::PSH_ACK)
        .payload(b"?")
        .build()
}

/// Improved TCB teardown (§7.1): RST insertion followed by a
/// desynchronization packet, covering both the teardown outcome (old
/// model / lucky evolved) and the resynchronization outcome (Hypothesized
/// New Behavior 3).
pub struct ImprovedTeardown {
    pub delta: u8,
}

impl Strategy for ImprovedTeardown {
    fn kind(&self) -> StrategyKind {
        StrategyKind::ImprovedTeardown
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let disc = best_disc(flow, InsertionKind::Rst);
        let rst = spec_for(flow, seg, InsertionKind::Rst, disc, self.delta);
        ctx.inject(rst.build(), Duration::ZERO);
        // The desync packet rides after every RST copy.
        ctx.inject_once(desync_packet(flow, seg), ctx.after_redundancy());
        Verdict::ForwardDelayed(ctx.after_redundancy() + Duration::from_millis(10))
    }
}

/// Improved in-order data overlapping (§7.1): junk prefill crafted with
/// Table 5-safe insertion discrepancies (TTL when measured, MD5 otherwise)
/// to dodge middleboxes and server side effects.
pub struct ImprovedInOrderOverlap {
    pub delta: u8,
}

impl Strategy for ImprovedInOrderOverlap {
    fn kind(&self) -> StrategyKind {
        StrategyKind::ImprovedInOrderOverlap
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let disc = best_disc(flow, InsertionKind::Data);
        let mut spec = spec_for(flow, seg, InsertionKind::Data, disc, self.delta);
        spec.payload = vec![b'J'; seg.payload.len()];
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

/// TCB creation + Resync/Desync (Fig. 3): fake SYN before the handshake
/// (defeats the old model), a second fake SYN after it to force the
/// evolved model into the resynchronization state, then a desync packet so
/// it re-anchors on garbage.
pub struct TcbCreationResyncDesync {
    pub delta: u8,
}

impl Strategy for TcbCreationResyncDesync {
    fn kind(&self) -> StrategyKind {
        StrategyKind::TcbCreationResyncDesync
    }

    fn on_syn(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let disc = best_disc(flow, InsertionKind::Syn);
        let mut spec = spec_for(flow, seg, InsertionKind::Syn, disc, self.delta);
        spec.seq = seg.seq.wrapping_add(OUT_OF_WINDOW) ^ 0x0f0f_0f0f;
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        // The second fake SYN cannot precede the SYN/ACK (§5.2): the censor
        // would re-anchor from the SYN/ACK's ACK. Here the handshake is
        // complete, so it sticks.
        let disc = best_disc(flow, InsertionKind::Syn);
        let mut syn2 = spec_for(flow, seg, InsertionKind::Syn, disc, self.delta);
        syn2.seq = seg.seq.wrapping_add(OUT_OF_WINDOW) ^ 0x5a5a_5a5a;
        ctx.inject(syn2.build(), Duration::ZERO);
        ctx.inject_once(desync_packet(flow, seg), ctx.after_redundancy());
        Verdict::ForwardDelayed(ctx.after_redundancy() + Duration::from_millis(10))
    }
}

/// TCB teardown + TCB reversal (Fig. 4): a fake SYN/ACK before the real
/// handshake creates a *reversed* TCB on the evolved model (it monitors
/// the wrong direction); an RST insertion after the handshake tears down
/// the old model's TCB.
pub struct TeardownTcbReversal {
    pub delta: u8,
}

impl Strategy for TeardownTcbReversal {
    fn kind(&self) -> StrategyKind {
        StrategyKind::TeardownTcbReversal
    }

    fn on_syn(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        // The fake SYN/ACK must never reach the server (it would answer
        // with an RST that tears the reversed TCB down) — TTL-scope it.
        let mut spec = spec_for(flow, seg, InsertionKind::SynAck, Discrepancy::SmallTtl, self.delta);
        spec.seq = ctx.rng.next_u32();
        spec.ack = ctx.rng.next_u32();
        ctx.inject(spec.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        let disc = best_disc(flow, InsertionKind::Rst);
        let rst = spec_for(flow, seg, InsertionKind::Rst, disc, self.delta);
        ctx.inject(rst.build(), Duration::ZERO);
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

/// The West Chamber Project baseline (§2.2): RSTs at the censor from both
/// believed directions. The spoofed "server-side" RST is emitted toward
/// the server — on-path censors attribute packets by address, not travel
/// direction, so the tap processes it as server traffic while the real
/// server discards it (the destination isn't the server).
pub struct WestChamber {
    pub delta: u8,
}

impl Strategy for WestChamber {
    fn kind(&self) -> StrategyKind {
        StrategyKind::WestChamber
    }

    fn on_first_payload(&mut self, ctx: &mut ShimCtx<'_>, flow: &mut FlowState, seg: &TcpRepr) -> Verdict {
        // Client-side RST (the original tool used checksum corruption).
        let spec = spec_for(flow, seg, InsertionKind::Rst, Discrepancy::BadChecksum, self.delta);
        ctx.inject(spec.build(), Duration::ZERO);
        // Spoofed server-side RST: src is the *server*, sequence is the
        // server's next expected byte as observed from the SYN/ACK.
        if let Some(server_isn) = flow.server_isn {
            let spoofed = PacketBuilder::tcp(flow.tuple.dst, flow.tuple.src, flow.tuple.dst_port, flow.tuple.src_port)
                .seq(server_isn.wrapping_add(1))
                .flags(TcpFlags::RST)
                .bad_checksum()
                .build();
            intang_simcheck::expect_bad_checksum(&spoofed);
            ctx.inject(spoofed, Duration::from_millis(2));
        }
        Verdict::ForwardDelayed(ctx.after_redundancy())
    }
}

/// Instantiate a strategy object from its kind.
pub fn build(kind: StrategyKind, delta: u8) -> Box<dyn Strategy> {
    match kind {
        StrategyKind::NoStrategy => Box::new(crate::strategy::NoStrategy),
        StrategyKind::TcbCreationSyn(disc) => Box::new(TcbCreationSyn { disc, delta }),
        StrategyKind::OutOfOrderIpFrag => Box::new(OutOfOrderIpFrag),
        StrategyKind::OutOfOrderTcpSeg => Box::new(OutOfOrderTcpSeg),
        StrategyKind::InOrderOverlap(disc) => Box::new(InOrderOverlap { disc, delta }),
        StrategyKind::TeardownRst(disc) => Box::new(Teardown {
            kind: InsertionKind::Rst,
            disc,
            delta,
        }),
        StrategyKind::TeardownRstAck(disc) => Box::new(Teardown {
            kind: InsertionKind::RstAck,
            disc,
            delta,
        }),
        StrategyKind::TeardownFin(disc) => Box::new(Teardown {
            kind: InsertionKind::Fin,
            disc,
            delta,
        }),
        StrategyKind::ImprovedTeardown => Box::new(ImprovedTeardown { delta }),
        StrategyKind::ImprovedInOrderOverlap => Box::new(ImprovedInOrderOverlap { delta }),
        StrategyKind::TcbCreationResyncDesync => Box::new(TcbCreationResyncDesync { delta }),
        StrategyKind::TeardownTcbReversal => Box::new(TeardownTcbReversal { delta }),
        StrategyKind::WestChamber => Box::new(WestChamber { delta }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::{Instant, SimRng};
    use intang_packet::{FourTuple, Ipv4Packet, TcpPacket};
    use std::net::Ipv4Addr;

    fn flow() -> FlowState {
        let tuple = FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 40_000, Ipv4Addr::new(93, 184, 216, 34), 80);
        let mut f = FlowState::new(tuple, StrategyKind::NoStrategy);
        f.hops = Some(14);
        f
    }

    fn request_seg() -> TcpRepr {
        let mut seg = TcpRepr::new(40_000, 80);
        seg.seq = 1001;
        seg.ack = 9001;
        seg.flags = TcpFlags::PSH_ACK;
        seg.payload = b"GET /ultrasurf HTTP/1.1\r\nHost: site-0.example\r\n\r\n".to_vec();
        seg
    }

    fn run_first_payload(strategy: &mut dyn Strategy, redundancy: u32) -> (Verdict, Vec<(intang_packet::Wire, u64)>) {
        let mut rng = SimRng::seed_from(7);
        let mut ctx = ShimCtx::new(Instant::ZERO, &mut rng, Ipv4Addr::new(10, 0, 0, 1), redundancy);
        let mut f = flow();
        let v = strategy.on_first_payload(&mut ctx, &mut f, &request_seg());
        (v, ctx.injections.into_iter().map(|(w, d)| (w, d.micros())).collect())
    }

    #[test]
    fn in_order_overlap_injects_matching_junk() {
        let mut s = InOrderOverlap {
            disc: Discrepancy::BadChecksum,
            delta: 2,
        };
        let (v, inj) = run_first_payload(&mut s, 3);
        assert_eq!(inj.len(), 3, "redundancy 3");
        assert!(matches!(v, Verdict::ForwardDelayed(_)));
        let ip = Ipv4Packet::new_checked(&inj[0].0[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.seq_number(), 1001, "junk sits at the request's sequence");
        assert_eq!(t.payload().len(), request_seg().payload.len());
        assert!(!t.verify_checksum(ip.src_addr(), ip.dst_addr()));
    }

    #[test]
    fn teardown_rst_uses_current_seq_and_ttl() {
        let mut s = Teardown {
            kind: InsertionKind::Rst,
            disc: Discrepancy::SmallTtl,
            delta: 2,
        };
        let (_, inj) = run_first_payload(&mut s, 1);
        let ip = Ipv4Packet::new_checked(&inj[0].0[..]).unwrap();
        assert_eq!(ip.ttl(), 12, "hops(14) - delta(2)");
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.flags(), TcpFlags::RST);
        assert_eq!(t.seq_number(), 1001);
    }

    #[test]
    fn improved_teardown_appends_desync_packet() {
        let mut s = ImprovedTeardown { delta: 2 };
        let (v, inj) = run_first_payload(&mut s, 3);
        assert_eq!(inj.len(), 4, "3 RSTs + 1 desync");
        let (desync_wire, desync_delay) = &inj[3];
        assert!(*desync_delay > inj[2].1, "desync rides after the RSTs");
        let ip = Ipv4Packet::new_checked(&desync_wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.payload().len(), 1);
        assert_eq!(t.seq_number(), 1001u32.wrapping_add(OUT_OF_WINDOW));
        assert!(t.verify_checksum(ip.src_addr(), ip.dst_addr()), "desync needs no discrepancy");
        match v {
            Verdict::ForwardDelayed(d) => assert!(d.micros() > *desync_delay),
            other => panic!("unexpected verdict {other:?}"),
        }
    }

    #[test]
    fn ooo_tcp_seg_order_real_junk_head() {
        let mut s = OutOfOrderTcpSeg;
        let (v, inj) = run_first_payload(&mut s, 1);
        assert_eq!(v, Verdict::Replace);
        assert_eq!(inj.len(), 3);
        let req = request_seg();
        let parse = |w: &[u8]| {
            let ip = Ipv4Packet::new_checked(w).unwrap();
            let t = TcpPacket::new_checked(ip.payload()).unwrap();
            (t.seq_number(), t.payload().to_vec())
        };
        let (s0, p0) = parse(&inj[0].0);
        let (s1, p1) = parse(&inj[1].0);
        let (s2, p2) = parse(&inj[2].0);
        assert_eq!(s0, 1001 + 8);
        assert_eq!(p0, &req.payload[8..], "real tail first");
        assert_eq!(s1, 1001 + 8);
        assert_ne!(p1, p0, "garbage tail second");
        assert_eq!(p1.len(), p0.len());
        assert_eq!((s2, p2.as_slice()), (1001, &req.payload[..8]), "head last");
    }

    #[test]
    fn ooo_ip_frag_produces_three_fragments() {
        let mut s = OutOfOrderIpFrag;
        let (v, inj) = run_first_payload(&mut s, 1);
        assert_eq!(v, Verdict::Replace);
        assert_eq!(inj.len(), 3);
        let frags: Vec<_> = inj
            .iter()
            .map(|(w, _)| {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                (ip.frag_offset(), ip.more_fragments(), ip.payload().to_vec())
            })
            .collect();
        assert_eq!(frags[0].0, frags[1].0, "junk and real tails share an offset");
        assert!(!frags[0].1 && !frags[1].1);
        assert_ne!(frags[0].2, frags[1].2);
        assert_eq!(frags[2].0, 0, "head fills the gap last");
        assert!(frags[2].1, "head has more-fragments set");
        // Reassembling all three LastWins (server-style) restores the real segment.
        let all: Vec<intang_packet::Wire> = inj.iter().map(|(w, _)| w.clone()).collect();
        let whole = intang_packet::frag::reassemble(intang_packet::frag::OverlapPolicy::LastWins, all).unwrap();
        let ip = Ipv4Packet::new_checked(&whole[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.payload(), &request_seg().payload[..]);
    }

    #[test]
    fn reversal_synack_is_ttl_scoped_random() {
        let mut s = TeardownTcbReversal { delta: 2 };
        let mut rng = SimRng::seed_from(3);
        let mut ctx = ShimCtx::new(Instant::ZERO, &mut rng, Ipv4Addr::new(10, 0, 0, 1), 1);
        let mut f = flow();
        let mut syn = TcpRepr::new(40_000, 80);
        syn.seq = 1000;
        syn.flags = TcpFlags::SYN;
        let v = s.on_syn(&mut ctx, &mut f, &syn);
        assert!(matches!(v, Verdict::ForwardDelayed(_)));
        let ip = Ipv4Packet::new_checked(&ctx.injections[0].0[..]).unwrap();
        assert_eq!(ip.ttl(), 12);
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.flags(), TcpFlags::SYN_ACK);
        assert_ne!(t.seq_number(), 1000);
    }

    #[test]
    fn best_disc_falls_back_without_hops() {
        let mut f = flow();
        f.hops = None;
        assert_eq!(best_disc(&f, InsertionKind::Rst), Discrepancy::Md5Option);
        assert_eq!(best_disc(&f, InsertionKind::Data), Discrepancy::Md5Option);
        assert_eq!(
            best_disc(&f, InsertionKind::Syn),
            Discrepancy::BadChecksum,
            "SYN row has no non-TTL entry"
        );
        f.hops = Some(10);
        assert_eq!(best_disc(&f, InsertionKind::Rst), Discrepancy::SmallTtl);
    }

    #[test]
    fn build_covers_every_kind() {
        use Discrepancy::*;
        for kind in [
            StrategyKind::NoStrategy,
            StrategyKind::TcbCreationSyn(SmallTtl),
            StrategyKind::OutOfOrderIpFrag,
            StrategyKind::OutOfOrderTcpSeg,
            StrategyKind::InOrderOverlap(BadAck),
            StrategyKind::TeardownRst(SmallTtl),
            StrategyKind::TeardownRstAck(BadChecksum),
            StrategyKind::TeardownFin(SmallTtl),
            StrategyKind::ImprovedTeardown,
            StrategyKind::ImprovedInOrderOverlap,
            StrategyKind::TcbCreationResyncDesync,
            StrategyKind::TeardownTcbReversal,
            StrategyKind::WestChamber,
        ] {
            assert_eq!(build(kind, 2).kind(), kind);
        }
    }
}
