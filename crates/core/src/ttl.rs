//! Hop-count estimation (§7.1): "we first measure the hop count from the
//! client to the server using a way similar as tcptraceroute. Then, we
//! subtract a small δ from the measured hop count."
//!
//! The estimator fires a burst of TTL-scoped SYN probes at the server; the
//! probe's source port encodes its TTL, so returning ICMP time-exceeded
//! messages (router hit) and SYN/ACKs (server reached) can be attributed.

use intang_netsim::{Duration, Instant};
use intang_packet::{icmp, FxHashMap, PacketBuilder, TcpFlags, Wire};
use std::net::Ipv4Addr;

/// Base source port for probes; probe with TTL `t` uses `PROBE_PORT_BASE + t`.
pub const PROBE_PORT_BASE: u16 = 61_000;

/// How long we wait for probe responses before finalizing.
pub const MEASURE_TIMEOUT: Duration = Duration::from_millis(150);

/// One in-flight measurement toward a server.
#[derive(Debug)]
pub struct Measurement {
    pub server: Ipv4Addr,
    pub port: u16,
    pub deadline: Instant,
    /// Largest TTL whose probe died at a router.
    max_router_ttl: u8,
    /// Smallest TTL whose probe reached the server (SYN/ACK came back).
    min_reach_ttl: Option<u8>,
    /// Client packets held until the measurement finishes.
    pub held: Vec<Wire>,
}

impl Measurement {
    /// Final hop estimate: the smallest TTL that reached the server, or one
    /// past the farthest router seen.
    pub fn estimate(&self) -> u8 {
        match self.min_reach_ttl {
            Some(r) => r,
            None => self.max_router_ttl.saturating_add(1).max(2),
        }
    }
}

/// The estimator: active measurements plus attribution of responses.
#[derive(Debug, Default)]
pub struct HopEstimator {
    active: FxHashMap<Ipv4Addr, Measurement>,
}

impl HopEstimator {
    pub fn new() -> HopEstimator {
        HopEstimator::default()
    }

    pub fn is_measuring(&self, server: Ipv4Addr) -> bool {
        self.active.contains_key(&server)
    }

    /// Begin measuring `server`; returns the probe burst to transmit.
    /// `first_held` is the intercepted packet that triggered the need.
    pub fn start(&mut self, client: Ipv4Addr, server: Ipv4Addr, port: u16, now: Instant, max_ttl: u8, first_held: Wire) -> Vec<Wire> {
        let m = Measurement {
            server,
            port,
            deadline: now + MEASURE_TIMEOUT,
            max_router_ttl: 0,
            min_reach_ttl: None,
            held: vec![first_held],
        };
        self.active.insert(server, m);
        (1..=max_ttl)
            .map(|ttl| {
                PacketBuilder::tcp(client, server, PROBE_PORT_BASE + u16::from(ttl), port)
                    .flags(TcpFlags::SYN)
                    .seq(0x7357_0000 | u32::from(ttl))
                    .ttl(ttl)
                    .build()
            })
            .collect()
    }

    /// Hold a further client packet behind an in-flight measurement.
    pub fn hold(&mut self, server: Ipv4Addr, wire: Wire) {
        if let Some(m) = self.active.get_mut(&server) {
            m.held.push(wire);
        }
    }

    /// Feed an ingress ICMP datagram. Returns true when it was one of our
    /// probes' time-exceeded replies (and should be consumed).
    pub fn on_icmp(&mut self, wire: &[u8]) -> bool {
        let Some((_router, quote)) = icmp::parse_time_exceeded(wire) else {
            return false;
        };
        if quote.src_port < PROBE_PORT_BASE || quote.src_port > PROBE_PORT_BASE + 64 {
            return false;
        }
        let ttl = (quote.src_port - PROBE_PORT_BASE) as u8;
        if let Some(m) = self.active.get_mut(&quote.orig_dst) {
            m.max_router_ttl = m.max_router_ttl.max(ttl);
            return true;
        }
        false
    }

    /// Feed an ingress SYN/ACK addressed to a probe port. Returns true when
    /// consumed by a measurement.
    pub fn on_probe_synack(&mut self, server: Ipv4Addr, probe_port: u16) -> bool {
        if !(PROBE_PORT_BASE..=PROBE_PORT_BASE + 64).contains(&probe_port) {
            return false;
        }
        let ttl = (probe_port - PROBE_PORT_BASE) as u8;
        if let Some(m) = self.active.get_mut(&server) {
            m.min_reach_ttl = Some(m.min_reach_ttl.map_or(ttl, |r| r.min(ttl)));
            return true;
        }
        false
    }

    /// Finalize every measurement whose deadline passed; returns
    /// `(server, hop_estimate, held_packets)` triples.
    pub fn finalize_due(&mut self, now: Instant) -> Vec<(Ipv4Addr, u8, Vec<Wire>)> {
        let due: Vec<Ipv4Addr> = self.active.iter().filter(|(_, m)| m.deadline <= now).map(|(k, _)| *k).collect();
        due.into_iter()
            .map(|server| {
                let mut m = self.active.remove(&server).expect("key just listed");
                let est = m.estimate();
                (server, est, std::mem::take(&mut m.held))
            })
            .collect()
    }

    /// Earliest pending deadline (for the shim's timer).
    pub fn next_deadline(&self) -> Option<Instant> {
        self.active.values().map(|m| m.deadline).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::{IpProtocol, Ipv4Repr, TcpRepr};

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn server() -> Ipv4Addr {
        Ipv4Addr::new(93, 184, 216, 34)
    }

    fn held() -> Wire {
        PacketBuilder::tcp(client(), server(), 40_000, 80).flags(TcpFlags::SYN).build()
    }

    #[test]
    fn probe_burst_encodes_ttl_in_port() {
        let mut e = HopEstimator::new();
        let probes = e.start(client(), server(), 80, Instant::ZERO, 12, held());
        assert_eq!(probes.len(), 12);
        for (i, p) in probes.iter().enumerate() {
            let ip = intang_packet::Ipv4Packet::new_checked(&p[..]).unwrap();
            assert_eq!(usize::from(ip.ttl()), i + 1);
            let t = intang_packet::TcpPacket::new_checked(ip.payload()).unwrap();
            assert_eq!(usize::from(t.src_port() - PROBE_PORT_BASE), i + 1);
        }
        assert!(e.is_measuring(server()));
    }

    #[test]
    fn estimate_from_icmp_only() {
        let mut e = HopEstimator::new();
        let probes = e.start(client(), server(), 80, Instant::ZERO, 12, held());
        // Routers at hops 1..=9 answered; 10+ got lost, server never reached.
        for p in &probes[..9] {
            let te = icmp::time_exceeded_for(Ipv4Addr::new(172, 16, 0, 9), p).unwrap();
            assert!(e.on_icmp(&te));
        }
        let done = e.finalize_due(Instant::ZERO + MEASURE_TIMEOUT);
        assert_eq!(done.len(), 1);
        let (srv, est, held) = &done[0];
        assert_eq!(*srv, server());
        assert_eq!(*est, 10, "one past the farthest router");
        assert_eq!(held.len(), 1);
    }

    #[test]
    fn synack_refines_estimate() {
        let mut e = HopEstimator::new();
        let _ = e.start(client(), server(), 80, Instant::ZERO, 12, held());
        assert!(e.on_probe_synack(server(), PROBE_PORT_BASE + 11));
        assert!(e.on_probe_synack(server(), PROBE_PORT_BASE + 10));
        let done = e.finalize_due(Instant::ZERO + MEASURE_TIMEOUT);
        assert_eq!(done[0].1, 10, "smallest reaching TTL wins");
    }

    #[test]
    fn unrelated_icmp_not_consumed() {
        let mut e = HopEstimator::new();
        let _ = e.start(client(), server(), 80, Instant::ZERO, 4, held());
        // A time-exceeded for an ordinary connection (non-probe port).
        let tcp = TcpRepr::new(40_000, 80);
        let ip = Ipv4Repr::new(client(), server(), IpProtocol::Tcp);
        let wire = ip.emit(&tcp.emit(client(), server()));
        let te = icmp::time_exceeded_for(Ipv4Addr::new(172, 16, 0, 1), &wire).unwrap();
        assert!(!e.on_icmp(&te));
    }

    #[test]
    fn holds_accumulate_until_finalize() {
        let mut e = HopEstimator::new();
        let _ = e.start(client(), server(), 80, Instant::ZERO, 4, held());
        e.hold(server(), held());
        e.hold(server(), held());
        assert!(e.finalize_due(Instant(1)).is_empty(), "deadline not reached");
        let done = e.finalize_due(Instant::ZERO + MEASURE_TIMEOUT);
        assert_eq!(done[0].2.len(), 3);
        assert!(!e.is_measuring(server()));
    }
}
