//! The strategy framework: per-flow state, interception verdicts, and the
//! strategy catalogue.
//!
//! INTANG dictates "specific interception points and the corresponding
//! actions to take at each point" (§6). The shim calls a strategy at three
//! points — the initial SYN, the returning SYN/ACK, and the first payload
//! (the request) — which is where every strategy in the paper acts.

use crate::insertion::Discrepancy;
use intang_netsim::{Duration, Instant, SimRng};
use intang_packet::{FourTuple, TcpRepr, Wire};
use std::net::Ipv4Addr;

/// Identifiers for every strategy the paper measures, in Table 1 / Table 4
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    NoStrategy,
    /// §3.2 TCB creation: fake SYN before the real handshake.
    TcbCreationSyn(Discrepancy),
    /// §3.2 out-of-order data overlapping via IP fragments.
    OutOfOrderIpFrag,
    /// §3.2 out-of-order data overlapping via TCP segments.
    OutOfOrderTcpSeg,
    /// §3.2 in-order data overlapping (prefill with junk).
    InOrderOverlap(Discrepancy),
    /// §3.2 TCB teardown with RST / RST-ACK / FIN.
    TeardownRst(Discrepancy),
    TeardownRstAck(Discrepancy),
    TeardownFin(Discrepancy),
    /// §7.1 improved teardown: RST + desynchronization packet.
    ImprovedTeardown,
    /// §7.1 improved in-order overlap: Table 5-safe insertion packets.
    ImprovedInOrderOverlap,
    /// §5.2 Resync+Desync (combined with TCB creation, Fig. 3).
    TcbCreationResyncDesync,
    /// §5.2 TCB reversal (combined with TCB teardown, Fig. 4).
    TeardownTcbReversal,
    /// The West Chamber Project's approach (§2.2/§9, development ceased
    /// 2011): tear the censor's TCB down *from both directions* with a
    /// client-side RST and a spoofed server-side RST. Kept as a historical
    /// baseline; the paper found it no longer effective.
    WestChamber,
}

impl StrategyKind {
    /// Short stable id (cache keys, reports).
    pub fn id(self) -> StrategyId {
        StrategyId(match self {
            StrategyKind::NoStrategy => 0,
            StrategyKind::TcbCreationSyn(Discrepancy::SmallTtl) => 1,
            StrategyKind::TcbCreationSyn(_) => 2,
            StrategyKind::OutOfOrderIpFrag => 3,
            StrategyKind::OutOfOrderTcpSeg => 4,
            StrategyKind::InOrderOverlap(Discrepancy::SmallTtl) => 5,
            StrategyKind::InOrderOverlap(Discrepancy::BadAck) => 6,
            StrategyKind::InOrderOverlap(Discrepancy::BadChecksum) => 7,
            StrategyKind::InOrderOverlap(_) => 8,
            StrategyKind::TeardownRst(Discrepancy::SmallTtl) => 9,
            StrategyKind::TeardownRst(_) => 10,
            StrategyKind::TeardownRstAck(Discrepancy::SmallTtl) => 11,
            StrategyKind::TeardownRstAck(_) => 12,
            StrategyKind::TeardownFin(Discrepancy::SmallTtl) => 13,
            StrategyKind::TeardownFin(_) => 14,
            StrategyKind::ImprovedTeardown => 15,
            StrategyKind::ImprovedInOrderOverlap => 16,
            StrategyKind::TcbCreationResyncDesync => 17,
            StrategyKind::TeardownTcbReversal => 18,
            StrategyKind::WestChamber => 19,
        })
    }

    pub fn label(self) -> String {
        match self {
            StrategyKind::NoStrategy => "no-strategy".into(),
            StrategyKind::TcbCreationSyn(d) => format!("tcb-creation-syn/{d:?}"),
            StrategyKind::OutOfOrderIpFrag => "ooo-ip-frag".into(),
            StrategyKind::OutOfOrderTcpSeg => "ooo-tcp-seg".into(),
            StrategyKind::InOrderOverlap(d) => format!("in-order-overlap/{d:?}"),
            StrategyKind::TeardownRst(d) => format!("teardown-rst/{d:?}"),
            StrategyKind::TeardownRstAck(d) => format!("teardown-rstack/{d:?}"),
            StrategyKind::TeardownFin(d) => format!("teardown-fin/{d:?}"),
            StrategyKind::ImprovedTeardown => "improved-teardown".into(),
            StrategyKind::ImprovedInOrderOverlap => "improved-in-order-overlap".into(),
            StrategyKind::TcbCreationResyncDesync => "tcb-creation+resync-desync".into(),
            StrategyKind::TeardownTcbReversal => "teardown+tcb-reversal".into(),
            StrategyKind::WestChamber => "west-chamber".into(),
        }
    }

    /// Inverse of [`StrategyKind::id`] for the persisted history format.
    pub fn from_id(id: StrategyId) -> Option<StrategyKind> {
        use Discrepancy::*;
        Some(match id.0 {
            0 => StrategyKind::NoStrategy,
            1 => StrategyKind::TcbCreationSyn(SmallTtl),
            2 => StrategyKind::TcbCreationSyn(BadChecksum),
            3 => StrategyKind::OutOfOrderIpFrag,
            4 => StrategyKind::OutOfOrderTcpSeg,
            5 => StrategyKind::InOrderOverlap(SmallTtl),
            6 => StrategyKind::InOrderOverlap(BadAck),
            7 => StrategyKind::InOrderOverlap(BadChecksum),
            8 => StrategyKind::InOrderOverlap(NoFlag),
            9 => StrategyKind::TeardownRst(SmallTtl),
            10 => StrategyKind::TeardownRst(BadChecksum),
            11 => StrategyKind::TeardownRstAck(SmallTtl),
            12 => StrategyKind::TeardownRstAck(BadChecksum),
            13 => StrategyKind::TeardownFin(SmallTtl),
            14 => StrategyKind::TeardownFin(BadChecksum),
            15 => StrategyKind::ImprovedTeardown,
            16 => StrategyKind::ImprovedInOrderOverlap,
            17 => StrategyKind::TcbCreationResyncDesync,
            18 => StrategyKind::TeardownTcbReversal,
            19 => StrategyKind::WestChamber,
            _ => return None,
        })
    }

    /// The four new/improved strategies INTANG's adaptive mode rotates
    /// through (§7.1), in priority order.
    pub fn adaptive_pool() -> [StrategyKind; 4] {
        [
            StrategyKind::ImprovedTeardown,
            StrategyKind::TeardownTcbReversal,
            StrategyKind::TcbCreationResyncDesync,
            StrategyKind::ImprovedInOrderOverlap,
        ]
    }
}

/// Compact numeric strategy id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrategyId(pub u8);

/// What the shim should do with the intercepted packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward unchanged, immediately.
    Forward,
    /// Forward after a delay (lets injected insertion packets win the race).
    ForwardDelayed(Duration),
    /// Drop the original (the strategy sent a transformed version itself).
    Replace,
}

/// Per-flow knowledge the shim tracks by watching the handshake.
#[derive(Debug)]
pub struct FlowState {
    pub tuple: FourTuple,
    pub client_isn: Option<u32>,
    pub server_isn: Option<u32>,
    pub synack_seen: bool,
    pub first_payload_sent: bool,
    /// Sequence number of the first payload segment: retransmissions of it
    /// are re-intercepted and get the same strategy treatment (netfilter
    /// sees every copy).
    pub first_payload_seq: Option<u32>,
    /// Estimated hop count to the server (whole path), if measured.
    pub hops: Option<u8>,
    /// Prefer TTL-scoped insertion packets when a hop estimate exists.
    /// Disabled on paths where the censor sits within a couple of hops of
    /// the server (inbound China paths, §7.1), where TTL scoping cannot be
    /// made safe and the MD5/timestamp discrepancies are used instead.
    pub prefer_ttl: bool,
    /// Resets observed on this flow (GFW fingerprints).
    pub resets_seen: u32,
    /// Server payload bytes seen flowing back after the request.
    pub response_bytes: u64,
    /// The outcome was already pushed into the selection history.
    pub outcome_recorded: bool,
    /// Times this flow's protection was re-applied to a retransmission
    /// (bounded by `RobustnessConfig::max_reprotects` when robustness mode
    /// is on; unbounded otherwise).
    pub reprotect_count: u32,
    pub strategy: StrategyKind,
}

impl FlowState {
    pub fn new(tuple: FourTuple, strategy: StrategyKind) -> FlowState {
        FlowState {
            tuple,
            client_isn: None,
            server_isn: None,
            synack_seen: false,
            first_payload_sent: false,
            first_payload_seq: None,
            hops: None,
            prefer_ttl: true,
            resets_seen: 0,
            response_bytes: 0,
            outcome_recorded: false,
            reprotect_count: 0,
            strategy,
        }
    }

    /// TTL that should pass the censor but die before the server
    /// (hops − δ, §7.1).
    pub fn insertion_ttl(&self, delta: u8) -> Option<u8> {
        self.hops.map(|h| h.saturating_sub(delta).max(1))
    }
}

/// Side-effect collector handed to strategies.
pub struct ShimCtx<'a> {
    pub now: Instant,
    pub rng: &'a mut SimRng,
    pub client: Ipv4Addr,
    /// Insertion redundancy: each injected packet is sent this many times,
    /// 20 ms apart (§3.4).
    pub redundancy: u32,
    /// (wire, extra delay) pairs to emit toward the server.
    pub injections: Vec<(Wire, Duration)>,
}

impl<'a> ShimCtx<'a> {
    pub fn new(now: Instant, rng: &'a mut SimRng, client: Ipv4Addr, redundancy: u32) -> ShimCtx<'a> {
        ShimCtx {
            now,
            rng,
            client,
            redundancy,
            injections: Vec::new(),
        }
    }

    /// Inject an insertion packet (with redundancy) at `base_delay`.
    pub fn inject(&mut self, wire: Wire, base_delay: Duration) {
        for i in 0..self.redundancy.max(1) {
            self.injections
                .push((wire.clone(), base_delay + Duration::from_millis(20) * u64::from(i)));
        }
    }

    /// Inject exactly once (used for packets that must not repeat).
    pub fn inject_once(&mut self, wire: Wire, base_delay: Duration) {
        self.injections.push((wire, base_delay));
    }

    /// Delay that guarantees the original follows all redundant copies.
    pub fn after_redundancy(&self) -> Duration {
        Duration::from_millis(20) * u64::from(self.redundancy.max(1) - 1) + Duration::from_millis(10)
    }
}

/// A strategy reacts to the shim's interception points.
pub trait Strategy {
    fn kind(&self) -> StrategyKind;

    /// The flow's first SYN is leaving the client.
    fn on_syn(&mut self, _ctx: &mut ShimCtx<'_>, _flow: &mut FlowState, _seg: &TcpRepr) -> Verdict {
        Verdict::Forward
    }

    /// The SYN/ACK arrived from the server (insertions rarely fire here,
    /// but strategies may take notes).
    fn on_synack(&mut self, _ctx: &mut ShimCtx<'_>, _flow: &mut FlowState, _seg: &TcpRepr) {}

    /// The first payload-bearing segment (the request) is leaving.
    fn on_first_payload(&mut self, _ctx: &mut ShimCtx<'_>, _flow: &mut FlowState, _seg: &TcpRepr) -> Verdict {
        Verdict::Forward
    }
}

/// The do-nothing baseline.
pub struct NoStrategy;

impl Strategy for NoStrategy {
    fn kind(&self) -> StrategyKind {
        StrategyKind::NoStrategy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        use Discrepancy::*;
        let all = [
            StrategyKind::NoStrategy,
            StrategyKind::TcbCreationSyn(SmallTtl),
            StrategyKind::TcbCreationSyn(BadChecksum),
            StrategyKind::OutOfOrderIpFrag,
            StrategyKind::OutOfOrderTcpSeg,
            StrategyKind::InOrderOverlap(SmallTtl),
            StrategyKind::InOrderOverlap(BadAck),
            StrategyKind::InOrderOverlap(BadChecksum),
            StrategyKind::InOrderOverlap(NoFlag),
            StrategyKind::TeardownRst(SmallTtl),
            StrategyKind::TeardownRst(BadChecksum),
            StrategyKind::TeardownRstAck(SmallTtl),
            StrategyKind::TeardownRstAck(BadChecksum),
            StrategyKind::TeardownFin(SmallTtl),
            StrategyKind::TeardownFin(BadChecksum),
            StrategyKind::ImprovedTeardown,
            StrategyKind::ImprovedInOrderOverlap,
            StrategyKind::TcbCreationResyncDesync,
            StrategyKind::TeardownTcbReversal,
        ];
        let mut ids: Vec<_> = all.iter().map(|k| k.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }

    #[test]
    fn redundancy_spacing_is_twenty_ms() {
        let mut rng = SimRng::seed_from(1);
        let mut ctx = ShimCtx::new(Instant::ZERO, &mut rng, Ipv4Addr::new(10, 0, 0, 1), 3);
        ctx.inject(vec![1, 2, 3].into(), Duration::ZERO);
        let delays: Vec<u64> = ctx.injections.iter().map(|(_, d)| d.micros()).collect();
        assert_eq!(delays, vec![0, 20_000, 40_000]);
        assert_eq!(ctx.after_redundancy(), Duration::from_millis(50));
    }

    #[test]
    fn insertion_ttl_applies_delta() {
        let tuple = FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(1, 1, 1, 1), 80);
        let mut f = FlowState::new(tuple, StrategyKind::NoStrategy);
        assert_eq!(f.insertion_ttl(2), None);
        f.hops = Some(14);
        assert_eq!(f.insertion_ttl(2), Some(12));
        f.hops = Some(2);
        assert_eq!(f.insertion_ttl(2), Some(1), "clamped to at least 1");
    }
}
