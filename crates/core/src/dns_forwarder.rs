//! The DNS forwarder (§6): intercepts the client's UDP DNS queries and
//! replays them over TCP toward an unpolluted resolver, so the TCP-level
//! evasion strategies protect name resolution too; the TCP answer is
//! converted back into a UDP response "from" the original resolver, fully
//! transparent to the application.

use intang_packet::dns::DnsMessage;
use intang_packet::{udp, IpProtocol, Ipv4Packet, Ipv4Repr, Wire};
use intang_tcpstack::{SocketHandle, StackProfile, TcpEndpoint};
use std::net::Ipv4Addr;

/// Local ports the forwarder's TCP connections use.
pub const FWD_PORT_BASE: u16 = 51_000;
pub const FWD_PORT_END: u16 = 51_999;

#[derive(Debug)]
struct Pending {
    socket: SocketHandle,
    txid: u16,
    app_port: u16,
    /// The resolver the application originally asked (the UDP reply must
    /// appear to come from it).
    orig_resolver: Ipv4Addr,
    buf: Vec<u8>,
    done: bool,
}

/// The forwarder: owns its own little TCP endpoint bound to the client's
/// address (INTANG's DNS thread uses the OS stack; the shim embeds one).
pub struct DnsForwarder {
    resolver: Ipv4Addr,
    tcp: TcpEndpoint,
    pending: Vec<Pending>,
    next_port: u16,
    pub queries_forwarded: u64,
    pub responses_delivered: u64,
}

impl DnsForwarder {
    pub fn new(client: Ipv4Addr, resolver: Ipv4Addr) -> DnsForwarder {
        DnsForwarder {
            resolver,
            tcp: TcpEndpoint::new(client, StackProfile::linux_4_4()),
            pending: Vec::new(),
            next_port: FWD_PORT_BASE,
            queries_forwarded: 0,
            responses_delivered: 0,
        }
    }

    pub fn resolver(&self) -> Ipv4Addr {
        self.resolver
    }

    /// Does this ingress TCP packet belong to the forwarder?
    pub fn owns_port(port: u16) -> bool {
        (FWD_PORT_BASE..=FWD_PORT_END).contains(&port)
    }

    /// Try to intercept an egress datagram. Returns true when it was a UDP
    /// DNS query that is now being forwarded over TCP (the original must be
    /// dropped).
    pub fn intercept_udp_query(&mut self, wire: &[u8], now_us: u64) -> bool {
        let Ok(ip) = Ipv4Packet::new_checked(wire) else { return false };
        if ip.protocol() != IpProtocol::Udp {
            return false;
        }
        let Ok(u) = udp::UdpPacket::new_checked(ip.payload()) else {
            return false;
        };
        if u.dst_port() != 53 {
            return false;
        }
        let Ok(query) = DnsMessage::decode(u.payload()) else { return false };
        if query.is_response {
            return false;
        }
        let port = self.next_port;
        self.next_port = if self.next_port >= FWD_PORT_END {
            FWD_PORT_BASE
        } else {
            self.next_port + 1
        };
        let socket = self.tcp.connect_from(port, self.resolver, 53, now_us);
        // Socket buffers the query until the handshake completes.
        self.tcp.socket(socket).send(&query.encode_tcp(), now_us);
        self.pending.push(Pending {
            socket,
            txid: query.id,
            app_port: u.src_port(),
            orig_resolver: ip.dst_addr(),
            buf: Vec::new(),
            done: false,
        });
        self.queries_forwarded += 1;
        true
    }

    /// Feed an ingress TCP packet addressed to a forwarder port.
    pub fn on_tcp_ingress(&mut self, wire: Wire, now_us: u64) {
        self.tcp.on_packet(wire, now_us);
    }

    pub fn on_timer(&mut self, now_us: u64) {
        self.tcp.on_timer(now_us);
    }

    pub fn next_deadline(&self) -> Option<u64> {
        self.tcp.next_deadline()
    }

    /// Drain (TCP egress toward the resolver, UDP responses toward the app).
    pub fn pump(&mut self, now_us: u64) -> (Vec<Wire>, Vec<Wire>) {
        let mut udp_out = Vec::new();
        let client = self.tcp.addr;
        for p in &mut self.pending {
            if p.done {
                continue;
            }
            let data = self.tcp.socket(p.socket).recv_drain();
            p.buf.extend_from_slice(&data);
            if let Ok((resp, _)) = DnsMessage::decode_tcp(&p.buf) {
                if resp.id == p.txid {
                    // Convert back to UDP, spoofing the original resolver.
                    let reply = udp::UdpRepr::new(53, p.app_port, resp.encode());
                    let ipr = Ipv4Repr::new(p.orig_resolver, client, IpProtocol::Udp);
                    udp_out.push(ipr.emit(&reply.emit(p.orig_resolver, client)).into());
                    p.done = true;
                    self.responses_delivered += 1;
                    self.tcp.socket(p.socket).close(now_us);
                }
            }
        }
        (self.tcp.poll_transmit(), udp_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::PacketBuilder;

    fn client() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn dirty_resolver() -> Ipv4Addr {
        Ipv4Addr::new(8, 8, 8, 8)
    }
    fn clean_resolver() -> Ipv4Addr {
        Ipv4Addr::new(216, 146, 35, 35)
    }

    fn udp_query(name: &str, txid: u16) -> Wire {
        let q = DnsMessage::query(txid, name);
        PacketBuilder::udp(client(), dirty_resolver(), 5353, 53, q.encode()).build()
    }

    #[test]
    fn intercepts_only_udp_dns_queries() {
        let mut f = DnsForwarder::new(client(), clean_resolver());
        assert!(f.intercept_udp_query(&udp_query("www.dropbox.com", 7), 0));
        // Not DNS: different port.
        let other = PacketBuilder::udp(client(), dirty_resolver(), 5353, 123, b"ntp".to_vec()).build();
        assert!(!f.intercept_udp_query(&other, 0));
        // TCP is never intercepted here.
        let tcp = PacketBuilder::tcp(client(), dirty_resolver(), 5353, 53).build();
        assert!(!f.intercept_udp_query(&tcp, 0));
        assert_eq!(f.queries_forwarded, 1);
    }

    #[test]
    fn full_udp_to_tcp_round_trip() {
        // Forwarder on one side, a real TCP endpoint acting as resolver on
        // the other; shuttle packets by hand.
        let mut f = DnsForwarder::new(client(), clean_resolver());
        assert!(f.intercept_udp_query(&udp_query("www.dropbox.com", 0x77), 0));

        let mut resolver = TcpEndpoint::new(clean_resolver(), StackProfile::linux_4_4());
        resolver.listen(53);
        let mut resolver_conns: Vec<SocketHandle> = Vec::new();
        let mut udp_replies = Vec::new();
        for round in 0..20u64 {
            let now = round * 10_000;
            let (tcp_out, udp_out) = f.pump(now);
            udp_replies.extend(udp_out);
            for w in tcp_out {
                resolver.on_packet(w, now);
            }
            resolver_conns.extend(resolver.take_accepted());
            for &h in &resolver_conns {
                let data = resolver.socket(h).recv_drain();
                if !data.is_empty() {
                    if let Ok((q, _)) = DnsMessage::decode_tcp(&data) {
                        let a = DnsMessage::answer_a(&q, Ipv4Addr::new(162, 125, 2, 1), 60);
                        resolver.socket(h).send(&a.encode_tcp(), now);
                    }
                }
            }
            for w in resolver.poll_transmit() {
                if let Some(t) = intang_packet::four_tuple_of(&w) {
                    assert!(DnsForwarder::owns_port(t.dst_port));
                }
                f.on_tcp_ingress(w, now);
            }
        }
        assert_eq!(udp_replies.len(), 1, "exactly one UDP response synthesized");
        let ip = Ipv4Packet::new_checked(&udp_replies[0][..]).unwrap();
        assert_eq!(ip.src_addr(), dirty_resolver(), "reply spoofs the original resolver");
        assert_eq!(ip.dst_addr(), client());
        let u = udp::UdpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(u.dst_port(), 5353);
        let msg = DnsMessage::decode(u.payload()).unwrap();
        assert_eq!(msg.id, 0x77);
        assert_eq!(msg.answers[0].addr, Ipv4Addr::new(162, 125, 2, 1));
        assert_eq!(f.responses_delivered, 1);
    }
}
