//! Adaptive strategy selection from historical outcomes (§6): INTANG
//! "chooses the most promising strategy based on historical measurement
//! results to a particular server IP address" and converges on the best
//! one — the "INTANG performance" row of Table 4.

use crate::strategy::StrategyKind;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Attempt/success counters for one (server, strategy) pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tally {
    pub attempts: u32,
    pub successes: u32,
}

impl Tally {
    pub fn rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            f64::from(self.successes) / f64::from(self.attempts)
        }
    }
}

/// Per-destination strategy history.
#[derive(Debug, Default)]
pub struct History {
    per_server: HashMap<Ipv4Addr, HashMap<StrategyKind, Tally>>,
}

impl History {
    pub fn new() -> History {
        History::default()
    }

    /// Pick a strategy for `server` from `pool` (priority-ordered):
    /// 1. any pool strategy not yet attempted, in pool order;
    /// 2. otherwise the one with the best success rate so far, preferring
    ///    earlier pool entries on ties.
    pub fn choose(&self, server: Ipv4Addr, pool: &[StrategyKind]) -> StrategyKind {
        let Some(tallies) = self.per_server.get(&server) else {
            return pool[0];
        };
        for &k in pool {
            if tallies.get(&k).map_or(0, |t| t.attempts) == 0 {
                return k;
            }
        }
        let mut best = pool[0];
        let mut best_rate = -1.0f64;
        for &k in pool {
            let r = tallies.get(&k).copied().unwrap_or_default().rate();
            if r > best_rate {
                best = k;
                best_rate = r;
            }
        }
        best
    }

    pub fn record(&mut self, server: Ipv4Addr, kind: StrategyKind, success: bool) {
        let t = self.per_server.entry(server).or_default().entry(kind).or_default();
        t.attempts += 1;
        if success {
            t.successes += 1;
        }
    }

    pub fn tally(&self, server: Ipv4Addr, kind: StrategyKind) -> Tally {
        self.per_server.get(&server).and_then(|m| m.get(&kind)).copied().unwrap_or_default()
    }

    pub fn servers_seen(&self) -> usize {
        self.per_server.len()
    }

    // ------------------------------------------------------------------
    // Persistence (the paper's Redis store survives restarts; we persist
    // to a line-oriented text format: `ip strategy-id attempts successes`).
    // ------------------------------------------------------------------

    /// Serialize to the persistence format, sorted for determinism.
    pub fn serialize(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (server, tallies) in &self.per_server {
            for (kind, t) in tallies {
                lines.push(format!("{} {} {} {}", server, kind.id().0, t.attempts, t.successes));
            }
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Parse the persistence format. Unknown strategy ids and malformed
    /// lines are skipped (forward compatibility).
    pub fn deserialize(text: &str) -> History {
        let mut h = History::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let (Some(ip), Some(id), Some(att), Some(succ)) = (parts.next(), parts.next(), parts.next(), parts.next()) else {
                continue;
            };
            let (Ok(ip), Ok(id), Ok(attempts), Ok(successes)) =
                (ip.parse::<Ipv4Addr>(), id.parse::<u8>(), att.parse::<u32>(), succ.parse::<u32>())
            else {
                continue;
            };
            let Some(kind) = StrategyKind::from_id(crate::strategy::StrategyId(id)) else {
                continue;
            };
            h.per_server.entry(ip).or_default().insert(kind, Tally { attempts, successes });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv() -> Ipv4Addr {
        Ipv4Addr::new(93, 184, 216, 34)
    }

    #[test]
    fn fresh_server_gets_pool_head() {
        let h = History::new();
        let pool = StrategyKind::adaptive_pool();
        assert_eq!(h.choose(srv(), &pool), pool[0]);
    }

    #[test]
    fn untried_strategies_explored_in_order() {
        let mut h = History::new();
        let pool = StrategyKind::adaptive_pool();
        h.record(srv(), pool[0], false);
        assert_eq!(h.choose(srv(), &pool), pool[1]);
        h.record(srv(), pool[1], false);
        h.record(srv(), pool[2], false);
        assert_eq!(h.choose(srv(), &pool), pool[3]);
    }

    #[test]
    fn converges_on_the_best_rate() {
        let mut h = History::new();
        let pool = StrategyKind::adaptive_pool();
        // Everything attempted; pool[2] clearly wins.
        for &k in &pool {
            h.record(srv(), k, false);
        }
        h.record(srv(), pool[2], true);
        h.record(srv(), pool[2], true);
        h.record(srv(), pool[0], true);
        h.record(srv(), pool[0], false);
        // pool[2]: 2/3 ≈ 0.67; pool[0]: 1/3 ≈ 0.33.
        assert_eq!(h.choose(srv(), &pool), pool[2]);
    }

    #[test]
    fn persistence_round_trip() {
        let mut h = History::new();
        let pool = StrategyKind::adaptive_pool();
        h.record(srv(), pool[0], true);
        h.record(srv(), pool[0], false);
        h.record(srv(), pool[2], true);
        h.record(Ipv4Addr::new(1, 2, 3, 4), pool[1], false);
        let text = h.serialize();
        let back = History::deserialize(&text);
        assert_eq!(back.servers_seen(), 2);
        assert_eq!(back.tally(srv(), pool[0]).attempts, 2);
        assert_eq!(back.tally(srv(), pool[0]).successes, 1);
        assert_eq!(back.tally(srv(), pool[2]).successes, 1);
        assert_eq!(back.serialize(), text, "canonical form is stable");
    }

    #[test]
    fn deserialize_skips_garbage_lines() {
        let text = "not an ip 1 2 3\n1.2.3.4 200 1 1\n1.2.3.4 15 4 3\nshort\n";
        let h = History::deserialize(text);
        assert_eq!(h.servers_seen(), 1);
        assert_eq!(h.tally(Ipv4Addr::new(1, 2, 3, 4), StrategyKind::ImprovedTeardown).successes, 3);
    }

    #[test]
    fn id_round_trip_covers_every_strategy() {
        for raw in 0u8..=19 {
            let kind = StrategyKind::from_id(crate::strategy::StrategyId(raw)).unwrap();
            assert_eq!(kind.id().0, raw);
        }
        assert!(StrategyKind::from_id(crate::strategy::StrategyId(20)).is_none());
    }

    #[test]
    fn histories_are_per_server() {
        let mut h = History::new();
        let other = Ipv4Addr::new(1, 2, 3, 4);
        let pool = StrategyKind::adaptive_pool();
        h.record(srv(), pool[0], false);
        assert_eq!(h.choose(other, &pool), pool[0], "other server unaffected");
        assert_eq!(h.servers_seen(), 1);
        assert_eq!(h.tally(srv(), pool[0]).attempts, 1);
    }
}
