//! INTANG's two-level cache (§6): a transient LRU in front of a persistent
//! TTL key-value store (the paper uses an in-process linked-list/hash LRU
//! in front of Redis; the store here is the in-memory equivalent with the
//! same observable semantics — persistence across connections, key expiry).

use intang_packet::FxHashMap;
use std::hash::Hash;

/// A classic LRU cache over a `HashMap` + recency list.
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    map: FxHashMap<K, V>,
    /// Most-recent last.
    order: Vec<K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LruCache {
            capacity,
            map: FxHashMap::default(),
            order: Vec::new(),
        }
    }

    pub fn get(&mut self, k: &K) -> Option<&V> {
        if self.map.contains_key(k) {
            self.touch(k);
            self.map.get(k)
        } else {
            None
        }
    }

    pub fn put(&mut self, k: K, v: V) {
        if self.map.insert(k.clone(), v).is_none() && self.map.len() > self.capacity {
            let evict = self.order.remove(0);
            self.map.remove(&evict);
        }
        self.touch(&k);
    }

    pub fn remove(&mut self, k: &K) -> Option<V> {
        self.order.retain(|x| x != k);
        self.map.remove(k)
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, k: &K) {
        self.order.retain(|x| x != k);
        self.order.push(k.clone());
    }
}

/// A key-value store whose entries expire after a per-entry TTL, measured
/// in simulation microseconds.
#[derive(Debug)]
pub struct TtlStore<K: Eq + Hash + Clone, V> {
    map: FxHashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> Default for TtlStore<K, V> {
    fn default() -> Self {
        TtlStore { map: FxHashMap::default() }
    }
}

impl<K: Eq + Hash + Clone, V> TtlStore<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn put(&mut self, k: K, v: V, now_us: u64, ttl_us: u64) {
        self.map.insert(k, (v, now_us.saturating_add(ttl_us)));
    }

    pub fn get(&mut self, k: &K, now_us: u64) -> Option<&V> {
        let expired = matches!(self.map.get(k), Some((_, exp)) if *exp <= now_us);
        if expired {
            self.map.remove(k);
            return None;
        }
        self.map.get(k).map(|(v, _)| v)
    }

    pub fn remove(&mut self, k: &K) -> Option<V> {
        self.map.remove(k).map(|(v, _)| v)
    }

    pub fn clear(&mut self) {
        self.map.clear();
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The layered cache: LRU hits avoid the (conceptually remote) store.
///
/// ```
/// use intang_core::cache::TwoLevelCache;
///
/// let mut c: TwoLevelCache<&str, u32> = TwoLevelCache::new(8);
/// c.put("hops:1.2.3.4", 14, /*now_us=*/0, /*ttl_us=*/1_000_000);
/// assert_eq!(c.get(&"hops:1.2.3.4", 10), Some(14));
/// assert_eq!(c.get(&"hops:1.2.3.4", 2_000_000), None, "expired");
/// ```
#[derive(Debug)]
pub struct TwoLevelCache<K: Eq + Hash + Clone, V: Clone> {
    /// Front entries carry their expiry so a front hit still honors TTLs.
    front: LruCache<K, (V, u64)>,
    back: TtlStore<K, V>,
    pub front_hits: u64,
    pub back_hits: u64,
    pub misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> TwoLevelCache<K, V> {
    pub fn new(front_capacity: usize) -> Self {
        TwoLevelCache {
            front: LruCache::new(front_capacity),
            back: TtlStore::new(),
            front_hits: 0,
            back_hits: 0,
            misses: 0,
        }
    }

    pub fn get(&mut self, k: &K, now_us: u64) -> Option<V> {
        match self.front.get(k) {
            Some((v, exp)) if *exp > now_us => {
                self.front_hits += 1;
                return Some(v.clone());
            }
            Some(_) => {
                self.front.remove(k); // expired in the front too
            }
            None => {}
        }
        if let Some(v) = self.back.get(k, now_us).cloned() {
            self.back_hits += 1;
            // Re-learn the expiry lazily: conservative re-promotion with a
            // short front lifetime keyed off the store's own check.
            self.front.put(k.clone(), (v.clone(), now_us.saturating_add(FRONT_REPROMOTE_US)));
            return Some(v);
        }
        self.misses += 1;
        None
    }

    pub fn put(&mut self, k: K, v: V, now_us: u64, ttl_us: u64) {
        self.front.put(k.clone(), (v.clone(), now_us.saturating_add(ttl_us)));
        self.back.put(k, v, now_us, ttl_us);
    }

    /// Drop one key from both levels — a suspected-stale entry (e.g. a hop
    /// estimate contradicted by censor resets) is re-measured on next use.
    pub fn invalidate(&mut self, k: &K) {
        self.front.remove(k);
        self.back.remove(k);
    }

    /// Drop everything — the paper's response to a route change is to
    /// distrust every previously measured TTL distance (§7.1).
    pub fn clear(&mut self) {
        self.front.clear();
        self.back.clear();
    }
}

/// Lifetime of re-promoted front entries: long enough to absorb a burst of
/// lookups, short enough that the store's TTL stays authoritative.
const FRONT_REPROMOTE_US: u64 = 5_000_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a
        c.put("c", 3); // evicts b
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_update_does_not_grow() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("a", 9);
        c.put("b", 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&9));
    }

    #[test]
    fn ttl_store_expires() {
        let mut s = TtlStore::new();
        s.put("k", 5, 1_000, 500);
        assert_eq!(s.get(&"k", 1_200), Some(&5));
        assert_eq!(s.get(&"k", 1_501), None);
        assert_eq!(s.len(), 0, "expired entries pruned on read");
    }

    #[test]
    fn two_level_promotes_to_front() {
        let mut c: TwoLevelCache<&str, u32> = TwoLevelCache::new(4);
        c.put("x", 7, 0, 1_000_000);
        assert_eq!(c.get(&"x", 10), Some(7));
        assert_eq!(c.front_hits, 1);
        // Drop the front entry by filling the LRU.
        for (i, k) in ["a", "b", "c", "d"].iter().enumerate() {
            c.put(k, i as u32, 10, 1_000_000);
        }
        assert_eq!(c.get(&"x", 20), Some(7));
        assert_eq!(c.back_hits, 1, "served from the store and re-promoted");
        assert_eq!(c.get(&"nope", 20), None);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn two_level_honors_expiry() {
        let mut c: TwoLevelCache<u8, u8> = TwoLevelCache::new(1);
        c.put(1, 1, 0, 100);
        c.put(2, 2, 0, 100); // evicts key 1 from the front
        assert_eq!(c.get(&1, 200), None, "store entry expired");
    }
}
