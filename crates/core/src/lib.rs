//! # intang-core — INTANG
//!
//! The paper's contribution: a client-side, measurement-driven censorship
//! evasion engine (§6). It runs as an interception shim on the client host
//! (the simulator's stand-in for netfilter-queue + raw sockets) and
//! implements:
//!
//! * every **evasion strategy** the paper measures — the existing ones of
//!   §3.2 (TCB creation with SYN, out-of-order and in-order data
//!   overlapping, TCB teardown with RST / RST-ACK / FIN), the improved
//!   variants of §7.1, the new strategies of §5.2 (Resync+Desync, TCB
//!   Reversal) and the combined strategies of Fig. 3 / Fig. 4;
//! * **insertion-packet crafting** under the Table 5 policy (TTL, MD5
//!   option, bad ACK, old timestamp, bad checksum, no-flag), with
//!   configurable redundancy (×3 with 20 ms gaps, §3.4);
//! * **hop-count estimation** à la tcptraceroute for TTL-scoped insertion
//!   packets (δ = 2 heuristic, §7.1);
//! * a **two-level cache** (transient LRU in front of a TTL key-value
//!   store — the paper's in-memory LRU + Redis, §6);
//! * **adaptive strategy selection** from per-destination historical
//!   outcomes (the "INTANG performance" row of Table 4);
//! * the **DNS-over-TCP forwarder** that converts UDP DNS queries into
//!   evasion-protected TCP queries against a clean resolver (§6, Table 6).

pub mod cache;
pub mod dns_forwarder;
pub mod engine;
pub mod insertion;
pub mod measure;
pub mod select;
pub mod strategies;
pub mod strategy;
pub mod ttl;

pub use engine::{IntangConfig, IntangElement, IntangHandle, IntangStats, RobustnessConfig};
pub use insertion::{Discrepancy, InsertionKind};
pub use strategy::{StrategyId, StrategyKind};
