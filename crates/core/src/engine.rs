//! The INTANG engine: a netsim element sitting immediately next to the
//! client host (the simulator's netfilter-queue stand-in). It intercepts
//! every egress and ingress packet, applies the active strategy's actions,
//! runs hop measurements, forwards DNS, classifies incoming resets, and
//! feeds outcomes back into the per-destination history.

use crate::cache::TwoLevelCache;
use crate::dns_forwarder::DnsForwarder;
use crate::measure::{classify_flags, ResetSignature};
use crate::select::History;
use crate::strategies;
use crate::strategy::{FlowState, ShimCtx, Strategy, StrategyKind, Verdict};
use crate::ttl::HopEstimator;
use intang_netsim::{Ctx, Direction, Duration, Element, Instant};
use intang_packet::{FourTuple, FxHashMap, IpProtocol, Ipv4Packet, TcpPacket, TcpRepr, Wire};
use intang_telemetry::{span, Counter, GaugeId, GaugeSample, MetricsSheet, SpanId};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

const TOKEN_MEASURE: u64 = 1;
const TOKEN_FWD: u64 = 2;

/// Cached hop estimates live this long (the paper's cache entries expire
/// to track route changes).
const HOPS_CACHE_TTL_US: u64 = 120 * 1_000_000;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct IntangConfig {
    /// Fixed strategy, or `None` for adaptive selection over
    /// [`StrategyKind::adaptive_pool`] (the "INTANG performance" mode).
    pub strategy: Option<StrategyKind>,
    /// Copies per insertion packet, 20 ms apart (§3.4 uses 3).
    pub redundancy: u32,
    /// δ subtracted from the hop estimate for TTL-scoped insertions (§7.1).
    pub delta: u8,
    /// Iteratively adapt δ per destination from observed outcomes (§7.1:
    /// "INTANG can iteratively change this to converge to a good value"):
    /// a failure *with* censor resets means the insertion died before the
    /// censor (δ too large → decrease); a silent failure means it may have
    /// hit the server or a server-side middlebox (δ too small → increase).
    pub adaptive_delta: bool,
    /// Measure hop counts with a probe burst before the first connection
    /// to a new destination.
    pub measure_hops: bool,
    /// Prefer TTL-scoped insertions when a hop estimate exists (§7.1: on
    /// inbound paths where censor and server are within a few hops, TTL
    /// scoping is hopeless and INTANG leans on MD5/timestamp/bad-checksum
    /// discrepancies instead).
    pub prefer_ttl: bool,
    pub max_probe_ttl: u8,
    /// Forward UDP DNS over TCP to this clean resolver (§6).
    pub dns_forward: Option<Ipv4Addr>,
    /// Robustness mode for hostile paths (fault-injection runs set this):
    /// retransmission-aware re-protection with bounded retry + backoff, and
    /// TTL re-probing after route disturbance. `None` keeps the legacy
    /// behavior exactly — unbounded first-payload re-protection, no SYN
    /// re-protection, no backoff — so fault-free runs are byte-identical.
    pub robustness: Option<RobustnessConfig>,
    /// Number of independent draw/learning lanes. 1 (the default) is the
    /// exact legacy shim: strategy randomness from the simulation RNG, δ
    /// overrides shared per destination. Values > 1 give each address-pair
    /// lane ([`intang_packet::pair_shard`]) its own RNG stream and scope
    /// the §7.1 δ learning to `(lane, destination)` — the shim-side half
    /// of the sharded state that lets a metropolis world split into
    /// parallel event domains byte-identically.
    pub state_shards: u32,
    /// Base seed for the per-lane RNG streams (used when
    /// `state_shards > 1`).
    pub shard_seed: u64,
}

/// Knobs for the engine's fault-tolerance responses.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessConfig {
    /// Re-apply `on_syn` protection when the client stack retransmits its
    /// SYN (the original insertions may have been lost with it).
    pub reprotect_syn: bool,
    /// Re-protections allowed per flow; beyond this the retransmission is
    /// forwarded unprotected (retry abandoned — better a censored attempt
    /// than an insertion storm on a collapsed path).
    pub max_reprotects: u32,
    /// Linear backoff: re-protection `n` delays its insertions by `n ×
    /// backoff`, giving a congested path room before the next volley.
    pub backoff: Duration,
    /// On a pre-request censor reset, invalidate the destination's cached
    /// hop estimate: the TTL-scoped insertion evidently died short of the
    /// censor, which after a route flap means the estimate is stale.
    pub reprobe_on_reset: bool,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            reprotect_syn: true,
            max_reprotects: 4,
            backoff: Duration::from_millis(15),
            reprobe_on_reset: true,
        }
    }
}

impl Default for IntangConfig {
    fn default() -> Self {
        IntangConfig {
            strategy: None,
            redundancy: 3,
            delta: 2,
            adaptive_delta: true,
            measure_hops: true,
            prefer_ttl: true,
            max_probe_ttl: 24,
            dns_forward: None,
            robustness: None,
            state_shards: 1,
            shard_seed: 0,
        }
    }
}

impl IntangConfig {
    pub fn fixed(kind: StrategyKind) -> IntangConfig {
        IntangConfig {
            strategy: Some(kind),
            ..IntangConfig::default()
        }
    }
}

/// Observable engine counters.
#[derive(Debug, Default, Clone)]
pub struct IntangStats {
    pub insertions_sent: u64,
    pub probes_sent: u64,
    pub type1_resets_seen: u64,
    pub type2_resets_seen: u64,
    /// Censor-signature resets on tracked flows before the first request
    /// payload went out (the §5 "reset before request" window).
    pub resets_pre_request: u64,
    /// Censor-signature resets on tracked flows after the request.
    pub resets_post_request: u64,
    pub flows: u64,
    pub successes: u64,
    pub failures: u64,
    /// Robustness mode: retransmissions whose protection was re-applied.
    pub reprotects: u64,
    /// Robustness mode: retransmissions forwarded unprotected because the
    /// flow exhausted its re-protection budget.
    pub retries_abandoned: u64,
    /// Hop-estimate invalidations (route-change notifications and
    /// reset-triggered re-probes).
    pub ttl_reprobes: u64,
}

struct Shim {
    cfg: IntangConfig,
    flows: FxHashMap<FourTuple, (FlowState, Box<dyn Strategy>)>,
    estimator: HopEstimator,
    hops_cache: TwoLevelCache<Ipv4Addr, u8>,
    history: Rc<RefCell<History>>,
    fwd: Option<DnsForwarder>,
    stats: IntangStats,
    /// Per-lane RNG streams when `cfg.state_shards > 1`; empty in the
    /// legacy single-lane shim (draws come from the simulation RNG).
    shard_rngs: Vec<intang_netsim::SimRng>,
    /// Per-`(lane, destination)` δ overrides learned by the §7.1
    /// iteration. The lane is always 0 in the legacy shim, so the scoping
    /// is invisible there.
    delta_overrides: FxHashMap<(u32, Ipv4Addr), u8>,
    /// Per-flow strategy presets registered before the flow's first SYN
    /// (metropolis load generators draw a strategy per flow). Consumed on
    /// flow creation; `cfg.strategy` / the adaptive history otherwise.
    strategy_presets: FxHashMap<FourTuple, StrategyKind>,
    /// Scratch repr reused by `process_egress` (no steady-state parse
    /// allocations).
    rx_seg: TcpRepr,
}

/// The element.
pub struct IntangElement {
    shim: Rc<RefCell<Shim>>,
}

/// Inspection handle shared with tests and experiment harnesses.
#[derive(Clone)]
pub struct IntangHandle {
    shim: Rc<RefCell<Shim>>,
}

impl IntangElement {
    pub fn new(client: Ipv4Addr, cfg: IntangConfig) -> (IntangElement, IntangHandle) {
        IntangElement::with_history(client, cfg, Rc::new(RefCell::new(History::new())))
    }

    /// Share a [`History`] across engines (successive trials toward the
    /// same servers — how the adaptive mode converges).
    pub fn with_history(client: Ipv4Addr, cfg: IntangConfig, history: Rc<RefCell<History>>) -> (IntangElement, IntangHandle) {
        let fwd = cfg.dns_forward.map(|resolver| DnsForwarder::new(client, resolver));
        let shard_rngs = if cfg.state_shards > 1 {
            (0..cfg.state_shards)
                .map(|i| intang_netsim::SimRng::seed_from(intang_netsim::rng::lane_seed(cfg.shard_seed, i)))
                .collect()
        } else {
            Vec::new()
        };
        let shim = Rc::new(RefCell::new(Shim {
            cfg,
            flows: FxHashMap::default(),
            estimator: HopEstimator::new(),
            hops_cache: TwoLevelCache::new(64),
            history,
            fwd,
            stats: IntangStats::default(),
            shard_rngs,
            delta_overrides: FxHashMap::default(),
            strategy_presets: FxHashMap::default(),
            rx_seg: TcpRepr::new(0, 0),
        }));
        (IntangElement { shim: shim.clone() }, IntangHandle { shim })
    }
}

impl IntangHandle {
    pub fn stats(&self) -> IntangStats {
        self.shim.borrow().stats.clone()
    }

    pub fn hops_to(&self, server: Ipv4Addr) -> Option<u8> {
        // Inspection accessor: read as of "the beginning of time" so that
        // any entry that was ever written is visible regardless of expiry.
        let mut s = self.shim.borrow_mut();
        s.hops_cache.get(&server, 0)
    }

    pub fn history(&self) -> Rc<RefCell<History>> {
        self.shim.borrow().history.clone()
    }

    pub fn strategy_of(&self, tuple: FourTuple) -> Option<StrategyKind> {
        self.shim.borrow().flows.get(&tuple).map(|(f, _)| f.strategy)
    }

    pub fn dns_queries_forwarded(&self) -> u64 {
        self.shim.borrow().fwd.as_ref().map_or(0, |f| f.queries_forwarded)
    }

    pub fn dns_responses_delivered(&self) -> u64 {
        self.shim.borrow().fwd.as_ref().map_or(0, |f| f.responses_delivered)
    }

    /// Drop one flow's strategy state (and any unconsumed preset). Called
    /// by metropolis load generators when a flow retires; without it a
    /// million-flow run would hold per-flow state for every flow ever
    /// spawned.
    pub fn retire_flow(&self, tuple: FourTuple) {
        let mut s = self.shim.borrow_mut();
        s.flows.remove(&tuple);
        s.strategy_presets.remove(&tuple);
    }

    /// Pre-register the strategy one specific flow will use, overriding
    /// `cfg.strategy` and the adaptive history for that flow only. Must be
    /// called before the flow's first SYN crosses the shim; the preset is
    /// consumed at flow creation.
    pub fn preset_strategy(&self, tuple: FourTuple, kind: StrategyKind) {
        self.shim.borrow_mut().strategy_presets.insert(tuple, kind);
    }

    /// Pre-seed a hop estimate (used by tests and by experiments that model
    /// a warmed-up cache).
    pub fn seed_hops(&self, server: Ipv4Addr, hops: u8) {
        let mut s = self.shim.borrow_mut();
        s.hops_cache.put(server, hops, 0, u64::MAX / 2);
    }

    /// The learned per-destination δ, if the §7.1 iteration adjusted it.
    /// Sharded shims scope learning per lane; this reads the lane a flow
    /// from `client` to `server` would use.
    pub fn delta_for_pair(&self, client: Ipv4Addr, server: Ipv4Addr) -> Option<u8> {
        let s = self.shim.borrow();
        let lane = s.lane_of(client, server);
        s.delta_overrides.get(&(lane, server)).copied()
    }

    /// The learned per-destination δ in the legacy single-lane shim.
    pub fn delta_for(&self, server: Ipv4Addr) -> Option<u8> {
        self.shim.borrow().delta_overrides.get(&(0, server)).copied()
    }

    /// A route change was observed (e.g. a fault-plan route flap): every
    /// cached TTL distance is now suspect, so drop the whole hop cache. The
    /// next flow per destination re-probes (§7.1: "routes are dynamic and
    /// could change unexpectedly", invalidating measured TTLs).
    pub fn notify_route_change(&self) {
        let mut s = self.shim.borrow_mut();
        s.hops_cache.clear();
        s.stats.ttl_reprobes += 1;
    }
}

impl Element for IntangElement {
    fn name(&self) -> &str {
        "INTANG"
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        let s = &self.shim.borrow().stats;
        m.add(Counter::IntangInsertionsSent, s.insertions_sent);
        m.add(Counter::IntangProbesSent, s.probes_sent);
        m.add(Counter::IntangType1ResetsSeen, s.type1_resets_seen);
        m.add(Counter::IntangType2ResetsSeen, s.type2_resets_seen);
        m.add(Counter::IntangResetsPreRequest, s.resets_pre_request);
        m.add(Counter::IntangResetsPostRequest, s.resets_post_request);
        m.add(Counter::IntangFlows, s.flows);
        m.add(Counter::IntangReprotects, s.reprotects);
        m.add(Counter::IntangRetriesAbandoned, s.retries_abandoned);
        m.add(Counter::IntangTtlReprobes, s.ttl_reprobes);
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        g.add(GaugeId::IntangFlows, self.shim.borrow().flows.len() as u64);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        let _s = span(SpanId::Intang);
        let mut shim = self.shim.borrow_mut();
        match dir {
            Direction::ToServer => shim.process_egress(ctx, wire),
            Direction::ToClient => shim.process_ingress(ctx, wire),
        }
        shim.arm_timers(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _s = span(SpanId::Intang);
        let mut shim = self.shim.borrow_mut();
        match token {
            TOKEN_MEASURE => {
                let done = shim.estimator.finalize_due(ctx.now);
                for (server, hops, held) in done {
                    shim.hops_cache.put(server, hops, ctx.now.micros(), HOPS_CACHE_TTL_US);
                    for wire in held {
                        shim.process_egress(ctx, wire);
                    }
                }
            }
            TOKEN_FWD => {
                if let Some(fwd) = shim.fwd.as_mut() {
                    fwd.on_timer(ctx.now.micros());
                }
                shim.pump_forwarder(ctx);
            }
            _ => {}
        }
        shim.arm_timers(ctx);
    }
}

impl Shim {
    /// The draw/learning lane of a `(client, server)` pair: 0 in the
    /// legacy shim, `pair_shard` otherwise — the same partition the
    /// sharded censor uses, so a lane never spans event domains.
    fn lane_of(&self, a: Ipv4Addr, b: Ipv4Addr) -> u32 {
        if self.shard_rngs.is_empty() {
            0
        } else {
            intang_packet::pair_shard(a, b, self.cfg.state_shards)
        }
    }

    fn arm_timers(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(t) = self.estimator.next_deadline() {
            ctx.set_timer(t, TOKEN_MEASURE);
        }
        if let Some(t) = self.fwd.as_ref().and_then(DnsForwarder::next_deadline) {
            ctx.set_timer(Instant(t.max(ctx.now.micros() + 1)), TOKEN_FWD);
        }
    }

    /// Route the forwarder's queued output onto the wire: its TCP segments
    /// go through the normal egress pipeline (so strategies protect them),
    /// its synthesized UDP responses go back to the client.
    fn pump_forwarder(&mut self, ctx: &mut Ctx<'_>) {
        let Some(fwd) = self.fwd.as_mut() else { return };
        let (tcp_out, udp_out) = fwd.pump(ctx.now.micros());
        for w in udp_out {
            ctx.send(Direction::ToClient, w);
        }
        for w in tcp_out {
            self.process_egress(ctx, w);
        }
    }

    // ------------------------------------------------------------------
    // Egress: the strategy pipeline.
    // ------------------------------------------------------------------
    fn process_egress(&mut self, ctx: &mut Ctx<'_>, wire: Wire) {
        // DNS forwarding first: UDP queries become TCP flows.
        if self.fwd.is_some() {
            let intercepted = self
                .fwd
                .as_mut()
                .expect("checked above")
                .intercept_udp_query(&wire, ctx.now.micros());
            if intercepted {
                self.pump_forwarder(ctx);
                return;
            }
        }

        let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else {
            ctx.send(Direction::ToServer, wire);
            return;
        };
        if ip.protocol() != IpProtocol::Tcp || ip.is_fragment() {
            ctx.send(Direction::ToServer, wire);
            return;
        }
        let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else {
            ctx.send(Direction::ToServer, wire);
            return;
        };
        let server = ip.dst_addr();
        let tuple = FourTuple::new(ip.src_addr(), tcp.src_port(), server, tcp.dst_port());
        // Scratch-parse (no steady-state allocation); the repr is moved out
        // and back so `&seg` can ride along `&mut self` through the
        // strategy calls.
        let mut seg = std::mem::replace(&mut self.rx_seg, TcpRepr::new(0, 0));
        TcpRepr::parse_into(&tcp, &mut seg);
        self.egress_segment(ctx, wire, &seg, tuple, server);
        self.rx_seg = seg;
    }

    /// The strategy pipeline for one parsed client->server TCP segment.
    fn egress_segment(&mut self, ctx: &mut Ctx<'_>, wire: Wire, seg: &TcpRepr, tuple: FourTuple, server: Ipv4Addr) {
        let lane = self.lane_of(tuple.src, server);
        // New flow bookkeeping: choose a strategy on the first SYN.
        if !self.flows.contains_key(&tuple) && seg.flags.syn() && !seg.flags.ack() {
            let kind = self
                .strategy_presets
                .remove(&tuple)
                .or(self.cfg.strategy)
                .unwrap_or_else(|| self.history.borrow().choose(server, &StrategyKind::adaptive_pool()));
            let mut flow = FlowState::new(tuple, kind);
            flow.prefer_ttl = self.cfg.prefer_ttl;
            let delta = self.delta_overrides.get(&(lane, server)).copied().unwrap_or(self.cfg.delta);
            let strat = strategies::build(kind, delta);
            self.flows.insert(tuple, (flow, strat));
            self.stats.flows += 1;
        }

        // Hop measurement gate: flows whose strategy wants TTL scoping wait
        // for an estimate.
        if self.cfg.measure_hops && self.flows.contains_key(&tuple) {
            let have = self.flows.get(&tuple).expect("checked").0.hops.is_some();
            if !have {
                if let Some(h) = self.hops_cache.get(&server, ctx.now.micros()) {
                    self.flows.get_mut(&tuple).expect("checked").0.hops = Some(h);
                } else if self.estimator.is_measuring(server) {
                    self.estimator.hold(server, wire);
                    return;
                } else {
                    let probes = self
                        .estimator
                        .start(tuple.src, server, seg.dst_port, ctx.now, self.cfg.max_probe_ttl, wire);
                    self.stats.probes_sent += probes.len() as u64;
                    for p in probes {
                        ctx.send(Direction::ToServer, p);
                    }
                    return;
                }
            }
        }

        let Some((flow, strat)) = self.flows.get_mut(&tuple) else {
            // Untracked traffic (probe RST cleanups, mid-flow packets from
            // before the shim attached): pass through.
            ctx.send(Direction::ToServer, wire);
            return;
        };

        let robust = self.cfg.robustness.clone();
        // Extra delay applied to this round of insertions (robustness-mode
        // linear backoff on re-protected retransmissions; ZERO otherwise).
        let mut backoff_extra = Duration::ZERO;
        let (verdict, injections) = {
            // Keyed on the flow's own source address, not the element-wide
            // `client`: in metropolis mode one shim fronts many client
            // addresses, and injections must be forged as the flow's owner.
            let rng = if self.shard_rngs.is_empty() {
                &mut *ctx.rng
            } else {
                &mut self.shard_rngs[lane as usize]
            };
            let mut sctx = ShimCtx::new(ctx.now, rng, tuple.src, self.cfg.redundancy);
            let verdict = if seg.flags.syn() && !seg.flags.ack() && flow.client_isn.is_none() {
                flow.client_isn = Some(seg.seq);
                strat.on_syn(&mut sctx, flow, seg)
            } else if seg.flags.syn()
                && !seg.flags.ack()
                && flow.client_isn == Some(seg.seq)
                && robust.as_ref().is_some_and(|r| r.reprotect_syn)
            {
                // Robustness: the client stack retransmitted its SYN, so the
                // insertions sent alongside the original likely died on the
                // same loss burst — re-protect, within budget.
                let r = robust.as_ref().expect("guard checked");
                if flow.reprotect_count < r.max_reprotects {
                    flow.reprotect_count += 1;
                    self.stats.reprotects += 1;
                    backoff_extra = r.backoff * u64::from(flow.reprotect_count);
                    strat.on_syn(&mut sctx, flow, seg)
                } else {
                    self.stats.retries_abandoned += 1;
                    Verdict::Forward
                }
            } else if !seg.payload.is_empty() && (!flow.first_payload_sent || flow.first_payload_seq == Some(seg.seq)) {
                // First request — or an RTO retransmission of it, which the
                // shim re-protects like the original (bounded and backed off
                // in robustness mode, unbounded otherwise).
                let retransmission = flow.first_payload_sent;
                let budget_left = robust.as_ref().is_none_or(|r| flow.reprotect_count < r.max_reprotects);
                if retransmission && !budget_left {
                    self.stats.retries_abandoned += 1;
                    Verdict::Forward
                } else {
                    if retransmission {
                        if let Some(r) = robust.as_ref() {
                            flow.reprotect_count += 1;
                            self.stats.reprotects += 1;
                            backoff_extra = r.backoff * u64::from(flow.reprotect_count);
                        }
                    }
                    flow.first_payload_sent = true;
                    flow.first_payload_seq = Some(seg.seq);
                    strat.on_first_payload(&mut sctx, flow, seg)
                }
            } else {
                Verdict::Forward
            };
            (verdict, sctx.injections)
        };
        self.stats.insertions_sent += injections.len() as u64;
        for (w, d) in injections {
            ctx.send_delayed(Direction::ToServer, w, d + backoff_extra);
        }
        match verdict {
            Verdict::Forward => ctx.send(Direction::ToServer, wire),
            Verdict::ForwardDelayed(d) => ctx.send_delayed(Direction::ToServer, wire, d),
            Verdict::Replace => {}
        }
    }

    // ------------------------------------------------------------------
    // Ingress: measurement, classification, forwarder routing.
    // ------------------------------------------------------------------
    fn process_ingress(&mut self, ctx: &mut Ctx<'_>, wire: Wire) {
        let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else {
            ctx.send(Direction::ToClient, wire);
            return;
        };
        match ip.protocol() {
            IpProtocol::Icmp => {
                if self.estimator.on_icmp(&wire) {
                    return; // consumed by the measurement
                }
                ctx.send(Direction::ToClient, wire);
            }
            IpProtocol::Tcp => {
                let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else {
                    ctx.send(Direction::ToClient, wire);
                    return;
                };
                let dst_port = tcp.dst_port();
                // Probe SYN/ACKs refine hop estimates (and pass through; the
                // client stack answers them with an RST, cleaning up the
                // server's half-open socket).
                if tcp.flags().syn() && tcp.flags().ack() {
                    self.estimator.on_probe_synack(ip.src_addr(), dst_port);
                }
                // Forwarder flows are terminated here, not at the client.
                if DnsForwarder::owns_port(dst_port) {
                    if let Some(fwd) = self.fwd.as_mut() {
                        fwd.on_tcp_ingress(wire, ctx.now.micros());
                        self.pump_forwarder(ctx);
                        return;
                    }
                }
                // Flow bookkeeping + reset classification.
                let tuple = FourTuple::new(ip.dst_addr(), dst_port, ip.src_addr(), tcp.src_port());
                let seg_flags = tcp.flags();
                let payload_len = tcp.payload().len() as u64;
                if let Some(sig) = classify_flags(seg_flags) {
                    match sig {
                        ResetSignature::Type1Rst => self.stats.type1_resets_seen += 1,
                        ResetSignature::Type2RstAck => self.stats.type2_resets_seen += 1,
                    }
                }
                let lane = self.lane_of(tuple.src, tuple.dst);
                let mut reprobe: Option<Ipv4Addr> = None;
                if let Some((flow, strat)) = self.flows.get_mut(&tuple) {
                    if seg_flags.syn() && seg_flags.ack() {
                        flow.synack_seen = true;
                        flow.server_isn = Some(tcp.seq_number());
                        let seg = TcpRepr::parse(&tcp);
                        let rng = if self.shard_rngs.is_empty() {
                            &mut *ctx.rng
                        } else {
                            &mut self.shard_rngs[lane as usize]
                        };
                        let mut sctx = ShimCtx::new(ctx.now, rng, tuple.src, self.cfg.redundancy);
                        strat.on_synack(&mut sctx, flow, &seg);
                        for (w, d) in std::mem::take(&mut sctx.injections) {
                            ctx.send_delayed(Direction::ToServer, w, d);
                        }
                    }
                    if classify_flags(seg_flags).is_some() {
                        flow.resets_seen += 1;
                        if flow.first_payload_sent {
                            self.stats.resets_post_request += 1;
                        } else {
                            self.stats.resets_pre_request += 1;
                            // Robustness: a pre-request censor reset means
                            // the TTL-scoped insertion died short of the
                            // censor — after a route flap that is the
                            // signature of a stale hop estimate, so drop it
                            // and re-measure on the next flow.
                            if self.cfg.robustness.as_ref().is_some_and(|r| r.reprobe_on_reset) && flow.hops.is_some() {
                                reprobe = Some(tuple.dst);
                            }
                        }
                        if !flow.outcome_recorded && flow.first_payload_sent {
                            flow.outcome_recorded = true;
                            self.stats.failures += 1;
                            self.history.borrow_mut().record(tuple.dst, flow.strategy, false);
                            // §7.1 δ iteration: censor resets arrived, so
                            // the TTL-scoped insertion likely expired short
                            // of the censor — let it travel one hop farther
                            // next time.
                            if self.cfg.adaptive_delta && self.cfg.prefer_ttl && flow.hops.is_some() {
                                let d = self.delta_overrides.entry((lane, tuple.dst)).or_insert(self.cfg.delta);
                                *d = d.saturating_sub(1);
                            }
                        }
                    } else if payload_len > 0 {
                        flow.response_bytes += payload_len;
                        if !flow.outcome_recorded && flow.first_payload_sent {
                            flow.outcome_recorded = true;
                            self.stats.successes += 1;
                            self.history.borrow_mut().record(tuple.dst, flow.strategy, true);
                        }
                    }
                }
                if let Some(dst) = reprobe {
                    self.hops_cache.invalidate(&dst);
                    self.stats.ttl_reprobes += 1;
                }
                ctx.send(Direction::ToClient, wire);
            }
            _ => ctx.send(Direction::ToClient, wire),
        }
    }
}
