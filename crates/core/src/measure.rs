//! Reset fingerprinting: INTANG's measurement module classifies incoming
//! resets so the selector can attribute failures (§2.1, §6). INTANG never
//! sees the censor's internals — only wire observables.

use intang_packet::{Ipv4Packet, TcpFlags, TcpPacket};

/// What kind of censor injection a received segment looks like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetSignature {
    /// Bare RST: the type-1 signature.
    Type1Rst,
    /// RST/ACK: the type-2 signature.
    Type2RstAck,
}

/// Classify a raw ingress datagram. Returns `None` for anything that isn't
/// an RST-family segment.
pub fn classify_wire(wire: &[u8]) -> Option<ResetSignature> {
    let ip = Ipv4Packet::new_checked(wire).ok()?;
    let tcp = TcpPacket::new_checked(ip.payload()).ok()?;
    classify_flags(tcp.flags())
}

pub fn classify_flags(flags: TcpFlags) -> Option<ResetSignature> {
    if flags.rst() && flags.ack() {
        Some(ResetSignature::Type2RstAck)
    } else if flags.rst() {
        Some(ResetSignature::Type1Rst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::PacketBuilder;
    use std::net::Ipv4Addr;

    #[test]
    fn classifies_reset_families() {
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let b = Ipv4Addr::new(2, 2, 2, 2);
        let rst = PacketBuilder::tcp(a, b, 80, 4000).flags(TcpFlags::RST).build();
        assert_eq!(classify_wire(&rst), Some(ResetSignature::Type1Rst));
        let rstack = PacketBuilder::tcp(a, b, 80, 4000).flags(TcpFlags::RST_ACK).build();
        assert_eq!(classify_wire(&rstack), Some(ResetSignature::Type2RstAck));
        let data = PacketBuilder::tcp(a, b, 80, 4000).flags(TcpFlags::PSH_ACK).payload(b"x").build();
        assert_eq!(classify_wire(&data), None);
        assert_eq!(classify_wire(&[1, 2, 3]), None);
    }
}
