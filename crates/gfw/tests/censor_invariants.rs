//! Property-based invariants of the censor model.

use intang_gfw::tcb::CensorTcb;
use intang_gfw::dpi::{Automaton, RuleSet};
use intang_tcpstack::reasm::SegmentOverlapPolicy;
use proptest::prelude::*;
use std::net::Ipv4Addr;

#[test]
fn syn_flood_evicts_oldest_tcbs() {
    use intang_gfw::{GfwConfig, GfwElement};
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
    use intang_packet::{FourTuple, PacketBuilder, TcpFlags};

    let mut cfg = GfwConfig::evolved().deterministic();
    cfg.max_tcbs = 64;
    let mut sim = Simulation::new(4);
    sim.add_element(Box::new(PassThrough::new("a")));
    sim.add_link(Link::new(Duration::from_micros(10), 0));
    let (el, handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(el));
    sim.add_link(Link::new(Duration::from_micros(10), 0));
    sim.add_element(Box::new(PassThrough::new("b")));

    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(203, 0, 113, 9);
    // The victim flow, then a flood of 200 other flows.
    let victim = PacketBuilder::tcp(client, server, 40_000, 80).seq(1_000).flags(TcpFlags::SYN).build();
    sim.inject_at(0, Direction::ToServer, victim, Instant(0));
    for i in 0..200u16 {
        let syn = PacketBuilder::tcp(client, server, 50_000 + i, 80).seq(5).flags(TcpFlags::SYN).build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(1_000 + u64::from(i)));
    }
    sim.run_to_quiescence(10_000);
    assert_eq!(handle.tcb_count(), 64, "table capped");
    let victim_tuple = FourTuple::new(client, 40_000, server, 80);
    assert!(!handle.has_tcb(victim_tuple), "the oldest (victim) TCB was evicted");
    // The evicted flow's keyword now sails past the censor — the §2.1 cost
    // pressure is itself an evasion surface.
    let req = PacketBuilder::tcp(client, server, 40_000, 80)
        .seq(1_001)
        .ack(1)
        .flags(TcpFlags::PSH_ACK)
        .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
        .build();
    sim.inject_at(0, Direction::ToServer, req, Instant(1_000_000));
    sim.run_to_quiescence(1_000);
    assert!(!handle.detected_any());
}

fn aut() -> Automaton {
    Automaton::build(&RuleSet::paper_default())
}

fn fresh_tcb() -> CensorTcb {
    CensorTcb::from_syn(
        (Ipv4Addr::new(10, 0, 0, 1), 40_000),
        (Ipv4Addr::new(203, 0, 113, 9), 80),
        1_000,
        SegmentOverlapPolicy::FirstWins,
    )
}

/// Alphabet that can spell the keyword, so clean streams are adversarial.
fn keyword_soup() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            Just(b'u'), Just(b'l'), Just(b't'), Just(b'r'),
            Just(b'a'), Just(b's'), Just(b'f'), Just(b' '),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false positives: a stream without any rule pattern never
    /// triggers, regardless of segmentation.
    #[test]
    fn clean_streams_never_detected(soup in keyword_soup(), cuts in prop::collection::vec(1usize..40, 0..5)) {
        prop_assume!(!soup.windows(9).any(|w| w == b"ultrasurf"));
        // Also avoid accidental domain patterns (impossible with this
        // alphabet, but keep the guard honest).
        let a = aut();
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        let mut offset = 0usize;
        let mut pieces: Vec<&[u8]> = Vec::new();
        let mut rest: &[u8] = &soup;
        for &c in &cuts {
            if c < rest.len() {
                let (head, tail) = rest.split_at(c);
                pieces.push(head);
                rest = tail;
            }
        }
        pieces.push(rest);
        for p in pieces {
            let hits = tcb.feed_client_data(&a, base.wrapping_add(offset as u32), p, true, true);
            prop_assert!(hits.is_empty(), "false positive on clean data");
            offset += p.len();
        }
    }

    /// No false negatives: the keyword embedded at any position, delivered
    /// under any in-order segmentation, is always detected by the type-2
    /// pipeline.
    #[test]
    fn keyword_always_detected_in_order(
        prefix in keyword_soup(),
        suffix in keyword_soup(),
        cut_seed in any::<u64>(),
    ) {
        let mut stream = prefix.clone();
        stream.extend_from_slice(b"ultrasurf");
        stream.extend_from_slice(&suffix);
        let a = aut();
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        // Deterministic pseudo-random segmentation.
        let mut hits = Vec::new();
        let mut pos = 0usize;
        let mut x = cut_seed | 1;
        while pos < stream.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let take = 1 + (x as usize % 17).min(stream.len() - pos - 1).max(0);
            let seg = &stream[pos..pos + take];
            hits.extend(tcb.feed_client_data(&a, base.wrapping_add(pos as u32), seg, false, true));
            pos += take;
        }
        prop_assert!(!hits.is_empty(), "keyword missed under segmentation");
    }

    /// The desynchronization invariant (§5.1): once re-anchored at an
    /// out-of-window point, NO data at the original sequence range is ever
    /// inspected again.
    #[test]
    fn desync_blinds_the_censor_forever(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..6),
        bogus_offset in 0x0010_0000u32..0x4000_0000,
    ) {
        let a = aut();
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        tcb.resync_to(base.wrapping_add(bogus_offset));
        let mut offset = 0u32;
        for p in &payloads {
            let hits = tcb.feed_client_data(&a, base.wrapping_add(offset), b"ultrasurf", true, true);
            prop_assert!(hits.is_empty(), "desynced censor saw original-window data");
            offset = offset.wrapping_add(p.len() as u32);
        }
    }

    /// Type-1's weakness is structural: any split of the keyword across
    /// two in-order packets evades the per-packet scanner.
    #[test]
    fn type1_always_misses_split_keyword(cut in 1usize..9) {
        let a = aut();
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        let kw = b"ultrasurf";
        let h1 = tcb.feed_client_data(&a, base, &kw[..cut], true, false);
        let h2 = tcb.feed_client_data(&a, base.wrapping_add(cut as u32), &kw[cut..], true, false);
        prop_assert!(h1.is_empty() && h2.is_empty());
        // ...while type-2 reassembly catches the identical delivery.
        let mut tcb2 = fresh_tcb();
        let base2 = tcb2.stream_base;
        let g1 = tcb2.feed_client_data(&a, base2, &kw[..cut], false, true);
        let g2 = tcb2.feed_client_data(&a, base2.wrapping_add(cut as u32), &kw[cut..], false, true);
        prop_assert!(!(g1.is_empty() && g2.is_empty()));
    }
}
