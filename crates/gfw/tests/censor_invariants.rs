//! Property-based invariants of the censor model (hand-rolled deterministic
//! case generation — the build environment has no registry access, so no
//! proptest).

use intang_gfw::dpi::{Automaton, RuleSet};
use intang_gfw::tcb::CensorTcb;
use intang_tcpstack::reasm::SegmentOverlapPolicy;
use std::net::Ipv4Addr;

#[test]
fn syn_flood_evicts_oldest_tcbs() {
    use intang_gfw::{GfwConfig, GfwElement};
    use intang_netsim::element::PassThrough;
    use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
    use intang_packet::{FourTuple, PacketBuilder, TcpFlags};

    let mut cfg = GfwConfig::evolved().deterministic();
    cfg.max_tcbs = 64;
    let mut sim = Simulation::new(4);
    sim.add_element(Box::new(PassThrough::new("a")));
    sim.add_link(Link::new(Duration::from_micros(10), 0));
    let (el, handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(el));
    sim.add_link(Link::new(Duration::from_micros(10), 0));
    sim.add_element(Box::new(PassThrough::new("b")));

    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(203, 0, 113, 9);
    // The victim flow, then a flood of 200 other flows.
    let victim = PacketBuilder::tcp(client, server, 40_000, 80)
        .seq(1_000)
        .flags(TcpFlags::SYN)
        .build();
    sim.inject_at(0, Direction::ToServer, victim, Instant(0));
    for i in 0..200u16 {
        let syn = PacketBuilder::tcp(client, server, 50_000 + i, 80)
            .seq(5)
            .flags(TcpFlags::SYN)
            .build();
        sim.inject_at(0, Direction::ToServer, syn, Instant(1_000 + u64::from(i)));
    }
    sim.run_to_quiescence(10_000);
    assert_eq!(handle.tcb_count(), 64, "table capped");
    let victim_tuple = FourTuple::new(client, 40_000, server, 80);
    assert!(!handle.has_tcb(victim_tuple), "the oldest (victim) TCB was evicted");
    // The evicted flow's keyword now sails past the censor — the §2.1 cost
    // pressure is itself an evasion surface.
    let req = PacketBuilder::tcp(client, server, 40_000, 80)
        .seq(1_001)
        .ack(1)
        .flags(TcpFlags::PSH_ACK)
        .payload(b"GET /ultrasurf HTTP/1.1\r\n\r\n")
        .build();
    sim.inject_at(0, Direction::ToServer, req, Instant(1_000_000));
    sim.run_to_quiescence(1_000);
    assert!(!handle.detected_any());
}

fn aut() -> Automaton {
    Automaton::build(&RuleSet::paper_default())
}

fn fresh_tcb() -> CensorTcb {
    CensorTcb::from_syn(
        (Ipv4Addr::new(10, 0, 0, 1), 40_000),
        (Ipv4Addr::new(203, 0, 113, 9), 80),
        1_000,
        SegmentOverlapPolicy::FirstWins,
    )
}

/// Deterministic SplitMix64 case generator.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed ^ 0x5851_f42d_4c95_7f2d)
    }
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.u64() % n as u64) as usize
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

/// Alphabet that can spell the keyword, so clean streams are adversarial.
fn keyword_soup(g: &mut Gen, max: usize) -> Vec<u8> {
    let alphabet = b"ultrasf ";
    (0..g.below(max)).map(|_| alphabet[g.below(alphabet.len())]).collect()
}

/// No false positives: a stream without any rule pattern never triggers,
/// regardless of segmentation.
#[test]
fn clean_streams_never_detected() {
    let a = aut();
    let mut g = Gen::new(11);
    let mut cases = 0;
    while cases < 64 {
        let soup = keyword_soup(&mut g, 200);
        if soup.windows(9).any(|w| w == b"ultrasurf") {
            continue; // the rare hot sample: skip, like prop_assume!
        }
        cases += 1;
        let cuts: Vec<usize> = (0..g.below(5)).map(|_| g.range(1, 40)).collect();
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        let mut offset = 0usize;
        let mut pieces: Vec<&[u8]> = Vec::new();
        let mut rest: &[u8] = &soup;
        for &c in &cuts {
            if c < rest.len() {
                let (head, tail) = rest.split_at(c);
                pieces.push(head);
                rest = tail;
            }
        }
        pieces.push(rest);
        for p in pieces {
            let hits = tcb.feed_client_data(&a, base.wrapping_add(offset as u32), p, true, true);
            assert!(hits.is_empty(), "false positive on clean data");
            offset += p.len();
        }
    }
}

/// No false negatives: the keyword embedded at any position, delivered
/// under any in-order segmentation, is always detected by the type-2
/// pipeline.
#[test]
fn keyword_always_detected_in_order() {
    let a = aut();
    let mut g = Gen::new(12);
    for _ in 0..64 {
        let prefix = keyword_soup(&mut g, 200);
        let suffix = keyword_soup(&mut g, 200);
        let cut_seed = g.u64();
        let mut stream = prefix.clone();
        stream.extend_from_slice(b"ultrasurf");
        stream.extend_from_slice(&suffix);
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        // Deterministic pseudo-random segmentation.
        let mut hits = Vec::new();
        let mut pos = 0usize;
        let mut x = cut_seed | 1;
        while pos < stream.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let take = 1 + (x as usize % 17).min(stream.len() - pos - 1);
            let seg = &stream[pos..pos + take];
            hits.extend(tcb.feed_client_data(&a, base.wrapping_add(pos as u32), seg, false, true));
            pos += take;
        }
        assert!(!hits.is_empty(), "keyword missed under segmentation");
    }
}

/// The desynchronization invariant (§5.1): once re-anchored at an
/// out-of-window point, NO data at the original sequence range is ever
/// inspected again.
#[test]
fn desync_blinds_the_censor_forever() {
    let a = aut();
    let mut g = Gen::new(13);
    for _ in 0..64 {
        let payload_count = g.range(1, 6);
        let payload_lens: Vec<usize> = (0..payload_count).map(|_| g.range(1, 64)).collect();
        let bogus_offset = 0x0010_0000 + (g.u64() % u64::from(0x4000_0000u32 - 0x0010_0000)) as u32;
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        tcb.resync_to(base.wrapping_add(bogus_offset));
        let mut offset = 0u32;
        for len in payload_lens {
            let hits = tcb.feed_client_data(&a, base.wrapping_add(offset), b"ultrasurf", true, true);
            assert!(hits.is_empty(), "desynced censor saw original-window data");
            offset = offset.wrapping_add(len as u32);
        }
    }
}

/// Type-1's weakness is structural: any split of the keyword across two
/// in-order packets evades the per-packet scanner.
#[test]
fn type1_always_misses_split_keyword() {
    let a = aut();
    for cut in 1usize..9 {
        let mut tcb = fresh_tcb();
        let base = tcb.stream_base;
        let kw = b"ultrasurf";
        let h1 = tcb.feed_client_data(&a, base, &kw[..cut], true, false);
        let h2 = tcb.feed_client_data(&a, base.wrapping_add(cut as u32), &kw[cut..], true, false);
        assert!(h1.is_empty() && h2.is_empty());
        // ...while type-2 reassembly catches the identical delivery.
        let mut tcb2 = fresh_tcb();
        let base2 = tcb2.stream_base;
        let g1 = tcb2.feed_client_data(&a, base2, &kw[..cut], false, true);
        let g2 = tcb2.feed_client_data(&a, base2.wrapping_add(cut as u32), &kw[cut..], false, true);
        assert!(!(g1.is_empty() && g2.is_empty()));
    }
}
