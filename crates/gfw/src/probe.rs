//! Active probing of suspected Tor bridges (§7.3).
//!
//! When the DPI engine fingerprints a Tor handshake, the censor launches a
//! prober — a separate host in its address pool — that connects to the
//! suspected bridge, speaks the Tor protocol, and on confirmation blocks
//! the bridge **IP** outright (all ports; the paper observes this is more
//! aggressive than the port-level blocking previously reported).
//!
//! The prober here is a miniature TCP client driven entirely by the packets
//! the tap sees flowing past it: its SYN is injected toward the server, the
//! SYN/ACK addressed to the prober IP is observed on the way back, the
//! handshake completes, a Tor client-hello is sent, and a Tor server-hello
//! confirms the bridge.

use crate::dpi::TOR_FINGERPRINT;
use intang_packet::{FxHashMap, FxHashSet, IpProtocol, Ipv4Repr, TcpFlags, TcpRepr, Wire};
use std::net::Ipv4Addr;

/// Reply a Tor bridge sends to a valid client hello (what the prober
/// checks for).
pub const TOR_SERVER_HELLO: &[u8] = b"\x16\x03\x03TOR-SERVER-HELLO";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeState {
    SynSent,
    HelloSent,
}

#[derive(Debug)]
struct Probe {
    state: ProbeState,
    prober: (Ipv4Addr, u16),
    target: (Ipv4Addr, u16),
    iss: u32,
}

/// The active-probing subsystem: outstanding probes plus the IP block list
/// they feed.
#[derive(Debug, Default)]
pub struct ActiveProber {
    probes: FxHashMap<(Ipv4Addr, u16), Probe>,
    /// Bridges already probed (do not re-probe).
    probed: FxHashSet<(Ipv4Addr, u16)>,
    /// Confirmed bridges: blocked at the IP level.
    pub blocked_ips: FxHashSet<Ipv4Addr>,
    next_port: u16,
    next_prober: u8,
}

impl ActiveProber {
    pub fn new() -> ActiveProber {
        ActiveProber {
            next_port: 33_000,
            next_prober: 1,
            ..ActiveProber::default()
        }
    }

    pub fn is_blocked(&self, ip: Ipv4Addr) -> bool {
        self.blocked_ips.contains(&ip)
    }

    pub fn probes_launched(&self) -> usize {
        self.probed.len()
    }

    /// A Tor fingerprint was seen toward `target`. Returns the SYN to
    /// inject (toward the server side) if a new probe should start.
    pub fn on_tor_fingerprint(&mut self, target: (Ipv4Addr, u16)) -> Option<Wire> {
        if self.probed.contains(&target) || self.blocked_ips.contains(&target.0) {
            return None;
        }
        self.probed.insert(target);
        let prober_ip = Ipv4Addr::new(202, 108, 0, self.next_prober);
        self.next_prober = self.next_prober.wrapping_add(1).max(1);
        let port = self.next_port;
        self.next_port = self.next_port.wrapping_add(1).max(33_000);
        let iss = 0x6000_0000 ^ (u32::from(port) << 8);
        let probe = Probe {
            state: ProbeState::SynSent,
            prober: (prober_ip, port),
            target,
            iss,
        };
        let mut syn = TcpRepr::new(port, target.1);
        syn.seq = iss;
        syn.flags = TcpFlags::SYN;
        syn.options.push(intang_packet::TcpOption::Mss(1460));
        let ip = Ipv4Repr::new(prober_ip, target.0, IpProtocol::Tcp);
        let wire = intang_packet::wire::emit_tcp(&ip, &syn);
        self.probes.insert(target, probe);
        Some(wire)
    }

    /// A packet addressed to one of our prober IPs passed the tap.
    /// Returns packets to inject toward the server, and sets the block
    /// flag when a bridge confirms.
    pub fn on_packet_to_prober(&mut self, src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), seg: &TcpRepr) -> Vec<Wire> {
        let Some(probe) = self.probes.get_mut(&src) else {
            return Vec::new();
        };
        if probe.prober != dst {
            return Vec::new();
        }
        let mut out = Vec::new();
        match probe.state {
            ProbeState::SynSent => {
                if seg.flags.syn() && seg.flags.ack() && seg.ack == probe.iss.wrapping_add(1) {
                    // Complete the handshake and send the Tor client hello.
                    let mut ack = TcpRepr::new(probe.prober.1, probe.target.1);
                    ack.seq = probe.iss.wrapping_add(1);
                    ack.ack = seg.seq.wrapping_add(1);
                    ack.flags = TcpFlags::ACK;
                    let ip = Ipv4Repr::new(probe.prober.0, probe.target.0, IpProtocol::Tcp);
                    out.push(intang_packet::wire::emit_tcp(&ip, &ack));

                    let mut hello = TcpRepr::new(probe.prober.1, probe.target.1);
                    hello.seq = probe.iss.wrapping_add(1);
                    hello.ack = seg.seq.wrapping_add(1);
                    hello.flags = TcpFlags::PSH_ACK;
                    hello.payload = TOR_FINGERPRINT.to_vec();
                    let ip = Ipv4Repr::new(probe.prober.0, probe.target.0, IpProtocol::Tcp);
                    out.push(intang_packet::wire::emit_tcp(&ip, &hello));
                    probe.state = ProbeState::HelloSent;
                }
            }
            ProbeState::HelloSent => {
                if !seg.payload.is_empty() && seg.payload.windows(TOR_SERVER_HELLO.len()).any(|w| w == TOR_SERVER_HELLO) {
                    // Confirmed: block the bridge IP, drop probe state.
                    let ip = probe.target.0;
                    self.probes.remove(&src);
                    self.blocked_ips.insert(ip);
                }
            }
        }
        out
    }

    /// Is this destination one of our prober endpoints? (Used by the tap to
    /// route returning packets into the probe logic.)
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        self.probes.values().any(|p| p.prober.0 == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::{Ipv4Packet, TcpPacket};

    fn bridge() -> (Ipv4Addr, u16) {
        (Ipv4Addr::new(54, 12, 9, 3), 443)
    }

    #[test]
    fn full_probe_confirms_and_blocks() {
        let mut p = ActiveProber::new();
        let syn_wire = p.on_tor_fingerprint(bridge()).expect("probe starts");
        let ip = Ipv4Packet::new_checked(&syn_wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(t.flags().syn());
        assert_eq!(ip.dst_addr(), bridge().0);
        let prober = (ip.src_addr(), t.src_port());
        assert!(p.owns(prober.0));

        // Bridge SYN/ACK comes back past the tap.
        let mut synack = TcpRepr::new(bridge().1, prober.1);
        synack.seq = 9_000;
        synack.ack = t.seq_number().wrapping_add(1);
        synack.flags = TcpFlags::SYN_ACK;
        let out = p.on_packet_to_prober(bridge(), prober, &synack);
        assert_eq!(out.len(), 2, "ACK + Tor hello injected");
        assert!(!p.is_blocked(bridge().0), "not yet confirmed");

        // Bridge answers with a Tor server hello.
        let mut resp = TcpRepr::new(bridge().1, prober.1);
        resp.flags = TcpFlags::PSH_ACK;
        resp.payload = TOR_SERVER_HELLO.to_vec();
        let out = p.on_packet_to_prober(bridge(), prober, &resp);
        assert!(out.is_empty());
        assert!(p.is_blocked(bridge().0), "bridge IP blocked after confirmation");
    }

    #[test]
    fn probe_emissions_have_fresh_checksums() {
        // Regression guard: the prober's SYN, handshake ACK and Tor hello
        // are all forged packets — each must carry checksums computed from
        // its final field values (`refresh_checksums` must be a no-op).
        let mut p = ActiveProber::new();
        let syn_wire = p.on_tor_fingerprint(bridge()).unwrap();
        let ip = Ipv4Packet::new_checked(&syn_wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        let prober = (ip.src_addr(), t.src_port());
        let mut synack = TcpRepr::new(bridge().1, prober.1);
        synack.seq = 9_000;
        synack.ack = t.seq_number().wrapping_add(1);
        synack.flags = TcpFlags::SYN_ACK;
        let mut wires = vec![syn_wire];
        wires.extend(p.on_packet_to_prober(bridge(), prober, &synack));
        assert_eq!(wires.len(), 3, "SYN + ACK + Tor hello");
        for w in &wires {
            let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
            assert!(ip.verify_header_checksum(), "IP checksum stale on {w:?}");
            let t = TcpPacket::new_checked(ip.payload()).unwrap();
            assert!(t.verify_checksum(ip.src_addr(), ip.dst_addr()), "TCP checksum stale on {w:?}");
            let mut refreshed = w.to_vec();
            assert!(intang_packet::refresh_checksums(&mut refreshed));
            assert_eq!(refreshed, w.to_vec(), "refresh must be a no-op on fresh packets");
        }
    }

    #[test]
    fn bridge_is_probed_only_once() {
        let mut p = ActiveProber::new();
        assert!(p.on_tor_fingerprint(bridge()).is_some());
        assert!(p.on_tor_fingerprint(bridge()).is_none());
        assert_eq!(p.probes_launched(), 1);
    }

    #[test]
    fn non_tor_response_does_not_block() {
        let mut p = ActiveProber::new();
        let syn_wire = p.on_tor_fingerprint(bridge()).unwrap();
        let ip = Ipv4Packet::new_checked(&syn_wire[..]).unwrap();
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        let prober = (ip.src_addr(), t.src_port());
        let mut synack = TcpRepr::new(bridge().1, prober.1);
        synack.seq = 1;
        synack.ack = t.seq_number().wrapping_add(1);
        synack.flags = TcpFlags::SYN_ACK;
        p.on_packet_to_prober(bridge(), prober, &synack);
        let mut resp = TcpRepr::new(bridge().1, prober.1);
        resp.flags = TcpFlags::PSH_ACK;
        resp.payload = b"HTTP/1.1 200 OK\r\n\r\n".to_vec();
        p.on_packet_to_prober(bridge(), prober, &resp);
        assert!(!p.is_blocked(bridge().0), "an ordinary web server is left alone");
    }
}
