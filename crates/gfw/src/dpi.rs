//! Deep packet inspection: a streaming Aho–Corasick keyword engine plus the
//! paper's rule categories (HTTP keywords, DNS domains, Tor and OpenVPN
//! handshake fingerprints).
//!
//! The matcher is *streaming*: its state survives across segment
//! boundaries, so a sensitive keyword split in half across two TCP packets
//! is still detected once both halves are reassembled in order — the probe
//! the paper uses in §4 to refute the "stateless mode" hypothesis (2).

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// What a matched rule means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectionKind {
    /// Sensitive HTTP keyword (the paper uses `ultrasurf`).
    HttpKeyword,
    /// Blacklisted domain name (DNS request censoring, UDP or TCP).
    Domain,
    /// Tor protocol fingerprint (leads to active probing, §7.3).
    TorHandshake,
    /// OpenVPN-over-TCP fingerprint (§7.3 VPN experiment).
    VpnHandshake,
}

/// One DPI rule: a byte pattern and its category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    pub pattern: Vec<u8>,
    pub kind: DetectionKind,
}

/// The censor's rule database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSet {
    pub rules: Vec<Rule>,
}

impl RuleSet {
    /// The paper's measurement workload: keyword `ultrasurf`, a censored
    /// domain list, plus Tor/VPN fingerprints.
    pub fn paper_default() -> RuleSet {
        let mut rules = vec![Rule {
            pattern: b"ultrasurf".to_vec(),
            kind: DetectionKind::HttpKeyword,
        }];
        for domain in ["dropbox.com", "facebook.com", "twitter.com", "youtube.com"] {
            // Two patterns per domain: the dotted text form (HTTP Host
            // headers, plain-text protocols) and the DNS wire encoding with
            // length-prefixed labels (catches queries inside UDP/TCP DNS
            // messages). Registrable part only, so `www.dropbox.com` also
            // matches.
            rules.push(Rule {
                pattern: domain.as_bytes().to_vec(),
                kind: DetectionKind::Domain,
            });
            rules.push(Rule {
                pattern: dns_label_encoding(domain),
                kind: DetectionKind::Domain,
            });
        }
        rules.push(Rule {
            pattern: TOR_FINGERPRINT.to_vec(),
            kind: DetectionKind::TorHandshake,
        });
        rules.push(Rule {
            pattern: VPN_FINGERPRINT.to_vec(),
            kind: DetectionKind::VpnHandshake,
        });
        RuleSet { rules }
    }

    pub fn empty() -> RuleSet {
        RuleSet { rules: Vec::new() }
    }

    pub fn with_keyword(mut self, kw: &str) -> RuleSet {
        self.rules.push(Rule {
            pattern: kw.as_bytes().to_vec(),
            kind: DetectionKind::HttpKeyword,
        });
        self
    }

    pub fn with_domain(mut self, d: &str) -> RuleSet {
        self.rules.push(Rule {
            pattern: d.as_bytes().to_vec(),
            kind: DetectionKind::Domain,
        });
        self
    }
}

/// DNS wire encoding of a domain: length-prefixed labels, no terminator
/// (so it matches as an inner substring of longer names too).
pub fn dns_label_encoding(domain: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(domain.len() + 2);
    for label in domain.split('.').filter(|l| !l.is_empty()) {
        out.push(label.len() as u8);
        out.extend_from_slice(label.as_bytes());
    }
    out
}

/// Bytes our simulated Tor client leads with (a stand-in for the TLS
/// client-hello fingerprint the real GFW matches).
pub const TOR_FINGERPRINT: &[u8] = b"\x16\x03\x01TOR-CLIENT-HELLO";
/// Stand-in for the OpenVPN-over-TCP session negotiation fingerprint.
pub const VPN_FINGERPRINT: &[u8] = b"\x00\x0e\x38OPENVPN-HARD-RESET";

/// A node of the Aho–Corasick trie, used only during construction; the
/// compiled [`Automaton`] stores a dense goto-complete transition table.
#[derive(Debug, Clone, Default)]
struct Node {
    children: BTreeMap<u8, u32>,
    fail: u32,
    /// Rule indices that end at this node (including via fail links).
    outputs: Vec<u32>,
}

/// A compiled multi-pattern matcher.
///
/// ```
/// use intang_gfw::dpi::{Automaton, RuleSet, DetectionKind, StreamMatcher};
///
/// let aut = Automaton::build(&RuleSet::paper_default());
/// assert_eq!(aut.scan(b"GET /ultrasurf HTTP/1.1"), vec![DetectionKind::HttpKeyword]);
///
/// // Streaming: the keyword split across two segments still matches.
/// let mut m = StreamMatcher::new();
/// assert!(m.feed(&aut, b"GET /ultra").is_empty());
/// assert_eq!(m.feed(&aut, b"surf"), vec![DetectionKind::HttpKeyword]);
/// ```
#[derive(Debug, Clone)]
pub struct Automaton {
    /// Dense goto-complete transition table: `trans[state * 256 + byte]` is
    /// the next state, with fail links pre-resolved at build time so a
    /// [`StreamMatcher::feed`] step is a single array index per byte.
    trans: Vec<u32>,
    /// Per-node `(start, len)` slice into `outputs` (rule indices ending at
    /// this node, including via fail links).
    out_ranges: Vec<(u32, u32)>,
    /// Flattened per-node output lists.
    outputs: Vec<u32>,
    kinds: Vec<DetectionKind>,
    /// 256-bit membership map of *anchor* bytes — bytes whose root
    /// transition leaves the root. While the matcher sits at the root,
    /// non-anchor bytes cannot advance any pattern and are skipped in
    /// 16-byte chunks without touching the transition table.
    anchors: [u64; 4],
    /// Skip-loop safety latch: false when the root itself carries outputs
    /// (an empty pattern matches at every position), in which case every
    /// byte must run through [`Automaton::outputs_at`].
    skippable: bool,
}

impl Automaton {
    pub fn build(rules: &RuleSet) -> Automaton {
        let mut nodes = vec![Node::default()];
        let mut kinds = Vec::with_capacity(rules.rules.len());
        // Trie phase.
        for (idx, rule) in rules.rules.iter().enumerate() {
            kinds.push(rule.kind);
            let mut cur = 0u32;
            for &b in &rule.pattern {
                let next = match nodes[cur as usize].children.get(&b) {
                    Some(&n) => n,
                    None => {
                        nodes.push(Node::default());
                        let n = (nodes.len() - 1) as u32;
                        nodes[cur as usize].children.insert(b, n);
                        n
                    }
                };
                cur = next;
            }
            nodes[cur as usize].outputs.push(idx as u32);
        }
        // BFS fail links, recording visit order for the table compile below.
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        let mut bfs_order: Vec<u32> = Vec::with_capacity(nodes.len());
        let root_children: Vec<(u8, u32)> = nodes[0].children.iter().map(|(k, v)| (*k, *v)).collect();
        for (_, child) in root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(u) = queue.pop_front() {
            bfs_order.push(u);
            let children: Vec<(u8, u32)> = nodes[u as usize].children.iter().map(|(k, v)| (*k, *v)).collect();
            for (b, v) in children {
                // Find the fail target for v.
                let mut f = nodes[u as usize].fail;
                loop {
                    if let Some(&n) = nodes[f as usize].children.get(&b) {
                        if n != v {
                            nodes[v as usize].fail = n;
                            break;
                        }
                    }
                    if f == 0 {
                        nodes[v as usize].fail = if let Some(&n) = nodes[0].children.get(&b) {
                            if n != v {
                                n
                            } else {
                                0
                            }
                        } else {
                            0
                        };
                        break;
                    }
                    f = nodes[f as usize].fail;
                }
                let fail_outputs = nodes[nodes[v as usize].fail as usize].outputs.clone();
                nodes[v as usize].outputs.extend(fail_outputs);
                queue.push_back(v);
            }
        }
        // Table compile: goto-complete transitions. The root row maps every
        // byte to its child (or back to root); each deeper node, visited in
        // BFS order, copies its fail node's already-complete row and then
        // overlays its own children.
        let mut trans = vec![0u32; nodes.len() * 256];
        for (&b, &c) in &nodes[0].children {
            trans[b as usize] = c;
        }
        for &u in &bfs_order {
            // The fail node sits at a smaller BFS depth, so its row is
            // already complete (though its *index* may be larger — nodes are
            // numbered in trie-insertion order).
            let f = nodes[u as usize].fail as usize;
            trans.copy_within(f * 256..f * 256 + 256, u as usize * 256);
            for (&b, &c) in &nodes[u as usize].children {
                trans[u as usize * 256 + b as usize] = c;
            }
        }
        let mut out_ranges = Vec::with_capacity(nodes.len());
        let mut outputs = Vec::new();
        for n in &nodes {
            out_ranges.push((outputs.len() as u32, n.outputs.len() as u32));
            outputs.extend_from_slice(&n.outputs);
        }
        let mut anchors = [0u64; 4];
        for (b, &t) in trans[..256].iter().enumerate() {
            if t != 0 {
                anchors[b >> 6] |= 1u64 << (b & 63);
            }
        }
        Automaton {
            trans,
            out_ranges,
            outputs,
            kinds,
            anchors,
            skippable: nodes[0].outputs.is_empty(),
        }
    }

    #[inline]
    fn step(&self, state: u32, b: u8) -> u32 {
        self.trans[state as usize * 256 + b as usize]
    }

    /// Rule indices matched at `state` (fail-link suffixes included).
    #[inline]
    fn outputs_at(&self, state: u32) -> &[u32] {
        let (start, len) = self.out_ranges[state as usize];
        &self.outputs[start as usize..start as usize + len as usize]
    }

    #[inline]
    fn is_anchor(&self, b: u8) -> bool {
        self.anchors[usize::from(b >> 6)] & (1u64 << (b & 63)) != 0
    }

    /// Length of the prefix of `data` containing no anchor byte — bytes a
    /// root-state matcher consumes without leaving the root. Scans 16-byte
    /// chunks with a branch-free membership test and pinpoints the first
    /// anchor scalar-wise only in the chunk that contains one.
    fn anchor_free_prefix(&self, data: &[u8]) -> usize {
        let mut i = 0;
        while i + 16 <= data.len() {
            let mut any = false;
            for &b in &data[i..i + 16] {
                any |= self.is_anchor(b);
            }
            if any {
                break;
            }
            i += 16;
        }
        while i < data.len() && !self.is_anchor(data[i]) {
            i += 1;
        }
        i
    }

    /// Scan a whole buffer statelessly; returns the kinds matched.
    pub fn scan(&self, data: &[u8]) -> Vec<DetectionKind> {
        let mut m = StreamMatcher::new();
        m.feed(self, data)
    }

    pub fn node_count(&self) -> usize {
        self.out_ranges.len()
    }
}

/// The compiled automaton for [`RuleSet::paper_default`], built once per
/// process and shared. Every sweep cell runs the same censor rule database,
/// so rebuilding (and re-flattening the dense table) per `GfwElement` was
/// pure waste — measurable at thousands of trials per sweep.
pub fn shared_paper_default() -> Arc<Automaton> {
    static PAPER_DEFAULT: OnceLock<Arc<Automaton>> = OnceLock::new();
    PAPER_DEFAULT
        .get_or_init(|| Arc::new(Automaton::build(&RuleSet::paper_default())))
        .clone()
}

/// The paper-default [`RuleSet`] itself, built once and shared. Configs
/// reference rule sets through an `Arc` so the thousands of `GfwConfig`
/// values a sweep constructs don't each own a heap copy of the rule
/// database, and `Arc::ptr_eq` against this static is the fast path for
/// "is this the paper-default censor?".
pub fn shared_paper_rules() -> Arc<RuleSet> {
    static PAPER_RULES: OnceLock<Arc<RuleSet>> = OnceLock::new();
    PAPER_RULES.get_or_init(|| Arc::new(RuleSet::paper_default())).clone()
}

/// Streaming matcher state: one `u32` per monitored flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamMatcher {
    state: u32,
}

impl StreamMatcher {
    pub fn new() -> StreamMatcher {
        StreamMatcher { state: 0 }
    }

    /// Feed in-order bytes; returns newly matched detection kinds.
    ///
    /// Hot path: whenever the matcher sits at the root, runs of non-anchor
    /// bytes (bytes that cannot start any pattern) are skipped in 16-byte
    /// chunks before re-entering the per-byte automaton walk. Result- and
    /// state-identical to [`StreamMatcher::feed_reference`], which the
    /// property suite enforces over arbitrary feed splits.
    pub fn feed(&mut self, aut: &Automaton, data: &[u8]) -> Vec<DetectionKind> {
        let mut hits = Vec::new();
        let n = data.len();
        let mut i = 0;
        while i < n {
            if self.state == 0 && aut.skippable {
                i += aut.anchor_free_prefix(&data[i..]);
            }
            while i < n {
                self.state = aut.step(self.state, data[i]);
                i += 1;
                if self.state == 0 && aut.skippable {
                    // Back at an output-free root: return to the skip loop.
                    break;
                }
                for &o in aut.outputs_at(self.state) {
                    let kind = aut.kinds[o as usize];
                    if !hits.contains(&kind) {
                        hits.push(kind);
                    }
                }
            }
        }
        hits
    }

    /// The original per-byte walk, kept verbatim as the reference
    /// implementation [`StreamMatcher::feed`] must stay byte-equal to.
    pub fn feed_reference(&mut self, aut: &Automaton, data: &[u8]) -> Vec<DetectionKind> {
        let mut hits = Vec::new();
        for &b in data {
            self.state = aut.step(self.state, b);
            for &o in aut.outputs_at(self.state) {
                let kind = aut.kinds[o as usize];
                if !hits.contains(&kind) {
                    hits.push(kind);
                }
            }
        }
        hits
    }

    /// Forget everything (used when the censor resynchronizes its TCB).
    pub fn reset(&mut self) {
        self.state = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aut() -> Automaton {
        Automaton::build(&RuleSet::paper_default())
    }

    #[test]
    fn detects_keyword_in_http_request() {
        let req = b"GET /search?q=ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n";
        assert_eq!(aut().scan(req), vec![DetectionKind::HttpKeyword]);
    }

    #[test]
    fn clean_request_matches_nothing() {
        let req = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n";
        assert!(aut().scan(req).is_empty());
    }

    #[test]
    fn detects_keyword_split_across_feeds() {
        // The §4 stateless-mode refutation: halves are innocuous alone.
        let a = aut();
        let mut m = StreamMatcher::new();
        assert!(m.feed(&a, b"GET /ultra").is_empty());
        assert_eq!(m.feed(&a, b"surf HTTP/1.1\r\n"), vec![DetectionKind::HttpKeyword]);
    }

    #[test]
    fn reset_clears_partial_match() {
        let a = aut();
        let mut m = StreamMatcher::new();
        assert!(m.feed(&a, b"ultra").is_empty());
        m.reset();
        assert!(m.feed(&a, b"surf").is_empty(), "no match after resync reset");
    }

    #[test]
    fn detects_domain_inside_dns_wire_format() {
        let msg = intang_packet::dns::DnsMessage::query(7, "www.dropbox.com");
        assert_eq!(aut().scan(&msg.encode()), vec![DetectionKind::Domain]);
        let clean = intang_packet::dns::DnsMessage::query(8, "www.example.org");
        assert!(aut().scan(&clean.encode()).is_empty());
    }

    #[test]
    fn detects_tor_and_vpn_fingerprints() {
        assert_eq!(aut().scan(TOR_FINGERPRINT), vec![DetectionKind::TorHandshake]);
        assert_eq!(aut().scan(VPN_FINGERPRINT), vec![DetectionKind::VpnHandshake]);
    }

    #[test]
    fn overlapping_patterns_all_reported() {
        let rules = RuleSet::empty().with_keyword("abcd").with_keyword("bc").with_keyword("cd");
        let a = Automaton::build(&rules);
        let hits = a.scan(b"xabcdy");
        assert_eq!(hits.len(), 1, "all three rules are HttpKeyword; kinds dedup");
        // Count raw rule hits via distinct kinds instead:
        let rules2 = RuleSet {
            rules: vec![
                Rule {
                    pattern: b"abcd".to_vec(),
                    kind: DetectionKind::HttpKeyword,
                },
                Rule {
                    pattern: b"bc".to_vec(),
                    kind: DetectionKind::Domain,
                },
                Rule {
                    pattern: b"cd".to_vec(),
                    kind: DetectionKind::TorHandshake,
                },
            ],
        };
        let a2 = Automaton::build(&rules2);
        let hits2 = a2.scan(b"xabcdy");
        assert_eq!(hits2.len(), 3, "suffix matches via fail links all fire");
    }

    #[test]
    fn repeated_prefix_patterns() {
        let rules = RuleSet::empty().with_keyword("aaa");
        let a = Automaton::build(&rules);
        assert_eq!(a.scan(b"aaaa"), vec![DetectionKind::HttpKeyword]);
        assert!(a.scan(b"aa").is_empty());
    }

    #[test]
    fn empty_ruleset_never_matches() {
        let a = Automaton::build(&RuleSet::empty());
        assert!(a.scan(b"ultrasurf dropbox.com").is_empty());
        assert_eq!(a.node_count(), 1);
    }

    #[test]
    fn skip_loop_matches_reference_walk() {
        // Long clean run (exercises whole-chunk skips), anchors at chunk
        // boundaries, and a keyword straddling a skip region.
        let a = aut();
        let mut text = Vec::new();
        text.extend_from_slice(&[b'x'; 40]);
        text.extend_from_slice(b"ultra");
        text.extend_from_slice(&[b'-'; 21]);
        text.extend_from_slice(b"dropbox.com");
        text.extend_from_slice(&[b'z'; 17]);
        text.extend_from_slice(b"ultrasurf");
        for split in 0..text.len() {
            let (mut fast, mut slow) = (StreamMatcher::new(), StreamMatcher::new());
            let mut h_fast = fast.feed(&a, &text[..split]);
            h_fast.extend(fast.feed(&a, &text[split..]));
            let mut h_slow = slow.feed_reference(&a, &text[..split]);
            h_slow.extend(slow.feed_reference(&a, &text[split..]));
            assert_eq!(h_fast, h_slow, "split {split}");
            assert_eq!(fast.state, slow.state, "state after split {split}");
        }
    }

    #[test]
    fn empty_pattern_disables_skipping_but_stays_correct() {
        // An empty pattern puts outputs on the root: every byte "matches",
        // so the skip loop must stand down rather than jump over hits.
        let rules = RuleSet {
            rules: vec![
                Rule {
                    pattern: Vec::new(),
                    kind: DetectionKind::Domain,
                },
                Rule {
                    pattern: b"tor".to_vec(),
                    kind: DetectionKind::TorHandshake,
                },
            ],
        };
        let a = Automaton::build(&rules);
        assert!(!a.skippable);
        let data = b"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx tor";
        let mut fast = StreamMatcher::new();
        let mut slow = StreamMatcher::new();
        assert_eq!(fast.feed(&a, data), slow.feed_reference(&a, data));
        assert_eq!(fast.state, slow.state);
        assert_eq!(fast.feed(&a, b"zz"), vec![DetectionKind::Domain], "root outputs fire on every byte");
    }
}
