//! Censor configuration: every behavioral knob of the two GFW generations,
//! so heterogeneous per-path deployments (§8) can be expressed.

use crate::dpi::RuleSet;
use intang_netsim::Duration;
use intang_packet::frag::OverlapPolicy;
use intang_tcpstack::reasm::SegmentOverlapPolicy;
use std::sync::Arc;

/// Which generation of the GFW model a device implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GfwGeneration {
    /// The pre-2017 model of Khattak et al. ("Prior Assumptions 1–3"):
    /// TCB on SYN only, first-SYN sequence wins, teardown on RST/RST-ACK/FIN.
    Old,
    /// The paper's evolved model ("Hypothesized New Behaviors 1–3"):
    /// TCB also on SYN/ACK, resynchronization state, FIN ignored,
    /// probabilistic RST teardown.
    Evolved,
}

/// What a full TCB table evicts to make room (§2.1: tracking every flow is
/// "costly"; how a deployment sheds state decides *which* flows escape
/// tracking under metropolis-scale pressure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the TCB created longest ago (FIFO) — a circular-buffer table.
    Oldest,
    /// Evict the TCB touched longest ago — an LRU cache. Long-lived idle
    /// flows lose tracking first; chatty flows stay observed.
    Lru,
}

/// Which censor profile a [`GfwConfig`] was compiled from, so telemetry
/// exports can tag runs with the censor model that produced them. The two
/// hard-coded constructors carry their canonical tags; configs built from
/// profile files carry the tag matching the profile name (or `Custom`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileTag {
    /// The pre-2017 Khattak et al. model (`gfw_prior`).
    Prior,
    /// The paper's evolved model (`gfw_evolved`).
    Evolved,
    /// The Turkmenistan censor of Nourin et al. (`turkmenistan`).
    Turkmenistan,
    /// Any other profile (user-authored or perturbed).
    Custom,
}

impl ProfileTag {
    /// The telemetry counter that tags *logical* censor devices compiled
    /// from this profile. Deliberately not exported by the element itself:
    /// the parallel metropolis splits one logical device into one element
    /// per event domain, so a per-element bump would break serial/parallel
    /// byte-identity. The trial and metropolis layers, which know what a
    /// logical device is, bump it instead.
    pub fn device_counter(self) -> intang_telemetry::Counter {
        use intang_telemetry::Counter;
        match self {
            ProfileTag::Prior => Counter::GfwProfilePriorDevices,
            ProfileTag::Evolved => Counter::GfwProfileEvolvedDevices,
            ProfileTag::Turkmenistan => Counter::GfwProfileTurkmenistanDevices,
            ProfileTag::Custom => Counter::GfwProfileCustomDevices,
        }
    }
}

/// Full device/DPI configuration for a censor tap on one path.
#[derive(Debug, Clone, PartialEq)]
pub struct GfwConfig {
    pub generation: GfwGeneration,
    /// Type-1 instance present (single RST, per-packet scan).
    pub type1: bool,
    /// Type-2 instance present (3×RST/ACK, reassembly, blacklist).
    pub type2: bool,

    // ---- validation the GFW does NOT do (Table 3, right column) --------
    /// Validate TCP checksums before processing (real GFW: no, §3.4).
    pub validate_checksum: bool,
    /// Reject segments with unsolicited MD5 options (real GFW: no).
    pub check_md5: bool,
    /// Validate ACK numbers (real GFW: no).
    pub check_ack: bool,
    /// Enforce PAWS-style timestamp freshness (real GFW: no).
    pub check_timestamp: bool,
    /// Reject datagrams whose IP total length exceeds the buffer (no).
    pub validate_ip_total_len: bool,

    // ---- stream semantics ----------------------------------------------
    /// Overlap preference of the type-2 stream assembler. Khattak et al.
    /// observed last-wins for TCP segments; parts of the evolved deployment
    /// appear robust (first-wins), which the Table 1 failure rates of the
    /// out-of-order TCP-segment strategy reflect.
    pub segment_overlap: SegmentOverlapPolicy,
    /// IP fragment overlap preference (first-wins per Khattak et al.).
    pub ip_frag_overlap: OverlapPolicy,

    // ---- evolved-model dynamics ------------------------------------------
    /// Probability that an RST/RST-ACK seen *after* the handshake sends the
    /// TCB to the resynchronization state instead of tearing it down
    /// (Hypothesized New Behavior 3; path-sticky, ≈20 % in §3.4).
    pub rst_resync_prob: f64,
    /// Same, for RSTs seen between the SYN/ACK and the handshake ACK —
    /// "way more frequent" per §4.
    pub rst_resync_prob_handshake: f64,

    // ---- censoring actions -------------------------------------------------
    /// Per-connection probability that an overloaded censor misses the
    /// stream entirely (the persistent ≈2.8 % no-strategy success, §3.4).
    pub overload_miss_prob: f64,
    /// Pair blacklist duration after a detection (90 s, §2.1).
    pub blacklist_duration: Duration,
    /// Injection reaction delay.
    pub reaction_delay: Duration,
    /// TCB table capacity. Tracking every flow is "costly" (§2.1); a full
    /// table evicts the oldest TCB. Real deployments are huge, so the
    /// default is effectively unbounded for trial-sized runs.
    pub max_tcbs: usize,
    /// Which TCB the device sheds when `max_tcbs` is reached.
    pub eviction: EvictionPolicy,
    /// Resync-storm detector: a storm is counted every time
    /// `resync_storm_threshold` resynchronizations land within one sliding
    /// `resync_storm_window` (the window clears after each counted storm,
    /// so a sustained burst counts once per threshold-batch).
    pub resync_storm_window: Duration,
    pub resync_storm_threshold: usize,
    /// Also censor server→client HTTP responses (rare paths, §3.3).
    pub censor_responses: bool,
    /// Inject a spoofed HTTP blockpage (served "from" the real server)
    /// alongside the reset volley on detection — the Turkmenistan behavior
    /// documented by Nourin et al. The GFW never does this (false for both
    /// generations).
    pub inject_blockpage: bool,

    // ---- protocol-specific censorship -----------------------------------
    /// Poison UDP DNS queries for blacklisted domains.
    pub dns_poison: bool,
    /// Tor-filtering devices present on this path (§7.3: absent on paths
    /// from Northern China).
    pub tor_filter: bool,
    /// Active probing of suspected Tor bridges (then IP-level block).
    pub active_probing: bool,
    /// DPI-reset OpenVPN-over-TCP handshakes (observed Nov 2016, later
    /// discontinued, §7.3).
    pub vpn_dpi: bool,

    // ---- fault-injection chaos (Ensafi et al.: GFW behavior is ---------
    // ---- probabilistic and spatially non-uniform) ----------------------
    /// Probability that an injection volley (detection resets, blacklist
    /// resets) actually goes out. 1.0 = always inject (no chaos; draws no
    /// randomness). Lower values model vantage points where the censor's
    /// resets only sometimes arrive.
    pub chaos_rst_inject_prob: f64,
    /// Fractional jitter on `blacklist_duration`: each insertion draws a
    /// duration in `[1-j, 1+j] × blacklist_duration`. 0.0 = no jitter.
    pub chaos_blacklist_jitter: f64,
    /// Probability that a type-1/type-2 instance is "down" for one
    /// detection (device flapping). 0.0 = devices never flap.
    pub chaos_device_flap_prob: f64,

    // ---- state sharding (parallel metropolis) ---------------------------
    /// Number of independent censor-state lanes. 1 (the default) is the
    /// exact legacy device: one global TCB order, one injector, one sticky
    /// draw, all randomness from the simulation RNG. Values > 1 partition
    /// every piece of cross-flow state — eviction order and capacity
    /// quota, resync-storm window, sticky RST draws, injector counters and
    /// a dedicated RNG stream — by [`intang_packet::pair_shard`] of the
    /// packet's address pair, so lanes never observe each other and a
    /// sharded world can be split into parallel event domains without
    /// changing a single emitted byte.
    pub state_shards: u32,
    /// Base seed for the per-lane RNG streams (only used when
    /// `state_shards > 1`; lane `i` draws from
    /// `intang_netsim::rng::lane_seed(shard_seed, i)`).
    pub shard_seed: u64,

    /// Shared reference to the rule database. `GfwConfig::evolved` hands out
    /// the process-wide [`crate::dpi::shared_paper_rules`] `Arc`, so cloning
    /// configs (one per sweep cell × element) never copies the rules.
    pub rules: Arc<RuleSet>,

    /// Which censor profile this config was compiled from (telemetry tag
    /// only; never consulted on the hot path).
    pub profile_tag: ProfileTag,
}

impl GfwConfig {
    /// The evolved model with the paper's default dynamics.
    pub fn evolved() -> GfwConfig {
        GfwConfig {
            generation: GfwGeneration::Evolved,
            type1: true,
            type2: true,
            validate_checksum: false,
            check_md5: false,
            check_ack: false,
            check_timestamp: false,
            validate_ip_total_len: false,
            segment_overlap: SegmentOverlapPolicy::FirstWins,
            ip_frag_overlap: OverlapPolicy::FirstWins,
            rst_resync_prob: 0.2,
            rst_resync_prob_handshake: 0.8,
            overload_miss_prob: 0.028,
            blacklist_duration: Duration::from_secs(90),
            reaction_delay: Duration::from_millis(2),
            max_tcbs: 1_000_000,
            eviction: EvictionPolicy::Oldest,
            resync_storm_window: Duration::from_millis(100),
            resync_storm_threshold: 8,
            censor_responses: false,
            inject_blockpage: false,
            dns_poison: true,
            tor_filter: true,
            active_probing: true,
            vpn_dpi: false,
            chaos_rst_inject_prob: 1.0,
            chaos_blacklist_jitter: 0.0,
            chaos_device_flap_prob: 0.0,
            state_shards: 1,
            shard_seed: 0,
            rules: crate::dpi::shared_paper_rules(),
            profile_tag: ProfileTag::Evolved,
        }
    }

    /// The prior (Khattak et al.) model: deterministic teardown semantics.
    pub fn old() -> GfwConfig {
        GfwConfig {
            generation: GfwGeneration::Old,
            segment_overlap: SegmentOverlapPolicy::LastWins,
            rst_resync_prob: 0.0,
            rst_resync_prob_handshake: 0.0,
            profile_tag: ProfileTag::Prior,
            ..GfwConfig::evolved()
        }
    }

    /// Deterministic variant for unit tests: no overload misses, no
    /// injection delay jitter.
    pub fn deterministic(mut self) -> GfwConfig {
        self.overload_miss_prob = 0.0;
        self
    }

    pub fn with_rules(mut self, rules: RuleSet) -> GfwConfig {
        self.rules = Arc::new(rules);
        self
    }

    /// Check every probability knob for sanity. The sampling paths compare
    /// these against uniform draws, so a NaN, a negative value, or a value
    /// above 1.0 silently skews every draw downstream; reject them up front
    /// so CLI paths can exit gracefully instead (PR 5's no-panic contract).
    pub fn validate(&self) -> Result<(), String> {
        fn prob(name: &str, v: f64) -> Result<(), String> {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be a probability in [0.0, 1.0], got {v}"));
            }
            Ok(())
        }
        prob("rst_resync_prob", self.rst_resync_prob)?;
        prob("rst_resync_prob_handshake", self.rst_resync_prob_handshake)?;
        prob("overload_miss_prob", self.overload_miss_prob)?;
        prob("chaos_rst_inject_prob", self.chaos_rst_inject_prob)?;
        prob("chaos_device_flap_prob", self.chaos_device_flap_prob)?;
        if !self.chaos_blacklist_jitter.is_finite() || self.chaos_blacklist_jitter < 0.0 {
            return Err(format!(
                "chaos_blacklist_jitter must be a finite non-negative fraction, got {}",
                self.chaos_blacklist_jitter
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generations_differ_where_the_paper_says() {
        let old = GfwConfig::old();
        let new = GfwConfig::evolved();
        assert_eq!(old.generation, GfwGeneration::Old);
        assert_eq!(new.generation, GfwGeneration::Evolved);
        assert_eq!(old.rst_resync_prob, 0.0, "prior model always tears down on RST");
        assert!(new.rst_resync_prob > 0.0);
        assert!(
            new.rst_resync_prob_handshake > new.rst_resync_prob,
            "§4: resync more frequent mid-handshake"
        );
    }

    #[test]
    fn neither_generation_validates_insertion_discrepancies() {
        for cfg in [GfwConfig::old(), GfwConfig::evolved()] {
            assert!(!cfg.validate_checksum);
            assert!(!cfg.check_md5);
            assert!(!cfg.check_ack);
            assert!(!cfg.check_timestamp);
            assert!(!cfg.validate_ip_total_len);
        }
    }

    #[test]
    fn blacklist_is_ninety_seconds() {
        assert_eq!(GfwConfig::evolved().blacklist_duration, Duration::from_secs(90));
    }

    #[test]
    fn builtin_configs_validate() {
        GfwConfig::old().validate().unwrap();
        GfwConfig::evolved().validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range_rst_resync_prob() {
        for bad in [f64::NAN, 3.7, -1.0, f64::INFINITY] {
            let mut cfg = GfwConfig::evolved();
            cfg.rst_resync_prob = bad;
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("rst_resync_prob"), "error names the knob: {err}");
        }
    }

    #[test]
    fn rejects_out_of_range_rst_resync_prob_handshake() {
        for bad in [f64::NAN, 3.7, -1.0] {
            let mut cfg = GfwConfig::evolved();
            cfg.rst_resync_prob_handshake = bad;
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("rst_resync_prob_handshake"), "error names the knob: {err}");
        }
    }

    #[test]
    fn rejects_out_of_range_overload_miss_prob() {
        for bad in [f64::NAN, 3.7, -1.0] {
            let mut cfg = GfwConfig::evolved();
            cfg.overload_miss_prob = bad;
            let err = cfg.validate().unwrap_err();
            assert!(err.contains("overload_miss_prob"), "error names the knob: {err}");
        }
    }

    #[test]
    fn rejects_out_of_range_chaos_knobs() {
        let mut cfg = GfwConfig::evolved();
        cfg.chaos_rst_inject_prob = -0.5;
        assert!(cfg.validate().unwrap_err().contains("chaos_rst_inject_prob"));
        let mut cfg = GfwConfig::evolved();
        cfg.chaos_device_flap_prob = 1.5;
        assert!(cfg.validate().unwrap_err().contains("chaos_device_flap_prob"));
        let mut cfg = GfwConfig::evolved();
        cfg.chaos_blacklist_jitter = -0.1;
        assert!(cfg.validate().unwrap_err().contains("chaos_blacklist_jitter"));
    }
}
