//! The censor's per-flow TCB: orientation, the resynchronization state, and
//! the two detection pipelines (type-1 per-packet, type-2 reassembled).

use crate::dpi::{Automaton, DetectionKind, StreamMatcher};
use intang_tcpstack::reasm::{Assembler, SegmentOverlapPolicy};
use std::net::Ipv4Addr;

/// Tracking state of a censor TCB (Hypothesized New Behavior 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CensorState {
    /// Normal tracking: the monitored stream is anchored at `stream_base`.
    Tracking,
    /// Resynchronization state: the censor waits for the next
    /// client→server data packet or server→client SYN/ACK to re-anchor.
    Resync,
}

/// How far ahead of the anchored stream the censor accepts data.
const ACCEPT_WINDOW: u32 = 256 * 1024;

/// The censor's belief about one connection.
#[derive(Debug)]
pub struct CensorTcb {
    /// Believed client (the side whose traffic is inspected).
    pub client: (Ipv4Addr, u16),
    /// Believed server.
    pub server: (Ipv4Addr, u16),
    /// Created by a SYN/ACK (Hypothesized New Behavior 1). Such TCBs ignore
    /// subsequent SYN/SYN-ACKs entirely (§5.2, TCB Reversal).
    pub created_by_synack: bool,
    pub state: CensorState,
    /// Between SYN/SYN-ACK and the first client ACK/data (§4: RSTs here
    /// trigger resync far more often).
    pub in_handshake: bool,
    /// The client's ISN as believed by the censor.
    pub client_isn: u32,
    /// Absolute sequence number of monitored-stream byte 0.
    pub stream_base: u32,
    /// The believed server's next sequence number (for reset injection).
    pub server_next: u32,
    pub syn_count: u32,
    pub synack_count: u32,
    /// Last server SYN/ACK's (seq, ack): identical retransmissions are not
    /// "multiple SYN/ACKs" for Hypothesized New Behavior 2(b).
    pub last_synack: Option<(u32, u32)>,
    /// Most recent client timestamp seen (only consulted when the §8
    /// hardened censor enforces PAWS; the real GFW does not).
    pub ts_recent: Option<u32>,
    /// Overloaded censor: this flow is not inspected at all (§3.4, the
    /// persistent ≈2.8 % no-strategy success rate).
    pub overloaded: bool,
    /// A detection already fired on this flow.
    pub detected: bool,
    /// Monotonic touch stamp assigned by the device's LRU eviction policy
    /// (0 under FIFO eviction, where the insertion order alone decides).
    pub touched: u64,

    /// Type-2 pipeline: reassembled stream + streaming matcher.
    asm: Assembler,
    matcher: StreamMatcher,
    /// Type-1 pipeline: strictly in-order per-packet scan.
    t1_expected: u32,
    /// Response-direction matcher (only when response censoring is on).
    resp_matcher: StreamMatcher,
    overlap: SegmentOverlapPolicy,
}

impl CensorTcb {
    /// TCB created from a client SYN.
    pub fn from_syn(client: (Ipv4Addr, u16), server: (Ipv4Addr, u16), isn: u32, overlap: SegmentOverlapPolicy) -> CensorTcb {
        CensorTcb {
            client,
            server,
            created_by_synack: false,
            state: CensorState::Tracking,
            in_handshake: true,
            client_isn: isn,
            stream_base: isn.wrapping_add(1),
            server_next: 0,
            syn_count: 1,
            synack_count: 0,
            last_synack: None,
            ts_recent: None,
            overloaded: false,
            detected: false,
            touched: 0,
            asm: Assembler::new(overlap),
            matcher: StreamMatcher::new(),
            t1_expected: isn.wrapping_add(1),
            resp_matcher: StreamMatcher::new(),
            overlap,
        }
    }

    /// TCB created from a SYN/ACK (evolved model only): the packet's source
    /// is assumed to be the server, its destination the client, and the
    /// expected client sequence comes from the ACK field.
    pub fn from_synack(
        src_server: (Ipv4Addr, u16),
        dst_client: (Ipv4Addr, u16),
        seq: u32,
        ack: u32,
        overlap: SegmentOverlapPolicy,
    ) -> CensorTcb {
        CensorTcb {
            client: dst_client,
            server: src_server,
            created_by_synack: true,
            state: CensorState::Tracking,
            in_handshake: true,
            client_isn: ack.wrapping_sub(1),
            stream_base: ack,
            server_next: seq.wrapping_add(1),
            syn_count: 0,
            synack_count: 1,
            last_synack: Some((seq, ack)),
            ts_recent: None,
            overloaded: false,
            detected: false,
            touched: 0,
            asm: Assembler::new(overlap),
            matcher: StreamMatcher::new(),
            t1_expected: ack,
            resp_matcher: StreamMatcher::new(),
            overlap,
        }
    }

    /// Is `addr:port` the believed client side?
    pub fn is_client(&self, addr: Ipv4Addr, port: u16) -> bool {
        self.client == (addr, port)
    }

    /// Re-anchor the monitored stream at `seq` and leave the
    /// resynchronization state. All reassembly and matcher state is lost —
    /// this is exactly what the desynchronization building block (§5.1)
    /// exploits.
    pub fn resync_to(&mut self, seq: u32) {
        self.stream_base = seq;
        self.t1_expected = seq;
        self.asm = Assembler::new(self.overlap);
        self.matcher.reset();
        self.state = CensorState::Tracking;
    }

    /// Feed a client→server data segment into both detection pipelines.
    /// Returns all newly detected rule kinds.
    pub fn feed_client_data(&mut self, aut: &Automaton, seq: u32, payload: &[u8], type1: bool, type2: bool) -> Vec<DetectionKind> {
        if self.overloaded || payload.is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();

        // Type-1: strict in-order, per-packet scan, no cross-packet state —
        // which is why splitting a request defeats it (§2.1).
        if type1 && seq == self.t1_expected {
            let mut per_packet = StreamMatcher::new();
            for k in per_packet.feed(aut, payload) {
                if !hits.contains(&k) {
                    hits.push(k);
                }
            }
            self.t1_expected = self.t1_expected.wrapping_add(payload.len() as u32);
        }

        // Type-2: windowed reassembly feeding a streaming matcher.
        if type2 {
            let rel = seq.wrapping_sub(self.stream_base);
            if rel < ACCEPT_WINDOW {
                thread_local! {
                    // Reassembled bytes live only for the matcher call
                    // below; one grown scratch serves every TCB on the
                    // thread instead of a fresh Vec per data segment.
                    static PULLED: std::cell::RefCell<Vec<u8>> =
                        const { std::cell::RefCell::new(Vec::new()) };
                }
                self.asm.insert(u64::from(rel), payload);
                PULLED.with(|p| {
                    let mut pulled = p.borrow_mut();
                    pulled.clear();
                    self.asm.pull_into(&mut pulled);
                    if !pulled.is_empty() {
                        for k in self.matcher.feed(aut, &pulled) {
                            if !hits.contains(&k) {
                                hits.push(k);
                            }
                        }
                    }
                });
            }
        }
        hits
    }

    /// Feed server→client data (only used when response censoring is on).
    pub fn feed_server_data(&mut self, aut: &Automaton, payload: &[u8]) -> Vec<DetectionKind> {
        if self.overloaded {
            return Vec::new();
        }
        self.resp_matcher.feed(aut, payload)
    }

    /// Absolute sequence number of the next expected client byte.
    pub fn client_next(&self) -> u32 {
        self.stream_base.wrapping_add(self.asm.head() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpi::RuleSet;

    fn aut() -> Automaton {
        Automaton::build(&RuleSet::paper_default())
    }

    fn tcb() -> CensorTcb {
        CensorTcb::from_syn(
            (Ipv4Addr::new(10, 0, 0, 1), 40000),
            (Ipv4Addr::new(93, 184, 216, 34), 80),
            999,
            SegmentOverlapPolicy::FirstWins,
        )
    }

    #[test]
    fn type2_detects_split_keyword_but_type1_does_not() {
        let a = aut();
        let mut t = tcb();
        let base = t.stream_base;
        let h1 = t.feed_client_data(&a, base, b"GET /ultra", true, true);
        assert!(h1.is_empty());
        let h2 = t.feed_client_data(&a, base.wrapping_add(10), b"surf HTTP/1.1\r\n\r\n", true, true);
        assert_eq!(h2, vec![DetectionKind::HttpKeyword], "type-2 reassembly catches the split");

        // Type-1 alone misses it.
        let mut t1only = tcb();
        let base = t1only.stream_base;
        assert!(t1only.feed_client_data(&a, base, b"GET /ultra", true, false).is_empty());
        assert!(t1only
            .feed_client_data(&a, base.wrapping_add(10), b"surf HTTP/1.1\r\n\r\n", true, false)
            .is_empty());
    }

    #[test]
    fn resync_discards_all_stream_state() {
        let a = aut();
        let mut t = tcb();
        let base = t.stream_base;
        t.feed_client_data(&a, base, b"GET /ultra", true, true);
        t.state = CensorState::Resync;
        t.resync_to(base.wrapping_add(500_000));
        let hits = t.feed_client_data(&a, base.wrapping_add(10), b"surf", true, true);
        assert!(hits.is_empty(), "old stream position is now out of window");
        assert_eq!(t.state, CensorState::Tracking);
    }

    #[test]
    fn out_of_window_data_ignored_by_type2() {
        let a = aut();
        let mut t = tcb();
        let far = t.stream_base.wrapping_add(ACCEPT_WINDOW + 10);
        let hits = t.feed_client_data(&a, far, b"ultrasurf", false, true);
        assert!(hits.is_empty());
        // ...and behind the base as well (wraps to a huge offset).
        let behind = t.stream_base.wrapping_sub(5_000);
        assert!(t.feed_client_data(&a, behind, b"ultrasurf", false, true).is_empty());
    }

    #[test]
    fn in_order_prefill_blinds_both_pipelines() {
        // The in-order data-overlapping strategy (§3.2): junk at the current
        // sequence is consumed; the real request at the same sequence is
        // then "old" data to both pipelines.
        let a = aut();
        let mut t = tcb();
        let base = t.stream_base;
        let real = b"GET /ultrasurf HTTP/1.1\r\nHost: example.com\r\n\r\n";
        let junk = vec![b'X'; real.len()];
        assert!(t.feed_client_data(&a, base, &junk, true, true).is_empty());
        // Same starting seq; the GFW already consumed the junk, so the real
        // request is entirely "old" data to both pipelines.
        let hits = t.feed_client_data(&a, base, real, true, true);
        assert!(hits.is_empty(), "prefilled censor misses the real request: {hits:?}");
    }

    #[test]
    fn synack_created_tcb_is_reversed() {
        let server_believed = (Ipv4Addr::new(10, 0, 0, 1), 40000); // actually the client!
        let client_believed = (Ipv4Addr::new(93, 184, 216, 34), 80);
        let t = CensorTcb::from_synack(server_believed, client_believed, 7000, 3001, SegmentOverlapPolicy::FirstWins);
        assert!(t.created_by_synack);
        assert_eq!(t.server, server_believed);
        assert_eq!(t.client, client_believed);
        assert_eq!(t.stream_base, 3001, "expected client seq comes from the ACK field");
        assert!(t.is_client(client_believed.0, client_believed.1));
    }

    #[test]
    fn overloaded_tcb_sees_nothing() {
        let a = aut();
        let mut t = tcb();
        t.overloaded = true;
        let base = t.stream_base;
        assert!(t.feed_client_data(&a, base, b"ultrasurf", true, true).is_empty());
    }

    #[test]
    fn client_next_tracks_consumed_stream() {
        let a = aut();
        let mut t = tcb();
        let base = t.stream_base;
        t.feed_client_data(&a, base, b"12345", false, true);
        assert_eq!(t.client_next(), base.wrapping_add(5));
    }
}
