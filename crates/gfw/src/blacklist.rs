//! The 90-second host-pair blacklist (§2.1): after a detection, any SYN
//! between the two hosts draws a forged SYN/ACK (type-2 only) and any other
//! packet draws fresh RST + RST/ACK injections until the period lapses.
//!
//! Each entry remembers the *origin flow* whose detection inserted it, so
//! the device can distinguish punishment of the offending connection from
//! collateral disruption of an innocent neighbor on the same (src, dst)
//! pair — the cross-flow interference a metropolis-scale workload measures.
//!
//! ## Expiry convention: half-open `[insertion, until)`
//!
//! An entry inserted at `now` with duration `d` is active for instants
//! strictly before `until = now + d`: [`Blacklist::hit`] tests
//! `e.until > now`, so a packet arriving at *exactly* `until` misses (the
//! entry is pruned). Symmetrically, [`Blacklist::add`] extends only when
//! the new `until` is *strictly* later (`e.until < until`) — re-adding
//! with an identical expiry is a no-op. Profile-driven blacklist durations
//! (prior / evolved / turkmenistan devices) all inherit this one
//! convention, so differing durations can never drift the boundary
//! semantics between censor models.

use intang_netsim::{Duration, Instant};
use intang_packet::{FourTuple, FxHashMap};
use std::net::Ipv4Addr;

#[derive(Debug, Clone, Copy)]
struct Entry {
    until: Instant,
    /// The flow whose detection created this entry. Repeat detections
    /// extend the expiry but keep the original origin — collateral is
    /// measured against the first offender of the period.
    origin: FourTuple,
}

/// Pair blacklist with expiry.
#[derive(Debug, Default)]
pub struct Blacklist {
    entries: FxHashMap<(Ipv4Addr, Ipv4Addr), Entry>,
}

fn key(a: Ipv4Addr, b: Ipv4Addr) -> (Ipv4Addr, Ipv4Addr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Blacklist {
    pub fn new() -> Blacklist {
        Blacklist::default()
    }

    /// Blacklist the host pair until `now + duration` (extends on repeat
    /// detections), recording the detected flow as the entry's origin.
    /// The entry is active on the half-open interval `[now, now + duration)`
    /// and extension is strict: a repeat detection whose expiry is not
    /// *later* than the current one leaves the entry untouched.
    pub fn add(&mut self, a: Ipv4Addr, b: Ipv4Addr, now: Instant, duration: Duration, origin: FourTuple) {
        let until = now + duration;
        let e = self.entries.entry(key(a, b)).or_insert(Entry {
            until,
            origin: origin.canonical(),
        });
        if e.until < until {
            e.until = until;
        }
    }

    /// Is the pair currently blacklisted? Expired entries are pruned lazily.
    pub fn contains(&mut self, a: Ipv4Addr, b: Ipv4Addr, now: Instant) -> bool {
        self.hit(a, b, now, None).is_some()
    }

    /// Look up the pair for a packet belonging to `tuple`. `None` when the
    /// pair is not (or no longer) blacklisted; otherwise
    /// `Some(collateral)`, where `collateral` means the hitting flow is
    /// *not* the one whose detection inserted the entry.
    ///
    /// Expiry is exclusive (`e.until > now`): a packet arriving at exactly
    /// `until` misses and prunes the entry.
    pub fn hit(&mut self, a: Ipv4Addr, b: Ipv4Addr, now: Instant, tuple: Option<FourTuple>) -> Option<bool> {
        let k = key(a, b);
        match self.entries.get(&k) {
            Some(e) if e.until > now => Some(tuple.is_some_and(|t| t.canonical() != e.origin)),
            Some(_) => {
                self.entries.remove(&k);
                None
            }
            None => None,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn b() -> Ipv4Addr {
        Ipv4Addr::new(93, 184, 216, 34)
    }
    fn origin() -> FourTuple {
        FourTuple::new(a(), 40_000, b(), 80)
    }

    #[test]
    fn symmetric_and_expiring() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        assert!(bl.contains(a(), b(), Instant(1)));
        assert!(bl.contains(b(), a(), Instant(1)), "order-independent");
        assert!(bl.contains(a(), b(), Instant(89_999_999)));
        assert!(!bl.contains(a(), b(), Instant(90_000_001)));
        assert!(bl.is_empty(), "expired entry pruned");
    }

    #[test]
    fn repeat_detection_extends() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        bl.add(a(), b(), Instant(60_000_000), Duration::from_secs(90), origin());
        assert!(bl.contains(a(), b(), Instant(100_000_000)));
        assert_eq!(bl.len(), 1);
    }

    #[test]
    fn earlier_expiry_does_not_shorten() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        bl.add(a(), b(), Instant(1), Duration::from_secs(1), origin());
        assert!(bl.contains(a(), b(), Instant(50_000_000)));
    }

    #[test]
    fn expiry_boundary_is_half_open_at_the_exact_instant() {
        // Pin the fence-post: 90 s = 90_000_000 µs after insertion at ZERO,
        // the entry is active strictly before `until` and gone AT `until`.
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        assert!(bl.contains(a(), b(), Instant(89_999_999)), "one tick before expiry: active");
        assert!(!bl.contains(a(), b(), Instant(90_000_000)), "exactly at expiry: inactive");
        assert!(bl.is_empty(), "the exact-instant miss prunes the entry");
    }

    #[test]
    fn add_with_identical_expiry_does_not_extend() {
        // The extend comparison is strict (`e.until < until`), mirroring the
        // strict hit comparison: re-adding with the same resulting expiry is
        // a no-op, and the boundary stays where the first insertion put it.
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        let second = FourTuple::new(a(), 41_000, b(), 80);
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), second);
        assert_eq!(bl.hit(a(), b(), Instant(1), Some(second)), Some(true), "origin unchanged");
        assert!(!bl.contains(a(), b(), Instant(90_000_000)), "expiry unchanged");
    }

    #[test]
    fn hits_classify_collateral_against_the_origin_flow() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        // The offending flow itself: not collateral (either direction).
        assert_eq!(bl.hit(a(), b(), Instant(1), Some(origin())), Some(false));
        let reversed = FourTuple::new(b(), 80, a(), 40_000);
        assert_eq!(bl.hit(b(), a(), Instant(1), Some(reversed)), Some(false));
        // A neighbor on the same pair but different ports: collateral.
        let neighbor = FourTuple::new(a(), 40_001, b(), 80);
        assert_eq!(bl.hit(a(), b(), Instant(1), Some(neighbor)), Some(true));
        // Expired: no hit at all.
        assert_eq!(bl.hit(a(), b(), Instant(90_000_001), Some(neighbor)), None);
    }

    #[test]
    fn extension_keeps_the_original_origin() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90), origin());
        let second = FourTuple::new(a(), 41_000, b(), 80);
        bl.add(a(), b(), Instant(10), Duration::from_secs(90), second);
        assert_eq!(bl.hit(a(), b(), Instant(20), Some(origin())), Some(false));
        assert_eq!(bl.hit(a(), b(), Instant(20), Some(second)), Some(true));
    }
}
