//! The 90-second host-pair blacklist (§2.1): after a detection, any SYN
//! between the two hosts draws a forged SYN/ACK (type-2 only) and any other
//! packet draws fresh RST + RST/ACK injections until the period lapses.

use intang_netsim::{Duration, Instant};
use intang_packet::FxHashMap;
use std::net::Ipv4Addr;

/// Pair blacklist with expiry.
#[derive(Debug, Default)]
pub struct Blacklist {
    entries: FxHashMap<(Ipv4Addr, Ipv4Addr), Instant>,
}

fn key(a: Ipv4Addr, b: Ipv4Addr) -> (Ipv4Addr, Ipv4Addr) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Blacklist {
    pub fn new() -> Blacklist {
        Blacklist::default()
    }

    /// Blacklist the host pair until `now + duration` (extends on repeat
    /// detections).
    pub fn add(&mut self, a: Ipv4Addr, b: Ipv4Addr, now: Instant, duration: Duration) {
        let until = now + duration;
        let e = self.entries.entry(key(a, b)).or_insert(until);
        if *e < until {
            *e = until;
        }
    }

    /// Is the pair currently blacklisted? Expired entries are pruned lazily.
    pub fn contains(&mut self, a: Ipv4Addr, b: Ipv4Addr, now: Instant) -> bool {
        let k = key(a, b);
        match self.entries.get(&k) {
            Some(&until) if until > now => true,
            Some(_) => {
                self.entries.remove(&k);
                false
            }
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn b() -> Ipv4Addr {
        Ipv4Addr::new(93, 184, 216, 34)
    }

    #[test]
    fn symmetric_and_expiring() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90));
        assert!(bl.contains(a(), b(), Instant(1)));
        assert!(bl.contains(b(), a(), Instant(1)), "order-independent");
        assert!(bl.contains(a(), b(), Instant(89_999_999)));
        assert!(!bl.contains(a(), b(), Instant(90_000_001)));
        assert!(bl.is_empty(), "expired entry pruned");
    }

    #[test]
    fn repeat_detection_extends() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90));
        bl.add(a(), b(), Instant(60_000_000), Duration::from_secs(90));
        assert!(bl.contains(a(), b(), Instant(100_000_000)));
        assert_eq!(bl.len(), 1);
    }

    #[test]
    fn earlier_expiry_does_not_shorten() {
        let mut bl = Blacklist::new();
        bl.add(a(), b(), Instant::ZERO, Duration::from_secs(90));
        bl.add(a(), b(), Instant(1), Duration::from_secs(1));
        assert!(bl.contains(a(), b(), Instant(50_000_000)));
    }
}
