//! Reset injection: the wire signatures of type-1 and type-2 GFW devices
//! (§2.1), reproduced closely enough that a fingerprinting client can tell
//! them apart (the `reset_fingerprint` experiment).
//!
//! * **type-1**: a single RST, random TTL, random window.
//! * **type-2**: three RST/ACKs with sequence numbers X, X+1460 and X+4380
//!   (X = current sequence number of the spoofed sender), TTL and window
//!   increasing cyclically across injections.

use intang_netsim::SimRng;
use intang_packet::{IpProtocol, Ipv4Repr, TcpFlags, TcpRepr, Wire};
use std::net::Ipv4Addr;

/// Which device type injected a reset (for fingerprinting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResetKind {
    Type1Rst,
    Type2RstAck,
}

/// The future-sequence offsets of type-2 injections (§2.1 footnote: offsets
/// hedge against the injections falling behind the real stream).
pub const TYPE2_SEQ_OFFSETS: [u32; 3] = [0, 1460, 4380];

/// The spoofed HTTP blockpage body injected by censors that answer
/// forbidden requests in-band (Turkmenistan, per Nourin et al.) rather
/// than relying on resets alone.
pub const BLOCKPAGE_BODY: &[u8] = b"HTTP/1.1 403 Forbidden\r\n\
Content-Type: text/html\r\n\
Connection: close\r\n\
\r\n\
<html><head><title>403 Forbidden</title></head>\
<body><h1>Forbidden</h1></body></html>";

/// Stateful injector holding the type-2 cyclic counters.
#[derive(Debug)]
pub struct ResetInjector {
    /// Cyclic TTL counter for type-2 (observable as "cyclically increasing
    /// TTL values").
    type2_ttl: u8,
    /// Cyclic window counter for type-2.
    type2_window: u16,
}

impl Default for ResetInjector {
    fn default() -> Self {
        ResetInjector::new()
    }
}

impl ResetInjector {
    pub fn new() -> ResetInjector {
        ResetInjector {
            type2_ttl: 60,
            type2_window: 2000,
        }
    }

    /// One type-1 RST spoofed as `from -> to`, claiming sequence `seq`.
    pub fn type1(&mut self, rng: &mut SimRng, from: (Ipv4Addr, u16), to: (Ipv4Addr, u16), seq: u32) -> Wire {
        let mut tcp = TcpRepr::new(from.1, to.1);
        tcp.flags = TcpFlags::RST;
        tcp.seq = seq;
        tcp.window = rng.next_u16();
        let mut ip = Ipv4Repr::new(from.0, to.0, IpProtocol::Tcp);
        // Random TTL in a plausible injected range.
        ip.ttl = 32 + (rng.next_u16() % 200) as u8;
        ip.ident = rng.next_u16();
        intang_packet::wire::emit_tcp(&ip, &tcp)
    }

    /// The three type-2 RST/ACKs spoofed as `from -> to`. `seq` is the
    /// current sequence number of the spoofed sender; `ack` acknowledges
    /// the victim's stream.
    pub fn type2(&mut self, from: (Ipv4Addr, u16), to: (Ipv4Addr, u16), seq: u32, ack: u32) -> Vec<Wire> {
        TYPE2_SEQ_OFFSETS
            .iter()
            .map(|&off| {
                // Cyclic counters advance once per emitted packet.
                self.type2_ttl = if self.type2_ttl >= 250 { 60 } else { self.type2_ttl + 1 };
                self.type2_window = if self.type2_window >= 60_000 {
                    2000
                } else {
                    self.type2_window + 79
                };
                let mut tcp = TcpRepr::new(from.1, to.1);
                tcp.flags = TcpFlags::RST_ACK;
                tcp.seq = seq.wrapping_add(off);
                tcp.ack = ack;
                tcp.window = self.type2_window;
                let mut ip = Ipv4Repr::new(from.0, to.0, IpProtocol::Tcp);
                ip.ttl = self.type2_ttl;
                intang_packet::wire::emit_tcp(&ip, &tcp)
            })
            .collect()
    }

    /// A spoofed HTTP blockpage served "from" the real server: a PSH/ACK
    /// carrying [`BLOCKPAGE_BODY`] at the server's current sequence number,
    /// acknowledging the victim's stream, so the client renders the censor's
    /// page as if the server sent it (Nourin et al.).
    pub fn blockpage(&mut self, from: (Ipv4Addr, u16), to: (Ipv4Addr, u16), seq: u32, ack: u32) -> Wire {
        let mut tcp = TcpRepr::new(from.1, to.1);
        tcp.flags = TcpFlags::PSH_ACK;
        tcp.seq = seq;
        tcp.ack = ack;
        tcp.window = 8192;
        tcp.payload = BLOCKPAGE_BODY.to_vec();
        let mut ip = Ipv4Repr::new(from.0, to.0, IpProtocol::Tcp);
        ip.ttl = 64;
        intang_packet::wire::emit_tcp(&ip, &tcp)
    }

    /// The forged SYN/ACK (wrong sequence number) a type-2 device injects
    /// when it sees a SYN during the blacklist period (§2.1).
    pub fn forged_synack(&mut self, rng: &mut SimRng, from: (Ipv4Addr, u16), to: (Ipv4Addr, u16), ack: u32) -> Wire {
        let mut tcp = TcpRepr::new(from.1, to.1);
        tcp.flags = TcpFlags::SYN_ACK;
        tcp.seq = rng.next_u32(); // deliberately wrong ISN: obstructs the handshake
        tcp.ack = ack;
        tcp.window = 8192;
        let mut ip = Ipv4Repr::new(from.0, to.0, IpProtocol::Tcp);
        ip.ttl = 64;
        intang_packet::wire::emit_tcp(&ip, &tcp)
    }
}

/// Classify a received segment as a probable GFW injection, the way
/// INTANG's measurement module does: type-1 resets are bare RSTs, type-2
/// are RST/ACKs (cyclic fields across a burst confirm, but flags suffice
/// per §2.1).
pub fn classify_reset(flags: TcpFlags) -> Option<ResetKind> {
    if flags.rst() && flags.ack() {
        Some(ResetKind::Type2RstAck)
    } else if flags.rst() {
        Some(ResetKind::Type1Rst)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_packet::{Ipv4Packet, TcpPacket};

    fn endpoints() -> ((Ipv4Addr, u16), (Ipv4Addr, u16)) {
        ((Ipv4Addr::new(93, 184, 216, 34), 80), (Ipv4Addr::new(10, 0, 0, 1), 40000))
    }

    #[test]
    fn type2_burst_has_paper_offsets() {
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let wires = inj.type2(srv, cli, 1000, 777);
        assert_eq!(wires.len(), 3);
        let seqs: Vec<u32> = wires
            .iter()
            .map(|w| {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                let t = TcpPacket::new_checked(ip.payload()).unwrap();
                assert_eq!(t.flags(), TcpFlags::RST_ACK);
                assert_eq!(t.ack_number(), 777);
                t.seq_number()
            })
            .collect();
        assert_eq!(seqs, vec![1000, 2460, 5380], "X, X+1460, X+4380");
    }

    #[test]
    fn type2_ttl_and_window_increase_cyclically() {
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let mut ttls = Vec::new();
        let mut wins = Vec::new();
        for _ in 0..4 {
            for w in inj.type2(srv, cli, 0, 0) {
                let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
                ttls.push(ip.ttl());
                let t = TcpPacket::new_checked(ip.payload()).unwrap();
                wins.push(t.window());
            }
        }
        assert!(ttls.windows(2).all(|w| w[1] > w[0]), "monotone while below the wrap point");
        assert!(wins.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn type1_fields_are_randomized() {
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let mut rng = SimRng::seed_from(9);
        let a = inj.type1(&mut rng, srv, cli, 5);
        let b = inj.type1(&mut rng, srv, cli, 5);
        let (ipa, ipb) = (Ipv4Packet::new_checked(&a[..]).unwrap(), Ipv4Packet::new_checked(&b[..]).unwrap());
        let ta = TcpPacket::new_checked(ipa.payload()).unwrap();
        let tb = TcpPacket::new_checked(ipb.payload()).unwrap();
        assert!(ta.flags().rst() && !ta.flags().ack());
        assert!(ipa.ttl() != ipb.ttl() || ta.window() != tb.window(), "fields drawn at random");
    }

    #[test]
    fn forged_synack_has_wrong_isn_each_time() {
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let mut rng = SimRng::seed_from(3);
        let a = inj.forged_synack(&mut rng, srv, cli, 42);
        let b = inj.forged_synack(&mut rng, srv, cli, 42);
        let sa = TcpPacket::new_checked(Ipv4Packet::new_checked(&a[..]).unwrap().payload())
            .unwrap()
            .seq_number();
        let sb = TcpPacket::new_checked(Ipv4Packet::new_checked(&b[..]).unwrap().payload())
            .unwrap()
            .seq_number();
        assert_ne!(sa, sb);
    }

    #[test]
    fn every_injected_packet_has_fresh_checksums() {
        // Regression guard for the stale-checksum bug class: type-2 resets
        // mutate `tcp.seq` per offset and the forged SYN/ACK draws a random
        // ISN; all of that must happen *before* checksum emission. Verify
        // both checksums on every packet, and that the shared
        // `refresh_checksums` helper is a byte-level no-op (i.e. nothing
        // was mutated after the checksums were computed).
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let mut rng = SimRng::seed_from(11);
        let mut wires = vec![inj.type1(&mut rng, srv, cli, 0xffff_fff0)];
        wires.extend(inj.type2(srv, cli, u32::MAX - 100, 777));
        wires.push(inj.forged_synack(&mut rng, srv, cli, 42));
        wires.push(inj.blockpage(srv, cli, 0xdead_beef, 42));
        for w in &wires {
            let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
            assert!(ip.verify_header_checksum(), "IP checksum stale on {w:?}");
            let t = TcpPacket::new_checked(ip.payload()).unwrap();
            assert!(t.verify_checksum(ip.src_addr(), ip.dst_addr()), "TCP checksum stale on {w:?}");
            let mut refreshed = w.to_vec();
            assert!(intang_packet::refresh_checksums(&mut refreshed));
            assert_eq!(refreshed, w.to_vec(), "refresh must be a no-op on fresh packets");
        }
    }

    #[test]
    fn blockpage_is_a_psh_ack_carrying_the_403_body() {
        let (srv, cli) = endpoints();
        let mut inj = ResetInjector::new();
        let w = inj.blockpage(srv, cli, 1234, 5678);
        let ip = Ipv4Packet::new_checked(&w[..]).unwrap();
        assert_eq!(ip.src_addr(), srv.0, "spoofed from the server");
        let t = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(t.flags(), TcpFlags::PSH_ACK);
        assert_eq!(t.seq_number(), 1234);
        assert_eq!(t.ack_number(), 5678);
        assert_eq!(t.payload(), BLOCKPAGE_BODY);
        assert!(t.payload().starts_with(b"HTTP/1.1 403"));
        assert_eq!(classify_reset(t.flags()), None, "a blockpage is not a reset");
    }

    #[test]
    fn classifier_distinguishes_types() {
        assert_eq!(classify_reset(TcpFlags::RST), Some(ResetKind::Type1Rst));
        assert_eq!(classify_reset(TcpFlags::RST_ACK), Some(ResetKind::Type2RstAck));
        assert_eq!(classify_reset(TcpFlags::SYN), None);
    }
}
