//! The censor tap: a netsim [`Element`] that observes every packet crossing
//! its position, maintains censor TCBs, runs DPI, and injects resets,
//! forged SYN/ACKs, DNS poison and active probes.
//!
//! Being **on-path**, it always forwards the original packet unmodified.
//! The single exception is IP-level blocking of confirmed Tor bridges,
//! which in reality is enforced by in-path border devices; we document and
//! model that as a drop at the tap.

use crate::blacklist::Blacklist;
use crate::config::{EvictionPolicy, GfwConfig, GfwGeneration};
use crate::dpi::{Automaton, DetectionKind};
use crate::probe::ActiveProber;
use crate::reset::ResetInjector;
use crate::tcb::{CensorState, CensorTcb};
use intang_netsim::{Ctx, Direction, Duration, Element, Instant};
use intang_packet::frag::Reassembler;
use intang_packet::{dns, udp, FourTuple, FxHashMap, IpProtocol, Ipv4Packet, Ipv4Repr, TcpPacket, TcpRepr, Wire};
use intang_telemetry::{span, Counter, GaugeId, GaugeSample, MetricsSheet, SpanId};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::sync::Arc;

/// The address DNS poisoning answers with (a well-known bogus resolver
/// target drawn from the GFW's observed poison pool).
pub const POISON_ADDR: Ipv4Addr = Ipv4Addr::new(243, 185, 187, 39);

/// Observable counters and logs, shared with tests via [`GfwHandle`].
#[derive(Debug, Default)]
pub struct GfwStats {
    pub detections: Vec<(Instant, DetectionKind, FourTuple)>,
    /// TCBs created (from SYN or, evolved model, from SYN/ACK).
    pub tcbs_created: u64,
    /// TCBs torn down by RST/FIN processing.
    pub tcbs_removed: u64,
    /// TCBs evicted because the table hit capacity (§2.1 cost pressure).
    pub tcbs_evicted: u64,
    /// Transitions into the resync state (§4 evolved behaviors).
    pub tcb_resyncs: u64,
    pub resets_injected: u64,
    /// Of `resets_injected`: resets fired by the type-1 device.
    pub type1_resets_injected: u64,
    /// Of `resets_injected`: resets fired by the type-2 device.
    pub type2_resets_injected: u64,
    pub forged_synacks: u64,
    pub dns_poisoned: u64,
    /// IP pairs added to the §2.1 blacklist.
    pub blacklist_inserts: u64,
    pub blacklist_hits: u64,
    /// Of the blacklist hits that drew a disruption volley: hits by a flow
    /// *other* than the one whose detection inserted the pair — an
    /// innocent neighbor reset by someone else's keyword (§2.1 collateral).
    pub blacklist_collateral_resets: u64,
    /// Resync-storm episodes: `resync_storm_threshold` TCB
    /// resynchronizations within one `resync_storm_window`.
    pub resync_storms: u64,
    pub probes_launched: u64,
    pub ip_blocked_drops: u64,
    /// Payload bytes run through the DPI automaton.
    pub dpi_bytes_scanned: u64,
    /// Chaos gates (fault injection): reset volleys withheld because the
    /// per-vantage-point injection rate said no.
    pub injections_suppressed: u64,
    /// Chaos gates: volleys withheld because the device instance flapped.
    pub device_flaps: u64,
    /// Blacklist insertions whose duration was jittered.
    pub blacklist_jitter_draws: u64,
}

struct GfwCore {
    cfg: GfwConfig,
    aut: Arc<Automaton>,
    /// Simcheck shadow domain for this device's TCB table (0 when checking
    /// is disabled).
    sc_domain: u64,
    tcbs: FxHashMap<FourTuple, CensorTcb>,
    /// Eviction order: `(key, stamp)` pairs, oldest candidate at the
    /// front. Under FIFO eviction only insertions push entries; under LRU
    /// every touch pushes a fresh stamp and stale entries (whose stamp no
    /// longer matches the TCB's `touched`) are skipped lazily at eviction
    /// time and swept by [`GfwCore::compact_tcb_order`].
    tcb_order: std::collections::VecDeque<(FourTuple, u64)>,
    /// Monotonic stamp source for `tcb_order` entries.
    touch_seq: u64,
    /// Timestamps of recent resync transitions (the storm window).
    resync_window: std::collections::VecDeque<Instant>,
    blacklist: Blacklist,
    injector: ResetInjector,
    prober: ActiveProber,
    ip_reasm: Reassembler,
    stats: GfwStats,
    /// Path-sticky draw (§4/§8: per client-server pair and period, the
    /// RST→resync behavior is consistent): decided on first RST.
    rst_resync_sticky: Option<bool>,
    rst_resync_hs_sticky: Option<bool>,
}

/// The censor tap element. Clone-cheap handles ([`GfwHandle`]) give tests
/// and experiments read access to the shared core.
pub struct GfwElement {
    core: Rc<RefCell<GfwCore>>,
    label: String,
}

/// Read/inspection handle onto a [`GfwElement`]'s core.
#[derive(Clone)]
pub struct GfwHandle {
    core: Rc<RefCell<GfwCore>>,
}

impl GfwElement {
    pub fn new(cfg: GfwConfig) -> (GfwElement, GfwHandle) {
        GfwElement::labeled(cfg, "GFW")
    }

    pub fn labeled(cfg: GfwConfig, label: &str) -> (GfwElement, GfwHandle) {
        // The paper-default rule database compiles to the same automaton
        // every time; reuse the process-wide shared copy instead of
        // rebuilding it per element (one build per trial adds up fast in a
        // sweep). Custom rule sets still get their own build. `Arc::ptr_eq`
        // catches every config built from `GfwConfig::evolved`/`old` without
        // touching the rules; the deep comparison (against the shared static,
        // not a fresh copy) covers `with_rules` callers that happen to pass
        // the paper set.
        let shared = crate::dpi::shared_paper_rules();
        let aut = if Arc::ptr_eq(&cfg.rules, &shared) || *cfg.rules == *shared {
            crate::dpi::shared_paper_default()
        } else {
            Arc::new(Automaton::build(&cfg.rules))
        };
        GfwElement::with_automaton(cfg, aut, label)
    }

    /// Build with a pre-compiled automaton, sharing it across elements (and
    /// threads — the automaton is immutable after construction).
    pub fn with_automaton(cfg: GfwConfig, aut: Arc<Automaton>, label: &str) -> (GfwElement, GfwHandle) {
        let ip_reasm = Reassembler::new(cfg.ip_frag_overlap);
        let core = Rc::new(RefCell::new(GfwCore {
            cfg,
            aut,
            sc_domain: intang_simcheck::new_tcb_domain(),
            tcbs: FxHashMap::default(),
            tcb_order: std::collections::VecDeque::new(),
            touch_seq: 0,
            resync_window: std::collections::VecDeque::new(),
            blacklist: Blacklist::new(),
            injector: ResetInjector::new(),
            prober: ActiveProber::new(),
            ip_reasm,
            stats: GfwStats::default(),
            rst_resync_sticky: None,
            rst_resync_hs_sticky: None,
        }));
        (
            GfwElement {
                core: core.clone(),
                label: label.to_string(),
            },
            GfwHandle { core },
        )
    }
}

impl GfwHandle {
    pub fn detections(&self) -> Vec<(Instant, DetectionKind, FourTuple)> {
        self.core.borrow().stats.detections.clone()
    }

    pub fn detected_any(&self) -> bool {
        !self.core.borrow().stats.detections.is_empty()
    }

    pub fn resets_injected(&self) -> u64 {
        self.core.borrow().stats.resets_injected
    }

    pub fn type1_resets_injected(&self) -> u64 {
        self.core.borrow().stats.type1_resets_injected
    }

    pub fn type2_resets_injected(&self) -> u64 {
        self.core.borrow().stats.type2_resets_injected
    }

    pub fn tcb_resyncs(&self) -> u64 {
        self.core.borrow().stats.tcb_resyncs
    }

    pub fn dpi_bytes_scanned(&self) -> u64 {
        self.core.borrow().stats.dpi_bytes_scanned
    }

    pub fn forged_synacks(&self) -> u64 {
        self.core.borrow().stats.forged_synacks
    }

    pub fn dns_poisoned(&self) -> u64 {
        self.core.borrow().stats.dns_poisoned
    }

    pub fn blacklist_hits(&self) -> u64 {
        self.core.borrow().stats.blacklist_hits
    }

    /// Blacklist volleys that landed on a flow other than the pair's
    /// original offender.
    pub fn blacklist_collateral_resets(&self) -> u64 {
        self.core.borrow().stats.blacklist_collateral_resets
    }

    /// Resync-storm episodes counted by the window detector.
    pub fn resync_storms(&self) -> u64 {
        self.core.borrow().stats.resync_storms
    }

    /// TCBs evicted under capacity pressure.
    pub fn tcbs_evicted(&self) -> u64 {
        self.core.borrow().stats.tcbs_evicted
    }

    pub fn probes_launched(&self) -> u64 {
        self.core.borrow().stats.probes_launched
    }

    pub fn ip_blocked(&self, ip: Ipv4Addr) -> bool {
        self.core.borrow().prober.is_blocked(ip)
    }

    /// The censor's tracking state for a flow, if a TCB exists.
    pub fn tcb_state(&self, tuple: FourTuple) -> Option<CensorState> {
        self.core.borrow().tcbs.get(&tuple.canonical()).map(|t| t.state)
    }

    pub fn has_tcb(&self, tuple: FourTuple) -> bool {
        self.core.borrow().tcbs.contains_key(&tuple.canonical())
    }

    /// The censor's believed client for a flow (detects TCB reversal).
    pub fn believed_client(&self, tuple: FourTuple) -> Option<(Ipv4Addr, u16)> {
        self.core.borrow().tcbs.get(&tuple.canonical()).map(|t| t.client)
    }

    pub fn tcb_count(&self) -> usize {
        self.core.borrow().tcbs.len()
    }

    /// Force the sticky RST behavior for deterministic tests.
    pub fn force_rst_resync(&self, resync: bool) {
        let mut core = self.core.borrow_mut();
        core.rst_resync_sticky = Some(resync);
        core.rst_resync_hs_sticky = Some(resync);
    }
}

impl Element for GfwElement {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        let _s = span(SpanId::Gfw);
        let mut core = self.core.borrow_mut();

        // IP-level blocking of confirmed Tor bridges (documented in-path
        // exception to the on-path model).
        if let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) {
            if core.prober.is_blocked(ip.src_addr()) || core.prober.is_blocked(ip.dst_addr()) {
                core.stats.ip_blocked_drops += 1;
                return; // dropped
            }
        }

        // On-path: forward the original packet untouched, then analyze a copy.
        ctx.send(dir, wire.clone());
        core.analyze(ctx, dir, wire);
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        let core = self.core.borrow();
        let s = &core.stats;
        m.add(Counter::GfwTcbsCreated, s.tcbs_created);
        m.add(Counter::GfwTcbsRemoved, s.tcbs_removed);
        m.add(Counter::GfwTcbsEvicted, s.tcbs_evicted);
        m.add(Counter::GfwTcbResyncs, s.tcb_resyncs);
        m.add(Counter::GfwDetections, s.detections.len() as u64);
        m.add(Counter::GfwType1ResetsInjected, s.type1_resets_injected);
        m.add(Counter::GfwType2ResetsInjected, s.type2_resets_injected);
        m.add(Counter::GfwForgedSynacks, s.forged_synacks);
        m.add(Counter::GfwDnsPoisoned, s.dns_poisoned);
        m.add(Counter::GfwBlacklistInserts, s.blacklist_inserts);
        m.add(Counter::GfwBlacklistHits, s.blacklist_hits);
        m.add(Counter::GfwBlacklistCollateralResets, s.blacklist_collateral_resets);
        m.add(Counter::GfwResyncStorms, s.resync_storms);
        m.add(Counter::GfwProbesLaunched, s.probes_launched);
        m.add(Counter::GfwIpBlockedDrops, s.ip_blocked_drops);
        m.add(Counter::GfwDpiBytesScanned, s.dpi_bytes_scanned);
        m.add(Counter::GfwInjectionsSuppressed, s.injections_suppressed);
        m.add(Counter::GfwDeviceFlaps, s.device_flaps);
        m.add(Counter::GfwBlacklistJitterApplied, s.blacklist_jitter_draws);
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        let core = self.core.borrow();
        let id = if core.cfg.generation == GfwGeneration::Evolved {
            GaugeId::GfwTcbsEvolved
        } else {
            GaugeId::GfwTcbsOld
        };
        g.add(id, core.tcbs.len() as u64);
        g.add(GaugeId::GfwBlacklist, core.blacklist.len() as u64);
    }
}

impl GfwCore {
    fn analyze(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        // The censor reassembles IP fragments itself (first-wins, §3.2).
        let Some(wire) = self.ip_reasm.push(wire) else { return };
        // The cached header index: the forwarded copy shares this buffer, so
        // the downstream endpoint's parse hits the same memoized view.
        let Some(hdr) = wire.headers() else { return };
        if self.cfg.validate_ip_total_len && !Ipv4Packet::new_unchecked(&wire[..]).total_len_consistent() {
            return;
        }
        match hdr.protocol {
            IpProtocol::Udp => self.analyze_udp(ctx, dir, &Ipv4Packet::new_unchecked(&wire[..])),
            IpProtocol::Tcp => self.analyze_tcp(ctx, dir, &wire, &hdr),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // UDP: DNS poisoning (§2.1).
    // ------------------------------------------------------------------
    fn analyze_udp(&mut self, ctx: &mut Ctx<'_>, dir: Direction, ip: &Ipv4Packet<&[u8]>) {
        if !self.cfg.dns_poison || dir != Direction::ToServer {
            return;
        }
        let Ok(u) = udp::UdpPacket::new_checked(ip.payload()) else { return };
        if u.dst_port() != 53 {
            return;
        }
        let Ok(query) = dns::DnsMessage::decode(u.payload()) else { return };
        if query.is_response {
            return;
        }
        let Some(name) = query.first_name() else { return };
        self.stats.dpi_bytes_scanned += name.len() as u64;
        let domain_hit = {
            let _s = span(SpanId::DpiScan);
            self.aut.scan(name.as_bytes()).contains(&DetectionKind::Domain)
        };
        if !domain_hit {
            return;
        }
        // Inject a forged response "from" the resolver with a bogus A record.
        let forged = dns::DnsMessage::answer_a(&query, POISON_ADDR, 300);
        let resp = udp::UdpRepr::new(53, u.src_port(), forged.encode());
        let ipr = Ipv4Repr::new(ip.dst_addr(), ip.src_addr(), IpProtocol::Udp);
        let wire = Wire::from_vec(ipr.emit(&resp.emit(ip.dst_addr(), ip.src_addr())));
        self.stats.dns_poisoned += 1;
        self.stats.detections.push((
            ctx.now,
            DetectionKind::Domain,
            FourTuple::new(ip.src_addr(), u.src_port(), ip.dst_addr(), 53),
        ));
        ctx.send_delayed(Direction::ToClient, wire, self.cfg.reaction_delay);
    }

    // ------------------------------------------------------------------
    // TCP: TCB lifecycle, DPI, resets.
    // ------------------------------------------------------------------
    fn analyze_tcp(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: &Wire, hdr: &intang_packet::HeaderIndex) {
        let Some(seg) = hdr.tcp().copied() else { return };
        let l4 = &wire[usize::from(hdr.ip_payload_start)..usize::from(hdr.ip_payload_end)];
        // Discrepancy checks the real GFW does NOT perform (all default-off).
        if self.cfg.validate_checksum && !TcpPacket::new_unchecked(l4).verify_checksum(hdr.src, hdr.dst) {
            return;
        }
        if self.cfg.check_md5
            && TcpPacket::new_unchecked(l4)
                .options()
                .iter()
                .any(|o| matches!(o, intang_packet::TcpOption::Md5Sig(_)))
        {
            return;
        }
        let payload = &wire[usize::from(seg.payload_start)..usize::from(seg.payload_end)];

        let src = (hdr.src, seg.src_port);
        let dst = (hdr.dst, seg.dst_port);
        let tuple = FourTuple::new(src.0, src.1, dst.0, dst.1);
        let key = tuple.canonical();

        // Route packets addressed to our probers into the probe logic. The
        // prober wants a full repr; this path is rare enough to pay for one.
        if self.prober.owns(dst.0) {
            let repr = TcpRepr::parse(&TcpPacket::new_unchecked(l4));
            for inj in self.prober.on_packet_to_prober(src, dst, &repr) {
                ctx.send_delayed(Direction::ToServer, inj, self.cfg.reaction_delay);
            }
            return;
        }

        // Blacklisted pair: sustained disruption (§2.1). Volleys drawn by
        // a flow other than the pair's original offender are collateral —
        // the cross-flow coupling a shared blacklist creates.
        if let Some(collateral) = self.blacklist.hit(src.0, dst.0, ctx.now, Some(tuple)) {
            self.stats.blacklist_hits += 1;
            if seg.flags.syn() && !seg.flags.ack() && self.cfg.type2 {
                let forged = self.injector.forged_synack(ctx.rng, dst, src, seg.seq.wrapping_add(1));
                self.stats.forged_synacks += 1;
                ctx.send_delayed(dir.reversed(), forged, self.cfg.reaction_delay);
                if collateral {
                    self.stats.blacklist_collateral_resets += 1;
                }
            } else if !seg.flags.rst() {
                self.inject_pair_resets(ctx, dir, src, dst, seg.seq, seg.ack);
                if collateral {
                    self.stats.blacklist_collateral_resets += 1;
                }
            }
            // Tracking continues below; repeated detections extend the list.
        }

        // ---- TCB lifecycle -------------------------------------------------
        let evolved = self.cfg.generation == GfwGeneration::Evolved;

        if !self.tcbs.contains_key(&key) {
            if seg.flags.syn() && !seg.flags.ack() {
                let mut tcb = CensorTcb::from_syn(src, dst, seg.seq, self.cfg.segment_overlap);
                tcb.overloaded = ctx.rng.chance(self.cfg.overload_miss_prob);
                self.insert_tcb(key, tcb);
            } else if seg.flags.syn() && seg.flags.ack() && evolved {
                // Hypothesized New Behavior 1: TCB from a SYN/ACK. The
                // source is assumed to be the server.
                let mut tcb = CensorTcb::from_synack(src, dst, seg.seq, seg.ack, self.cfg.segment_overlap);
                tcb.overloaded = ctx.rng.chance(self.cfg.overload_miss_prob);
                self.insert_tcb(key, tcb);
            }
            return;
        }

        // Work on the existing TCB.
        if self.cfg.eviction == EvictionPolicy::Lru {
            self.touch_tcb(key);
        }
        let mut remove = false;
        let mut resynced = false;
        let mut detections: Vec<DetectionKind> = Vec::new();
        {
            let tcb = self.tcbs.get_mut(&key).expect("checked above");
            let from_client = tcb.is_client(src.0, src.1);

            if seg.flags.rst() {
                // Hypothesized New Behavior 3: RST may resync instead of
                // tearing down; sticky per pair/period.
                let resync = if evolved {
                    let prob = if tcb.in_handshake {
                        self.cfg.rst_resync_prob_handshake
                    } else {
                        self.cfg.rst_resync_prob
                    };
                    let slot = if tcb.in_handshake {
                        &mut self.rst_resync_hs_sticky
                    } else {
                        &mut self.rst_resync_sticky
                    };
                    *slot.get_or_insert_with(|| ctx.rng.chance(prob))
                } else {
                    false
                };
                if resync {
                    if tcb.state != CensorState::Resync {
                        self.stats.tcb_resyncs += 1;
                        resynced = true;
                    }
                    tcb.state = CensorState::Resync;
                    intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::Rst);
                } else {
                    remove = true;
                }
            } else if seg.flags.fin() && self.cfg.generation == GfwGeneration::Old {
                // Prior Assumption 3: FIN tears the TCB down. The evolved
                // model ignores FIN (§4).
                remove = true;
            } else if seg.flags.syn() && tcb.created_by_synack {
                // Reversal TCBs ignore all handshake packets (§5.2).
            } else if seg.flags.syn() && !seg.flags.ack() {
                if from_client {
                    // An identical duplicate (same ISN) is a plain
                    // retransmission, not a "multiple SYNs" signal — the
                    // paper's resync probes vary the sequence number.
                    if seg.seq != tcb.client_isn {
                        tcb.syn_count += 1;
                        if evolved && tcb.syn_count > 1 {
                            // Hypothesized New Behavior 2(a).
                            if tcb.state != CensorState::Resync {
                                self.stats.tcb_resyncs += 1;
                                resynced = true;
                            }
                            tcb.state = CensorState::Resync;
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::MultipleSyn);
                        }
                        // Prior model: later SYNs are ignored, the first
                        // sequence number stands (Prior Assumption 2).
                    }
                }
            } else if seg.flags.syn() && seg.flags.ack() {
                if !from_client {
                    let retransmission = tcb.last_synack == Some((seg.seq, seg.ack));
                    if retransmission {
                        // SYN/ACK retransmissions don't perturb the TCB.
                    } else if tcb.state == CensorState::Resync {
                        // §4: a server SYN/ACK resolves resynchronization.
                        tcb.resync_to(seg.ack);
                        intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::ServerSynAck);
                        tcb.synack_count = 1;
                        tcb.server_next = seg.seq.wrapping_add(1);
                        tcb.last_synack = Some((seg.seq, seg.ack));
                    } else {
                        tcb.synack_count += 1;
                        tcb.server_next = seg.seq.wrapping_add(1);
                        tcb.last_synack = Some((seg.seq, seg.ack));
                        if evolved && (tcb.synack_count > 1 || seg.ack != tcb.client_isn.wrapping_add(1)) {
                            // Hypothesized New Behavior 2(b)/(c).
                            if tcb.state != CensorState::Resync {
                                self.stats.tcb_resyncs += 1;
                                resynced = true;
                            }
                            tcb.state = CensorState::Resync;
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::SynAckMismatch);
                        } else if evolved {
                            // The evolved censor anchors the client stream
                            // at the SYN/ACK's ACK (§5.2).
                            tcb.resync_to(seg.ack);
                        }
                        // Prior model: the first SYN's sequence stands.
                    }
                }
            } else {
                // Data / pure ACK.
                if from_client {
                    // §8 hardened-censor checks (all off on the real GFW):
                    // a wrong (future) ACK number or a PAWS-stale timestamp
                    // makes the hardened censor ignore the segment like a
                    // server would.
                    if self.cfg.check_ack
                        && seg.flags.ack()
                        && tcb.server_next != 0
                        && intang_packet::tcp::seq::gt(seg.ack, tcb.server_next)
                    {
                        return;
                    }
                    let tsval = TcpPacket::new_unchecked(l4).options().iter().find_map(|o| match o {
                        intang_packet::TcpOption::Timestamps { tsval, .. } => Some(*tsval),
                        _ => None,
                    });
                    if self.cfg.check_timestamp {
                        if let (Some(recent), Some(tsval)) = (tcb.ts_recent, tsval) {
                            if recent.wrapping_sub(tsval) < 0x8000_0000 && recent != tsval {
                                return;
                            }
                        }
                    }
                    if let Some(tsval) = tsval {
                        let newer = tcb.ts_recent.is_none_or(|r| tsval.wrapping_sub(r) < 0x8000_0000);
                        if newer {
                            tcb.ts_recent = Some(tsval);
                        }
                    }
                    if seg.flags.ack() {
                        tcb.in_handshake = false;
                    }
                    if !payload.is_empty() {
                        if tcb.state == CensorState::Resync {
                            // §4: the next client data packet re-anchors.
                            tcb.resync_to(seg.seq);
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::ClientData);
                        }
                        self.stats.dpi_bytes_scanned += payload.len() as u64;
                        let _s = span(SpanId::DpiScan);
                        detections = tcb.feed_client_data(&self.aut, seg.seq, payload, self.cfg.type1, self.cfg.type2);
                    }
                } else {
                    // Server→client data: never a resync trigger (§4).
                    let end = seg.seq.wrapping_add(payload.len() as u32);
                    if intang_packet::tcp::seq::gt(end, tcb.server_next) {
                        tcb.server_next = end;
                    }
                    if self.cfg.censor_responses && !payload.is_empty() {
                        self.stats.dpi_bytes_scanned += payload.len() as u64;
                        let _s = span(SpanId::DpiScan);
                        detections = tcb.feed_server_data(&self.aut, payload);
                    }
                }
            }
        }

        if resynced {
            self.note_resync(ctx.now);
        }
        if remove {
            self.tcbs.remove(&key);
            self.stats.tcbs_removed += 1;
            intang_simcheck::tcb_removed(self.sc_domain, key);
            return;
        }
        if !detections.is_empty() {
            self.act_on_detections(ctx, key, detections);
        }
    }

    /// Record one resync transition into the storm window; when the window
    /// fills to the configured threshold, count a storm and clear it (so a
    /// sustained burst counts once per threshold-batch).
    fn note_resync(&mut self, now: Instant) {
        let threshold = self.cfg.resync_storm_threshold;
        if threshold == 0 {
            return;
        }
        let cutoff = now.micros().saturating_sub(self.cfg.resync_storm_window.micros());
        while self.resync_window.front().is_some_and(|t| t.micros() < cutoff) {
            self.resync_window.pop_front();
        }
        self.resync_window.push_back(now);
        if self.resync_window.len() >= threshold {
            self.stats.resync_storms += 1;
            self.resync_window.clear();
        }
    }

    /// LRU bookkeeping: stamp the TCB and append a fresh eviction-order
    /// entry; the entry it supersedes goes stale and is skipped at
    /// eviction time. Compaction keeps the lazy deque from growing without
    /// bound on long runs.
    fn touch_tcb(&mut self, key: FourTuple) {
        self.touch_seq += 1;
        let Some(tcb) = self.tcbs.get_mut(&key) else { return };
        tcb.touched = self.touch_seq;
        self.tcb_order.push_back((key, self.touch_seq));
        if self.tcb_order.len() > self.tcbs.len() * 4 + 16 {
            self.compact_tcb_order();
        }
    }

    /// Drop stale `tcb_order` entries (stamp no longer current), keeping
    /// relative order of the fresh ones.
    fn compact_tcb_order(&mut self) {
        let tcbs = &self.tcbs;
        self.tcb_order.retain(|(k, stamp)| tcbs.get(k).is_some_and(|t| t.touched == *stamp));
    }

    /// Insert a TCB, evicting per the configured policy when the table is
    /// full: FIFO pops the oldest insertion, LRU pops the stalest touch.
    fn insert_tcb(&mut self, key: FourTuple, tcb: CensorTcb) {
        while self.tcbs.len() >= self.cfg.max_tcbs {
            let Some((victim, stamp)) = self.tcb_order.pop_front() else { break };
            // Stale entries: the key was touched more recently (LRU), or
            // its TCB was already torn down. Skip without counting.
            if self.tcbs.get(&victim).is_some_and(|t| t.touched == stamp) {
                self.tcbs.remove(&victim);
                self.stats.tcbs_evicted += 1;
                intang_simcheck::tcb_removed(self.sc_domain, victim);
            }
        }
        self.touch_seq += 1;
        let mut tcb = tcb;
        tcb.touched = self.touch_seq;
        self.tcbs.insert(key, tcb);
        self.tcb_order.push_back((key, self.touch_seq));
        self.stats.tcbs_created += 1;
        intang_simcheck::tcb_created(self.sc_domain, key);
    }

    fn act_on_detections(&mut self, ctx: &mut Ctx<'_>, key: FourTuple, kinds: Vec<DetectionKind>) {
        intang_simcheck::tcb_detection(self.sc_domain, key);
        let (client, server, client_next, server_next, already) = {
            let tcb = self.tcbs.get(&key).expect("tcb present");
            (tcb.client, tcb.server, tcb.client_next(), tcb.server_next, tcb.detected)
        };
        for kind in kinds {
            self.stats
                .detections
                .push((ctx.now, kind, FourTuple::new(client.0, client.1, server.0, server.1)));
            match kind {
                DetectionKind::HttpKeyword | DetectionKind::Domain => {
                    if !already {
                        self.inject_detection_resets(ctx, client, server, client_next, server_next);
                        if self.cfg.type2 {
                            let duration = self.chaos_blacklist_duration(ctx);
                            let origin = FourTuple::new(client.0, client.1, server.0, server.1);
                            self.blacklist.add(client.0, server.0, ctx.now, duration, origin);
                            self.stats.blacklist_inserts += 1;
                        }
                        self.tcbs.get_mut(&key).expect("tcb present").detected = true;
                    }
                }
                DetectionKind::TorHandshake => {
                    if self.cfg.tor_filter && self.cfg.active_probing {
                        if let Some(syn) = self.prober.on_tor_fingerprint(server) {
                            self.stats.probes_launched += 1;
                            // Probes launch shortly after the fingerprint.
                            ctx.send_delayed(Direction::ToServer, syn, Duration::from_millis(50));
                        }
                    }
                }
                DetectionKind::VpnHandshake => {
                    if self.cfg.vpn_dpi && !already {
                        self.inject_detection_resets(ctx, client, server, client_next, server_next);
                        self.tcbs.get_mut(&key).expect("tcb present").detected = true;
                    }
                }
            }
        }
    }

    /// Chaos gate for one device instance's injection volley. With the
    /// inert defaults (`chaos_device_flap_prob` 0.0, `chaos_rst_inject_prob`
    /// 1.0) both `chance` calls short-circuit without drawing randomness,
    /// so fault-free runs stay byte-identical. Per Ensafi et al., both the
    /// flap and the injection rate are drawn per volley: the same vantage
    /// point sees the censor react inconsistently over time.
    fn chaos_volley_fires(&mut self, ctx: &mut Ctx<'_>) -> bool {
        if ctx.rng.chance(self.cfg.chaos_device_flap_prob) {
            self.stats.device_flaps += 1;
            self.stats.injections_suppressed += 1;
            return false;
        }
        if !ctx.rng.chance(self.cfg.chaos_rst_inject_prob) {
            self.stats.injections_suppressed += 1;
            return false;
        }
        true
    }

    /// Blacklist duration with chaos jitter applied (inert at 0.0).
    fn chaos_blacklist_duration(&mut self, ctx: &mut Ctx<'_>) -> Duration {
        let j = self.cfg.chaos_blacklist_jitter;
        if j <= 0.0 {
            return self.cfg.blacklist_duration;
        }
        let base = self.cfg.blacklist_duration.micros();
        let span = (base as f64 * j.min(1.0)) as u64;
        self.stats.blacklist_jitter_draws += 1;
        Duration::from_micros(ctx.rng.range_u64(base.saturating_sub(span), base + span + 1))
    }

    /// The full §2.1 reset volley, both directions.
    fn inject_detection_resets(
        &mut self,
        ctx: &mut Ctx<'_>,
        client: (Ipv4Addr, u16),
        server: (Ipv4Addr, u16),
        client_next: u32,
        server_next: u32,
    ) {
        let d = self.cfg.reaction_delay;
        if self.cfg.type1 && self.chaos_volley_fires(ctx) {
            // One RST each way, spoofed from the opposite endpoint.
            let to_client = self.injector.type1(ctx.rng, server, client, server_next);
            let to_server = self.injector.type1(ctx.rng, client, server, client_next);
            ctx.send_delayed(Direction::ToClient, to_client, d);
            ctx.send_delayed(Direction::ToServer, to_server, d);
            self.stats.resets_injected += 2;
            self.stats.type1_resets_injected += 2;
        }
        if self.cfg.type2 && self.chaos_volley_fires(ctx) {
            for w in self.injector.type2(server, client, server_next, client_next) {
                ctx.send_delayed(Direction::ToClient, w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
            for w in self.injector.type2(client, server, client_next, server_next) {
                ctx.send_delayed(Direction::ToServer, w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
        }
    }

    /// Resets fired at arbitrary packets during the blacklist period.
    fn inject_pair_resets(&mut self, ctx: &mut Ctx<'_>, dir: Direction, src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16), seq: u32, ack: u32) {
        let d = self.cfg.reaction_delay;
        if self.cfg.type1 && self.chaos_volley_fires(ctx) {
            let w = self.injector.type1(ctx.rng, dst, src, ack);
            ctx.send_delayed(dir.reversed(), w, d);
            self.stats.resets_injected += 1;
            self.stats.type1_resets_injected += 1;
        }
        if self.cfg.type2 && self.chaos_volley_fires(ctx) {
            // Reset the sender of the observed packet (spoofed from its peer).
            for w in self.injector.type2(dst, src, ack, seq) {
                ctx.send_delayed(dir.reversed(), w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
        }
    }
}
