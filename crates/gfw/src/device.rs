//! The censor tap: a netsim [`Element`] that observes every packet crossing
//! its position, maintains censor TCBs, runs DPI, and injects resets,
//! forged SYN/ACKs, DNS poison and active probes.
//!
//! Being **on-path**, it always forwards the original packet unmodified.
//! The single exception is IP-level blocking of confirmed Tor bridges,
//! which in reality is enforced by in-path border devices; we document and
//! model that as a drop at the tap.

use crate::blacklist::Blacklist;
use crate::config::{EvictionPolicy, GfwConfig, GfwGeneration};
use crate::dpi::{Automaton, DetectionKind};
use crate::probe::ActiveProber;
use crate::reset::ResetInjector;
use crate::tcb::{CensorState, CensorTcb};
use intang_netsim::{Ctx, Direction, Duration, Element, Instant};
use intang_packet::frag::Reassembler;
use intang_packet::{dns, udp, FourTuple, FxHashMap, IpProtocol, Ipv4Packet, Ipv4Repr, TcpPacket, TcpRepr, Wire};
use intang_telemetry::{span, Counter, GaugeId, GaugeSample, MetricsSheet, SpanId};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;
use std::sync::Arc;

/// The address DNS poisoning answers with (a well-known bogus resolver
/// target drawn from the GFW's observed poison pool).
pub const POISON_ADDR: Ipv4Addr = Ipv4Addr::new(243, 185, 187, 39);

/// Observable counters and logs, shared with tests via [`GfwHandle`].
#[derive(Debug, Default)]
pub struct GfwStats {
    pub detections: Vec<(Instant, DetectionKind, FourTuple)>,
    /// TCBs created (from SYN or, evolved model, from SYN/ACK).
    pub tcbs_created: u64,
    /// TCBs torn down by RST/FIN processing.
    pub tcbs_removed: u64,
    /// TCBs evicted because the table hit capacity (§2.1 cost pressure).
    pub tcbs_evicted: u64,
    /// Transitions into the resync state (§4 evolved behaviors).
    pub tcb_resyncs: u64,
    pub resets_injected: u64,
    /// Of `resets_injected`: resets fired by the type-1 device.
    pub type1_resets_injected: u64,
    /// Of `resets_injected`: resets fired by the type-2 device.
    pub type2_resets_injected: u64,
    pub forged_synacks: u64,
    /// Spoofed HTTP blockpages injected on detection (profile-driven
    /// censors with `inject_blockpage`; the GFW models never do this).
    pub blockpages_injected: u64,
    pub dns_poisoned: u64,
    /// IP pairs added to the §2.1 blacklist.
    pub blacklist_inserts: u64,
    pub blacklist_hits: u64,
    /// Of the blacklist hits that drew a disruption volley: hits by a flow
    /// *other* than the one whose detection inserted the pair — an
    /// innocent neighbor reset by someone else's keyword (§2.1 collateral).
    pub blacklist_collateral_resets: u64,
    /// Resync-storm episodes: `resync_storm_threshold` TCB
    /// resynchronizations within one `resync_storm_window`.
    pub resync_storms: u64,
    pub probes_launched: u64,
    pub ip_blocked_drops: u64,
    /// Payload bytes run through the DPI automaton.
    pub dpi_bytes_scanned: u64,
    /// Chaos gates (fault injection): reset volleys withheld because the
    /// per-vantage-point injection rate said no.
    pub injections_suppressed: u64,
    /// Chaos gates: volleys withheld because the device instance flapped.
    pub device_flaps: u64,
    /// Blacklist insertions whose duration was jittered.
    pub blacklist_jitter_draws: u64,
}

/// One censor-state lane: the slice of device state that couples flows to
/// each other. With `GfwConfig::state_shards == 1` there is exactly one
/// lane and the device behaves byte-for-byte like the historical global
/// implementation. With more, every packet is routed to the lane of its
/// address pair ([`intang_packet::pair_shard`]), so flows in different
/// lanes share *nothing* mutable — the property that lets a sharded world
/// be split into parallel event domains without changing any emitted byte.
struct CensorLane {
    /// `None` in the single-lane legacy device: every stochastic draw
    /// comes from the simulation RNG, exactly as before sharding existed.
    /// `Some` in sharded mode: a private stream seeded from
    /// `(shard_seed, lane index)`, invariant under domain grouping.
    rng: Option<intang_netsim::SimRng>,
    injector: ResetInjector,
    /// Eviction order: `(key, stamp)` pairs, oldest candidate at the
    /// front. Under FIFO eviction only insertions push entries; under LRU
    /// every touch pushes a fresh stamp and stale entries (whose stamp no
    /// longer matches the TCB's `touched`) are skipped lazily at eviction
    /// time and swept by the compaction in [`GfwCore::touch_tcb`].
    tcb_order: std::collections::VecDeque<(FourTuple, u64)>,
    /// Monotonic stamp source for `tcb_order` entries.
    touch_seq: u64,
    /// Timestamps of recent resync transitions (the storm window).
    resync_window: std::collections::VecDeque<Instant>,
    /// Path-sticky draw (§4/§8: per client-server pair and period, the
    /// RST→resync behavior is consistent): decided on first RST.
    rst_resync_sticky: Option<bool>,
    rst_resync_hs_sticky: Option<bool>,
    /// TCBs in the (shared) table whose pair hashes to this lane.
    tcb_count: usize,
    /// This lane's share of `max_tcbs`: the table capacity is partitioned
    /// deterministically, `total/n + (i < total % n)`, never rebalanced —
    /// reconciling a global budget across parallel domains would cost a
    /// barrier per eviction and break byte-identity.
    quota: usize,
}

impl Default for CensorLane {
    fn default() -> CensorLane {
        CensorLane {
            rng: None,
            injector: ResetInjector::new(),
            tcb_order: std::collections::VecDeque::new(),
            touch_seq: 0,
            resync_window: std::collections::VecDeque::new(),
            rst_resync_sticky: None,
            rst_resync_hs_sticky: None,
            tcb_count: 0,
            quota: usize::MAX,
        }
    }
}

/// Pick the RNG a lane draws from: its private stream when sharded, the
/// simulation RNG in the legacy single-lane device.
#[inline]
fn lane_rng<'a>(rng: &'a mut Option<intang_netsim::SimRng>, ctx: &'a mut Ctx<'_>) -> &'a mut intang_netsim::SimRng {
    match rng {
        Some(r) => r,
        None => ctx.rng,
    }
}

struct GfwCore {
    cfg: GfwConfig,
    aut: Arc<Automaton>,
    /// Simcheck shadow domain for this device's TCB table (0 when checking
    /// is disabled).
    sc_domain: u64,
    tcbs: FxHashMap<FourTuple, CensorTcb>,
    /// Censor-state lanes; index = `pair_shard(src, dst, lanes.len())`.
    lanes: Vec<CensorLane>,
    blacklist: Blacklist,
    prober: ActiveProber,
    ip_reasm: Reassembler,
    stats: GfwStats,
}

/// The censor tap element. Clone-cheap handles ([`GfwHandle`]) give tests
/// and experiments read access to the shared core.
pub struct GfwElement {
    core: Rc<RefCell<GfwCore>>,
    label: String,
}

/// Read/inspection handle onto a [`GfwElement`]'s core.
#[derive(Clone)]
pub struct GfwHandle {
    core: Rc<RefCell<GfwCore>>,
}

impl GfwElement {
    pub fn new(cfg: GfwConfig) -> (GfwElement, GfwHandle) {
        GfwElement::labeled(cfg, "GFW")
    }

    pub fn labeled(cfg: GfwConfig, label: &str) -> (GfwElement, GfwHandle) {
        // The paper-default rule database compiles to the same automaton
        // every time; reuse the process-wide shared copy instead of
        // rebuilding it per element (one build per trial adds up fast in a
        // sweep). Custom rule sets still get their own build. `Arc::ptr_eq`
        // catches every config built from `GfwConfig::evolved`/`old` without
        // touching the rules; the deep comparison (against the shared static,
        // not a fresh copy) covers `with_rules` callers that happen to pass
        // the paper set.
        let shared = crate::dpi::shared_paper_rules();
        let aut = if Arc::ptr_eq(&cfg.rules, &shared) || *cfg.rules == *shared {
            crate::dpi::shared_paper_default()
        } else {
            Arc::new(Automaton::build(&cfg.rules))
        };
        GfwElement::with_automaton(cfg, aut, label)
    }

    /// Build with a pre-compiled automaton, sharing it across elements (and
    /// threads — the automaton is immutable after construction).
    pub fn with_automaton(cfg: GfwConfig, aut: Arc<Automaton>, label: &str) -> (GfwElement, GfwHandle) {
        let ip_reasm = Reassembler::new(cfg.ip_frag_overlap);
        let shards = cfg.state_shards.max(1) as usize;
        let lanes = (0..shards)
            .map(|i| CensorLane {
                rng: (shards > 1).then(|| intang_netsim::SimRng::seed_from(intang_netsim::rng::lane_seed(cfg.shard_seed, i as u32))),
                quota: if shards == 1 {
                    cfg.max_tcbs
                } else {
                    (cfg.max_tcbs / shards + usize::from(i < cfg.max_tcbs % shards)).max(1)
                },
                ..CensorLane::default()
            })
            .collect();
        let core = Rc::new(RefCell::new(GfwCore {
            cfg,
            aut,
            sc_domain: intang_simcheck::new_tcb_domain(),
            tcbs: FxHashMap::default(),
            lanes,
            blacklist: Blacklist::new(),
            prober: ActiveProber::new(),
            ip_reasm,
            stats: GfwStats::default(),
        }));
        (
            GfwElement {
                core: core.clone(),
                label: label.to_string(),
            },
            GfwHandle { core },
        )
    }
}

impl GfwHandle {
    pub fn detections(&self) -> Vec<(Instant, DetectionKind, FourTuple)> {
        self.core.borrow().stats.detections.clone()
    }

    pub fn detected_any(&self) -> bool {
        !self.core.borrow().stats.detections.is_empty()
    }

    pub fn resets_injected(&self) -> u64 {
        self.core.borrow().stats.resets_injected
    }

    pub fn type1_resets_injected(&self) -> u64 {
        self.core.borrow().stats.type1_resets_injected
    }

    pub fn type2_resets_injected(&self) -> u64 {
        self.core.borrow().stats.type2_resets_injected
    }

    pub fn tcb_resyncs(&self) -> u64 {
        self.core.borrow().stats.tcb_resyncs
    }

    pub fn dpi_bytes_scanned(&self) -> u64 {
        self.core.borrow().stats.dpi_bytes_scanned
    }

    pub fn forged_synacks(&self) -> u64 {
        self.core.borrow().stats.forged_synacks
    }

    /// Spoofed HTTP blockpages injected (profile-driven censors only).
    pub fn blockpages_injected(&self) -> u64 {
        self.core.borrow().stats.blockpages_injected
    }

    pub fn dns_poisoned(&self) -> u64 {
        self.core.borrow().stats.dns_poisoned
    }

    pub fn blacklist_hits(&self) -> u64 {
        self.core.borrow().stats.blacklist_hits
    }

    /// Blacklist volleys that landed on a flow other than the pair's
    /// original offender.
    pub fn blacklist_collateral_resets(&self) -> u64 {
        self.core.borrow().stats.blacklist_collateral_resets
    }

    /// Resync-storm episodes counted by the window detector.
    pub fn resync_storms(&self) -> u64 {
        self.core.borrow().stats.resync_storms
    }

    /// TCBs evicted under capacity pressure.
    pub fn tcbs_evicted(&self) -> u64 {
        self.core.borrow().stats.tcbs_evicted
    }

    pub fn probes_launched(&self) -> u64 {
        self.core.borrow().stats.probes_launched
    }

    pub fn ip_blocked(&self, ip: Ipv4Addr) -> bool {
        self.core.borrow().prober.is_blocked(ip)
    }

    /// The censor's tracking state for a flow, if a TCB exists.
    pub fn tcb_state(&self, tuple: FourTuple) -> Option<CensorState> {
        self.core.borrow().tcbs.get(&tuple.canonical()).map(|t| t.state)
    }

    pub fn has_tcb(&self, tuple: FourTuple) -> bool {
        self.core.borrow().tcbs.contains_key(&tuple.canonical())
    }

    /// The censor's believed client for a flow (detects TCB reversal).
    pub fn believed_client(&self, tuple: FourTuple) -> Option<(Ipv4Addr, u16)> {
        self.core.borrow().tcbs.get(&tuple.canonical()).map(|t| t.client)
    }

    pub fn tcb_count(&self) -> usize {
        self.core.borrow().tcbs.len()
    }

    /// Force the sticky RST behavior for deterministic tests.
    pub fn force_rst_resync(&self, resync: bool) {
        let mut core = self.core.borrow_mut();
        for lane in &mut core.lanes {
            lane.rst_resync_sticky = Some(resync);
            lane.rst_resync_hs_sticky = Some(resync);
        }
    }

    /// Number of censor-state lanes the device was configured with.
    pub fn state_lanes(&self) -> usize {
        self.core.borrow().lanes.len()
    }

    /// Which censor profile this device was compiled from.
    pub fn profile_tag(&self) -> crate::config::ProfileTag {
        self.core.borrow().cfg.profile_tag
    }
}

impl Element for GfwElement {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        let _s = span(SpanId::Gfw);
        let mut core = self.core.borrow_mut();

        // IP-level blocking of confirmed Tor bridges (documented in-path
        // exception to the on-path model).
        if let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) {
            if core.prober.is_blocked(ip.src_addr()) || core.prober.is_blocked(ip.dst_addr()) {
                core.stats.ip_blocked_drops += 1;
                return; // dropped
            }
        }

        // On-path: forward the original packet untouched, then analyze a copy.
        ctx.send(dir, wire.clone());
        core.analyze(ctx, dir, wire);
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        let core = self.core.borrow();
        let s = &core.stats;
        m.add(Counter::GfwTcbsCreated, s.tcbs_created);
        m.add(Counter::GfwTcbsRemoved, s.tcbs_removed);
        m.add(Counter::GfwTcbsEvicted, s.tcbs_evicted);
        m.add(Counter::GfwTcbResyncs, s.tcb_resyncs);
        m.add(Counter::GfwDetections, s.detections.len() as u64);
        m.add(Counter::GfwType1ResetsInjected, s.type1_resets_injected);
        m.add(Counter::GfwType2ResetsInjected, s.type2_resets_injected);
        m.add(Counter::GfwForgedSynacks, s.forged_synacks);
        m.add(Counter::GfwDnsPoisoned, s.dns_poisoned);
        m.add(Counter::GfwBlacklistInserts, s.blacklist_inserts);
        m.add(Counter::GfwBlacklistHits, s.blacklist_hits);
        m.add(Counter::GfwBlacklistCollateralResets, s.blacklist_collateral_resets);
        m.add(Counter::GfwResyncStorms, s.resync_storms);
        m.add(Counter::GfwProbesLaunched, s.probes_launched);
        m.add(Counter::GfwIpBlockedDrops, s.ip_blocked_drops);
        m.add(Counter::GfwDpiBytesScanned, s.dpi_bytes_scanned);
        m.add(Counter::GfwInjectionsSuppressed, s.injections_suppressed);
        m.add(Counter::GfwDeviceFlaps, s.device_flaps);
        m.add(Counter::GfwBlacklistJitterApplied, s.blacklist_jitter_draws);
        m.add(Counter::GfwBlockpagesInjected, s.blockpages_injected);
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        let core = self.core.borrow();
        let id = if core.cfg.generation == GfwGeneration::Evolved {
            GaugeId::GfwTcbsEvolved
        } else {
            GaugeId::GfwTcbsOld
        };
        g.add(id, core.tcbs.len() as u64);
        g.add(GaugeId::GfwBlacklist, core.blacklist.len() as u64);
    }
}

impl GfwCore {
    fn analyze(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        // The censor reassembles IP fragments itself (first-wins, §3.2).
        let Some(wire) = self.ip_reasm.push(wire) else { return };
        // The cached header index: the forwarded copy shares this buffer, so
        // the downstream endpoint's parse hits the same memoized view.
        let Some(hdr) = wire.headers() else { return };
        if self.cfg.validate_ip_total_len && !Ipv4Packet::new_unchecked(&wire[..]).total_len_consistent() {
            return;
        }
        match hdr.protocol {
            IpProtocol::Udp => self.analyze_udp(ctx, dir, &Ipv4Packet::new_unchecked(&wire[..])),
            IpProtocol::Tcp => self.analyze_tcp(ctx, dir, &wire, &hdr),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // UDP: DNS poisoning (§2.1).
    // ------------------------------------------------------------------
    fn analyze_udp(&mut self, ctx: &mut Ctx<'_>, dir: Direction, ip: &Ipv4Packet<&[u8]>) {
        if !self.cfg.dns_poison || dir != Direction::ToServer {
            return;
        }
        let Ok(u) = udp::UdpPacket::new_checked(ip.payload()) else { return };
        if u.dst_port() != 53 {
            return;
        }
        let Ok(query) = dns::DnsMessage::decode(u.payload()) else { return };
        if query.is_response {
            return;
        }
        let Some(name) = query.first_name() else { return };
        self.stats.dpi_bytes_scanned += name.len() as u64;
        let domain_hit = {
            let _s = span(SpanId::DpiScan);
            self.aut.scan(name.as_bytes()).contains(&DetectionKind::Domain)
        };
        if !domain_hit {
            return;
        }
        // Inject a forged response "from" the resolver with a bogus A record.
        let forged = dns::DnsMessage::answer_a(&query, POISON_ADDR, 300);
        let resp = udp::UdpRepr::new(53, u.src_port(), forged.encode());
        let ipr = Ipv4Repr::new(ip.dst_addr(), ip.src_addr(), IpProtocol::Udp);
        let wire = Wire::from_vec(ipr.emit(&resp.emit(ip.dst_addr(), ip.src_addr())));
        self.stats.dns_poisoned += 1;
        self.stats.detections.push((
            ctx.now,
            DetectionKind::Domain,
            FourTuple::new(ip.src_addr(), u.src_port(), ip.dst_addr(), 53),
        ));
        ctx.send_delayed(Direction::ToClient, wire, self.cfg.reaction_delay);
    }

    // ------------------------------------------------------------------
    // TCP: TCB lifecycle, DPI, resets.
    // ------------------------------------------------------------------
    fn analyze_tcp(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: &Wire, hdr: &intang_packet::HeaderIndex) {
        let Some(seg) = hdr.tcp().copied() else { return };
        let l4 = &wire[usize::from(hdr.ip_payload_start)..usize::from(hdr.ip_payload_end)];
        // Discrepancy checks the real GFW does NOT perform (all default-off).
        if self.cfg.validate_checksum && !TcpPacket::new_unchecked(l4).verify_checksum(hdr.src, hdr.dst) {
            return;
        }
        if self.cfg.check_md5
            && TcpPacket::new_unchecked(l4)
                .options()
                .iter()
                .any(|o| matches!(o, intang_packet::TcpOption::Md5Sig(_)))
        {
            return;
        }
        let src = (hdr.src, seg.src_port);
        let dst = (hdr.dst, seg.dst_port);

        // Route packets addressed to our probers into the probe logic. The
        // prober wants a full repr; this path is rare enough to pay for one.
        if self.prober.owns(dst.0) {
            let repr = TcpRepr::parse(&TcpPacket::new_unchecked(l4));
            for inj in self.prober.on_packet_to_prober(src, dst, &repr) {
                ctx.send_delayed(Direction::ToServer, inj, self.cfg.reaction_delay);
            }
            return;
        }

        // Everything past this point touches cross-flow censor state, all
        // of it owned by the packet's lane. The lane moves out of `self`
        // for the duration so lane and table can be borrowed together (the
        // default placeholder is never observable: analysis runs to
        // completion before any re-entry).
        let lane_idx = if self.lanes.len() == 1 {
            0
        } else {
            intang_packet::pair_shard(hdr.src, hdr.dst, self.lanes.len() as u32) as usize
        };
        let mut lane = std::mem::take(&mut self.lanes[lane_idx]);
        self.analyze_tcp_lane(ctx, &mut lane, dir, wire, hdr, seg);
        self.lanes[lane_idx] = lane;
    }

    /// The lane-scoped tail of TCP analysis: blacklist volleys, TCB
    /// lifecycle, DPI, detection actions.
    fn analyze_tcp_lane(
        &mut self,
        ctx: &mut Ctx<'_>,
        lane: &mut CensorLane,
        dir: Direction,
        wire: &Wire,
        hdr: &intang_packet::HeaderIndex,
        seg: intang_packet::TcpIndex,
    ) {
        let l4 = &wire[usize::from(hdr.ip_payload_start)..usize::from(hdr.ip_payload_end)];
        let payload = &wire[usize::from(seg.payload_start)..usize::from(seg.payload_end)];
        let src = (hdr.src, seg.src_port);
        let dst = (hdr.dst, seg.dst_port);
        let tuple = FourTuple::new(src.0, src.1, dst.0, dst.1);
        let key = tuple.canonical();

        // Blacklisted pair: sustained disruption (§2.1). Volleys drawn by
        // a flow other than the pair's original offender are collateral —
        // the cross-flow coupling a shared blacklist creates.
        if let Some(collateral) = self.blacklist.hit(src.0, dst.0, ctx.now, Some(tuple)) {
            self.stats.blacklist_hits += 1;
            if seg.flags.syn() && !seg.flags.ack() && self.cfg.type2 {
                let CensorLane { rng, injector, .. } = &mut *lane;
                let forged = injector.forged_synack(lane_rng(rng, ctx), dst, src, seg.seq.wrapping_add(1));
                self.stats.forged_synacks += 1;
                ctx.send_delayed(dir.reversed(), forged, self.cfg.reaction_delay);
                if collateral {
                    self.stats.blacklist_collateral_resets += 1;
                }
            } else if !seg.flags.rst() {
                self.inject_pair_resets(ctx, lane, dir, src, dst, (seg.seq, seg.ack));
                if collateral {
                    self.stats.blacklist_collateral_resets += 1;
                }
            }
            // Tracking continues below; repeated detections extend the list.
        }

        // ---- TCB lifecycle -------------------------------------------------
        let evolved = self.cfg.generation == GfwGeneration::Evolved;

        if !self.tcbs.contains_key(&key) {
            if seg.flags.syn() && !seg.flags.ack() {
                let mut tcb = CensorTcb::from_syn(src, dst, seg.seq, self.cfg.segment_overlap);
                tcb.overloaded = lane_rng(&mut lane.rng, ctx).chance(self.cfg.overload_miss_prob);
                self.insert_tcb(lane, key, tcb);
            } else if seg.flags.syn() && seg.flags.ack() && evolved {
                // Hypothesized New Behavior 1: TCB from a SYN/ACK. The
                // source is assumed to be the server.
                let mut tcb = CensorTcb::from_synack(src, dst, seg.seq, seg.ack, self.cfg.segment_overlap);
                tcb.overloaded = lane_rng(&mut lane.rng, ctx).chance(self.cfg.overload_miss_prob);
                self.insert_tcb(lane, key, tcb);
            }
            return;
        }

        // Work on the existing TCB.
        if self.cfg.eviction == EvictionPolicy::Lru {
            self.touch_tcb(lane, key);
        }
        let mut remove = false;
        let mut resynced = false;
        let mut detections: Vec<DetectionKind> = Vec::new();
        {
            let tcb = self.tcbs.get_mut(&key).expect("checked above");
            let from_client = tcb.is_client(src.0, src.1);

            if seg.flags.rst() {
                // Hypothesized New Behavior 3: RST may resync instead of
                // tearing down; sticky per pair/period.
                let resync = if evolved {
                    let prob = if tcb.in_handshake {
                        self.cfg.rst_resync_prob_handshake
                    } else {
                        self.cfg.rst_resync_prob
                    };
                    let CensorLane {
                        rng,
                        rst_resync_sticky,
                        rst_resync_hs_sticky,
                        ..
                    } = &mut *lane;
                    let slot = if tcb.in_handshake {
                        rst_resync_hs_sticky
                    } else {
                        rst_resync_sticky
                    };
                    *slot.get_or_insert_with(|| lane_rng(rng, ctx).chance(prob))
                } else {
                    false
                };
                if resync {
                    if tcb.state != CensorState::Resync {
                        self.stats.tcb_resyncs += 1;
                        resynced = true;
                    }
                    tcb.state = CensorState::Resync;
                    intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::Rst);
                } else {
                    remove = true;
                }
            } else if seg.flags.fin() && self.cfg.generation == GfwGeneration::Old {
                // Prior Assumption 3: FIN tears the TCB down. The evolved
                // model ignores FIN (§4).
                remove = true;
            } else if seg.flags.syn() && tcb.created_by_synack {
                // Reversal TCBs ignore all handshake packets (§5.2).
            } else if seg.flags.syn() && !seg.flags.ack() {
                if from_client {
                    // An identical duplicate (same ISN) is a plain
                    // retransmission, not a "multiple SYNs" signal — the
                    // paper's resync probes vary the sequence number.
                    if seg.seq != tcb.client_isn {
                        tcb.syn_count += 1;
                        if evolved && tcb.syn_count > 1 {
                            // Hypothesized New Behavior 2(a).
                            if tcb.state != CensorState::Resync {
                                self.stats.tcb_resyncs += 1;
                                resynced = true;
                            }
                            tcb.state = CensorState::Resync;
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::MultipleSyn);
                        }
                        // Prior model: later SYNs are ignored, the first
                        // sequence number stands (Prior Assumption 2).
                    }
                }
            } else if seg.flags.syn() && seg.flags.ack() {
                if !from_client {
                    let retransmission = tcb.last_synack == Some((seg.seq, seg.ack));
                    if retransmission {
                        // SYN/ACK retransmissions don't perturb the TCB.
                    } else if tcb.state == CensorState::Resync {
                        // §4: a server SYN/ACK resolves resynchronization.
                        tcb.resync_to(seg.ack);
                        intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::ServerSynAck);
                        tcb.synack_count = 1;
                        tcb.server_next = seg.seq.wrapping_add(1);
                        tcb.last_synack = Some((seg.seq, seg.ack));
                    } else {
                        tcb.synack_count += 1;
                        tcb.server_next = seg.seq.wrapping_add(1);
                        tcb.last_synack = Some((seg.seq, seg.ack));
                        if evolved && (tcb.synack_count > 1 || seg.ack != tcb.client_isn.wrapping_add(1)) {
                            // Hypothesized New Behavior 2(b)/(c).
                            if tcb.state != CensorState::Resync {
                                self.stats.tcb_resyncs += 1;
                                resynced = true;
                            }
                            tcb.state = CensorState::Resync;
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::SynAckMismatch);
                        } else if evolved {
                            // The evolved censor anchors the client stream
                            // at the SYN/ACK's ACK (§5.2).
                            tcb.resync_to(seg.ack);
                        }
                        // Prior model: the first SYN's sequence stands.
                    }
                }
            } else {
                // Data / pure ACK.
                if from_client {
                    // §8 hardened-censor checks (all off on the real GFW):
                    // a wrong (future) ACK number or a PAWS-stale timestamp
                    // makes the hardened censor ignore the segment like a
                    // server would.
                    if self.cfg.check_ack
                        && seg.flags.ack()
                        && tcb.server_next != 0
                        && intang_packet::tcp::seq::gt(seg.ack, tcb.server_next)
                    {
                        return;
                    }
                    let tsval = TcpPacket::new_unchecked(l4).options().iter().find_map(|o| match o {
                        intang_packet::TcpOption::Timestamps { tsval, .. } => Some(*tsval),
                        _ => None,
                    });
                    if self.cfg.check_timestamp {
                        if let (Some(recent), Some(tsval)) = (tcb.ts_recent, tsval) {
                            if recent.wrapping_sub(tsval) < 0x8000_0000 && recent != tsval {
                                return;
                            }
                        }
                    }
                    if let Some(tsval) = tsval {
                        let newer = tcb.ts_recent.is_none_or(|r| tsval.wrapping_sub(r) < 0x8000_0000);
                        if newer {
                            tcb.ts_recent = Some(tsval);
                        }
                    }
                    if seg.flags.ack() {
                        tcb.in_handshake = false;
                    }
                    if !payload.is_empty() {
                        if tcb.state == CensorState::Resync {
                            // §4: the next client data packet re-anchors.
                            tcb.resync_to(seg.seq);
                            intang_simcheck::tcb_resync(self.sc_domain, key, intang_simcheck::ResyncTrigger::ClientData);
                        }
                        self.stats.dpi_bytes_scanned += payload.len() as u64;
                        let _s = span(SpanId::DpiScan);
                        detections = tcb.feed_client_data(&self.aut, seg.seq, payload, self.cfg.type1, self.cfg.type2);
                    }
                } else {
                    // Server→client data: never a resync trigger (§4).
                    let end = seg.seq.wrapping_add(payload.len() as u32);
                    if intang_packet::tcp::seq::gt(end, tcb.server_next) {
                        tcb.server_next = end;
                    }
                    if self.cfg.censor_responses && !payload.is_empty() {
                        self.stats.dpi_bytes_scanned += payload.len() as u64;
                        let _s = span(SpanId::DpiScan);
                        detections = tcb.feed_server_data(&self.aut, payload);
                    }
                }
            }
        }

        if resynced {
            self.note_resync(lane, ctx.now);
        }
        if remove {
            self.tcbs.remove(&key);
            lane.tcb_count -= 1;
            self.stats.tcbs_removed += 1;
            intang_simcheck::tcb_removed(self.sc_domain, key);
            return;
        }
        if !detections.is_empty() {
            self.act_on_detections(ctx, lane, key, detections);
        }
    }

    /// Record one resync transition into the lane's storm window; when the
    /// window fills to the configured threshold, count a storm and clear it
    /// (so a sustained burst counts once per threshold-batch).
    fn note_resync(&mut self, lane: &mut CensorLane, now: Instant) {
        let threshold = self.cfg.resync_storm_threshold;
        if threshold == 0 {
            return;
        }
        let cutoff = now.micros().saturating_sub(self.cfg.resync_storm_window.micros());
        while lane.resync_window.front().is_some_and(|t| t.micros() < cutoff) {
            lane.resync_window.pop_front();
        }
        lane.resync_window.push_back(now);
        if lane.resync_window.len() >= threshold {
            self.stats.resync_storms += 1;
            lane.resync_window.clear();
        }
    }

    /// LRU bookkeeping: stamp the TCB and append a fresh eviction-order
    /// entry; the entry it supersedes goes stale and is skipped at
    /// eviction time. Compaction keeps the lazy deque from growing without
    /// bound on long runs.
    fn touch_tcb(&mut self, lane: &mut CensorLane, key: FourTuple) {
        lane.touch_seq += 1;
        let Some(tcb) = self.tcbs.get_mut(&key) else { return };
        tcb.touched = lane.touch_seq;
        lane.tcb_order.push_back((key, lane.touch_seq));
        if lane.tcb_order.len() > lane.tcb_count * 4 + 16 {
            // Drop stale entries (stamp no longer current), keeping the
            // relative order of the fresh ones.
            let tcbs = &self.tcbs;
            lane.tcb_order.retain(|(k, stamp)| tcbs.get(k).is_some_and(|t| t.touched == *stamp));
        }
    }

    /// Insert a TCB, evicting per the configured policy when the lane's
    /// share of the table is full: FIFO pops the oldest insertion, LRU pops
    /// the stalest touch.
    fn insert_tcb(&mut self, lane: &mut CensorLane, key: FourTuple, tcb: CensorTcb) {
        while lane.tcb_count >= lane.quota {
            let Some((victim, stamp)) = lane.tcb_order.pop_front() else { break };
            // Stale entries: the key was touched more recently (LRU), or
            // its TCB was already torn down. Skip without counting.
            if self.tcbs.get(&victim).is_some_and(|t| t.touched == stamp) {
                self.tcbs.remove(&victim);
                lane.tcb_count -= 1;
                self.stats.tcbs_evicted += 1;
                intang_simcheck::tcb_removed(self.sc_domain, victim);
            }
        }
        lane.touch_seq += 1;
        let mut tcb = tcb;
        tcb.touched = lane.touch_seq;
        self.tcbs.insert(key, tcb);
        lane.tcb_count += 1;
        lane.tcb_order.push_back((key, lane.touch_seq));
        self.stats.tcbs_created += 1;
        intang_simcheck::tcb_created(self.sc_domain, key);
    }

    fn act_on_detections(&mut self, ctx: &mut Ctx<'_>, lane: &mut CensorLane, key: FourTuple, kinds: Vec<DetectionKind>) {
        intang_simcheck::tcb_detection(self.sc_domain, key);
        let (client, server, client_next, server_next, already) = {
            let tcb = self.tcbs.get(&key).expect("tcb present");
            (tcb.client, tcb.server, tcb.client_next(), tcb.server_next, tcb.detected)
        };
        for kind in kinds {
            self.stats
                .detections
                .push((ctx.now, kind, FourTuple::new(client.0, client.1, server.0, server.1)));
            match kind {
                DetectionKind::HttpKeyword | DetectionKind::Domain => {
                    if !already {
                        // Blockpage censors (Turkmenistan, per Nourin et
                        // al.) answer the forbidden request in-band before
                        // the reset volley: same reaction delay, queued
                        // first, so at the shared timestamp the spoofed
                        // response precedes the resets.
                        if self.cfg.inject_blockpage && self.chaos_volley_fires(ctx, lane) {
                            let w = lane.injector.blockpage(server, client, server_next, client_next);
                            ctx.send_delayed(Direction::ToClient, w, self.cfg.reaction_delay);
                            self.stats.blockpages_injected += 1;
                        }
                        self.inject_detection_resets(ctx, lane, client, server, client_next, server_next);
                        if self.cfg.type2 {
                            let duration = self.chaos_blacklist_duration(ctx, lane);
                            let origin = FourTuple::new(client.0, client.1, server.0, server.1);
                            self.blacklist.add(client.0, server.0, ctx.now, duration, origin);
                            self.stats.blacklist_inserts += 1;
                        }
                        self.tcbs.get_mut(&key).expect("tcb present").detected = true;
                    }
                }
                DetectionKind::TorHandshake => {
                    if self.cfg.tor_filter && self.cfg.active_probing {
                        if let Some(syn) = self.prober.on_tor_fingerprint(server) {
                            self.stats.probes_launched += 1;
                            // Probes launch shortly after the fingerprint.
                            ctx.send_delayed(Direction::ToServer, syn, Duration::from_millis(50));
                        }
                    }
                }
                DetectionKind::VpnHandshake => {
                    if self.cfg.vpn_dpi && !already {
                        self.inject_detection_resets(ctx, lane, client, server, client_next, server_next);
                        self.tcbs.get_mut(&key).expect("tcb present").detected = true;
                    }
                }
            }
        }
    }

    /// Chaos gate for one device instance's injection volley. With the
    /// inert defaults (`chaos_device_flap_prob` 0.0, `chaos_rst_inject_prob`
    /// 1.0) both `chance` calls short-circuit without drawing randomness,
    /// so fault-free runs stay byte-identical. Per Ensafi et al., both the
    /// flap and the injection rate are drawn per volley: the same vantage
    /// point sees the censor react inconsistently over time.
    fn chaos_volley_fires(&mut self, ctx: &mut Ctx<'_>, lane: &mut CensorLane) -> bool {
        if lane_rng(&mut lane.rng, ctx).chance(self.cfg.chaos_device_flap_prob) {
            self.stats.device_flaps += 1;
            self.stats.injections_suppressed += 1;
            return false;
        }
        if !lane_rng(&mut lane.rng, ctx).chance(self.cfg.chaos_rst_inject_prob) {
            self.stats.injections_suppressed += 1;
            return false;
        }
        true
    }

    /// Blacklist duration with chaos jitter applied (inert at 0.0).
    fn chaos_blacklist_duration(&mut self, ctx: &mut Ctx<'_>, lane: &mut CensorLane) -> Duration {
        let j = self.cfg.chaos_blacklist_jitter;
        if j <= 0.0 {
            return self.cfg.blacklist_duration;
        }
        let base = self.cfg.blacklist_duration.micros();
        let span = (base as f64 * j.min(1.0)) as u64;
        self.stats.blacklist_jitter_draws += 1;
        Duration::from_micros(lane_rng(&mut lane.rng, ctx).range_u64(base.saturating_sub(span), base + span + 1))
    }

    /// The full §2.1 reset volley, both directions.
    fn inject_detection_resets(
        &mut self,
        ctx: &mut Ctx<'_>,
        lane: &mut CensorLane,
        client: (Ipv4Addr, u16),
        server: (Ipv4Addr, u16),
        client_next: u32,
        server_next: u32,
    ) {
        let d = self.cfg.reaction_delay;
        if self.cfg.type1 && self.chaos_volley_fires(ctx, lane) {
            // One RST each way, spoofed from the opposite endpoint.
            let CensorLane { rng, injector, .. } = &mut *lane;
            let r = lane_rng(rng, ctx);
            let to_client = injector.type1(r, server, client, server_next);
            let to_server = injector.type1(r, client, server, client_next);
            ctx.send_delayed(Direction::ToClient, to_client, d);
            ctx.send_delayed(Direction::ToServer, to_server, d);
            self.stats.resets_injected += 2;
            self.stats.type1_resets_injected += 2;
        }
        if self.cfg.type2 && self.chaos_volley_fires(ctx, lane) {
            for w in lane.injector.type2(server, client, server_next, client_next) {
                ctx.send_delayed(Direction::ToClient, w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
            for w in lane.injector.type2(client, server, client_next, server_next) {
                ctx.send_delayed(Direction::ToServer, w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
        }
    }

    /// Resets fired at arbitrary packets during the blacklist period.
    /// `seq_ack` is the observed packet's `(seq, ack)` pair.
    fn inject_pair_resets(
        &mut self,
        ctx: &mut Ctx<'_>,
        lane: &mut CensorLane,
        dir: Direction,
        src: (Ipv4Addr, u16),
        dst: (Ipv4Addr, u16),
        seq_ack: (u32, u32),
    ) {
        let (seq, ack) = seq_ack;
        let d = self.cfg.reaction_delay;
        if self.cfg.type1 && self.chaos_volley_fires(ctx, lane) {
            let CensorLane { rng, injector, .. } = &mut *lane;
            let w = injector.type1(lane_rng(rng, ctx), dst, src, ack);
            ctx.send_delayed(dir.reversed(), w, d);
            self.stats.resets_injected += 1;
            self.stats.type1_resets_injected += 1;
        }
        if self.cfg.type2 && self.chaos_volley_fires(ctx, lane) {
            // Reset the sender of the observed packet (spoofed from its peer).
            for w in lane.injector.type2(dst, src, ack, seq) {
                ctx.send_delayed(dir.reversed(), w, d);
                self.stats.resets_injected += 1;
                self.stats.type2_resets_injected += 1;
            }
        }
    }
}
