//! # intang-gfw
//!
//! Executable models of the Great Firewall of China as characterized by the
//! paper — both the **prior model** (Khattak et al. 2013, the assumptions
//! §4 lists as "Prior Assumption 1–3") and the **evolved model** the paper
//! infers (Hypothesized New Behaviors 1–3):
//!
//! 1. TCBs are created on SYN *and* on SYN/ACK (enabling TCB reversal);
//! 2. a **resynchronization state** is entered on multiple SYNs, multiple
//!    SYN/ACKs, or a SYN/ACK with a mismatched ACK, and is resolved by the
//!    next client→server data packet or server→client SYN/ACK;
//! 3. RST/RST-ACK may put the TCB into the resynchronization state instead
//!    of tearing it down (probabilistically, path-sticky).
//!
//! The censor is **on-path** (§2.1): it observes copies and injects, never
//! drops — with one documented exception, IP-level blocking after Tor
//! active probing, which in reality happens at in-path border devices and
//! is modeled here as a drop at the tap.
//!
//! Two co-deployed device types are modeled (§2.1, §8): **type-1** (single
//! RST, random TTL/window, per-packet in-order keyword scan — defeated by
//! splitting a request) and **type-2** (three RST/ACKs at X, X+1460,
//! X+4380 with cyclically increasing TTL/window, full stream reassembly,
//! 90-second blacklist with forged SYN/ACKs).

pub mod blacklist;
pub mod config;
pub mod device;
pub mod dpi;
pub mod probe;
pub mod profile;
pub mod reset;
pub mod tcb;

pub use config::{EvictionPolicy, GfwConfig, GfwGeneration, ProfileTag};
pub use device::{GfwElement, GfwHandle, GfwStats};
pub use dpi::{DetectionKind, RuleSet};
pub use profile::CensorProfile;
pub use reset::ResetKind;
