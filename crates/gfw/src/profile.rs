//! Scriptable censor profiles: the censor's state machine, DPI rules,
//! reset policy, blacklist parameters, resync probabilities and probe
//! behavior as *data*, compiled onto the existing dense machinery.
//!
//! A [`CensorProfile`] is parsed from a std-only TOML-like text format
//! (`[section]` headers, `key = value` lines, `#` comments — no registry
//! dependencies) and compiled to a [`GfwConfig`]: the DPI rules become the
//! same Aho–Corasick automaton the hard-coded models use, the dynamics
//! knobs land in the same dense TCB transition paths, and the sharded-lane
//! machinery is untouched — so the hot path stays allocation-free, and a
//! profile that reproduces a builtin is **byte-identical** to it across
//! the full paper sweep (gated by test).
//!
//! Three profiles ship checked-in under `profiles/`:
//!
//! * `gfw_prior` — the Khattak et al. model ([`GfwConfig::old`]);
//! * `gfw_evolved` — the paper's evolved model ([`GfwConfig::evolved`]);
//! * `turkmenistan` — the structurally different censor documented by
//!   Nourin et al.: bidirectional RST on detection plus a spoofed HTTP
//!   blockpage served "from" the real server.
//!
//! The `[heterogeneity]` section provides per-device perturbation hooks
//! (Ensafi et al.: censor behavior varies across devices): a seeded
//! [`CensorProfile::compile_for_device`] jitters blacklist duration and
//! the probabilistic knobs per device, deterministically in the device
//! seed, and is a guaranteed no-op (no RNG even constructed) when every
//! jitter is zero.

use crate::config::{EvictionPolicy, GfwConfig, GfwGeneration, ProfileTag};
use crate::dpi::{dns_label_encoding, shared_paper_rules, DetectionKind, Rule, RuleSet, TOR_FINGERPRINT, VPN_FINGERPRINT};
use intang_netsim::{Duration, SimRng};
use std::path::Path;
use std::sync::Arc;

/// Seed salt for the per-device heterogeneity RNG stream, so device
/// perturbation draws can never collide with any simulation RNG stream
/// derived from the same base seed.
const HET_DEVICE_SEED: u64 = 0x4845_545f_4445_5649; // "HET_DEVI"

/// A censor model as data. Field defaults ([`CensorProfile::gfw_evolved`])
/// mirror [`GfwConfig::evolved`]; every key in the text format is optional
/// except `[censor] name`.
#[derive(Debug, Clone, PartialEq)]
pub struct CensorProfile {
    /// Profile name (`[censor] name`). The three builtin names compile to
    /// their canonical [`ProfileTag`]; anything else tags as `Custom`.
    pub name: String,
    pub generation: GfwGeneration,
    pub type1: bool,
    pub type2: bool,

    // [validation]
    pub validate_checksum: bool,
    pub check_md5: bool,
    pub check_ack: bool,
    pub check_timestamp: bool,
    pub validate_ip_total_len: bool,

    // [stream]
    pub segment_overlap: intang_tcpstack::reasm::SegmentOverlapPolicy,
    pub ip_frag_overlap: intang_packet::frag::OverlapPolicy,

    // [dynamics]
    pub rst_resync_prob: f64,
    pub rst_resync_prob_handshake: f64,
    pub overload_miss_prob: f64,
    pub blacklist_duration_ms: u64,
    pub reaction_delay_us: u64,
    pub max_tcbs: usize,
    pub eviction: EvictionPolicy,
    pub resync_storm_window_ms: u64,
    pub resync_storm_threshold: usize,

    // [actions]
    pub censor_responses: bool,
    pub inject_blockpage: bool,

    // [protocols]
    pub dns_poison: bool,
    pub tor_filter: bool,
    pub active_probing: bool,
    pub vpn_dpi: bool,

    // [rules] — compiled in the same order `RuleSet::paper_default` uses:
    // keywords, then per-domain dotted text + DNS label encoding, then the
    // Tor and VPN fingerprints.
    pub keywords: Vec<String>,
    pub domains: Vec<String>,
    pub tor_fingerprint: bool,
    pub vpn_fingerprint: bool,

    // [heterogeneity] — per-device perturbation amplitudes (Ensafi et al.).
    /// Fractional jitter on the blacklist duration: each device draws a
    /// duration in `[1-j, 1+j] × blacklist_duration_ms`.
    pub het_blacklist_jitter: f64,
    /// Additive jitter on both resync probabilities, clamped to [0, 1].
    pub het_resync_jitter: f64,
    /// Additive jitter on the overload miss probability, clamped to [0, 1].
    pub het_overload_jitter: f64,
}

impl CensorProfile {
    /// The paper's evolved GFW model — compiles byte-identical to
    /// [`GfwConfig::evolved`].
    pub fn gfw_evolved() -> CensorProfile {
        CensorProfile {
            name: "gfw_evolved".to_owned(),
            generation: GfwGeneration::Evolved,
            type1: true,
            type2: true,
            validate_checksum: false,
            check_md5: false,
            check_ack: false,
            check_timestamp: false,
            validate_ip_total_len: false,
            segment_overlap: intang_tcpstack::reasm::SegmentOverlapPolicy::FirstWins,
            ip_frag_overlap: intang_packet::frag::OverlapPolicy::FirstWins,
            rst_resync_prob: 0.2,
            rst_resync_prob_handshake: 0.8,
            overload_miss_prob: 0.028,
            blacklist_duration_ms: 90_000,
            reaction_delay_us: 2_000,
            max_tcbs: 1_000_000,
            eviction: EvictionPolicy::Oldest,
            resync_storm_window_ms: 100,
            resync_storm_threshold: 8,
            censor_responses: false,
            inject_blockpage: false,
            dns_poison: true,
            tor_filter: true,
            active_probing: true,
            vpn_dpi: false,
            keywords: vec!["ultrasurf".to_owned()],
            domains: vec![
                "dropbox.com".to_owned(),
                "facebook.com".to_owned(),
                "twitter.com".to_owned(),
                "youtube.com".to_owned(),
            ],
            tor_fingerprint: true,
            vpn_fingerprint: true,
            het_blacklist_jitter: 0.0,
            het_resync_jitter: 0.0,
            het_overload_jitter: 0.0,
        }
    }

    /// The prior (Khattak et al.) model — compiles byte-identical to
    /// [`GfwConfig::old`].
    pub fn gfw_prior() -> CensorProfile {
        CensorProfile {
            name: "gfw_prior".to_owned(),
            generation: GfwGeneration::Old,
            segment_overlap: intang_tcpstack::reasm::SegmentOverlapPolicy::LastWins,
            rst_resync_prob: 0.0,
            rst_resync_prob_handshake: 0.0,
            ..CensorProfile::gfw_evolved()
        }
    }

    /// The Turkmenistan censor per Nourin et al.: an old-generation state
    /// machine, type-1 resets in *both* directions (`censor_responses`)
    /// plus a spoofed HTTP 403 blockpage, no type-2 reassembly devices, no
    /// Tor filtering or active probing.
    pub fn turkmenistan() -> CensorProfile {
        CensorProfile {
            name: "turkmenistan".to_owned(),
            generation: GfwGeneration::Old,
            type2: false,
            segment_overlap: intang_tcpstack::reasm::SegmentOverlapPolicy::LastWins,
            rst_resync_prob: 0.0,
            rst_resync_prob_handshake: 0.0,
            overload_miss_prob: 0.0,
            censor_responses: true,
            inject_blockpage: true,
            tor_filter: false,
            active_probing: false,
            tor_fingerprint: false,
            vpn_fingerprint: false,
            ..CensorProfile::gfw_evolved()
        }
    }

    /// Names of the builtin profiles, in documentation order.
    pub const BUILTIN_NAMES: [&'static str; 3] = ["gfw_prior", "gfw_evolved", "turkmenistan"];

    /// Look up a builtin profile by name.
    pub fn builtin(name: &str) -> Option<CensorProfile> {
        match name {
            "gfw_prior" => Some(CensorProfile::gfw_prior()),
            "gfw_evolved" => Some(CensorProfile::gfw_evolved()),
            "turkmenistan" => Some(CensorProfile::turkmenistan()),
            _ => None,
        }
    }

    /// Resolve a CLI profile spec: a builtin name, a path to a profile
    /// file, or a bare name looked up as `profiles/<name>.toml`.
    pub fn resolve(spec: &str) -> Result<CensorProfile, String> {
        if let Some(p) = CensorProfile::builtin(spec) {
            return Ok(p);
        }
        if Path::new(spec).is_file() {
            return CensorProfile::load(Path::new(spec));
        }
        let shipped = format!("profiles/{spec}.toml");
        if Path::new(&shipped).is_file() {
            return CensorProfile::load(Path::new(&shipped));
        }
        Err(format!(
            "unknown censor profile `{spec}`: not a builtin ({}), not a file, and profiles/{spec}.toml does not exist",
            CensorProfile::BUILTIN_NAMES.join(", ")
        ))
    }

    /// Load and parse a profile file.
    pub fn load(path: &Path) -> Result<CensorProfile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read profile {}: {e}", path.display()))?;
        CensorProfile::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parse the profile text format. Every error carries a line number and
    /// names the offending section/key; truncated files (unterminated
    /// strings, arrays or section headers) are rejected, never panicked on.
    pub fn parse(text: &str) -> Result<CensorProfile, String> {
        let mut p = CensorProfile::gfw_evolved();
        p.name = String::new();
        let mut section: Option<String> = None;
        let mut seen_sections: Vec<String> = Vec::new();
        let mut seen_keys: Vec<(String, String)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let err = |msg: String| format!("line {lineno}: {msg}");
            let line = strip_comment(raw).map_err(&err)?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| err(format!("unterminated section header `{line}` (truncated file?)")))?
                    .trim();
                if !SECTIONS.iter().any(|(s, _)| *s == name) {
                    let known: Vec<&str> = SECTIONS.iter().map(|(s, _)| *s).collect();
                    return Err(err(format!("unknown section `[{name}]` (known sections: {})", known.join(", "))));
                }
                if seen_sections.iter().any(|s| s == name) {
                    return Err(err(format!("duplicate section `[{name}]`")));
                }
                seen_sections.push(name.to_owned());
                section = Some(name.to_owned());
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("expected `key = value`, got `{line}`")))?;
            let (key, value) = (key.trim(), value.trim());
            let sect = section
                .as_deref()
                .ok_or_else(|| err(format!("key `{key}` appears before any `[section]` header")))?;
            let keys = SECTIONS.iter().find(|(s, _)| *s == sect).map(|(_, k)| *k).unwrap();
            if !keys.contains(&key) {
                return Err(err(format!("unknown key `{key}` in `[{sect}]` (known keys: {})", keys.join(", "))));
            }
            if seen_keys.iter().any(|(s, k)| s == sect && k == key) {
                return Err(err(format!("duplicate key `{key}` in `[{sect}]`")));
            }
            seen_keys.push((sect.to_owned(), key.to_owned()));
            apply_key(&mut p, sect, key, value).map_err(&err)?;
        }

        if p.name.is_empty() {
            return Err("missing required key: `[censor] name`".to_owned());
        }
        if p.name.contains(char::is_whitespace) {
            return Err(format!("profile name `{}` must not contain whitespace", p.name));
        }
        Ok(p)
    }

    /// Serialize to the canonical text form: every section, every key, in
    /// fixed order. `parse(to_text())` round-trips exactly; the checked-in
    /// `profiles/*.toml` files are generated by this function.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(1024);
        let b = |v: bool| if v { "true" } else { "false" };
        s.push_str(&format!("# Censor profile: {}\n", self.name));
        s.push_str("# Canonical form emitted by CensorProfile::to_text; parse() round-trips it.\n\n");
        s.push_str("[censor]\n");
        s.push_str(&format!("name = \"{}\"\n", self.name));
        s.push_str(&format!(
            "generation = \"{}\"\n",
            match self.generation {
                GfwGeneration::Old => "old",
                GfwGeneration::Evolved => "evolved",
            }
        ));
        s.push_str(&format!("type1 = {}\n", b(self.type1)));
        s.push_str(&format!("type2 = {}\n\n", b(self.type2)));
        s.push_str("[validation]\n");
        s.push_str(&format!("checksum = {}\n", b(self.validate_checksum)));
        s.push_str(&format!("md5 = {}\n", b(self.check_md5)));
        s.push_str(&format!("ack = {}\n", b(self.check_ack)));
        s.push_str(&format!("timestamp = {}\n", b(self.check_timestamp)));
        s.push_str(&format!("ip_total_len = {}\n\n", b(self.validate_ip_total_len)));
        s.push_str("[stream]\n");
        s.push_str(&format!(
            "segment_overlap = \"{}\"\n",
            match self.segment_overlap {
                intang_tcpstack::reasm::SegmentOverlapPolicy::FirstWins => "first_wins",
                intang_tcpstack::reasm::SegmentOverlapPolicy::LastWins => "last_wins",
            }
        ));
        s.push_str(&format!(
            "ip_frag_overlap = \"{}\"\n\n",
            match self.ip_frag_overlap {
                intang_packet::frag::OverlapPolicy::FirstWins => "first_wins",
                intang_packet::frag::OverlapPolicy::LastWins => "last_wins",
            }
        ));
        s.push_str("[dynamics]\n");
        s.push_str(&format!("rst_resync_prob = {}\n", fmt_f64(self.rst_resync_prob)));
        s.push_str(&format!(
            "rst_resync_prob_handshake = {}\n",
            fmt_f64(self.rst_resync_prob_handshake)
        ));
        s.push_str(&format!("overload_miss_prob = {}\n", fmt_f64(self.overload_miss_prob)));
        s.push_str(&format!("blacklist_duration_ms = {}\n", self.blacklist_duration_ms));
        s.push_str(&format!("reaction_delay_us = {}\n", self.reaction_delay_us));
        s.push_str(&format!("max_tcbs = {}\n", self.max_tcbs));
        s.push_str(&format!(
            "eviction = \"{}\"\n",
            match self.eviction {
                EvictionPolicy::Oldest => "oldest",
                EvictionPolicy::Lru => "lru",
            }
        ));
        s.push_str(&format!("resync_storm_window_ms = {}\n", self.resync_storm_window_ms));
        s.push_str(&format!("resync_storm_threshold = {}\n\n", self.resync_storm_threshold));
        s.push_str("[actions]\n");
        s.push_str(&format!("censor_responses = {}\n", b(self.censor_responses)));
        s.push_str(&format!("inject_blockpage = {}\n\n", b(self.inject_blockpage)));
        s.push_str("[protocols]\n");
        s.push_str(&format!("dns_poison = {}\n", b(self.dns_poison)));
        s.push_str(&format!("tor_filter = {}\n", b(self.tor_filter)));
        s.push_str(&format!("active_probing = {}\n", b(self.active_probing)));
        s.push_str(&format!("vpn_dpi = {}\n\n", b(self.vpn_dpi)));
        s.push_str("[rules]\n");
        s.push_str(&format!("keywords = {}\n", fmt_array(&self.keywords)));
        s.push_str(&format!("domains = {}\n", fmt_array(&self.domains)));
        s.push_str(&format!("tor_fingerprint = {}\n", b(self.tor_fingerprint)));
        s.push_str(&format!("vpn_fingerprint = {}\n\n", b(self.vpn_fingerprint)));
        s.push_str("[heterogeneity]\n");
        s.push_str(&format!("blacklist_jitter = {}\n", fmt_f64(self.het_blacklist_jitter)));
        s.push_str(&format!("resync_jitter = {}\n", fmt_f64(self.het_resync_jitter)));
        s.push_str(&format!("overload_jitter = {}\n", fmt_f64(self.het_overload_jitter)));
        s
    }

    /// Compile onto the dense machinery: build the [`RuleSet`] in
    /// `paper_default` order (so a profile listing the paper workload
    /// compiles to a content-equal set, which [`crate::device::GfwElement`]
    /// recognizes and serves from the process-wide shared automaton), fill
    /// a [`GfwConfig`], and validate every probability knob. When the rules
    /// equal the paper set the shared `Arc` itself is handed out, so not
    /// even the `Arc::ptr_eq` fast path can tell profile from builtin.
    pub fn compile(&self) -> Result<GfwConfig, String> {
        for (name, v) in [
            ("blacklist_jitter", self.het_blacklist_jitter),
            ("resync_jitter", self.het_resync_jitter),
            ("overload_jitter", self.het_overload_jitter),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!(
                    "profile {}: [heterogeneity] {name} must be a finite non-negative amplitude, got {v}",
                    self.name
                ));
            }
        }
        let mut rules = RuleSet::empty();
        for kw in &self.keywords {
            rules.rules.push(Rule {
                pattern: kw.as_bytes().to_vec(),
                kind: DetectionKind::HttpKeyword,
            });
        }
        for d in &self.domains {
            rules.rules.push(Rule {
                pattern: d.as_bytes().to_vec(),
                kind: DetectionKind::Domain,
            });
            rules.rules.push(Rule {
                pattern: dns_label_encoding(d),
                kind: DetectionKind::Domain,
            });
        }
        if self.tor_fingerprint {
            rules.rules.push(Rule {
                pattern: TOR_FINGERPRINT.to_vec(),
                kind: DetectionKind::TorHandshake,
            });
        }
        if self.vpn_fingerprint {
            rules.rules.push(Rule {
                pattern: VPN_FINGERPRINT.to_vec(),
                kind: DetectionKind::VpnHandshake,
            });
        }
        let shared = shared_paper_rules();
        let rules = if rules == *shared { shared } else { Arc::new(rules) };

        let mut cfg = GfwConfig::evolved();
        cfg.generation = self.generation;
        cfg.type1 = self.type1;
        cfg.type2 = self.type2;
        cfg.validate_checksum = self.validate_checksum;
        cfg.check_md5 = self.check_md5;
        cfg.check_ack = self.check_ack;
        cfg.check_timestamp = self.check_timestamp;
        cfg.validate_ip_total_len = self.validate_ip_total_len;
        cfg.segment_overlap = self.segment_overlap;
        cfg.ip_frag_overlap = self.ip_frag_overlap;
        cfg.rst_resync_prob = self.rst_resync_prob;
        cfg.rst_resync_prob_handshake = self.rst_resync_prob_handshake;
        cfg.overload_miss_prob = self.overload_miss_prob;
        cfg.blacklist_duration = Duration::from_millis(self.blacklist_duration_ms);
        cfg.reaction_delay = Duration::from_micros(self.reaction_delay_us);
        cfg.max_tcbs = self.max_tcbs;
        cfg.eviction = self.eviction;
        cfg.resync_storm_window = Duration::from_millis(self.resync_storm_window_ms);
        cfg.resync_storm_threshold = self.resync_storm_threshold;
        cfg.censor_responses = self.censor_responses;
        cfg.inject_blockpage = self.inject_blockpage;
        cfg.dns_poison = self.dns_poison;
        cfg.tor_filter = self.tor_filter;
        cfg.active_probing = self.active_probing;
        cfg.vpn_dpi = self.vpn_dpi;
        cfg.rules = rules;
        cfg.profile_tag = match self.name.as_str() {
            "gfw_prior" => ProfileTag::Prior,
            "gfw_evolved" => ProfileTag::Evolved,
            "turkmenistan" => ProfileTag::Turkmenistan,
            _ => ProfileTag::Custom,
        };
        cfg.validate().map_err(|e| format!("profile {}: {e}", self.name))?;
        Ok(cfg)
    }

    /// Compile for one specific device, applying the `[heterogeneity]`
    /// perturbations deterministically in `device_seed`. With every jitter
    /// at zero this is exactly [`CensorProfile::compile`] — no RNG is even
    /// constructed — so homogeneous deployments stay byte-identical to the
    /// builtin models.
    pub fn compile_for_device(&self, device_seed: u64) -> Result<GfwConfig, String> {
        let mut cfg = self.compile()?;
        if self.het_blacklist_jitter == 0.0 && self.het_resync_jitter == 0.0 && self.het_overload_jitter == 0.0 {
            return Ok(cfg);
        }
        // Fixed draw order (blacklist, resync, resync_handshake, overload)
        // keeps a profile's perturbations stable under unrelated edits.
        let mut rng = SimRng::seed_from(device_seed ^ HET_DEVICE_SEED);
        if self.het_blacklist_jitter > 0.0 {
            let factor = 1.0 + unit_draw(&mut rng) * self.het_blacklist_jitter;
            let us = (cfg.blacklist_duration.micros() as f64 * factor.max(0.0)).round() as u64;
            cfg.blacklist_duration = Duration::from_micros(us);
        }
        if self.het_resync_jitter > 0.0 {
            cfg.rst_resync_prob = (cfg.rst_resync_prob + unit_draw(&mut rng) * self.het_resync_jitter).clamp(0.0, 1.0);
            cfg.rst_resync_prob_handshake = (cfg.rst_resync_prob_handshake + unit_draw(&mut rng) * self.het_resync_jitter).clamp(0.0, 1.0);
        }
        if self.het_overload_jitter > 0.0 {
            cfg.overload_miss_prob = (cfg.overload_miss_prob + unit_draw(&mut rng) * self.het_overload_jitter).clamp(0.0, 1.0);
        }
        debug_assert!(cfg.validate().is_ok(), "clamped perturbations stay in range");
        Ok(cfg)
    }
}

/// Uniform draw in [-1, 1] (SimRng has no float method; probabilities in
/// the simulator go through `chance`, which this deliberately bypasses so
/// device perturbation never shares a draw path with trial sampling).
fn unit_draw(rng: &mut SimRng) -> f64 {
    (rng.next_u32() as f64 / u32::MAX as f64) * 2.0 - 1.0
}

fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn fmt_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|i| format!("\"{i}\"")).collect();
    format!("[{}]", quoted.join(", "))
}

/// The schema: every section and the keys it accepts.
const SECTIONS: [(&str, &[&str]); 8] = [
    ("censor", &["name", "generation", "type1", "type2"]),
    ("validation", &["checksum", "md5", "ack", "timestamp", "ip_total_len"]),
    ("stream", &["segment_overlap", "ip_frag_overlap"]),
    (
        "dynamics",
        &[
            "rst_resync_prob",
            "rst_resync_prob_handshake",
            "overload_miss_prob",
            "blacklist_duration_ms",
            "reaction_delay_us",
            "max_tcbs",
            "eviction",
            "resync_storm_window_ms",
            "resync_storm_threshold",
        ],
    ),
    ("actions", &["censor_responses", "inject_blockpage"]),
    ("protocols", &["dns_poison", "tor_filter", "active_probing", "vpn_dpi"]),
    ("rules", &["keywords", "domains", "tor_fingerprint", "vpn_fingerprint"]),
    ("heterogeneity", &["blacklist_jitter", "resync_jitter", "overload_jitter"]),
];

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> Result<&str, String> {
    let mut in_quotes = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_quotes = !in_quotes,
            '#' if !in_quotes => return Ok(&line[..i]),
            _ => {}
        }
    }
    Ok(line)
}

fn parse_bool(v: &str) -> Result<bool, String> {
    match v {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(format!("expected `true` or `false`, got `{v}`")),
    }
}

fn parse_f64(v: &str) -> Result<f64, String> {
    v.parse::<f64>().map_err(|_| format!("expected a number, got `{v}`"))
}

fn parse_u64(v: &str) -> Result<u64, String> {
    let digits: String = v.chars().filter(|&c| c != '_').collect();
    digits
        .parse::<u64>()
        .map_err(|_| format!("expected a non-negative integer, got `{v}`"))
}

fn parse_usize(v: &str) -> Result<usize, String> {
    parse_u64(v).map(|n| n as usize)
}

fn parse_string(v: &str) -> Result<String, String> {
    let inner = v.strip_prefix('"').ok_or_else(|| format!("expected a quoted string, got `{v}`"))?;
    let inner = inner
        .strip_suffix('"')
        .ok_or_else(|| format!("unterminated string `{v}` (truncated file?)"))?;
    if inner.contains('"') {
        return Err(format!("stray quote inside string `{v}` (escapes are not supported)"));
    }
    Ok(inner.to_owned())
}

/// Parse a single-line array of quoted strings: `["a", "b"]`.
fn parse_string_array(v: &str) -> Result<Vec<String>, String> {
    let inner = v
        .strip_prefix('[')
        .ok_or_else(|| format!("expected an array like [\"a\", \"b\"], got `{v}`"))?;
    let inner = inner
        .strip_suffix(']')
        .ok_or_else(|| format!("unterminated array `{v}` (truncated file?)"))?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner.split(',').map(|item| parse_string(item.trim())).collect()
}

fn apply_key(p: &mut CensorProfile, sect: &str, key: &str, value: &str) -> Result<(), String> {
    let bad = |what: &str, v: &str, options: &str| format!("bad {what} `{v}` (expected one of: {options})");
    match (sect, key) {
        ("censor", "name") => p.name = parse_string(value)?,
        ("censor", "generation") => {
            p.generation = match parse_string(value)?.as_str() {
                "old" => GfwGeneration::Old,
                "evolved" => GfwGeneration::Evolved,
                other => return Err(bad("generation", other, "old, evolved")),
            }
        }
        ("censor", "type1") => p.type1 = parse_bool(value)?,
        ("censor", "type2") => p.type2 = parse_bool(value)?,
        ("validation", "checksum") => p.validate_checksum = parse_bool(value)?,
        ("validation", "md5") => p.check_md5 = parse_bool(value)?,
        ("validation", "ack") => p.check_ack = parse_bool(value)?,
        ("validation", "timestamp") => p.check_timestamp = parse_bool(value)?,
        ("validation", "ip_total_len") => p.validate_ip_total_len = parse_bool(value)?,
        ("stream", "segment_overlap") => {
            p.segment_overlap = match parse_string(value)?.as_str() {
                "first_wins" => intang_tcpstack::reasm::SegmentOverlapPolicy::FirstWins,
                "last_wins" => intang_tcpstack::reasm::SegmentOverlapPolicy::LastWins,
                other => return Err(bad("segment_overlap", other, "first_wins, last_wins")),
            }
        }
        ("stream", "ip_frag_overlap") => {
            p.ip_frag_overlap = match parse_string(value)?.as_str() {
                "first_wins" => intang_packet::frag::OverlapPolicy::FirstWins,
                "last_wins" => intang_packet::frag::OverlapPolicy::LastWins,
                other => return Err(bad("ip_frag_overlap", other, "first_wins, last_wins")),
            }
        }
        ("dynamics", "rst_resync_prob") => p.rst_resync_prob = parse_f64(value)?,
        ("dynamics", "rst_resync_prob_handshake") => p.rst_resync_prob_handshake = parse_f64(value)?,
        ("dynamics", "overload_miss_prob") => p.overload_miss_prob = parse_f64(value)?,
        ("dynamics", "blacklist_duration_ms") => p.blacklist_duration_ms = parse_u64(value)?,
        ("dynamics", "reaction_delay_us") => p.reaction_delay_us = parse_u64(value)?,
        ("dynamics", "max_tcbs") => p.max_tcbs = parse_usize(value)?,
        ("dynamics", "eviction") => {
            p.eviction = match parse_string(value)?.as_str() {
                "oldest" => EvictionPolicy::Oldest,
                "lru" => EvictionPolicy::Lru,
                other => return Err(bad("eviction", other, "oldest, lru")),
            }
        }
        ("dynamics", "resync_storm_window_ms") => p.resync_storm_window_ms = parse_u64(value)?,
        ("dynamics", "resync_storm_threshold") => p.resync_storm_threshold = parse_usize(value)?,
        ("actions", "censor_responses") => p.censor_responses = parse_bool(value)?,
        ("actions", "inject_blockpage") => p.inject_blockpage = parse_bool(value)?,
        ("protocols", "dns_poison") => p.dns_poison = parse_bool(value)?,
        ("protocols", "tor_filter") => p.tor_filter = parse_bool(value)?,
        ("protocols", "active_probing") => p.active_probing = parse_bool(value)?,
        ("protocols", "vpn_dpi") => p.vpn_dpi = parse_bool(value)?,
        ("rules", "keywords") => p.keywords = parse_string_array(value)?,
        ("rules", "domains") => p.domains = parse_string_array(value)?,
        ("rules", "tor_fingerprint") => p.tor_fingerprint = parse_bool(value)?,
        ("rules", "vpn_fingerprint") => p.vpn_fingerprint = parse_bool(value)?,
        ("heterogeneity", "blacklist_jitter") => p.het_blacklist_jitter = parse_f64(value)?,
        ("heterogeneity", "resync_jitter") => p.het_resync_jitter = parse_f64(value)?,
        ("heterogeneity", "overload_jitter") => p.het_overload_jitter = parse_f64(value)?,
        _ => unreachable!("key validated against the schema before dispatch"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_round_trip_through_the_text_format() {
        for name in CensorProfile::BUILTIN_NAMES {
            let p = CensorProfile::builtin(name).unwrap();
            let reparsed = CensorProfile::parse(&p.to_text()).unwrap();
            assert_eq!(reparsed, p, "round-trip of `{name}` must be exact");
        }
    }

    #[test]
    fn gfw_profiles_compile_to_the_hardcoded_configs() {
        let evolved = CensorProfile::gfw_evolved().compile().unwrap();
        assert_eq!(evolved, GfwConfig::evolved());
        let prior = CensorProfile::gfw_prior().compile().unwrap();
        assert_eq!(prior, GfwConfig::old());
    }

    #[test]
    fn paper_rules_compile_to_the_shared_arc() {
        // Not just content-equal: the literal process-wide Arc, so the
        // device's shared-automaton fast path can't tell profile from
        // builtin even by pointer identity.
        for p in [CensorProfile::gfw_evolved(), CensorProfile::gfw_prior()] {
            let cfg = p.compile().unwrap();
            assert!(Arc::ptr_eq(&cfg.rules, &shared_paper_rules()));
        }
    }

    #[test]
    fn turkmenistan_is_structurally_different() {
        let cfg = CensorProfile::turkmenistan().compile().unwrap();
        assert_eq!(cfg.generation, GfwGeneration::Old);
        assert!(cfg.type1 && !cfg.type2);
        assert!(cfg.censor_responses, "bidirectional: responses censored too");
        assert!(cfg.inject_blockpage);
        assert!(!cfg.tor_filter && !cfg.active_probing);
        assert_eq!(cfg.profile_tag, ProfileTag::Turkmenistan);
        assert!(!Arc::ptr_eq(&cfg.rules, &shared_paper_rules()), "no Tor/VPN fingerprints");
    }

    #[test]
    fn profile_tags_follow_names() {
        let mut p = CensorProfile::gfw_evolved();
        p.name = "my_custom_censor".to_owned();
        assert_eq!(p.compile().unwrap().profile_tag, ProfileTag::Custom);
    }

    #[test]
    fn rejects_unknown_section_and_key() {
        let err = CensorProfile::parse("[bogus]\nx = 1\n").unwrap_err();
        assert!(err.contains("line 1") && err.contains("unknown section"), "{err}");
        let err = CensorProfile::parse("[censor]\nname = \"x\"\nbogus_key = 1\n").unwrap_err();
        assert!(err.contains("line 3") && err.contains("unknown key `bogus_key`"), "{err}");
    }

    #[test]
    fn rejects_duplicates() {
        let err = CensorProfile::parse("[censor]\nname = \"x\"\n[censor]\n").unwrap_err();
        assert!(err.contains("duplicate section"), "{err}");
        let err = CensorProfile::parse("[censor]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert!(err.contains("duplicate key `name`"), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let err = CensorProfile::parse("[censor]\nname = \"gfw_ev").unwrap_err();
        assert!(err.contains("unterminated string"), "{err}");
        let err = CensorProfile::parse("[censor]\nname = \"x\"\n[rules]\nkeywords = [\"ultra\"").unwrap_err();
        assert!(err.contains("unterminated array"), "{err}");
        let err = CensorProfile::parse("[censor\n").unwrap_err();
        assert!(err.contains("unterminated section header"), "{err}");
    }

    #[test]
    fn rejects_keys_outside_sections_and_missing_name() {
        let err = CensorProfile::parse("name = \"x\"\n").unwrap_err();
        assert!(err.contains("before any `[section]`"), "{err}");
        let err = CensorProfile::parse("[censor]\ntype1 = true\n").unwrap_err();
        assert!(err.contains("missing required key"), "{err}");
    }

    #[test]
    fn rejects_bad_values_with_actionable_messages() {
        let err = CensorProfile::parse("[censor]\nname = \"x\"\ntype1 = yes\n").unwrap_err();
        assert!(err.contains("expected `true` or `false`"), "{err}");
        let err = CensorProfile::parse("[censor]\nname = \"x\"\ngeneration = \"modern\"\n").unwrap_err();
        assert!(err.contains("old, evolved"), "{err}");
        let err = CensorProfile::parse("[censor]\nname = \"x\"\n[dynamics]\nmax_tcbs = -5\n").unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
    }

    #[test]
    fn out_of_range_probabilities_fail_at_compile() {
        for (key, knob) in [
            ("rst_resync_prob", "rst_resync_prob"),
            ("rst_resync_prob_handshake", "rst_resync_prob_handshake"),
            ("overload_miss_prob", "overload_miss_prob"),
        ] {
            let text = format!("[censor]\nname = \"x\"\n[dynamics]\n{key} = 3.7\n");
            let p = CensorProfile::parse(&text).unwrap();
            let err = p.compile().unwrap_err();
            assert!(err.contains(knob), "compile error names the knob: {err}");
        }
        let p = CensorProfile::parse("[censor]\nname = \"x\"\n[heterogeneity]\nresync_jitter = -0.2\n").unwrap();
        assert!(p.compile().unwrap_err().contains("resync_jitter"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# leading comment\n\n[censor]\nname = \"x\" # trailing\n# [not_a_section]\n";
        let p = CensorProfile::parse(text).unwrap();
        assert_eq!(p.name, "x");
    }

    #[test]
    fn zero_jitter_device_compile_is_the_plain_compile() {
        let p = CensorProfile::gfw_evolved();
        for seed in [0u64, 1, 0xdead_beef] {
            assert_eq!(p.compile_for_device(seed).unwrap(), p.compile().unwrap());
        }
    }

    #[test]
    fn heterogeneity_perturbs_deterministically_and_in_range() {
        let mut p = CensorProfile::gfw_evolved();
        p.het_blacklist_jitter = 0.3;
        p.het_resync_jitter = 0.5;
        p.het_overload_jitter = 0.9;
        let base = p.compile().unwrap();
        let a = p.compile_for_device(7).unwrap();
        let b = p.compile_for_device(7).unwrap();
        let c = p.compile_for_device(8).unwrap();
        assert_eq!(a, b, "same device seed, same perturbation");
        assert_ne!(a, c, "different devices differ");
        for cfg in [&a, &c] {
            cfg.validate().unwrap();
            assert_ne!(*cfg, base, "jitter actually moved the knobs");
            let lo = (90_000_000.0 * 0.7) as u64;
            let hi = (90_000_000.0 * 1.3) as u64;
            let us = cfg.blacklist_duration.micros();
            assert!((lo..=hi).contains(&us), "blacklist within ±30%: {us}");
        }
    }
}
