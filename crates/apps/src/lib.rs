//! # intang-apps
//!
//! Simulated hosts: a [`host::HostElement`] couples an `intang-tcpstack`
//! endpoint (plus a small UDP layer) to an application driver and plugs
//! into the netsim path as an element. The drivers implement the paper's
//! workloads:
//!
//! * HTTP client/server — the Table 1/Table 4 measurement workload
//!   (GET requests carrying the sensitive keyword);
//! * DNS resolver and clients over UDP and TCP — the Table 6 workload;
//! * a Tor-like client and bridge whose handshake the censor fingerprints
//!   (§7.3), including the bridge's response to active probes;
//! * an OpenVPN-over-TCP-like pair (§7.3).

pub mod dnsapp;
pub mod host;
pub mod http;
pub mod metro;
pub mod tor;
pub mod vpn;

pub use host::{HostDriver, HostElement, HostHandle, UdpLayer};
pub use http::{HttpClientDriver, HttpClientReport, HttpServerDriver};
