//! A Tor-like client and bridge (§7.3).
//!
//! The client leads with a fingerprintable handshake (standing in for the
//! Tor TLS client hello); the bridge answers any valid handshake — which is
//! exactly why the censor's active prober can confirm it. Traffic after the
//! handshake is periodic opaque cells.

use crate::host::{HostDriver, UdpLayer};
use intang_gfw::dpi::TOR_FINGERPRINT;
use intang_gfw::probe::TOR_SERVER_HELLO;
use intang_netsim::{Duration, Instant};
use intang_tcpstack::{SocketHandle, TcpEndpoint};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Progress of a Tor client session.
#[derive(Debug, Default, Clone)]
pub struct TorClientReport {
    pub connected: bool,
    pub handshake_complete: bool,
    /// Opaque cells exchanged after the handshake.
    pub cells_acked: u32,
    pub reset: bool,
    /// Connection stopped making progress (blocked / blackholed).
    pub stalled: bool,
}

enum TorState {
    Idle,
    Connecting(SocketHandle),
    AwaitHello(SocketHandle),
    Chatting(SocketHandle),
    Done,
}

/// Connects to a bridge, handshakes, then sends `cells` periodic cells.
pub struct TorClientDriver {
    bridge: Ipv4Addr,
    port: u16,
    cells: u32,
    sent_cells: u32,
    next_cell_at: Instant,
    state: TorState,
    start_at: Instant,
    pub report: Rc<RefCell<TorClientReport>>,
}

impl TorClientDriver {
    pub fn new(bridge: Ipv4Addr, port: u16, cells: u32) -> (TorClientDriver, Rc<RefCell<TorClientReport>>) {
        let report = Rc::new(RefCell::new(TorClientReport::default()));
        (
            TorClientDriver {
                bridge,
                port,
                cells,
                sent_cells: 0,
                next_cell_at: Instant::ZERO,
                state: TorState::Idle,
                start_at: Instant::ZERO,
                report: report.clone(),
            },
            report,
        )
    }

    pub fn starting_at(mut self, at: Instant) -> TorClientDriver {
        self.start_at = at;
        self
    }
}

impl HostDriver for TorClientDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        match self.state {
            TorState::Idle => {
                if now >= self.start_at {
                    let h = tcp.connect(self.bridge, self.port, now.micros());
                    self.state = TorState::Connecting(h);
                }
            }
            TorState::Connecting(h) => {
                let sock = tcp.socket(h);
                if sock.is_established() {
                    sock.send(TOR_FINGERPRINT, now.micros());
                    self.report.borrow_mut().connected = true;
                    self.state = TorState::AwaitHello(h);
                } else if sock.is_closed() {
                    self.report.borrow_mut().reset = sock.reset_by_peer;
                    self.report.borrow_mut().stalled = !sock.reset_by_peer;
                    self.state = TorState::Done;
                }
            }
            TorState::AwaitHello(h) => {
                let sock = tcp.socket(h);
                if sock.reset_by_peer {
                    self.report.borrow_mut().reset = true;
                    self.state = TorState::Done;
                    return;
                }
                let data = sock.recv_drain();
                if data.windows(TOR_SERVER_HELLO.len()).any(|w| w == TOR_SERVER_HELLO) {
                    self.report.borrow_mut().handshake_complete = true;
                    self.next_cell_at = now;
                    self.state = TorState::Chatting(h);
                }
            }
            TorState::Chatting(h) => {
                let sock = tcp.socket(h);
                if sock.reset_by_peer {
                    self.report.borrow_mut().reset = true;
                    self.state = TorState::Done;
                    return;
                }
                let acked = sock.recv_discard() as u32 / 8;
                self.report.borrow_mut().cells_acked += acked;
                if self.sent_cells < self.cells && now >= self.next_cell_at {
                    sock.send(b"TORCELL!", now.micros());
                    self.sent_cells += 1;
                    self.next_cell_at = now + Duration::from_millis(500);
                } else if self.sent_cells >= self.cells && self.report.borrow().cells_acked >= self.cells {
                    tcp.socket(h).close(now.micros());
                    self.state = TorState::Done;
                }
            }
            TorState::Done => {}
        }
    }

    fn next_wakeup(&self) -> Option<Instant> {
        match self.state {
            TorState::Chatting(_) if self.sent_cells < self.cells => Some(self.next_cell_at),
            TorState::Idle => Some(self.start_at),
            _ => None,
        }
    }
}

/// A bridge: answers the fingerprint handshake (from clients *and* from
/// active probers — its fatal flaw), then echoes cells back.
pub struct TorBridgeDriver {
    port: u16,
    conns: Vec<(SocketHandle, bool)>,
    pub handshakes: Rc<RefCell<u32>>,
}

impl TorBridgeDriver {
    pub fn new(port: u16) -> TorBridgeDriver {
        TorBridgeDriver {
            port,
            conns: Vec::new(),
            handshakes: Rc::new(RefCell::new(0)),
        }
    }

    pub fn port(&self) -> u16 {
        self.port
    }
}

impl HostDriver for TorBridgeDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        for h in tcp.take_accepted() {
            self.conns.push((h, false));
        }
        for (h, greeted) in &mut self.conns {
            let data = tcp.socket(*h).recv_drain();
            if !*greeted {
                if data.windows(TOR_FINGERPRINT.len()).any(|w| w == TOR_FINGERPRINT) {
                    tcp.socket(*h).send(TOR_SERVER_HELLO, now.micros());
                    *greeted = true;
                    *self.handshakes.borrow_mut() += 1;
                }
            } else if !data.is_empty() {
                // Echo cells back 1:1.
                tcp.socket(*h).send(&data, now.micros());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::add_host;
    use intang_netsim::{Direction, Link, Simulation};
    use intang_tcpstack::StackProfile;

    #[test]
    fn tor_session_without_censor() {
        let bridge_addr = Ipv4Addr::new(54, 210, 8, 7);
        let (driver, report) = TorClientDriver::new(bridge_addr, 443, 5);
        let mut sim = Simulation::new(71);
        add_host(
            &mut sim,
            "tor-client",
            Ipv4Addr::new(10, 0, 0, 1),
            StackProfile::linux_4_4(),
            Box::new(driver),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(60), 10));
        let bridge = TorBridgeDriver::new(443);
        let (_i, bh) = add_host(
            &mut sim,
            "bridge",
            bridge_addr,
            StackProfile::linux_4_4(),
            Box::new(bridge),
            Direction::ToClient,
        );
        bh.with_tcp(|t| t.listen(443));
        sim.run_until(intang_netsim::Instant(20_000_000));
        let rep = report.borrow();
        assert!(rep.connected);
        assert!(rep.handshake_complete);
        assert_eq!(rep.cells_acked, 5);
        assert!(!rep.reset);
    }
}
