//! DNS applications: a resolver answering over both UDP and TCP, plus UDP
//! and TCP query clients — the Table 6 workload and the substrate for
//! INTANG's DNS forwarder (§6).

use crate::host::{HostDriver, UdpLayer};
use intang_netsim::Instant;
use intang_packet::dns::DnsMessage;
use intang_tcpstack::{SocketHandle, TcpEndpoint};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// A resolver's zone: name → address, with a default for everything else.
#[derive(Debug, Clone)]
pub struct Zone {
    records: HashMap<String, Ipv4Addr>,
    pub default: Ipv4Addr,
}

impl Zone {
    pub fn new(default: Ipv4Addr) -> Zone {
        Zone {
            records: HashMap::new(),
            default,
        }
    }

    pub fn with(mut self, name: &str, addr: Ipv4Addr) -> Zone {
        self.records.insert(name.to_string(), addr);
        self
    }

    pub fn lookup(&self, name: &str) -> Ipv4Addr {
        self.records.get(name).copied().unwrap_or(self.default)
    }
}

/// An authoritative-ish resolver serving A records over UDP:53 and TCP:53.
pub struct DnsServerDriver {
    zone: Zone,
    tcp_conns: Vec<(SocketHandle, Vec<u8>)>,
    pub answered_udp: Rc<RefCell<u32>>,
    pub answered_tcp: Rc<RefCell<u32>>,
}

impl DnsServerDriver {
    pub fn new(zone: Zone) -> DnsServerDriver {
        DnsServerDriver {
            zone,
            tcp_conns: Vec::new(),
            answered_udp: Rc::new(RefCell::new(0)),
            answered_tcp: Rc::new(RefCell::new(0)),
        }
    }
}

impl HostDriver for DnsServerDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, udp: &mut UdpLayer) {
        // UDP queries.
        for dg in udp.recv_port(53) {
            if let Ok(query) = DnsMessage::decode(&dg.payload) {
                if !query.is_response {
                    let addr = query.first_name().map(|n| self.zone.lookup(n)).unwrap_or(self.zone.default);
                    let resp = DnsMessage::answer_a(&query, addr, 60);
                    udp.send(dg.src, 53, dg.src_port, resp.encode());
                    *self.answered_udp.borrow_mut() += 1;
                }
            }
        }
        // TCP queries (length-prefixed, possibly several per connection).
        for h in tcp.take_accepted() {
            self.tcp_conns.push((h, Vec::new()));
        }
        for (h, buf) in &mut self.tcp_conns {
            let data = tcp.socket(*h).recv_drain();
            buf.extend_from_slice(&data);
            while let Ok((query, used)) = DnsMessage::decode_tcp(buf) {
                buf.drain(..used);
                if query.is_response {
                    continue;
                }
                let addr = query.first_name().map(|n| self.zone.lookup(n)).unwrap_or(self.zone.default);
                let resp = DnsMessage::answer_a(&query, addr, 60);
                tcp.socket(*h).send(&resp.encode_tcp(), now.micros());
                *self.answered_tcp.borrow_mut() += 1;
            }
        }
    }
}

/// Result of one DNS lookup.
#[derive(Debug, Default, Clone)]
pub struct DnsClientReport {
    pub answer: Option<Ipv4Addr>,
    /// All answers seen (poisoning races deliver more than one).
    pub all_answers: Vec<Ipv4Addr>,
    pub reset: bool,
}

/// Plain UDP DNS client: one query, first response wins (which is exactly
/// why injection-based poisoning works).
pub struct DnsUdpClientDriver {
    resolver: Ipv4Addr,
    name: String,
    txid: u16,
    sent: bool,
    pub report: Rc<RefCell<DnsClientReport>>,
}

impl DnsUdpClientDriver {
    pub fn new(resolver: Ipv4Addr, name: &str) -> (DnsUdpClientDriver, Rc<RefCell<DnsClientReport>>) {
        let report = Rc::new(RefCell::new(DnsClientReport::default()));
        (
            DnsUdpClientDriver {
                resolver,
                name: name.to_string(),
                txid: 0x3131,
                sent: false,
                report: report.clone(),
            },
            report,
        )
    }
}

impl HostDriver for DnsUdpClientDriver {
    fn poll(&mut self, _now: Instant, _tcp: &mut TcpEndpoint, udp: &mut UdpLayer) {
        if !self.sent {
            self.sent = true;
            let q = DnsMessage::query(self.txid, &self.name);
            udp.send(self.resolver, 5353, 53, q.encode());
        }
        for dg in udp.recv_port(5353) {
            if let Ok(resp) = DnsMessage::decode(&dg.payload) {
                if resp.is_response && resp.id == self.txid {
                    let mut rep = self.report.borrow_mut();
                    if let Some(rec) = resp.answers.first() {
                        rep.all_answers.push(rec.addr);
                        if rep.answer.is_none() {
                            rep.answer = Some(rec.addr);
                        }
                    }
                }
            }
        }
    }
}

/// TCP DNS client: connects to the resolver's port 53 and sends one
/// length-prefixed query.
pub struct DnsTcpClientDriver {
    resolver: Ipv4Addr,
    name: String,
    txid: u16,
    state: Option<SocketHandle>,
    sent: bool,
    buf: Vec<u8>,
    pub report: Rc<RefCell<DnsClientReport>>,
}

impl DnsTcpClientDriver {
    pub fn new(resolver: Ipv4Addr, name: &str) -> (DnsTcpClientDriver, Rc<RefCell<DnsClientReport>>) {
        let report = Rc::new(RefCell::new(DnsClientReport::default()));
        (
            DnsTcpClientDriver {
                resolver,
                name: name.to_string(),
                txid: 0x4242,
                state: None,
                sent: false,
                buf: Vec::new(),
                report: report.clone(),
            },
            report,
        )
    }
}

impl HostDriver for DnsTcpClientDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        let h = match self.state {
            Some(h) => h,
            None => {
                let h = tcp.connect(self.resolver, 53, now.micros());
                self.state = Some(h);
                h
            }
        };
        let sock = tcp.socket(h);
        if sock.reset_by_peer {
            self.report.borrow_mut().reset = true;
            return;
        }
        if sock.is_established() && !self.sent {
            self.sent = true;
            let q = DnsMessage::query(self.txid, &self.name);
            sock.send(&q.encode_tcp(), now.micros());
        }
        let data = tcp.socket(h).recv_drain();
        self.buf.extend_from_slice(&data);
        if let Ok((resp, _)) = DnsMessage::decode_tcp(&self.buf) {
            if resp.is_response && resp.id == self.txid {
                let mut rep = self.report.borrow_mut();
                if let Some(rec) = resp.answers.first() {
                    rep.all_answers.push(rec.addr);
                    rep.answer = Some(rec.addr);
                }
                drop(rep);
                tcp.socket(h).close(now.micros());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::add_host;
    use intang_netsim::{Direction, Duration, Link, Simulation};
    use intang_tcpstack::StackProfile;

    fn resolver_addr() -> Ipv4Addr {
        Ipv4Addr::new(216, 146, 35, 35) // "Dyn 1" from Table 6
    }

    fn real_addr() -> Ipv4Addr {
        Ipv4Addr::new(162, 125, 2, 1)
    }

    fn run_lookup(tcp: bool) -> DnsClientReport {
        let mut sim = Simulation::new(31);
        let zone = Zone::new(Ipv4Addr::new(198, 18, 0, 1)).with("www.dropbox.com", real_addr());
        let report = if tcp {
            let (driver, r) = DnsTcpClientDriver::new(resolver_addr(), "www.dropbox.com");
            add_host(
                &mut sim,
                "client",
                Ipv4Addr::new(10, 0, 0, 1),
                StackProfile::linux_4_4(),
                Box::new(driver),
                Direction::ToServer,
            );
            r
        } else {
            let (driver, r) = DnsUdpClientDriver::new(resolver_addr(), "www.dropbox.com");
            add_host(
                &mut sim,
                "client",
                Ipv4Addr::new(10, 0, 0, 1),
                StackProfile::linux_4_4(),
                Box::new(driver),
                Direction::ToServer,
            );
            r
        };
        sim.add_link(Link::new(Duration::from_millis(40), 8));
        let (_i, shandle) = add_host(
            &mut sim,
            "resolver",
            resolver_addr(),
            StackProfile::linux_4_4(),
            Box::new(DnsServerDriver::new(zone)),
            Direction::ToClient,
        );
        shandle.with_tcp(|t| t.listen(53));
        sim.run_to_quiescence(100_000);
        let rep = report.borrow().clone();
        rep
    }

    #[test]
    fn udp_lookup_resolves() {
        let rep = run_lookup(false);
        assert_eq!(rep.answer, Some(real_addr()));
        assert!(!rep.reset);
    }

    #[test]
    fn tcp_lookup_resolves() {
        let rep = run_lookup(true);
        assert_eq!(rep.answer, Some(real_addr()));
        assert!(!rep.reset);
    }

    #[test]
    fn zone_defaults_apply() {
        let zone = Zone::new(Ipv4Addr::new(1, 2, 3, 4)).with("a.example", Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(zone.lookup("a.example"), Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(zone.lookup("other.example"), Ipv4Addr::new(1, 2, 3, 4));
    }
}
