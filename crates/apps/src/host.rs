//! A simulated host: TCP endpoint + UDP layer + application driver, wired
//! into the event loop as a netsim [`Element`].

use intang_netsim::{Ctx, Direction, Element, Instant};
use intang_packet::{udp, IpProtocol, Ipv4Packet, Ipv4Repr, Wire};
use intang_tcpstack::{StackProfile, TcpEndpoint};
use intang_telemetry::{span, MetricsSheet, SpanId};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Timer token used for the endpoint's retransmission clock.
const TOKEN_TCP: u64 = 1;

/// One received UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram {
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

/// A minimal UDP layer: a receive queue and a send queue.
#[derive(Debug, Default)]
pub struct UdpLayer {
    pub rx: Vec<UdpDatagram>,
    tx: Vec<Wire>,
    local: Option<Ipv4Addr>,
}

impl UdpLayer {
    pub fn send(&mut self, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8>) {
        let src = self.local.expect("UDP layer not attached to a host");
        let repr = udp::UdpRepr::new(src_port, dst_port, payload);
        let ip = Ipv4Repr::new(src, dst, IpProtocol::Udp);
        self.tx.push(ip.emit(&repr.emit(src, dst)).into());
    }

    /// Drain received datagrams addressed to `port`.
    pub fn recv_port(&mut self, port: u16) -> Vec<UdpDatagram> {
        let (take, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.rx).into_iter().partition(|d| d.dst_port == port);
        self.rx = keep;
        take
    }
}

/// Application logic attached to a host. `poll` runs after every packet
/// delivery and timer tick; drivers inspect sockets, send, and close.
pub trait HostDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, udp: &mut UdpLayer);

    /// Next time this driver wants to be polled even with no traffic
    /// (periodic senders). Must be in the future relative to the `now` the
    /// driver last saw; the host clamps pathological values.
    fn next_wakeup(&self) -> Option<Instant> {
        None
    }
}

/// A no-op driver for passive hosts.
pub struct IdleDriver;

impl HostDriver for IdleDriver {
    fn poll(&mut self, _now: Instant, _tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {}
}

struct HostCore {
    tcp: TcpEndpoint,
    udp: UdpLayer,
    driver: Box<dyn HostDriver>,
    /// Raw ICMP datagrams received (consumed by probing tools).
    icmp_rx: Vec<Wire>,
}

/// The element. Cheap [`HostHandle`] clones give tests and tools access to
/// the shared core.
pub struct HostElement {
    label: String,
    core: Rc<RefCell<HostCore>>,
}

/// Shared access to a host's stack and queues.
#[derive(Clone)]
pub struct HostHandle {
    core: Rc<RefCell<HostCore>>,
}

impl HostElement {
    pub fn new(label: &str, addr: Ipv4Addr, profile: StackProfile, driver: Box<dyn HostDriver>) -> (HostElement, HostHandle) {
        let udp = UdpLayer {
            local: Some(addr),
            ..UdpLayer::default()
        };
        let core = Rc::new(RefCell::new(HostCore {
            tcp: TcpEndpoint::new(addr, profile),
            udp,
            driver,
            icmp_rx: Vec::new(),
        }));
        (
            HostElement {
                label: label.to_string(),
                core: core.clone(),
            },
            HostHandle { core },
        )
    }

    /// The direction pointing *away* from this host into the path. The
    /// client host (index 0) transmits ToServer; the server host transmits
    /// ToClient. Inferred lazily from the first packet's arrival direction
    /// is fragile, so it's explicit.
    pub fn into_boxed(self, egress: Direction) -> Box<DirectedHost> {
        Box::new(DirectedHost {
            host: self,
            egress,
            tx_scratch: Vec::new(),
        })
    }
}

impl HostHandle {
    pub fn with_tcp<R>(&self, f: impl FnOnce(&mut TcpEndpoint) -> R) -> R {
        f(&mut self.core.borrow_mut().tcp)
    }

    pub fn with_udp<R>(&self, f: impl FnOnce(&mut UdpLayer) -> R) -> R {
        f(&mut self.core.borrow_mut().udp)
    }

    pub fn take_icmp(&self) -> Vec<Wire> {
        std::mem::take(&mut self.core.borrow_mut().icmp_rx)
    }

    pub fn addr(&self) -> Ipv4Addr {
        self.core.borrow().tcp.addr
    }
}

/// A host bound to its egress direction (see [`HostElement::into_boxed`]).
pub struct DirectedHost {
    host: HostElement,
    egress: Direction,
    /// Reused per-pump transmit staging (capacity survives across events).
    tx_scratch: Vec<Wire>,
}

impl DirectedHost {
    fn pump(&mut self, ctx: &mut Ctx<'_>) {
        let mut core = self.host.core.borrow_mut();
        let HostCore { tcp, udp, driver, .. } = &mut *core;
        driver.poll(ctx.now, tcp, udp);
        tcp.poll_transmit_into(&mut self.tx_scratch);
        for w in self.tx_scratch.drain(..) {
            ctx.send(self.egress, w);
        }
        for w in std::mem::take(&mut udp.tx) {
            ctx.send(self.egress, w);
        }
        let mut wake = tcp.next_deadline().map(Instant);
        if let Some(w) = driver.next_wakeup() {
            // Clamp into the future so a sloppy driver can't spin the clock.
            let w = w.max(Instant(ctx.now.micros() + 1_000));
            wake = Some(wake.map_or(w, |t| t.min(w)));
        }
        if let Some(deadline) = wake {
            ctx.set_timer(deadline, TOKEN_TCP);
        }
    }
}

impl Element for DirectedHost {
    fn name(&self) -> &str {
        &self.host.label
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        self.host.core.borrow().tcp.export_metrics(m);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
        let _s = span(SpanId::Tcpstack);
        {
            let mut core = self.host.core.borrow_mut();
            let local = core.tcp.addr;
            match Ipv4Packet::new_checked(&wire[..]) {
                Ok(ip) if ip.dst_addr() == local => match ip.protocol() {
                    IpProtocol::Udp => {
                        if let Ok(u) = udp::UdpPacket::new_checked(ip.payload()) {
                            let dg = UdpDatagram {
                                src: ip.src_addr(),
                                src_port: u.src_port(),
                                dst_port: u.dst_port(),
                                payload: u.payload().to_vec(),
                            };
                            core.udp.rx.push(dg);
                        }
                    }
                    IpProtocol::Icmp => core.icmp_rx.push(wire),
                    _ => core.tcp.on_packet(wire, ctx.now.micros()),
                },
                _ => {} // not addressed to us: swallowed at the edge
            }
        }
        self.pump(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _s = span(SpanId::Tcpstack);
        if token == TOKEN_TCP {
            self.host.core.borrow_mut().tcp.on_timer(ctx.now.micros());
        }
        self.pump(ctx);
    }
}

/// Convenience: build a host and register a kick-off timer so the driver's
/// first `poll` runs at t=0 once the simulation starts.
pub fn add_host(
    sim: &mut intang_netsim::Simulation,
    label: &str,
    addr: Ipv4Addr,
    profile: StackProfile,
    driver: Box<dyn HostDriver>,
    egress: Direction,
) -> (usize, HostHandle) {
    let (host, handle) = HostElement::new(label, addr, profile, driver);
    let idx = sim.add_element(host.into_boxed(egress));
    sim.schedule_timer(idx, Instant::ZERO, 0);
    (idx, handle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intang_netsim::{Duration, Link, Simulation};

    /// Driver that opens one connection and sends a fixed blob.
    struct BlastDriver {
        server: Ipv4Addr,
        started: bool,
        handle: Option<intang_tcpstack::SocketHandle>,
        report: Rc<RefCell<Vec<u8>>>,
    }

    impl HostDriver for BlastDriver {
        fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
            if !self.started {
                self.started = true;
                let h = tcp.connect(self.server, 80, now.micros());
                self.handle = Some(h);
            }
            if let Some(h) = self.handle {
                if tcp.socket(h).is_established() && tcp.socket(h).snd_nxt() == tcp.socket(h).iss().wrapping_add(1) {
                    tcp.socket(h).send(b"ping over the simulated path", now.micros());
                }
                let data = tcp.socket(h).recv_drain();
                self.report.borrow_mut().extend_from_slice(&data);
            }
        }
    }

    /// Driver that echoes everything back upper-cased and closes.
    struct EchoDriver {
        conns: Vec<intang_tcpstack::SocketHandle>,
    }

    impl HostDriver for EchoDriver {
        fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
            self.conns.extend(tcp.take_accepted());
            for &h in &self.conns {
                let data = tcp.socket(h).recv_drain();
                if !data.is_empty() {
                    let upper: Vec<u8> = data.iter().map(u8::to_ascii_uppercase).collect();
                    tcp.socket(h).send(&upper, now.micros());
                }
            }
        }
    }

    #[test]
    fn two_hosts_talk_over_the_simulated_path() {
        let client_addr = Ipv4Addr::new(10, 0, 0, 1);
        let server_addr = Ipv4Addr::new(203, 0, 113, 10);
        let report = Rc::new(RefCell::new(Vec::new()));

        let mut sim = Simulation::new(11);
        let (_cidx, chandle) = add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(BlastDriver {
                server: server_addr,
                started: false,
                handle: None,
                report: report.clone(),
            }),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(15), 4));
        let (_sidx, shandle) = add_host(
            &mut sim,
            "server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(EchoDriver { conns: Vec::new() }),
            Direction::ToClient,
        );
        shandle.with_tcp(|t| t.listen(80));

        sim.run_to_quiescence(10_000);
        assert_eq!(report.borrow().as_slice(), b"PING OVER THE SIMULATED PATH");
        assert_eq!(chandle.with_tcp(|t| t.live_sockets()), 1);
    }

    #[test]
    fn loss_recovered_by_retransmission() {
        let client_addr = Ipv4Addr::new(10, 0, 0, 1);
        let server_addr = Ipv4Addr::new(203, 0, 113, 10);
        let report = Rc::new(RefCell::new(Vec::new()));

        let mut sim = Simulation::new(1234);
        add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(BlastDriver {
                server: server_addr,
                started: false,
                handle: None,
                report: report.clone(),
            }),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(5), 2).with_loss(0.25));
        let (_sidx, shandle) = add_host(
            &mut sim,
            "server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(EchoDriver { conns: Vec::new() }),
            Direction::ToClient,
        );
        shandle.with_tcp(|t| t.listen(80));

        sim.run_until(Instant(20_000_000));
        assert_eq!(
            report.borrow().as_slice(),
            b"PING OVER THE SIMULATED PATH",
            "RTO recovers from 25% loss"
        );
    }

    #[test]
    fn udp_layer_round_trip() {
        struct UdpPing {
            server: Ipv4Addr,
            sent: bool,
            got: Rc<RefCell<Vec<Vec<u8>>>>,
        }
        impl HostDriver for UdpPing {
            fn poll(&mut self, _now: Instant, _tcp: &mut TcpEndpoint, udp: &mut UdpLayer) {
                if !self.sent {
                    self.sent = true;
                    udp.send(self.server, 5000, 7, b"marco".to_vec());
                }
                for d in udp.recv_port(5000) {
                    self.got.borrow_mut().push(d.payload);
                }
            }
        }
        struct UdpEcho;
        impl HostDriver for UdpEcho {
            fn poll(&mut self, _now: Instant, _tcp: &mut TcpEndpoint, udp: &mut UdpLayer) {
                for d in udp.recv_port(7) {
                    udp.send(d.src, 7, d.src_port, b"polo".to_vec());
                }
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(5);
        add_host(
            &mut sim,
            "client",
            Ipv4Addr::new(10, 0, 0, 1),
            StackProfile::linux_4_4(),
            Box::new(UdpPing {
                server: Ipv4Addr::new(203, 0, 113, 10),
                sent: false,
                got: got.clone(),
            }),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(3), 1));
        add_host(
            &mut sim,
            "server",
            Ipv4Addr::new(203, 0, 113, 10),
            StackProfile::linux_4_4(),
            Box::new(UdpEcho),
            Direction::ToClient,
        );
        sim.run_to_quiescence(1_000);
        assert_eq!(*got.borrow(), vec![b"polo".to_vec()]);
    }

    #[test]
    fn connection_to_dead_host_times_out_cleanly() {
        let client_addr = Ipv4Addr::new(10, 0, 0, 1);
        let report = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(8);
        let (_idx, handle) = add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(BlastDriver {
                server: Ipv4Addr::new(203, 0, 113, 99),
                started: false,
                handle: None,
                report: report.clone(),
            }),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(5), 1));
        add_host(
            &mut sim,
            "blackhole",
            Ipv4Addr::new(203, 0, 113, 98), // different address: packets vanish
            StackProfile::linux_4_4(),
            Box::new(IdleDriver),
            Direction::ToClient,
        );
        sim.run_until(Instant(300_000_000));
        assert_eq!(handle.with_tcp(|t| t.live_sockets()), 0, "SYN retries exhausted, socket closed");
        assert!(report.borrow().is_empty());
    }
}
