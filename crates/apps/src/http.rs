//! HTTP client and server drivers — the Table 1 / Table 4 workload.

use crate::host::{HostDriver, UdpLayer};
use intang_netsim::Instant;
use intang_packet::http::{HttpRequest, HttpResponse};
use intang_tcpstack::{SocketHandle, TcpEndpoint};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Outcome of one HTTP fetch, shared with the experiment harness.
#[derive(Debug, Default)]
pub struct HttpClientReport {
    pub connected: bool,
    pub request_sent: bool,
    pub response: Option<HttpResponse>,
    /// The connection died on an RST.
    pub reset: bool,
    /// Raw bytes received (diagnostics).
    pub raw: Vec<u8>,
}

impl HttpClientReport {
    /// The paper's "Success": a response arrived and no reset killed us.
    pub fn succeeded(&self) -> bool {
        self.response.is_some() && !self.reset
    }
}

enum FetchState {
    Idle,
    Connecting(SocketHandle),
    Awaiting(SocketHandle),
    Done,
}

/// Fetches one URL from one server, optionally delayed.
pub struct HttpClientDriver {
    server: Ipv4Addr,
    port: u16,
    /// The request, pre-encoded (shared so sweep harnesses can hand every
    /// trial of a cell the same buffer instead of re-encoding per trial).
    request: Rc<Vec<u8>>,
    start_at: Instant,
    state: FetchState,
    pub report: Rc<RefCell<HttpClientReport>>,
}

impl HttpClientDriver {
    pub fn new(server: Ipv4Addr, port: u16, request: HttpRequest) -> (HttpClientDriver, Rc<RefCell<HttpClientReport>>) {
        HttpClientDriver::with_encoded(server, port, Rc::new(request.encode()))
    }

    /// Build from an already-encoded request (see [`HttpRequest::encode`]).
    pub fn with_encoded(server: Ipv4Addr, port: u16, request: Rc<Vec<u8>>) -> (HttpClientDriver, Rc<RefCell<HttpClientReport>>) {
        let report = Rc::new(RefCell::new(HttpClientReport::default()));
        (
            HttpClientDriver {
                server,
                port,
                request,
                start_at: Instant::ZERO,
                state: FetchState::Idle,
                report: report.clone(),
            },
            report,
        )
    }

    pub fn starting_at(mut self, at: Instant) -> HttpClientDriver {
        self.start_at = at;
        self
    }
}

impl HostDriver for HttpClientDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        match self.state {
            FetchState::Idle => {
                if now >= self.start_at {
                    let h = tcp.connect(self.server, self.port, now.micros());
                    self.state = FetchState::Connecting(h);
                }
            }
            FetchState::Connecting(h) => {
                let sock = tcp.socket(h);
                if sock.is_established() {
                    sock.send(&self.request, now.micros());
                    let mut rep = self.report.borrow_mut();
                    rep.connected = true;
                    rep.request_sent = true;
                    self.state = FetchState::Awaiting(h);
                } else if sock.is_closed() {
                    self.report.borrow_mut().reset = sock.reset_by_peer;
                    self.state = FetchState::Done;
                }
            }
            FetchState::Awaiting(h) => {
                let sock = tcp.socket(h);
                let closed = sock.is_closed() || sock.peer_closed();
                let reset = sock.reset_by_peer;
                let mut rep = self.report.borrow_mut();
                sock.drain_recv_into(&mut rep.raw);
                if reset {
                    rep.reset = true;
                }
                // The allocation-free completeness probe gates the real
                // decode, so the per-poll cost while bytes trickle in is a
                // scan rather than a header parse.
                if HttpResponse::is_complete(&rep.raw) {
                    rep.response = HttpResponse::decode(&rep.raw).ok();
                    drop(rep);
                    tcp.socket(h).close(now.micros());
                    self.state = FetchState::Done;
                } else if closed {
                    drop(rep);
                    self.state = FetchState::Done;
                }
            }
            FetchState::Done => {}
        }
    }
}

/// Serves a fixed page on a port; honors `Connection: close` semantics by
/// closing after the response.
pub struct HttpServerDriver {
    port: u16,
    /// Body served on success.
    body: Rc<Vec<u8>>,
    /// `HttpResponse::ok(&body).encode()`, computed once per driver: the
    /// 200 response is identical for every connection, so the per-request
    /// construct-and-encode round trip is hoisted out of the poll loop.
    ok_response: Rc<Vec<u8>>,
    /// Serve a 301-to-HTTPS instead (copies the request target into the
    /// Location header — the §3.3 keyword-echo hazard).
    redirect_https: bool,
    /// Accept connections and read requests but never answer (a flaky or
    /// overloaded origin).
    unresponsive: bool,
    conns: Vec<(SocketHandle, Vec<u8>, bool)>,
    /// Requests fully served (observable).
    pub served: Rc<RefCell<u32>>,
}

impl HttpServerDriver {
    pub fn new(port: u16) -> HttpServerDriver {
        // Sweeps build one server per trial, all serving the same default
        // page: share the body and its canned 200 across every driver on
        // this shard.
        thread_local! {
            static DEFAULT: (Rc<Vec<u8>>, Rc<Vec<u8>>) = {
                let body = Rc::new(b"<html><body>It works (simulated).</body></html>".to_vec());
                let ok = Rc::new(HttpResponse::ok(&body).encode());
                (body, ok)
            };
        }
        let (body, ok_response) = DEFAULT.with(Clone::clone);
        HttpServerDriver {
            port,
            body,
            ok_response,
            redirect_https: false,
            unresponsive: false,
            conns: Vec::new(),
            served: Rc::new(RefCell::new(0)),
        }
    }

    pub fn unresponsive(mut self) -> HttpServerDriver {
        self.unresponsive = true;
        self
    }

    pub fn with_body(mut self, body: &[u8]) -> HttpServerDriver {
        self.body = Rc::new(body.to_vec());
        self.ok_response = Rc::new(HttpResponse::ok(&self.body).encode());
        self
    }

    pub fn redirecting_to_https(mut self) -> HttpServerDriver {
        self.redirect_https = true;
        self
    }

    pub fn served_handle(&self) -> Rc<RefCell<u32>> {
        self.served.clone()
    }

    pub fn port(&self) -> u16 {
        self.port
    }
}

impl HostDriver for HttpServerDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        for h in tcp.take_accepted() {
            self.conns.push((h, Vec::new(), false));
        }
        for (h, buf, answered) in &mut self.conns {
            if *answered {
                continue;
            }
            tcp.socket(*h).drain_recv_into(buf);
            if self.unresponsive {
                continue;
            }
            if self.redirect_https {
                // The redirect echoes request fields, so it needs the full
                // decode.
                if let Ok(req) = HttpRequest::decode(buf) {
                    let host = req.header("host").unwrap_or("unknown").to_string();
                    let resp = HttpResponse::redirect_to_https(&host, &req.target);
                    let sock = tcp.socket(*h);
                    sock.send(&resp.encode(), now.micros());
                    sock.close(now.micros());
                    *answered = true;
                    *self.served.borrow_mut() += 1;
                }
            } else if HttpRequest::is_complete(buf) {
                // The canned 200 doesn't look at the request at all; the
                // no-alloc completeness probe is all that gates it.
                let sock = tcp.socket(*h);
                sock.send(&self.ok_response, now.micros());
                sock.close(now.micros());
                *answered = true;
                *self.served.borrow_mut() += 1;
            }
        }
    }
}

/// Make the listener live: call after `add_host`.
pub fn listen(handle: &crate::host::HostHandle, port: u16) {
    handle.with_tcp(|t| t.listen(port));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::add_host;
    use intang_netsim::{Direction, Duration, Link, Simulation};
    use intang_tcpstack::StackProfile;

    fn fetch(redirect: bool) -> Rc<RefCell<HttpClientReport>> {
        let client_addr = Ipv4Addr::new(10, 0, 0, 1);
        let server_addr = Ipv4Addr::new(203, 0, 113, 10);
        let req = HttpRequest::get("/ultrasurf", "site-0.example");
        let (driver, report) = HttpClientDriver::new(server_addr, 80, req);
        let mut sim = Simulation::new(21);
        add_host(
            &mut sim,
            "client",
            client_addr,
            StackProfile::linux_4_4(),
            Box::new(driver),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(25), 6));
        let server = if redirect {
            HttpServerDriver::new(80).redirecting_to_https()
        } else {
            HttpServerDriver::new(80)
        };
        let (_i, shandle) = add_host(
            &mut sim,
            "server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(server),
            Direction::ToClient,
        );
        listen(&shandle, 80);
        sim.run_to_quiescence(100_000);
        report
    }

    #[test]
    fn plain_fetch_succeeds_without_censor() {
        let report = fetch(false);
        let rep = report.borrow();
        assert!(rep.succeeded(), "no censor on path, fetch must succeed");
        assert_eq!(rep.response.as_ref().unwrap().status, 200);
        assert!(!rep.reset);
    }

    #[test]
    fn https_redirect_echoes_keyword_into_location() {
        let report = fetch(true);
        let rep = report.borrow();
        let resp = rep.response.as_ref().unwrap();
        assert_eq!(resp.status, 301);
        assert!(resp.header("location").unwrap().contains("/ultrasurf"));
    }
}
