//! An OpenVPN-over-TCP-like pair (§7.3): a fingerprintable session
//! negotiation followed by tunneled records. In November 2016 the paper
//! observed the GFW resetting such handshakes via DPI; the experiment
//! reproduces both that regime (`vpn_dpi` on) and the later one (off).

use crate::host::{HostDriver, UdpLayer};
use intang_gfw::dpi::VPN_FINGERPRINT;
use intang_netsim::Instant;
use intang_tcpstack::{SocketHandle, TcpEndpoint};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// The server's reply completing the session negotiation.
pub const VPN_SERVER_REPLY: &[u8] = b"\x00\x0e\x28OPENVPN-HARD-RESET-SERVER";

#[derive(Debug, Default, Clone)]
pub struct VpnClientReport {
    pub connected: bool,
    pub tunnel_up: bool,
    pub records_echoed: u32,
    pub reset: bool,
}

enum VpnState {
    Idle,
    Connecting(SocketHandle),
    Negotiating(SocketHandle),
    Tunneling(SocketHandle),
    Done,
}

/// Client: negotiate, then push `records` tunneled records.
pub struct VpnClientDriver {
    server: Ipv4Addr,
    port: u16,
    records: u32,
    sent: u32,
    state: VpnState,
    pub report: Rc<RefCell<VpnClientReport>>,
}

impl VpnClientDriver {
    pub fn new(server: Ipv4Addr, port: u16, records: u32) -> (VpnClientDriver, Rc<RefCell<VpnClientReport>>) {
        let report = Rc::new(RefCell::new(VpnClientReport::default()));
        (
            VpnClientDriver {
                server,
                port,
                records,
                sent: 0,
                state: VpnState::Idle,
                report: report.clone(),
            },
            report,
        )
    }
}

impl HostDriver for VpnClientDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        match self.state {
            VpnState::Idle => {
                let h = tcp.connect(self.server, self.port, now.micros());
                self.state = VpnState::Connecting(h);
            }
            VpnState::Connecting(h) => {
                let sock = tcp.socket(h);
                if sock.is_established() {
                    sock.send(VPN_FINGERPRINT, now.micros());
                    self.report.borrow_mut().connected = true;
                    self.state = VpnState::Negotiating(h);
                } else if sock.is_closed() {
                    self.report.borrow_mut().reset = sock.reset_by_peer;
                    self.state = VpnState::Done;
                }
            }
            VpnState::Negotiating(h) => {
                let sock = tcp.socket(h);
                if sock.reset_by_peer {
                    self.report.borrow_mut().reset = true;
                    self.state = VpnState::Done;
                    return;
                }
                let data = sock.recv_drain();
                if data.windows(VPN_SERVER_REPLY.len()).any(|w| w == VPN_SERVER_REPLY) {
                    self.report.borrow_mut().tunnel_up = true;
                    self.state = VpnState::Tunneling(h);
                }
            }
            VpnState::Tunneling(h) => {
                let sock = tcp.socket(h);
                if sock.reset_by_peer {
                    self.report.borrow_mut().reset = true;
                    self.state = VpnState::Done;
                    return;
                }
                let echoed = sock.recv_discard() as u32 / 16;
                self.report.borrow_mut().records_echoed += echoed;
                if self.sent < self.records {
                    sock.send(&[0xEE; 16], now.micros());
                    self.sent += 1;
                } else if self.report.borrow().records_echoed >= self.records {
                    tcp.socket(h).close(now.micros());
                    self.state = VpnState::Done;
                }
            }
            VpnState::Done => {}
        }
    }
}

/// Server: completes the negotiation and echoes tunneled records.
pub struct VpnServerDriver {
    conns: Vec<(SocketHandle, bool)>,
}

impl VpnServerDriver {
    pub fn new() -> VpnServerDriver {
        VpnServerDriver { conns: Vec::new() }
    }
}

impl Default for VpnServerDriver {
    fn default() -> Self {
        VpnServerDriver::new()
    }
}

impl HostDriver for VpnServerDriver {
    fn poll(&mut self, now: Instant, tcp: &mut TcpEndpoint, _udp: &mut UdpLayer) {
        for h in tcp.take_accepted() {
            self.conns.push((h, false));
        }
        for (h, negotiated) in &mut self.conns {
            let data = tcp.socket(*h).recv_drain();
            if !*negotiated {
                if data.windows(VPN_FINGERPRINT.len()).any(|w| w == VPN_FINGERPRINT) {
                    tcp.socket(*h).send(VPN_SERVER_REPLY, now.micros());
                    *negotiated = true;
                }
            } else if !data.is_empty() {
                tcp.socket(*h).send(&data, now.micros());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::add_host;
    use intang_netsim::{Direction, Duration, Link, Simulation};
    use intang_tcpstack::StackProfile;

    #[test]
    fn vpn_tunnel_without_censor() {
        let server_addr = Ipv4Addr::new(203, 0, 113, 66);
        let (driver, report) = VpnClientDriver::new(server_addr, 1194, 3);
        let mut sim = Simulation::new(99);
        add_host(
            &mut sim,
            "vpn-client",
            Ipv4Addr::new(10, 0, 0, 1),
            StackProfile::linux_4_4(),
            Box::new(driver),
            Direction::ToServer,
        );
        sim.add_link(Link::new(Duration::from_millis(30), 7));
        let (_i, sh) = add_host(
            &mut sim,
            "vpn-server",
            server_addr,
            StackProfile::linux_4_4(),
            Box::new(VpnServerDriver::new()),
            Direction::ToClient,
        );
        sh.with_tcp(|t| t.listen(1194));
        sim.run_until(Instant(20_000_000));
        let rep = report.borrow();
        assert!(rep.connected && rep.tunnel_up);
        assert_eq!(rep.records_echoed, 3);
        assert!(!rep.reset);
    }
}
