//! Metropolis: one shared world hosting very many concurrent client flows.
//!
//! The classic trial topology (one client host, one server host, one fetch)
//! scales to the paper's *population* questions — blacklist collateral
//! damage, censor TCB eviction under load, resynchronization storms — by
//! replacing the two hosts with two multiplexing elements:
//!
//! * [`MetroClients`] (leftmost): hosts every client flow. Per-flow state
//!   (a dedicated [`TcpEndpoint`], HTTP fetch machine, outcome slot) lives
//!   in **shards** — flow-keyed hash maps partitioned by
//!   [`intang_packet::pair_shard`] of the flow's *address pair* (never the
//!   ports, see [`shard_of`]) — the same partition key the sharded censor
//!   and shim lanes use, so a shard's flows and the cross-flow state they
//!   touch are causally closed. That closure is what lets
//!   [`MetroClients::for_domain`] split the shards across independent
//!   **event domains** (one [`Simulation`] per worker thread) without
//!   changing a single emitted byte.
//! * [`MetroServers`] (rightmost): hosts every origin site. One small
//!   endpoint per *connection*, created on the first SYN and reaped as soon
//!   as the request is answered and every socket has settled (a TTL timer
//!   remains as a backstop for conversations that never complete), so the
//!   steady-state cost of finished flows is zero.
//!
//! Everything in between — the INTANG shim, middleboxes, the GFW tap — is
//! the ordinary single-flow path, now observing (and entangling) all flows
//! at once through the censor's shared TCB table and blacklist (or its
//! per-lane partitions when the censor runs sharded).
//!
//! Determinism: flows spawn from a pre-generated, start-sorted spec list
//! via per-shard chained timers (never by iterating a hash map), per-flow
//! timers are keyed by flow id, and the end-of-run sweep walks each shard's
//! flow ids in spec order. Shard assignment is a pure function of the flow
//! key, so any shard count partitions the *same* per-flow results, and any
//! grouping of shards into domains replays each shard's exact serial event
//! stream.

use intang_netsim::{Ctx, Direction, Duration, Element, Instant, Simulation};
use intang_packet::http::{HttpRequest, HttpResponse};
use intang_packet::{FourTuple, FxHashMap, Ipv4Packet, TcpPacket, Wire};
use intang_tcpstack::{SocketHandle, StackProfile, TcpEndpoint};
use intang_telemetry::{Counter, GaugeId, GaugeSample, HistId, MetricsSheet};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Every metropolis site serves plain HTTP.
pub const METRO_PORT: u16 = 80;
/// First source port assigned per client address; the per-address budget
/// (`65535 - METRO_BASE_PORT`) caps concurrent+finished flows per address.
pub const METRO_BASE_PORT: u16 = 40_000;

/// Timer-token namespaces live in bits 32+; the low 32 bits carry the
/// argument. Kind 1: per-flow TCP/retransmit clock (`| flow_id`).
const CLIENT_TCP_BASE: u64 = 1 << 32;
/// Kind 2: per-shard chained spawn cursor (`| shard`).
const SPAWN_BASE: u64 = 2 << 32;
/// Kind 3: per-shard end-of-run sweep (`| shard`) — marks every still-live
/// flow of that shard stalled.
const FINISH_BASE: u64 = 3 << 32;

/// One planned flow. Specs are generated up front by the load generator
/// (seeded arrival process) and must be sorted by `start`.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    pub start: Instant,
    /// Index into the client address pool.
    pub client: u32,
    /// Index into the site address pool.
    pub site: u32,
    /// The flow's initial sequence number draw.
    pub isn: u32,
    /// Request carries the sensitive keyword.
    pub keyword: bool,
    /// Idle time between ESTABLISHED and sending the request (capacity
    /// tests use this to age a TCB toward eviction).
    pub request_delay: Duration,
}

/// Terminal classification of one flow (the §3.4 taxonomy, per flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOutcome {
    /// Never reached a terminal state (only visible mid-run).
    Pending,
    /// Complete HTTP response received.
    Success,
    /// Torn down by a reset (censor type-1/type-2, or blacklist collateral).
    Reset,
    /// Hung: no response and no reset by the horizon (Failure 1).
    Stalled,
}

/// Result slot for one flow, indexed by flow id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    pub outcome: FlowOutcome,
    /// Spawn → complete-response latency (successes only, else 0).
    pub latency_us: u64,
    /// Shard this flow's state lived in.
    pub shard: u32,
}

/// Pure shard assignment: [`intang_packet::pair_shard`] of the flow's
/// address pair alone. Ports deliberately do not participate — every
/// conversation between one (client, server) pair, and therefore every
/// censor-lane and shim-lane decision it can influence, lands in the same
/// shard, which is what makes a shard safe to lift into its own event
/// domain. The assignment never depends on spawn order, map iteration
/// order, or the shard count of *other* runs.
pub fn shard_of(tuple: &FourTuple, shards: u32) -> u32 {
    intang_packet::pair_shard(tuple.src, tuple.dst, shards)
}

/// Fetch progress of one live flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// SYN sent, waiting for the handshake.
    Connecting,
    /// Established at `since`; the request goes out at
    /// `since + request_delay`.
    Established { since: Instant },
    /// Request sent; reading the response.
    Awaiting,
}

/// Per-flow state: its own tiny TCP endpoint plus the fetch machine.
struct FlowCell {
    tuple: FourTuple,
    ep: TcpEndpoint,
    sock: SocketHandle,
    phase: Phase,
    request: Rc<Vec<u8>>,
    request_delay: Duration,
    rx: Vec<u8>,
    started: Instant,
}

/// Shared, handle-visible run state (outcome grid + interference-free
/// aggregate counters + the per-shard event ordering ledger).
pub struct MetroState {
    /// One slot per flow id; `shard` is filled at construction.
    pub results: Vec<FlowResult>,
    pub spawned: u64,
    pub succeeded: u64,
    pub reset: u64,
    pub stalled: u64,
    /// Flows spawned and not yet retired.
    pub live: u64,
    /// Per-shard monotone event sequence (feeds the simcheck FlowOrder
    /// shadow and the cheap always-on ordering check below).
    shard_seq: Vec<u64>,
    /// Last `(time, shard-seq)` observed per live flow.
    flow_last: FxHashMap<u32, (u64, u64)>,
    /// Events observed out of `(time, seq)` order within a flow — must
    /// stay zero; checked even when simcheck is off.
    pub order_violations: u64,
}

/// Cheap cloneable view of a [`MetroClients`] element's shared state.
#[derive(Clone)]
pub struct MetroHandle {
    state: Rc<RefCell<MetroState>>,
}

impl MetroHandle {
    pub fn results(&self) -> Vec<FlowResult> {
        self.state.borrow().results.clone()
    }

    /// `(spawned, succeeded, reset, stalled)` aggregate counts.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let s = self.state.borrow();
        (s.spawned, s.succeeded, s.reset, s.stalled)
    }

    pub fn live(&self) -> u64 {
        self.state.borrow().live
    }

    pub fn order_violations(&self) -> u64 {
        self.state.borrow().order_violations
    }

    /// Outcome of one flow by id.
    pub fn outcome(&self, id: u32) -> FlowOutcome {
        self.state.borrow().results[id as usize].outcome
    }
}

/// The client-side multiplexer element (leftmost, egress `ToServer`).
pub struct MetroClients {
    specs: Vec<FlowSpec>,
    /// Flow id → four-tuple (derived once: per-client port counters in
    /// spec order).
    tuples: Vec<FourTuple>,
    /// Flow id → shard index (pure [`shard_of`] of the tuple).
    shard_idx: Vec<u32>,
    /// Sharded per-flow engine state, keyed by flow id inside each shard.
    shards: Vec<FxHashMap<u32, FlowCell>>,
    /// Ingress demux: `(client addr, src port)` → live flow id.
    route: FxHashMap<(Ipv4Addr, u16), u32>,
    /// Flow ids per shard, in spec (start) order: both the spawn cursor
    /// chain and the end-of-run sweep walk these, never hash maps.
    shard_flow_ids: Vec<Vec<u32>>,
    /// Next position in `shard_flow_ids[s]` that shard's spawn timer will
    /// realize.
    cursors: Vec<usize>,
    /// Shards this instance actually runs. The serial world owns them all;
    /// an event domain owns the subset `shard % domains == domain` and
    /// never spawns (or routes, or times) anyone else's flows.
    owned: Vec<bool>,
    state: Rc<RefCell<MetroState>>,
    profile: StackProfile,
    req_keyword: Rc<Vec<u8>>,
    req_benign: Rc<Vec<u8>>,
    tx_scratch: Vec<Wire>,
    /// Invoked once per retired flow (the experiment wires this to
    /// `IntangHandle::retire_flow` so shim-side per-flow state dies with
    /// the flow).
    on_retire: Option<Box<dyn Fn(FourTuple)>>,
    /// `intang_simcheck::enabled()` cached at construction.
    sc: bool,
}

impl MetroClients {
    /// Build the element. `specs` must be sorted by `start`; source ports
    /// are assigned per client address in spec order starting at
    /// [`METRO_BASE_PORT`] (panics if an address would exhaust its range).
    pub fn new(clients: Vec<Ipv4Addr>, sites: Vec<Ipv4Addr>, specs: Vec<FlowSpec>, shards: u32) -> (MetroClients, MetroHandle) {
        Self::for_domain(clients, sites, specs, shards, 1, 0)
    }

    /// Build the element for one event domain of a `domains`-way split of
    /// the shards: this instance owns (spawns, pumps, retires) only the
    /// flows whose shard satisfies `shard % domains == domain`. Tuples,
    /// shard indices and the result grid still cover *all* flows — slots
    /// of flows owned elsewhere stay [`FlowOutcome::Pending`] — so
    /// per-domain result vectors scatter-merge by owned slot into exactly
    /// the serial grid. `for_domain(.., 1, 0)` *is* the serial element.
    pub fn for_domain(
        clients: Vec<Ipv4Addr>,
        sites: Vec<Ipv4Addr>,
        specs: Vec<FlowSpec>,
        shards: u32,
        domains: u32,
        domain: u32,
    ) -> (MetroClients, MetroHandle) {
        assert!(!clients.is_empty() && !sites.is_empty());
        assert!(specs.windows(2).all(|w| w[0].start <= w[1].start), "specs must be start-sorted");
        assert!(domains >= 1 && domain < domains, "domain index out of range");
        let shards = shards.max(1);
        let mut next_port = vec![METRO_BASE_PORT; clients.len()];
        let mut tuples = Vec::with_capacity(specs.len());
        let mut shard_idx = Vec::with_capacity(specs.len());
        let mut results = Vec::with_capacity(specs.len());
        let mut shard_flow_ids: Vec<Vec<u32>> = vec![Vec::new(); shards as usize];
        for (id, spec) in specs.iter().enumerate() {
            let addr = clients[spec.client as usize];
            let site = sites[spec.site as usize];
            let port = next_port[spec.client as usize];
            assert!(port < u16::MAX, "client {addr} exhausted its source-port range");
            next_port[spec.client as usize] = port + 1;
            let tuple = FourTuple::new(addr, port, site, METRO_PORT);
            let shard = shard_of(&tuple, shards);
            tuples.push(tuple);
            shard_idx.push(shard);
            shard_flow_ids[shard as usize].push(id as u32);
            results.push(FlowResult {
                outcome: FlowOutcome::Pending,
                latency_us: 0,
                shard,
            });
        }
        let owned: Vec<bool> = (0..shards).map(|s| s % domains == domain).collect();
        let state = Rc::new(RefCell::new(MetroState {
            results,
            spawned: 0,
            succeeded: 0,
            reset: 0,
            stalled: 0,
            live: 0,
            shard_seq: vec![0; shards as usize],
            flow_last: FxHashMap::default(),
            order_violations: 0,
        }));
        let el = MetroClients {
            specs,
            tuples,
            shard_idx,
            shards: (0..shards).map(|_| FxHashMap::default()).collect(),
            route: FxHashMap::default(),
            shard_flow_ids,
            cursors: vec![0; shards as usize],
            owned,
            state: state.clone(),
            profile: StackProfile::linux_4_4(),
            req_keyword: Rc::new(HttpRequest::get("/search?q=ultrasurf", "metropolis.example").encode()),
            req_benign: Rc::new(HttpRequest::get("/index.html", "metropolis.example").encode()),
            tx_scratch: Vec::new(),
            on_retire: None,
            sc: intang_simcheck::enabled(),
        };
        (el, MetroHandle { state })
    }

    /// Four-tuple each flow id will use (available before the element is
    /// boxed into the simulation — experiments preset per-flow strategies
    /// against these keys).
    pub fn tuples(&self) -> &[FourTuple] {
        &self.tuples
    }

    /// Install the per-flow retirement hook (e.g. the INTANG shim's
    /// `retire_flow`).
    pub fn set_retire_hook(&mut self, f: Box<dyn Fn(FourTuple)>) {
        self.on_retire = Some(f);
    }

    /// Register each owned, non-empty shard's spawn-cursor and end-of-run
    /// timers. Call once, after the element was added at `idx`. Shards are
    /// armed in index order, so same-time spawns across shards execute in
    /// shard order — but each shard's own stream is fixed regardless, which
    /// is the property the domain split relies on.
    pub fn bootstrap(&self, sim: &mut Simulation, idx: usize, horizon: Instant) {
        for (s, ids) in self.shard_flow_ids.iter().enumerate() {
            if !self.owned[s] || ids.is_empty() {
                continue;
            }
            let first = self.specs[ids[0] as usize].start;
            sim.schedule_timer(idx, first, SPAWN_BASE | s as u64);
            sim.schedule_timer(idx, horizon, FINISH_BASE | s as u64);
        }
    }

    /// Record one flow event on the flow's shard ledger: bumps the shard
    /// sequence, checks per-flow `(time, seq)` monotonicity, and feeds the
    /// simcheck FlowOrder shadow.
    fn note_event(&mut self, id: u32, now: Instant) {
        let shard = self.shard_idx[id as usize] as usize;
        let (t, seq) = {
            let mut st = self.state.borrow_mut();
            st.shard_seq[shard] += 1;
            let seq = st.shard_seq[shard];
            let t = now.micros();
            let last = st.flow_last.entry(id).or_insert((0, 0));
            let regressed = (t, seq) < *last;
            *last = (t, seq);
            if regressed {
                st.order_violations += 1;
            }
            (t, seq)
        };
        if self.sc {
            intang_simcheck::flow_event(u64::from(id), t, seq);
        }
    }

    /// Realize every spec of one shard due at `now`, then re-arm that
    /// shard's cursor timer.
    fn spawn_due(&mut self, ctx: &mut Ctx<'_>, shard: usize) {
        while let Some(&id) = self.shard_flow_ids[shard].get(self.cursors[shard]) {
            if self.specs[id as usize].start > ctx.now {
                break;
            }
            self.cursors[shard] += 1;
            self.spawn(ctx, id);
        }
        if let Some(&id) = self.shard_flow_ids[shard].get(self.cursors[shard]) {
            ctx.set_timer(self.specs[id as usize].start, SPAWN_BASE | shard as u64);
        }
    }

    fn spawn(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let spec = self.specs[id as usize];
        let tuple = self.tuples[id as usize];
        let shard = self.shard_idx[id as usize] as usize;
        let mut ep = TcpEndpoint::new(tuple.src, self.profile);
        ep.set_isn_base(spec.isn);
        let sock = ep.connect_from(tuple.src_port, tuple.dst, tuple.dst_port, ctx.now.micros());
        let request = if spec.keyword {
            self.req_keyword.clone()
        } else {
            self.req_benign.clone()
        };
        self.route.insert((tuple.src, tuple.src_port), id);
        self.shards[shard].insert(
            id,
            FlowCell {
                tuple,
                ep,
                sock,
                phase: Phase::Connecting,
                request,
                request_delay: spec.request_delay,
                rx: Vec::new(),
                started: ctx.now,
            },
        );
        {
            let mut st = self.state.borrow_mut();
            st.spawned += 1;
            st.live += 1;
        }
        self.note_event(id, ctx.now);
        self.pump_flow(ctx, id);
    }

    /// Advance one flow's fetch machine, transmit, and re-arm its timer.
    fn pump_flow(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let shard = self.shard_idx[id as usize] as usize;
        let Some(cell) = self.shards[shard].get_mut(&id) else { return };
        let now = ctx.now;
        let mut done: Option<(FlowOutcome, u64)> = None;
        {
            let sock = cell.ep.socket(cell.sock);
            if cell.phase == Phase::Connecting {
                if sock.is_established() {
                    cell.phase = Phase::Established { since: now };
                } else if sock.is_closed() {
                    let o = if sock.reset_by_peer {
                        FlowOutcome::Reset
                    } else {
                        FlowOutcome::Stalled
                    };
                    done = Some((o, 0));
                }
            }
            if let Phase::Established { since } = cell.phase {
                if now >= since + cell.request_delay {
                    sock.send(&cell.request, now.micros());
                    cell.phase = Phase::Awaiting;
                } else if sock.reset_by_peer || sock.is_closed() {
                    let o = if sock.reset_by_peer {
                        FlowOutcome::Reset
                    } else {
                        FlowOutcome::Stalled
                    };
                    done = Some((o, 0));
                }
            }
            if cell.phase == Phase::Awaiting && done.is_none() {
                let reset = sock.reset_by_peer;
                let closed = sock.is_closed() || sock.peer_closed();
                sock.drain_recv_into(&mut cell.rx);
                if HttpResponse::is_complete(&cell.rx) {
                    done = Some((FlowOutcome::Success, now.micros().saturating_sub(cell.started.micros())));
                } else if reset {
                    done = Some((FlowOutcome::Reset, 0));
                } else if closed {
                    done = Some((FlowOutcome::Stalled, 0));
                }
            }
            if done.is_some() {
                // Best-effort graceful teardown: the FIN rides the final
                // transmit below; the cell itself is dropped right after.
                sock.close(now.micros());
            }
        }
        let mut scratch = std::mem::take(&mut self.tx_scratch);
        cell.ep.poll_transmit_into(&mut scratch);
        for w in scratch.drain(..) {
            ctx.send(Direction::ToServer, w);
        }
        self.tx_scratch = scratch;
        match done {
            Some((outcome, latency_us)) => {
                self.note_event(id, now);
                self.retire(id, outcome, latency_us);
            }
            None => {
                let mut wake = cell.ep.next_deadline().map(Instant);
                if let Phase::Established { since } = cell.phase {
                    let due = since + cell.request_delay;
                    wake = Some(wake.map_or(due, |w| w.min(due)));
                }
                if let Some(at) = wake {
                    let at = at.max(Instant(now.micros() + 1));
                    ctx.set_timer(at, CLIENT_TCP_BASE | u64::from(id));
                }
            }
        }
    }

    /// Drop a flow's cell and record its terminal outcome.
    fn retire(&mut self, id: u32, outcome: FlowOutcome, latency_us: u64) {
        let shard = self.shard_idx[id as usize] as usize;
        let Some(cell) = self.shards[shard].remove(&id) else { return };
        self.route.remove(&(cell.tuple.src, cell.tuple.src_port));
        {
            let mut st = self.state.borrow_mut();
            st.live -= 1;
            match outcome {
                FlowOutcome::Success => st.succeeded += 1,
                FlowOutcome::Reset => st.reset += 1,
                FlowOutcome::Stalled => st.stalled += 1,
                FlowOutcome::Pending => {}
            }
            st.results[id as usize] = FlowResult {
                outcome,
                latency_us,
                shard: shard as u32,
            };
            st.flow_last.remove(&id);
        }
        if self.sc {
            intang_simcheck::flow_retired(u64::from(id));
        }
        if let Some(f) = &self.on_retire {
            f(cell.tuple);
        }
    }
}

impl Element for MetroClients {
    fn name(&self) -> &str {
        "metro-clients"
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
        let id = {
            let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else { return };
            let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
            // Demux on the flow's own (addr, port); packets for retired
            // flows (late FIN-ACKs, censor stragglers) fall off the edge.
            match self.route.get(&(ip.dst_addr(), tcp.dst_port())) {
                Some(&id) => id,
                None => return,
            }
        };
        self.note_event(id, ctx.now);
        let shard = self.shard_idx[id as usize] as usize;
        if let Some(cell) = self.shards[shard].get_mut(&id) {
            cell.ep.on_packet(wire, ctx.now.micros());
        }
        self.pump_flow(ctx, id);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let arg = (token & 0xFFFF_FFFF) as u32;
        match token >> 32 {
            k if k == CLIENT_TCP_BASE >> 32 => {
                let id = arg;
                let shard = self.shard_idx[id as usize] as usize;
                if let Some(cell) = self.shards[shard].get_mut(&id) {
                    cell.ep.on_timer(ctx.now.micros());
                    self.note_event(id, ctx.now);
                    self.pump_flow(ctx, id);
                }
            }
            k if k == SPAWN_BASE >> 32 => self.spawn_due(ctx, arg as usize),
            k if k == FINISH_BASE >> 32 => {
                // End of the world for one shard: every still-live flow is
                // stalled, swept in spec order — never the shard maps.
                let shard = arg as usize;
                for i in 0..self.shard_flow_ids[shard].len() {
                    let id = self.shard_flow_ids[shard][i];
                    if self.shards[shard].contains_key(&id) {
                        self.note_event(id, ctx.now);
                        self.retire(id, FlowOutcome::Stalled, 0);
                    }
                }
            }
            _ => {}
        }
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        let st = self.state.borrow();
        m.add(Counter::MetroFlowsSpawned, st.spawned);
        m.add(Counter::MetroFlowsSucceeded, st.succeeded);
        m.add(Counter::MetroFlowsReset, st.reset);
        m.add(Counter::MetroFlowsStalled, st.stalled);
        for r in &st.results {
            if r.outcome == FlowOutcome::Success {
                m.observe(HistId::MetroFlowLatencyUs, r.latency_us);
            }
        }
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        g.add(GaugeId::MetroLiveFlows, self.state.borrow().live);
    }
}

/// Server-cell timer kinds live in bits 52+ of the token; the low 48 bits
/// encode the `(client addr, client port)` cell key.
const SRV_KIND_TCP: u64 = 1;
const SRV_KIND_EXPIRE: u64 = 2;
const SRV_KIND_SHIFT: u64 = 52;

fn srv_token(kind: u64, key: (Ipv4Addr, u16)) -> u64 {
    (kind << SRV_KIND_SHIFT) | (u64::from(u32::from(key.0)) << 16) | u64::from(key.1)
}

fn srv_token_key(token: u64) -> (Ipv4Addr, u16) {
    let addr = Ipv4Addr::from(((token >> 16) & 0xFFFF_FFFF) as u32);
    (addr, (token & 0xFFFF) as u16)
}

/// One accepted connection on the server side.
struct ServerCell {
    ep: TcpEndpoint,
    sock: Option<SocketHandle>,
    rx: Vec<u8>,
    served: bool,
}

/// The origin-site multiplexer element (rightmost, egress `ToClient`).
///
/// Connections are keyed by the *peer's* `(addr, port)` — unique per flow
/// by construction — and each gets a throwaway [`TcpEndpoint`] so finished
/// flows cost nothing. A cell is reaped the moment its request has been
/// answered (or torn down) *and* every socket has settled into
/// CLOSED/TIME_WAIT ([`TcpEndpoint::all_settled`]); the expiry timer
/// ([`Self::ttl`] after creation) is only the backstop for conversations
/// that never complete. Stray timers for a reaped key are no-ops.
pub struct MetroServers {
    sites: Vec<Ipv4Addr>,
    profile: StackProfile,
    cells: FxHashMap<(Ipv4Addr, u16), ServerCell>,
    response: Rc<Vec<u8>>,
    /// Hard per-cell lifetime.
    ttl: Duration,
    tx_scratch: Vec<Wire>,
    served: u64,
}

impl MetroServers {
    pub fn new(sites: Vec<Ipv4Addr>) -> MetroServers {
        MetroServers {
            sites,
            profile: StackProfile::linux_4_4(),
            cells: FxHashMap::default(),
            response: Rc::new(HttpResponse::ok(b"<html>metropolis says hello</html>").encode()),
            ttl: Duration::from_secs(30),
            tx_scratch: Vec::new(),
            served: 0,
        }
    }

    /// Requests fully answered over the run.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn pump_cell(&mut self, ctx: &mut Ctx<'_>, key: (Ipv4Addr, u16)) {
        let Some(cell) = self.cells.get_mut(&key) else { return };
        if cell.sock.is_none() {
            cell.sock = cell.ep.take_accepted().pop();
        }
        let mut answered = false;
        if let Some(h) = cell.sock {
            if !cell.served {
                let now = ctx.now.micros();
                let sock = cell.ep.socket(h);
                sock.drain_recv_into(&mut cell.rx);
                if HttpRequest::is_complete(&cell.rx) {
                    sock.send(&self.response, now);
                    sock.close(now);
                    cell.served = true;
                    answered = true;
                } else if sock.is_closed() || sock.reset_by_peer {
                    cell.served = true;
                }
            }
        }
        let mut scratch = std::mem::take(&mut self.tx_scratch);
        cell.ep.poll_transmit_into(&mut scratch);
        for w in scratch.drain(..) {
            ctx.send(Direction::ToClient, w);
        }
        self.tx_scratch = scratch;
        let reap = cell.served && cell.ep.all_settled();
        let deadline = cell.ep.next_deadline();
        if reap {
            // Answered and fully wound down: the cell is garbage now, not
            // 30 seconds from now. Metropolis links are lossless, so no
            // late retransmit will ever want it back.
            self.cells.remove(&key);
        } else if let Some(d) = deadline {
            let at = Instant(d).max(Instant(ctx.now.micros() + 1));
            ctx.set_timer(at, srv_token(SRV_KIND_TCP, key));
        }
        if answered {
            self.served += 1;
        }
    }
}

impl Element for MetroServers {
    fn name(&self) -> &str {
        "metro-servers"
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
        let key = {
            let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else { return };
            let dst = ip.dst_addr();
            if !self.sites.contains(&dst) {
                return;
            }
            let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
            let key = (ip.src_addr(), tcp.src_port());
            if !self.cells.contains_key(&key) {
                // Only a SYN opens a cell; stray non-SYN segments for dead
                // connections (or censor injections) are swallowed.
                if !tcp.flags().syn() {
                    return;
                }
                let mut ep = TcpEndpoint::new(dst, self.profile);
                ep.listen(METRO_PORT);
                self.cells.insert(
                    key,
                    ServerCell {
                        ep,
                        sock: None,
                        rx: Vec::new(),
                        served: false,
                    },
                );
                ctx.set_timer(ctx.now + self.ttl, srv_token(SRV_KIND_EXPIRE, key));
            }
            key
        };
        if let Some(cell) = self.cells.get_mut(&key) {
            cell.ep.on_packet(wire, ctx.now.micros());
        }
        self.pump_cell(ctx, key);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let key = srv_token_key(token);
        match token >> SRV_KIND_SHIFT {
            SRV_KIND_TCP => {
                if let Some(cell) = self.cells.get_mut(&key) {
                    cell.ep.on_timer(ctx.now.micros());
                    self.pump_cell(ctx, key);
                }
            }
            SRV_KIND_EXPIRE => {
                self.cells.remove(&key);
            }
            _ => {}
        }
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        g.add(GaugeId::MetroServerCells, self.cells.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(sp: u16) -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), sp, Ipv4Addr::new(93, 184, 216, 34), 80)
    }

    #[test]
    fn shard_assignment_is_a_pure_function_of_the_key() {
        for sp in [40_000u16, 40_001, 55_555] {
            let a = shard_of(&tuple(sp), 8);
            let b = shard_of(&tuple(sp), 8);
            assert_eq!(a, b);
            assert!(a < 8);
        }
        assert_eq!(shard_of(&tuple(1), 1), 0);
    }

    #[test]
    fn shard_ignores_ports_so_a_conversation_never_spans_domains() {
        // Every connection between one address pair — whatever its source
        // port — shares a shard with the censor-lane state it touches.
        assert_eq!(shard_of(&tuple(40_000), 8), shard_of(&tuple(51_515), 8));
    }

    #[test]
    fn shards_spread_flows() {
        let mut seen = [false; 4];
        for i in 0..200u32 {
            let t = FourTuple::new(Ipv4Addr::from(0x0A00_0100 + i), 40_000, Ipv4Addr::new(93, 184, 216, 34), 80);
            seen[shard_of(&t, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 client addresses should touch all 4 shards");
    }

    #[test]
    fn domains_partition_shards_exhaustively() {
        let clients: Vec<Ipv4Addr> = (0..32u32).map(|i| Ipv4Addr::from(0x0A00_0100 + i)).collect();
        let sites = vec![Ipv4Addr::new(93, 184, 216, 34)];
        let specs: Vec<FlowSpec> = (0..64)
            .map(|i| FlowSpec {
                start: Instant(i * 1_000),
                client: (i % 32) as u32,
                site: 0,
                isn: 1,
                keyword: false,
                request_delay: Duration::ZERO,
            })
            .collect();
        let els: Vec<MetroClients> = (0..3)
            .map(|d| MetroClients::for_domain(clients.clone(), sites.clone(), specs.clone(), 8, 3, d).0)
            .collect();
        for s in 0..8 {
            let owners = els.iter().filter(|e| e.owned[s]).count();
            assert_eq!(owners, 1, "shard {s} must be owned by exactly one domain");
        }
        // Every domain sees the same full flow universe, partitioned the
        // same way.
        let total: usize = els[0].shard_flow_ids.iter().map(Vec::len).sum();
        assert_eq!(total, specs.len());
        for e in &els[1..] {
            assert_eq!(e.shard_flow_ids, els[0].shard_flow_ids);
            assert_eq!(e.tuples(), els[0].tuples());
        }
    }

    #[test]
    fn srv_tokens_round_trip() {
        let key = (Ipv4Addr::new(203, 0, 113, 9), 41_234u16);
        let t = srv_token(SRV_KIND_EXPIRE, key);
        assert_eq!(t >> SRV_KIND_SHIFT, SRV_KIND_EXPIRE);
        assert_eq!(srv_token_key(t), key);
    }

    #[test]
    fn port_assignment_is_per_client_and_in_spec_order() {
        let clients = vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)];
        let sites = vec![Ipv4Addr::new(93, 184, 216, 34)];
        let specs: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec {
                start: Instant(i * 1_000),
                client: (i % 2) as u32,
                site: 0,
                isn: 1,
                keyword: false,
                request_delay: Duration::ZERO,
            })
            .collect();
        let (el, _h) = MetroClients::new(clients, sites, specs, 2);
        let t = el.tuples();
        assert_eq!(t[0].src_port, METRO_BASE_PORT);
        assert_eq!(t[1].src_port, METRO_BASE_PORT, "second client starts its own range");
        assert_eq!(t[2].src_port, METRO_BASE_PORT + 1);
        assert_eq!(t[3].src_port, METRO_BASE_PORT + 1);
        assert_ne!(t[0].src, t[1].src);
    }
}
