//! Metropolis: one shared world hosting very many concurrent client flows.
//!
//! The classic trial topology (one client host, one server host, one fetch)
//! scales to the paper's *population* questions — blacklist collateral
//! damage, censor TCB eviction under load, resynchronization storms — by
//! replacing the two hosts with two multiplexing elements:
//!
//! * [`MetroClients`] (leftmost): hosts every client flow. Per-flow state
//!   (a dedicated [`TcpEndpoint`], HTTP fetch machine, outcome slot) lives
//!   in **shards** — flow-keyed hash maps partitioned by a pure function of
//!   the flow's four-tuple ([`shard_of`]) — so post-run aggregation can be
//!   farmed out per shard while the event loop itself stays serial and
//!   deterministic.
//! * [`MetroServers`] (rightmost): hosts every origin site. One small
//!   endpoint per *connection*, created on the first SYN and dropped after
//!   a short linger, so the cost of a finished flow is zero (the underlying
//!   endpoint never reaps sockets; a shared per-site endpoint would make
//!   every poll O(all flows ever)).
//!
//! Everything in between — the INTANG shim, middleboxes, the GFW tap — is
//! the ordinary single-flow path, now observing (and entangling) all flows
//! at once through the censor's shared TCB table and blacklist.
//!
//! Determinism: flows spawn from a pre-generated, start-sorted spec list
//! via a chained timer (never by iterating a hash map), per-flow timers are
//! keyed by flow id, and the end-of-run sweep walks flow ids in order.
//! Shard assignment is a pure function of the flow key, so any shard count
//! partitions the *same* per-flow results.

use intang_netsim::{Ctx, Direction, Duration, Element, Instant, Simulation};
use intang_packet::http::{HttpRequest, HttpResponse};
use intang_packet::{FourTuple, FxHashMap, Ipv4Packet, TcpPacket, Wire};
use intang_tcpstack::{SocketHandle, StackProfile, TcpEndpoint};
use intang_telemetry::{Counter, GaugeId, GaugeSample, HistId, MetricsSheet};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Every metropolis site serves plain HTTP.
pub const METRO_PORT: u16 = 80;
/// First source port assigned per client address; the per-address budget
/// (`65535 - METRO_BASE_PORT`) caps concurrent+finished flows per address.
pub const METRO_BASE_PORT: u16 = 40_000;

/// Chained spawn cursor timer.
const TOKEN_SPAWN: u64 = 1;
/// End-of-run sweep: mark every still-live flow stalled.
const TOKEN_FINISH: u64 = 2;
/// Per-flow TCP/retransmit clock: `CLIENT_TCP_BASE | flow_id`.
const CLIENT_TCP_BASE: u64 = 1 << 32;

/// One planned flow. Specs are generated up front by the load generator
/// (seeded arrival process) and must be sorted by `start`.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    pub start: Instant,
    /// Index into the client address pool.
    pub client: u32,
    /// Index into the site address pool.
    pub site: u32,
    /// The flow's initial sequence number draw.
    pub isn: u32,
    /// Request carries the sensitive keyword.
    pub keyword: bool,
    /// Idle time between ESTABLISHED and sending the request (capacity
    /// tests use this to age a TCB toward eviction).
    pub request_delay: Duration,
}

/// Terminal classification of one flow (the §3.4 taxonomy, per flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOutcome {
    /// Never reached a terminal state (only visible mid-run).
    Pending,
    /// Complete HTTP response received.
    Success,
    /// Torn down by a reset (censor type-1/type-2, or blacklist collateral).
    Reset,
    /// Hung: no response and no reset by the horizon (Failure 1).
    Stalled,
}

/// Result slot for one flow, indexed by flow id.
#[derive(Debug, Clone, Copy)]
pub struct FlowResult {
    pub outcome: FlowOutcome,
    /// Spawn → complete-response latency (successes only, else 0).
    pub latency_us: u64,
    /// Shard this flow's state lived in.
    pub shard: u32,
}

/// Pure shard assignment: a function of the flow key alone, so the
/// partition a flow lands in never depends on spawn order, map iteration
/// order, or the shard count of *other* runs (SplitMix64 over the packed
/// tuple).
pub fn shard_of(tuple: &FourTuple, shards: u32) -> u32 {
    let hi = (u64::from(u32::from(tuple.src)) << 32) | u64::from(u32::from(tuple.dst));
    let lo = (u64::from(tuple.src_port) << 16) | u64::from(tuple.dst_port);
    let mut x = hi ^ lo.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % u64::from(shards.max(1))) as u32
}

/// Fetch progress of one live flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// SYN sent, waiting for the handshake.
    Connecting,
    /// Established at `since`; the request goes out at
    /// `since + request_delay`.
    Established { since: Instant },
    /// Request sent; reading the response.
    Awaiting,
}

/// Per-flow state: its own tiny TCP endpoint plus the fetch machine.
struct FlowCell {
    tuple: FourTuple,
    ep: TcpEndpoint,
    sock: SocketHandle,
    phase: Phase,
    request: Rc<Vec<u8>>,
    request_delay: Duration,
    rx: Vec<u8>,
    started: Instant,
}

/// Shared, handle-visible run state (outcome grid + interference-free
/// aggregate counters + the per-shard event ordering ledger).
pub struct MetroState {
    /// One slot per flow id; `shard` is filled at construction.
    pub results: Vec<FlowResult>,
    pub spawned: u64,
    pub succeeded: u64,
    pub reset: u64,
    pub stalled: u64,
    /// Flows spawned and not yet retired.
    pub live: u64,
    /// Per-shard monotone event sequence (feeds the simcheck FlowOrder
    /// shadow and the cheap always-on ordering check below).
    shard_seq: Vec<u64>,
    /// Last `(time, shard-seq)` observed per live flow.
    flow_last: FxHashMap<u32, (u64, u64)>,
    /// Events observed out of `(time, seq)` order within a flow — must
    /// stay zero; checked even when simcheck is off.
    pub order_violations: u64,
}

/// Cheap cloneable view of a [`MetroClients`] element's shared state.
#[derive(Clone)]
pub struct MetroHandle {
    state: Rc<RefCell<MetroState>>,
}

impl MetroHandle {
    pub fn results(&self) -> Vec<FlowResult> {
        self.state.borrow().results.clone()
    }

    /// `(spawned, succeeded, reset, stalled)` aggregate counts.
    pub fn counts(&self) -> (u64, u64, u64, u64) {
        let s = self.state.borrow();
        (s.spawned, s.succeeded, s.reset, s.stalled)
    }

    pub fn live(&self) -> u64 {
        self.state.borrow().live
    }

    pub fn order_violations(&self) -> u64 {
        self.state.borrow().order_violations
    }

    /// Outcome of one flow by id.
    pub fn outcome(&self, id: u32) -> FlowOutcome {
        self.state.borrow().results[id as usize].outcome
    }
}

/// The client-side multiplexer element (leftmost, egress `ToServer`).
pub struct MetroClients {
    specs: Vec<FlowSpec>,
    /// Flow id → four-tuple (derived once: per-client port counters in
    /// spec order).
    tuples: Vec<FourTuple>,
    /// Flow id → shard index (pure [`shard_of`] of the tuple).
    shard_idx: Vec<u32>,
    /// Sharded per-flow engine state, keyed by flow id inside each shard.
    shards: Vec<FxHashMap<u32, FlowCell>>,
    /// Ingress demux: `(client addr, src port)` → live flow id.
    route: FxHashMap<(Ipv4Addr, u16), u32>,
    /// Next spec the chained spawn timer will realize.
    cursor: usize,
    state: Rc<RefCell<MetroState>>,
    profile: StackProfile,
    req_keyword: Rc<Vec<u8>>,
    req_benign: Rc<Vec<u8>>,
    tx_scratch: Vec<Wire>,
    /// Invoked once per retired flow (the experiment wires this to
    /// `IntangHandle::retire_flow` so shim-side per-flow state dies with
    /// the flow).
    on_retire: Option<Box<dyn Fn(FourTuple)>>,
    /// `intang_simcheck::enabled()` cached at construction.
    sc: bool,
}

impl MetroClients {
    /// Build the element. `specs` must be sorted by `start`; source ports
    /// are assigned per client address in spec order starting at
    /// [`METRO_BASE_PORT`] (panics if an address would exhaust its range).
    pub fn new(clients: Vec<Ipv4Addr>, sites: Vec<Ipv4Addr>, specs: Vec<FlowSpec>, shards: u32) -> (MetroClients, MetroHandle) {
        assert!(!clients.is_empty() && !sites.is_empty());
        assert!(specs.windows(2).all(|w| w[0].start <= w[1].start), "specs must be start-sorted");
        let shards = shards.max(1);
        let mut next_port = vec![METRO_BASE_PORT; clients.len()];
        let mut tuples = Vec::with_capacity(specs.len());
        let mut shard_idx = Vec::with_capacity(specs.len());
        let mut results = Vec::with_capacity(specs.len());
        for spec in &specs {
            let addr = clients[spec.client as usize];
            let site = sites[spec.site as usize];
            let port = next_port[spec.client as usize];
            assert!(port < u16::MAX, "client {addr} exhausted its source-port range");
            next_port[spec.client as usize] = port + 1;
            let tuple = FourTuple::new(addr, port, site, METRO_PORT);
            let shard = shard_of(&tuple, shards);
            tuples.push(tuple);
            shard_idx.push(shard);
            results.push(FlowResult {
                outcome: FlowOutcome::Pending,
                latency_us: 0,
                shard,
            });
        }
        let state = Rc::new(RefCell::new(MetroState {
            results,
            spawned: 0,
            succeeded: 0,
            reset: 0,
            stalled: 0,
            live: 0,
            shard_seq: vec![0; shards as usize],
            flow_last: FxHashMap::default(),
            order_violations: 0,
        }));
        let el = MetroClients {
            specs,
            tuples,
            shard_idx,
            shards: (0..shards).map(|_| FxHashMap::default()).collect(),
            route: FxHashMap::default(),
            cursor: 0,
            state: state.clone(),
            profile: StackProfile::linux_4_4(),
            req_keyword: Rc::new(HttpRequest::get("/search?q=ultrasurf", "metropolis.example").encode()),
            req_benign: Rc::new(HttpRequest::get("/index.html", "metropolis.example").encode()),
            tx_scratch: Vec::new(),
            on_retire: None,
            sc: intang_simcheck::enabled(),
        };
        (el, MetroHandle { state })
    }

    /// Four-tuple each flow id will use (available before the element is
    /// boxed into the simulation — experiments preset per-flow strategies
    /// against these keys).
    pub fn tuples(&self) -> &[FourTuple] {
        &self.tuples
    }

    /// Install the per-flow retirement hook (e.g. the INTANG shim's
    /// `retire_flow`).
    pub fn set_retire_hook(&mut self, f: Box<dyn Fn(FourTuple)>) {
        self.on_retire = Some(f);
    }

    /// Register the spawn-cursor and end-of-run timers. Call once, after
    /// the element was added at `idx`.
    pub fn bootstrap(sim: &mut Simulation, idx: usize, first_start: Instant, horizon: Instant) {
        sim.schedule_timer(idx, first_start, TOKEN_SPAWN);
        sim.schedule_timer(idx, horizon, TOKEN_FINISH);
    }

    /// Record one flow event on the flow's shard ledger: bumps the shard
    /// sequence, checks per-flow `(time, seq)` monotonicity, and feeds the
    /// simcheck FlowOrder shadow.
    fn note_event(&mut self, id: u32, now: Instant) {
        let shard = self.shard_idx[id as usize] as usize;
        let (t, seq) = {
            let mut st = self.state.borrow_mut();
            st.shard_seq[shard] += 1;
            let seq = st.shard_seq[shard];
            let t = now.micros();
            let last = st.flow_last.entry(id).or_insert((0, 0));
            let regressed = (t, seq) < *last;
            *last = (t, seq);
            if regressed {
                st.order_violations += 1;
            }
            (t, seq)
        };
        if self.sc {
            intang_simcheck::flow_event(u64::from(id), t, seq);
        }
    }

    /// Realize every spec due at `now`, then re-arm the cursor timer.
    fn spawn_due(&mut self, ctx: &mut Ctx<'_>) {
        while self.cursor < self.specs.len() && self.specs[self.cursor].start <= ctx.now {
            let id = self.cursor as u32;
            self.cursor += 1;
            self.spawn(ctx, id);
        }
        if self.cursor < self.specs.len() {
            ctx.set_timer(self.specs[self.cursor].start, TOKEN_SPAWN);
        }
    }

    fn spawn(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let spec = self.specs[id as usize];
        let tuple = self.tuples[id as usize];
        let shard = self.shard_idx[id as usize] as usize;
        let mut ep = TcpEndpoint::new(tuple.src, self.profile);
        ep.set_isn_base(spec.isn);
        let sock = ep.connect_from(tuple.src_port, tuple.dst, tuple.dst_port, ctx.now.micros());
        let request = if spec.keyword {
            self.req_keyword.clone()
        } else {
            self.req_benign.clone()
        };
        self.route.insert((tuple.src, tuple.src_port), id);
        self.shards[shard].insert(
            id,
            FlowCell {
                tuple,
                ep,
                sock,
                phase: Phase::Connecting,
                request,
                request_delay: spec.request_delay,
                rx: Vec::new(),
                started: ctx.now,
            },
        );
        {
            let mut st = self.state.borrow_mut();
            st.spawned += 1;
            st.live += 1;
        }
        self.note_event(id, ctx.now);
        self.pump_flow(ctx, id);
    }

    /// Advance one flow's fetch machine, transmit, and re-arm its timer.
    fn pump_flow(&mut self, ctx: &mut Ctx<'_>, id: u32) {
        let shard = self.shard_idx[id as usize] as usize;
        let Some(cell) = self.shards[shard].get_mut(&id) else { return };
        let now = ctx.now;
        let mut done: Option<(FlowOutcome, u64)> = None;
        {
            let sock = cell.ep.socket(cell.sock);
            if cell.phase == Phase::Connecting {
                if sock.is_established() {
                    cell.phase = Phase::Established { since: now };
                } else if sock.is_closed() {
                    let o = if sock.reset_by_peer {
                        FlowOutcome::Reset
                    } else {
                        FlowOutcome::Stalled
                    };
                    done = Some((o, 0));
                }
            }
            if let Phase::Established { since } = cell.phase {
                if now >= since + cell.request_delay {
                    sock.send(&cell.request, now.micros());
                    cell.phase = Phase::Awaiting;
                } else if sock.reset_by_peer || sock.is_closed() {
                    let o = if sock.reset_by_peer {
                        FlowOutcome::Reset
                    } else {
                        FlowOutcome::Stalled
                    };
                    done = Some((o, 0));
                }
            }
            if cell.phase == Phase::Awaiting && done.is_none() {
                let reset = sock.reset_by_peer;
                let closed = sock.is_closed() || sock.peer_closed();
                sock.drain_recv_into(&mut cell.rx);
                if HttpResponse::is_complete(&cell.rx) {
                    done = Some((FlowOutcome::Success, now.micros().saturating_sub(cell.started.micros())));
                } else if reset {
                    done = Some((FlowOutcome::Reset, 0));
                } else if closed {
                    done = Some((FlowOutcome::Stalled, 0));
                }
            }
            if done.is_some() {
                // Best-effort graceful teardown: the FIN rides the final
                // transmit below; the cell itself is dropped right after.
                sock.close(now.micros());
            }
        }
        let mut scratch = std::mem::take(&mut self.tx_scratch);
        cell.ep.poll_transmit_into(&mut scratch);
        for w in scratch.drain(..) {
            ctx.send(Direction::ToServer, w);
        }
        self.tx_scratch = scratch;
        match done {
            Some((outcome, latency_us)) => {
                self.note_event(id, now);
                self.retire(id, outcome, latency_us);
            }
            None => {
                let mut wake = cell.ep.next_deadline().map(Instant);
                if let Phase::Established { since } = cell.phase {
                    let due = since + cell.request_delay;
                    wake = Some(wake.map_or(due, |w| w.min(due)));
                }
                if let Some(at) = wake {
                    let at = at.max(Instant(now.micros() + 1));
                    ctx.set_timer(at, CLIENT_TCP_BASE | u64::from(id));
                }
            }
        }
    }

    /// Drop a flow's cell and record its terminal outcome.
    fn retire(&mut self, id: u32, outcome: FlowOutcome, latency_us: u64) {
        let shard = self.shard_idx[id as usize] as usize;
        let Some(cell) = self.shards[shard].remove(&id) else { return };
        self.route.remove(&(cell.tuple.src, cell.tuple.src_port));
        {
            let mut st = self.state.borrow_mut();
            st.live -= 1;
            match outcome {
                FlowOutcome::Success => st.succeeded += 1,
                FlowOutcome::Reset => st.reset += 1,
                FlowOutcome::Stalled => st.stalled += 1,
                FlowOutcome::Pending => {}
            }
            st.results[id as usize] = FlowResult {
                outcome,
                latency_us,
                shard: shard as u32,
            };
            st.flow_last.remove(&id);
        }
        if self.sc {
            intang_simcheck::flow_retired(u64::from(id));
        }
        if let Some(f) = &self.on_retire {
            f(cell.tuple);
        }
    }
}

impl Element for MetroClients {
    fn name(&self) -> &str {
        "metro-clients"
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
        let id = {
            let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else { return };
            let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
            // Demux on the flow's own (addr, port); packets for retired
            // flows (late FIN-ACKs, censor stragglers) fall off the edge.
            match self.route.get(&(ip.dst_addr(), tcp.dst_port())) {
                Some(&id) => id,
                None => return,
            }
        };
        self.note_event(id, ctx.now);
        let shard = self.shard_idx[id as usize] as usize;
        if let Some(cell) = self.shards[shard].get_mut(&id) {
            cell.ep.on_packet(wire, ctx.now.micros());
        }
        self.pump_flow(ctx, id);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_SPAWN {
            self.spawn_due(ctx);
        } else if token == TOKEN_FINISH {
            // End of the world: every still-live flow is stalled. Flow ids
            // are swept in order — never the shard maps — for determinism.
            for id in 0..self.specs.len() as u32 {
                let shard = self.shard_idx[id as usize] as usize;
                if self.shards[shard].contains_key(&id) {
                    self.note_event(id, ctx.now);
                    self.retire(id, FlowOutcome::Stalled, 0);
                }
            }
        } else if token >= CLIENT_TCP_BASE {
            let id = (token & 0xFFFF_FFFF) as u32;
            let shard = self.shard_idx[id as usize] as usize;
            if let Some(cell) = self.shards[shard].get_mut(&id) {
                cell.ep.on_timer(ctx.now.micros());
                self.note_event(id, ctx.now);
                self.pump_flow(ctx, id);
            }
        }
    }

    fn export_metrics(&self, m: &mut MetricsSheet) {
        let st = self.state.borrow();
        m.add(Counter::MetroFlowsSpawned, st.spawned);
        m.add(Counter::MetroFlowsSucceeded, st.succeeded);
        m.add(Counter::MetroFlowsReset, st.reset);
        m.add(Counter::MetroFlowsStalled, st.stalled);
        for r in &st.results {
            if r.outcome == FlowOutcome::Success {
                m.observe(HistId::MetroFlowLatencyUs, r.latency_us);
            }
        }
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        g.add(GaugeId::MetroLiveFlows, self.state.borrow().live);
    }
}

/// Server-cell timer kinds live in bits 52+ of the token; the low 48 bits
/// encode the `(client addr, client port)` cell key.
const SRV_KIND_TCP: u64 = 1;
const SRV_KIND_EXPIRE: u64 = 2;
const SRV_KIND_SHIFT: u64 = 52;

fn srv_token(kind: u64, key: (Ipv4Addr, u16)) -> u64 {
    (kind << SRV_KIND_SHIFT) | (u64::from(u32::from(key.0)) << 16) | u64::from(key.1)
}

fn srv_token_key(token: u64) -> (Ipv4Addr, u16) {
    let addr = Ipv4Addr::from(((token >> 16) & 0xFFFF_FFFF) as u32);
    (addr, (token & 0xFFFF) as u16)
}

/// One accepted connection on the server side.
struct ServerCell {
    ep: TcpEndpoint,
    sock: Option<SocketHandle>,
    rx: Vec<u8>,
    served: bool,
}

/// The origin-site multiplexer element (rightmost, egress `ToClient`).
///
/// Connections are keyed by the *peer's* `(addr, port)` — unique per flow
/// by construction — and each gets a throwaway [`TcpEndpoint`] so finished
/// flows cost nothing. Every cell dies by its expiry timer ([`Self::ttl`]
/// after creation) whether or not the conversation completed.
pub struct MetroServers {
    sites: Vec<Ipv4Addr>,
    profile: StackProfile,
    cells: FxHashMap<(Ipv4Addr, u16), ServerCell>,
    response: Rc<Vec<u8>>,
    /// Hard per-cell lifetime.
    ttl: Duration,
    tx_scratch: Vec<Wire>,
    served: u64,
}

impl MetroServers {
    pub fn new(sites: Vec<Ipv4Addr>) -> MetroServers {
        MetroServers {
            sites,
            profile: StackProfile::linux_4_4(),
            cells: FxHashMap::default(),
            response: Rc::new(HttpResponse::ok(b"<html>metropolis says hello</html>").encode()),
            ttl: Duration::from_secs(30),
            tx_scratch: Vec::new(),
            served: 0,
        }
    }

    /// Requests fully answered over the run.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn pump_cell(&mut self, ctx: &mut Ctx<'_>, key: (Ipv4Addr, u16)) {
        let Some(cell) = self.cells.get_mut(&key) else { return };
        if cell.sock.is_none() {
            cell.sock = cell.ep.take_accepted().pop();
        }
        let mut answered = false;
        if let Some(h) = cell.sock {
            if !cell.served {
                let now = ctx.now.micros();
                let sock = cell.ep.socket(h);
                sock.drain_recv_into(&mut cell.rx);
                if HttpRequest::is_complete(&cell.rx) {
                    sock.send(&self.response, now);
                    sock.close(now);
                    cell.served = true;
                    answered = true;
                } else if sock.is_closed() || sock.reset_by_peer {
                    cell.served = true;
                }
            }
        }
        let mut scratch = std::mem::take(&mut self.tx_scratch);
        cell.ep.poll_transmit_into(&mut scratch);
        for w in scratch.drain(..) {
            ctx.send(Direction::ToClient, w);
        }
        self.tx_scratch = scratch;
        if let Some(d) = cell.ep.next_deadline() {
            let at = Instant(d).max(Instant(ctx.now.micros() + 1));
            ctx.set_timer(at, srv_token(SRV_KIND_TCP, key));
        }
        if answered {
            self.served += 1;
        }
    }
}

impl Element for MetroServers {
    fn name(&self) -> &str {
        "metro-servers"
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
        let key = {
            let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else { return };
            let dst = ip.dst_addr();
            if !self.sites.contains(&dst) {
                return;
            }
            let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
            let key = (ip.src_addr(), tcp.src_port());
            if !self.cells.contains_key(&key) {
                // Only a SYN opens a cell; stray non-SYN segments for dead
                // connections (or censor injections) are swallowed.
                if !tcp.flags().syn() {
                    return;
                }
                let mut ep = TcpEndpoint::new(dst, self.profile);
                ep.listen(METRO_PORT);
                self.cells.insert(
                    key,
                    ServerCell {
                        ep,
                        sock: None,
                        rx: Vec::new(),
                        served: false,
                    },
                );
                ctx.set_timer(ctx.now + self.ttl, srv_token(SRV_KIND_EXPIRE, key));
            }
            key
        };
        if let Some(cell) = self.cells.get_mut(&key) {
            cell.ep.on_packet(wire, ctx.now.micros());
        }
        self.pump_cell(ctx, key);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let key = srv_token_key(token);
        match token >> SRV_KIND_SHIFT {
            SRV_KIND_TCP => {
                if let Some(cell) = self.cells.get_mut(&key) {
                    cell.ep.on_timer(ctx.now.micros());
                    self.pump_cell(ctx, key);
                }
            }
            SRV_KIND_EXPIRE => {
                self.cells.remove(&key);
            }
            _ => {}
        }
    }

    fn sample_gauges(&self, g: &mut GaugeSample) {
        g.add(GaugeId::MetroServerCells, self.cells.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuple(sp: u16) -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), sp, Ipv4Addr::new(93, 184, 216, 34), 80)
    }

    #[test]
    fn shard_assignment_is_a_pure_function_of_the_key() {
        for sp in [40_000u16, 40_001, 55_555] {
            let a = shard_of(&tuple(sp), 8);
            let b = shard_of(&tuple(sp), 8);
            assert_eq!(a, b);
            assert!(a < 8);
        }
        assert_eq!(shard_of(&tuple(1), 1), 0);
    }

    #[test]
    fn shards_spread_flows() {
        let mut seen = [false; 4];
        for sp in 40_000u16..40_200 {
            seen[shard_of(&tuple(sp), 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 flows should touch all 4 shards");
    }

    #[test]
    fn srv_tokens_round_trip() {
        let key = (Ipv4Addr::new(203, 0, 113, 9), 41_234u16);
        let t = srv_token(SRV_KIND_EXPIRE, key);
        assert_eq!(t >> SRV_KIND_SHIFT, SRV_KIND_EXPIRE);
        assert_eq!(srv_token_key(t), key);
    }

    #[test]
    fn port_assignment_is_per_client_and_in_spec_order() {
        let clients = vec![Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)];
        let sites = vec![Ipv4Addr::new(93, 184, 216, 34)];
        let specs: Vec<FlowSpec> = (0..4)
            .map(|i| FlowSpec {
                start: Instant(i * 1_000),
                client: (i % 2) as u32,
                site: 0,
                isn: 1,
                keyword: false,
                request_delay: Duration::ZERO,
            })
            .collect();
        let (el, _h) = MetroClients::new(clients, sites, specs, 2);
        let t = el.tuples();
        assert_eq!(t[0].src_port, METRO_BASE_PORT);
        assert_eq!(t[1].src_port, METRO_BASE_PORT, "second client starts its own range");
        assert_eq!(t[2].src_port, METRO_BASE_PORT + 1);
        assert_eq!(t[3].src_port, METRO_BASE_PORT + 1);
        assert_ne!(t[0].src, t[1].src);
    }
}
