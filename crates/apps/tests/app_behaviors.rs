//! Application-driver behaviors under adversity: resets mid-session,
//! stalled bridges, forwarder-transparent DNS, and multi-driver hosts.

use intang_apps::dnsapp::{DnsServerDriver, DnsTcpClientDriver, Zone};
use intang_apps::host::add_host;
use intang_apps::http::{HttpClientDriver, HttpServerDriver};
use intang_apps::tor::{TorBridgeDriver, TorClientDriver};
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::http::HttpRequest;
use intang_tcpstack::StackProfile;
use std::net::Ipv4Addr;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);

#[test]
fn http_client_reports_reset_when_censored() {
    let server_addr = Ipv4Addr::new(203, 0, 113, 10);
    let mut sim = Simulation::new(5);
    let (driver, report) = HttpClientDriver::new(server_addr, 80, HttpRequest::get("/ultrasurf", "x.example"));
    add_host(
        &mut sim,
        "client",
        CLIENT,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );
    sim.add_link(Link::new(Duration::from_millis(3), 3));
    let (gfw, _h) = GfwElement::new(GfwConfig::evolved().deterministic());
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(4), 4));
    let (_i, sh) = add_host(
        &mut sim,
        "server",
        server_addr,
        StackProfile::linux_4_4(),
        Box::new(HttpServerDriver::new(80)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(80));
    sim.run_until(Instant(12_000_000));
    let rep = report.borrow();
    assert!(rep.request_sent);
    assert!(rep.reset, "the injected volley reset the client socket");
    assert!(!rep.succeeded());
}

#[test]
fn tor_bridge_block_is_ip_wide_and_persistent() {
    // One world: the Tor session triggers active probing and the IP block;
    // afterwards even innocent HTTP toward the same address is dropped at
    // the border (the paper's "no longer connect to this IP via any port").
    let bridge_addr = Ipv4Addr::new(54, 210, 8, 9);
    let mut sim = Simulation::new(6);
    struct Both {
        tor: TorClientDriver,
        http: HttpClientDriver,
    }
    impl intang_apps::HostDriver for Both {
        fn poll(&mut self, now: Instant, tcp: &mut intang_tcpstack::TcpEndpoint, udp: &mut intang_apps::UdpLayer) {
            self.tor.poll(now, tcp, udp);
            self.http.poll(now, tcp, udp);
        }
        fn next_wakeup(&self) -> Option<Instant> {
            let a = self.tor.next_wakeup();
            let b = self.http.next_wakeup();
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, y) => x.or(y),
            }
        }
    }
    let (tor, _tor_report) = TorClientDriver::new(bridge_addr, 443, 2);
    // The clean HTTP fetch starts well after the block has landed.
    let (http, http_report) = HttpClientDriver::new(bridge_addr, 80, HttpRequest::get("/clean", "bridge.example"));
    let http = http.starting_at(Instant(30_000_000));
    let (_idx, _hh) = add_host(
        &mut sim,
        "client",
        CLIENT,
        StackProfile::linux_4_4(),
        Box::new(Both { tor, http }),
        Direction::ToServer,
    );
    sim.schedule_timer(0, Instant(30_000_000), 1);
    sim.add_link(Link::new(Duration::from_millis(3), 3));
    let mut cfg = GfwConfig::evolved().deterministic();
    cfg.tor_filter = true;
    cfg.active_probing = true;
    let (gfw, handle) = GfwElement::new(cfg);
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(30), 6));
    let bridge = TorBridgeDriver::new(443);
    let (_i, bh) = add_host(
        &mut sim,
        "bridge",
        bridge_addr,
        StackProfile::linux_4_4(),
        Box::new(bridge),
        Direction::ToClient,
    );
    bh.with_tcp(|t| {
        t.listen(443);
        t.listen(80);
    });

    sim.run_until(Instant(80_000_000));
    assert!(handle.ip_blocked(bridge_addr), "the probe confirmed and blocked the bridge IP");
    let rep = http_report.borrow();
    assert!(!rep.succeeded(), "even port 80 toward the blocked IP is unreachable");
    assert!(rep.response.is_none());
}

#[test]
fn dns_tcp_client_sees_reset_under_censorship() {
    let resolver = Ipv4Addr::new(216, 146, 35, 35);
    let mut sim = Simulation::new(8);
    let (driver, report) = DnsTcpClientDriver::new(resolver, "www.dropbox.com");
    add_host(
        &mut sim,
        "client",
        CLIENT,
        StackProfile::linux_4_4(),
        Box::new(driver),
        Direction::ToServer,
    );
    sim.add_link(Link::new(Duration::from_millis(3), 3));
    let (gfw, handle) = GfwElement::new(GfwConfig::evolved().deterministic());
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_millis(5), 4));
    let zone = Zone::new(Ipv4Addr::new(198, 18, 0, 1)).with("www.dropbox.com", Ipv4Addr::new(162, 125, 2, 5));
    let (_i, sh) = add_host(
        &mut sim,
        "resolver",
        resolver,
        StackProfile::linux_4_4(),
        Box::new(DnsServerDriver::new(zone)),
        Direction::ToClient,
    );
    sh.with_tcp(|t| t.listen(53));
    sim.run_until(Instant(12_000_000));
    let rep = report.borrow();
    assert!(rep.reset, "TCP DNS for a censored domain draws resets (§2.1)");
    assert_eq!(rep.answer, None);
    assert!(handle.detected_any());
}
