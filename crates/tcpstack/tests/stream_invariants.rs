//! Property-based invariants of the TCP endpoint pair: application data
//! arrives intact and in order under arbitrary chunking, wire reordering,
//! duplication and loss (with retransmission driven by explicit timer
//! stepping).

use intang_tcpstack::{StackProfile, TcpEndpoint};
use proptest::prelude::*;
use std::net::Ipv4Addr;

const CA: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SA: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Deterministic wire harness: collects in-flight packets, then delivers
/// them with seeded reorder/duplicate/drop mutations; steps RTO timers
/// when the wire goes quiet.
struct Harness {
    client: TcpEndpoint,
    server: TcpEndpoint,
    now: u64,
    rng: u64,
}

impl Harness {
    fn new() -> Harness {
        let client = TcpEndpoint::new(CA, StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(SA, StackProfile::linux_4_4());
        server.listen(80);
        Harness { client, server, now: 0, rng: 0x9e3779b97f4a7c15 }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.rng
    }

    /// One exchange round with mutations; returns packets moved.
    fn round(&mut self, drop_pct: u64, dup_pct: u64, reorder: bool) -> usize {
        let mut to_server = self.client.poll_transmit();
        let mut to_client = self.server.poll_transmit();
        if reorder && self.next_rand() % 2 == 0 {
            to_server.reverse();
            to_client.reverse();
        }
        let mut moved = 0;
        let mut deliver = |h: &mut Harness, wires: Vec<Vec<u8>>, to_client_side: bool| {
            for w in wires {
                let r = h.next_rand() % 100;
                if r < drop_pct {
                    continue; // lost
                }
                let copies = if r < drop_pct + dup_pct { 2 } else { 1 };
                for _ in 0..copies {
                    if to_client_side {
                        h.client.on_packet(w.clone(), h.now);
                    } else {
                        h.server.on_packet(w.clone(), h.now);
                    }
                    moved += 1;
                }
            }
        };
        deliver(self, to_server, false);
        deliver(self, to_client, true);
        moved
    }

    /// Advance time past the earliest pending RTO.
    fn tick(&mut self) {
        let next = [self.client.next_deadline(), self.server.next_deadline()]
            .into_iter()
            .flatten()
            .min();
        if let Some(t) = next {
            self.now = self.now.max(t) + 1;
            self.client.on_timer(self.now);
            self.server.on_timer(self.now);
        } else {
            self.now += 10_000;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the app-level chunking, the byte stream arrives intact —
    /// clean wire.
    #[test]
    fn chunked_stream_arrives_intact(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..300), 1..10),
    ) {
        let mut h = Harness::new();
        let handle = h.client.connect(SA, 80, 0);
        for _ in 0..4 {
            h.round(0, 0, false);
        }
        prop_assert!(h.client.socket(handle).is_established());
        let expected: Vec<u8> = chunks.iter().flatten().copied().collect();
        for c in &chunks {
            h.client.socket(handle).send(c, h.now);
            h.round(0, 0, false);
        }
        for _ in 0..4 {
            h.round(0, 0, false);
        }
        let sh = h.server.take_accepted()[0];
        prop_assert_eq!(h.server.socket(sh).recv_drain(), expected);
    }

    /// Duplication and reordering on the wire never corrupt the stream.
    #[test]
    fn duplication_and_reordering_are_harmless(
        data in prop::collection::vec(any::<u8>(), 1..4000),
        dup in 0u64..40,
    ) {
        let mut h = Harness::new();
        let handle = h.client.connect(SA, 80, 0);
        for _ in 0..6 {
            h.round(0, dup, true);
        }
        prop_assert!(h.client.socket(handle).is_established());
        h.client.socket(handle).send(&data, h.now);
        for _ in 0..12 {
            h.round(0, dup, true);
        }
        let sh = h.server.take_accepted()[0];
        prop_assert_eq!(h.server.socket(sh).recv_drain(), data);
    }

    /// Loss is recovered by retransmission (timers stepped explicitly).
    #[test]
    fn loss_recovered_by_rto(
        data in prop::collection::vec(any::<u8>(), 1..3000),
        drop in 1u64..35,
    ) {
        let mut h = Harness::new();
        let handle = h.client.connect(SA, 80, 0);
        h.client.socket(handle).send(&data, 0);
        let mut received = Vec::new();
        let mut server_handle = None;
        // Alternate lossy rounds with timer ticks until quiescent progress.
        for _ in 0..200 {
            let moved = h.round(drop, 5, true);
            if let Some(sh) = server_handle.or_else(|| h.server.take_accepted().first().copied()) {
                server_handle = Some(sh);
                received.extend(h.server.socket(sh).recv_drain());
            }
            if received.len() >= data.len() {
                break;
            }
            if moved == 0 {
                h.tick();
            }
        }
        prop_assert_eq!(received, data, "stream eventually complete despite {}% loss", drop);
    }
}
