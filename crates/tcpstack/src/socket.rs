//! The per-connection TCP state machine.
//!
//! Receive-side processing mirrors the ordered checks of the Linux receive
//! path (`tcp_v4_rcv` → `tcp_validate_incoming` → `tcp_rcv_state_process`),
//! with every discard instrumented as an ignore path (§5.3). The knobs that
//! differ across kernel versions come from [`StackProfile`].

use crate::ignore::{IgnoreLog, IgnoreReason};
use crate::profile::{RstPolicy, StackProfile, SynInEstablished};
use crate::reasm::Assembler;
use intang_packet::tcp::{seq, TcpFlags, TcpOption, TcpRepr};
use intang_packet::FourTuple;

/// Simulation time handle (microseconds), kept as a bare integer so this
/// crate stays independent of the simulator.
pub type Micros = u64;

/// Connection states (RFC 793). LISTEN lives at the endpoint, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    SynSent,
    SynRecv,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
    Closed,
}

impl TcpState {
    pub fn can_receive_data(self) -> bool {
        matches!(
            self,
            TcpState::SynRecv | TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
        )
    }
}

/// The receive window we always advertise.
pub const RECV_WINDOW: u16 = 65_535;

/// Initial retransmission timeout (RFC 6298: 1 second, like Linux).
const RTO_INITIAL: Micros = 1_000_000;
/// Give up after this many retransmissions of one segment (Linux's
/// tcp_syn_retries default is 6).
const MAX_RETRIES: u32 = 6;
/// TIME_WAIT linger (drastically shortened 2MSL — fine for short trials).
const TIME_WAIT_LINGER: Micros = 1_000_000;

/// One TCP connection.
#[derive(Debug)]
pub struct Socket {
    /// Local view of the flow: `src` is this host.
    pub tuple: FourTuple,
    pub state: TcpState,
    profile: StackProfile,

    // Send state.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Bytes accepted from the app but not yet segmented.
    send_queue: Vec<u8>,
    /// Bytes sent but unacknowledged; base sequence is `snd_una`.
    unacked: Vec<u8>,
    fin_queued: bool,
    fin_sent: bool,

    // Receive state.
    irs: u32,
    rcv_nxt: u32,
    asm: Assembler,
    recv_buf: Vec<u8>,
    /// Peer sent FIN and we consumed it.
    peer_closed: bool,

    // PAWS.
    ts_recent: Option<u32>,
    use_timestamps: bool,

    // Timers.
    rto: Micros,
    rto_deadline: Option<Micros>,
    retries: u32,
    time_wait_deadline: Option<Micros>,

    /// True when the connection died on an incoming RST.
    pub reset_by_peer: bool,
    /// Segments queued for transmission (drained by the endpoint).
    pub out: Vec<TcpRepr>,
}

impl Drop for Socket {
    fn drop(&mut self) {
        // Recycle the queue storage (and the queued reprs) through the
        // thread-local pools: sweeps build several sockets per trial and
        // the buffers only ever need capacity, not contents.
        crate::pool::put_seg_queue(std::mem::take(&mut self.out));
        crate::pool::put_bytes(std::mem::take(&mut self.send_queue));
        crate::pool::put_bytes(std::mem::take(&mut self.unacked));
        crate::pool::put_bytes(std::mem::take(&mut self.recv_buf));
    }
}

impl Socket {
    /// Client side: create and emit the initial SYN.
    pub fn connect(tuple: FourTuple, iss: u32, profile: StackProfile, now: Micros) -> Socket {
        let mut s = Socket::raw(tuple, iss, profile);
        s.state = TcpState::SynSent;
        let mut syn = s.segment(TcpFlags::SYN, iss, 0, now);
        syn.options.insert(0, TcpOption::Mss(profile.mss as u16));
        s.out.push(syn);
        s.snd_nxt = iss.wrapping_add(1);
        s.arm_rto(now);
        s
    }

    /// Server side: a SYN arrived at a listener; reply SYN/ACK.
    pub fn accept(tuple: FourTuple, iss: u32, remote_isn: u32, remote_ts: Option<u32>, profile: StackProfile, now: Micros) -> Socket {
        let mut s = Socket::raw(tuple, iss, profile);
        s.state = TcpState::SynRecv;
        s.irs = remote_isn;
        s.rcv_nxt = remote_isn.wrapping_add(1);
        s.ts_recent = remote_ts;
        let mut synack = s.segment(TcpFlags::SYN_ACK, iss, s.rcv_nxt, now);
        synack.options.insert(0, TcpOption::Mss(profile.mss as u16));
        s.out.push(synack);
        s.snd_nxt = iss.wrapping_add(1);
        s.arm_rto(now);
        s
    }

    fn raw(tuple: FourTuple, iss: u32, profile: StackProfile) -> Socket {
        Socket {
            tuple,
            state: TcpState::Closed,
            profile,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            send_queue: crate::pool::take_bytes(),
            unacked: crate::pool::take_bytes(),
            fin_queued: false,
            fin_sent: false,
            irs: 0,
            rcv_nxt: 0,
            asm: Assembler::new(profile.overlap_policy),
            recv_buf: crate::pool::take_bytes(),
            peer_closed: false,
            ts_recent: None,
            use_timestamps: true,
            rto: RTO_INITIAL,
            rto_deadline: None,
            retries: 0,
            time_wait_deadline: None,
            reset_by_peer: false,
            out: crate::pool::take_seg_queue(),
        }
    }

    // ------------------------------------------------------------------
    // App-facing API.
    // ------------------------------------------------------------------

    /// Queue bytes for transmission.
    pub fn send(&mut self, data: &[u8], now: Micros) {
        self.send_queue.extend_from_slice(data);
        self.flush(now);
    }

    /// Read everything received so far.
    pub fn recv_drain(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_buf)
    }

    /// Append everything received so far to `out` — the allocation-free
    /// drain: the socket's receive buffer keeps its capacity and the app
    /// accumulates into a buffer it already owns.
    pub fn drain_recv_into(&mut self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.recv_buf);
        self.recv_buf.clear();
    }

    /// Discard everything received so far, returning how many bytes there
    /// were. For apps that only count bytes (keeps the buffer's capacity,
    /// unlike `recv_drain().len()`).
    pub fn recv_discard(&mut self) -> usize {
        let n = self.recv_buf.len();
        self.recv_buf.clear();
        n
    }

    /// Bytes available without draining.
    pub fn recv_len(&self) -> usize {
        self.recv_buf.len()
    }

    /// Graceful close: send FIN once all queued data is out.
    pub fn close(&mut self, now: Micros) {
        self.fin_queued = true;
        self.flush(now);
    }

    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    pub fn is_closed(&self) -> bool {
        self.state == TcpState::Closed
    }

    /// Peer closed its direction and everything was read.
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    pub fn state(&self) -> TcpState {
        self.state
    }

    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    pub fn iss(&self) -> u32 {
        self.iss
    }

    pub fn irs(&self) -> u32 {
        self.irs
    }

    // ------------------------------------------------------------------
    // Segment construction.
    // ------------------------------------------------------------------

    fn segment(&self, flags: TcpFlags, seqno: u32, ack: u32, now: Micros) -> TcpRepr {
        let mut repr = crate::pool::take_repr(self.tuple.src_port, self.tuple.dst_port);
        repr.seq = seqno;
        repr.ack = ack;
        repr.flags = flags;
        repr.window = RECV_WINDOW;
        if self.use_timestamps {
            repr.options.push(TcpOption::Timestamps {
                tsval: (now / 1_000) as u32,
                tsecr: self.ts_recent.unwrap_or(0),
            });
        }
        repr
    }

    fn emit_ack(&mut self, now: Micros) {
        let seg = self.segment(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, now);
        self.out.push(seg);
    }

    fn emit_rst(&mut self, seqno: u32, ack: Option<u32>, now: Micros) {
        let (flags, ackno) = match ack {
            Some(a) => (TcpFlags::RST_ACK, a),
            None => (TcpFlags::RST, 0),
        };
        let mut seg = self.segment(flags, seqno, ackno, now);
        seg.options.clear(); // RSTs go bare
        self.out.push(seg);
    }

    /// Move queued bytes onto the wire as MSS-sized segments. In SYN_SENT /
    /// SYN_RECV the data queues silently and flows once established.
    fn flush(&mut self, now: Micros) {
        let mss = self.profile.mss;
        while !self.send_queue.is_empty() && matches!(self.state, TcpState::Established | TcpState::CloseWait) {
            let take = self.send_queue.len().min(mss);
            let mut seg = self.segment(TcpFlags::PSH_ACK, self.snd_nxt, self.rcv_nxt, now);
            seg.payload.extend_from_slice(&self.send_queue[..take]);
            self.send_queue.drain(..take);
            self.unacked.extend_from_slice(&seg.payload);
            self.out.push(seg);
            self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
            self.arm_rto(now);
        }
        if self.fin_queued && !self.fin_sent && self.send_queue.is_empty() {
            match self.state {
                TcpState::Established | TcpState::SynRecv => {
                    let seg = self.segment(TcpFlags::FIN_ACK, self.snd_nxt, self.rcv_nxt, now);
                    self.out.push(seg);
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.fin_sent = true;
                    self.state = TcpState::FinWait1;
                    self.arm_rto(now);
                }
                TcpState::CloseWait => {
                    let seg = self.segment(TcpFlags::FIN_ACK, self.snd_nxt, self.rcv_nxt, now);
                    self.out.push(seg);
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.fin_sent = true;
                    self.state = TcpState::LastAck;
                    self.arm_rto(now);
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Timers.
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, now: Micros) {
        self.rto_deadline = Some(now + self.rto);
    }

    fn disarm_rto(&mut self) {
        self.rto_deadline = None;
        self.retries = 0;
        self.rto = RTO_INITIAL;
    }

    /// Earliest time this socket needs a timer tick.
    pub fn next_deadline(&self) -> Option<Micros> {
        match (self.rto_deadline, self.time_wait_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Advance timers; retransmit or expire as needed.
    pub fn on_timer(&mut self, now: Micros) {
        if let Some(tw) = self.time_wait_deadline {
            if now >= tw {
                self.state = TcpState::Closed;
                self.time_wait_deadline = None;
            }
        }
        let Some(deadline) = self.rto_deadline else { return };
        if now < deadline {
            return;
        }
        self.retries += 1;
        if self.retries > MAX_RETRIES {
            self.state = TcpState::Closed;
            self.rto_deadline = None;
            return;
        }
        self.rto = self.rto.saturating_mul(2);
        self.rto_deadline = Some(now + self.rto);
        // Retransmit the oldest outstanding item.
        match self.state {
            TcpState::SynSent => {
                let mut syn = self.segment(TcpFlags::SYN, self.iss, 0, now);
                syn.options.insert(0, TcpOption::Mss(self.profile.mss as u16));
                self.out.push(syn);
            }
            TcpState::SynRecv => {
                let mut synack = self.segment(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, now);
                synack.options.insert(0, TcpOption::Mss(self.profile.mss as u16));
                self.out.push(synack);
            }
            _ => {
                if !self.unacked.is_empty() {
                    let take = self.unacked.len().min(self.profile.mss);
                    let mut seg = self.segment(TcpFlags::PSH_ACK, self.snd_una, self.rcv_nxt, now);
                    seg.payload = self.unacked[..take].to_vec();
                    self.out.push(seg);
                } else if self.fin_sent && seq::lt(self.snd_una, self.snd_nxt) {
                    let seg = self.segment(TcpFlags::FIN_ACK, self.snd_nxt.wrapping_sub(1), self.rcv_nxt, now);
                    self.out.push(seg);
                } else {
                    self.disarm_rto();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Receive path.
    // ------------------------------------------------------------------

    /// Process one segment addressed to this socket. The endpoint has
    /// already validated IP total length, TCP header length and checksum.
    pub fn process(&mut self, seg: &TcpRepr, now: Micros, log: &mut IgnoreLog) {
        // MD5 option check (Linux `tcp_v4_inbound_md5_hash`): an unsolicited
        // signature option drops the segment before any state processing.
        if self.profile.md5_check && seg.options.iter().any(|o| matches!(o, TcpOption::Md5Sig(_))) {
            log.record(IgnoreReason::Md5Unexpected, Some(self.tuple.reversed()));
            return;
        }

        match self.state {
            TcpState::SynSent => self.process_syn_sent(seg, now, log),
            TcpState::SynRecv => self.process_syn_recv(seg, now, log),
            TcpState::Closed | TcpState::TimeWait => {
                log.record(IgnoreReason::WrongState, Some(self.tuple.reversed()));
            }
            _ => self.process_synchronized(seg, now, log),
        }
    }

    fn process_syn_sent(&mut self, seg: &TcpRepr, now: Micros, log: &mut IgnoreLog) {
        if seg.flags.rst() {
            // Acceptable only if it acks our SYN.
            if seg.flags.ack() && seg.ack == self.snd_nxt {
                self.state = TcpState::Closed;
                self.reset_by_peer = true;
                self.disarm_rto();
            } else {
                log.record(IgnoreReason::RstOutOfWindow, Some(self.tuple.reversed()));
            }
            return;
        }
        if seg.flags.syn() && seg.flags.ack() {
            if seg.ack != self.iss.wrapping_add(1) {
                // RFC 793: reply RST (seq = seg.ack) and stay in SYN_SENT.
                log.record(IgnoreReason::BadSynAckAck, Some(self.tuple.reversed()));
                self.emit_rst(seg.ack, None, now);
                return;
            }
            self.irs = seg.seq;
            self.rcv_nxt = seg.seq.wrapping_add(1);
            self.snd_una = seg.ack;
            if let Some((tsval, _)) = timestamps_of(seg) {
                self.ts_recent = Some(tsval);
            }
            self.state = TcpState::Established;
            self.disarm_rto();
            self.emit_ack(now);
            self.flush(now);
            return;
        }
        log.record(IgnoreReason::WrongState, Some(self.tuple.reversed()));
    }

    fn process_syn_recv(&mut self, seg: &TcpRepr, now: Micros, log: &mut IgnoreLog) {
        // PAWS applies before ACK processing (tcp_rcv_state_process): an
        // old-timestamp segment leaves the SYN_RECV state untouched
        // (Table 3, last row).
        if self.profile.paws && !seg.flags.rst() {
            if let (Some(recent), Some((tsval, _))) = (self.ts_recent, timestamps_of(seg)) {
                if recent.wrapping_sub(tsval) < 0x8000_0000 && recent != tsval {
                    log.record(IgnoreReason::PawsOldTimestamp, Some(self.tuple.reversed()));
                    self.emit_ack(now);
                    return;
                }
            }
        }
        if seg.flags.rst() {
            // Table 3: in SYN_RECV, an RST/ACK with a *wrong acknowledgment
            // number* is ignored.
            if seg.flags.ack() && self.profile.validate_ack_number && seg.ack != self.snd_nxt {
                log.record(IgnoreReason::BadAckNumber, Some(self.tuple.reversed()));
                return;
            }
            let acceptable = match self.profile.rst_policy {
                RstPolicy::Rfc5961 => seg.seq == self.rcv_nxt,
                RstPolicy::InWindow => seq::in_window(seg.seq, self.rcv_nxt, u32::from(RECV_WINDOW)),
            };
            if acceptable {
                self.state = TcpState::Closed;
                self.reset_by_peer = true;
                self.disarm_rto();
            } else {
                log.record(IgnoreReason::RstOutOfWindow, Some(self.tuple.reversed()));
            }
            return;
        }
        if seg.flags.syn() && !seg.flags.ack() {
            // Duplicate SYN: retransmit the SYN/ACK.
            let mut synack = self.segment(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, now);
            synack.options.insert(0, TcpOption::Mss(self.profile.mss as u16));
            self.out.push(synack);
            return;
        }
        if !seg.flags.ack() {
            log.record(
                if seg.flags.is_empty() {
                    IgnoreReason::NoFlags
                } else {
                    IgnoreReason::NoAckFlag
                },
                Some(self.tuple.reversed()),
            );
            return;
        }
        if self.profile.validate_ack_number && seg.ack != self.snd_nxt {
            // Table 3: ACK with wrong acknowledgment number in SYN_RECV.
            log.record(IgnoreReason::BadAckNumber, Some(self.tuple.reversed()));
            return;
        }
        self.snd_una = seg.ack;
        self.state = TcpState::Established;
        self.disarm_rto();
        // The handshake-completing ACK may carry data; process it fully.
        if !seg.payload.is_empty() || seg.flags.fin() {
            self.process_synchronized(seg, now, log);
        }
        self.flush(now);
    }

    /// ESTABLISHED and the closing states that still accept segments.
    fn process_synchronized(&mut self, seg: &TcpRepr, now: Micros, log: &mut IgnoreLog) {
        let peer = Some(self.tuple.reversed());

        // --- no-flag segments -------------------------------------------
        if seg.flags.is_empty() {
            // Pre-3.8 oddity (§3.4), and any kernel that doesn't insist on
            // the ACK flag (§5.3: 2.6.34 / 2.4.37 accept ACK-less data —
            // no flags at all included).
            let accepts = self.profile.accept_no_flag_data || !self.profile.require_ack_flag;
            if accepts && !seg.payload.is_empty() {
                self.accept_payload(seg, now);
            } else {
                log.record(IgnoreReason::NoFlags, peer);
            }
            return;
        }

        // --- PAWS (RFC 7323) ---------------------------------------------
        if self.profile.paws && !seg.flags.rst() {
            if let (Some(recent), Some((tsval, _))) = (self.ts_recent, timestamps_of(seg)) {
                // "Older" with wraparound, as tcp_paws_check does.
                if recent.wrapping_sub(tsval) < 0x8000_0000 && recent != tsval {
                    log.record(IgnoreReason::PawsOldTimestamp, peer);
                    self.emit_ack(now);
                    return;
                }
            }
        }

        // --- RST ----------------------------------------------------------
        if seg.flags.rst() {
            match self.profile.rst_policy {
                RstPolicy::Rfc5961 => {
                    if seg.seq == self.rcv_nxt {
                        self.enter_reset();
                    } else if seq::in_window(seg.seq, self.rcv_nxt, u32::from(RECV_WINDOW)) {
                        log.record(IgnoreReason::RstChallenged, peer);
                        self.emit_ack(now);
                    } else {
                        log.record(IgnoreReason::RstOutOfWindow, peer);
                    }
                }
                RstPolicy::InWindow => {
                    if seq::in_window(seg.seq, self.rcv_nxt, u32::from(RECV_WINDOW)) {
                        self.enter_reset();
                    } else {
                        log.record(IgnoreReason::RstOutOfWindow, peer);
                    }
                }
            }
            return;
        }

        // --- SYN in a synchronized state -----------------------------------
        if seg.flags.syn() {
            match self.profile.syn_in_established {
                SynInEstablished::ChallengeAck => {
                    log.record(IgnoreReason::SynInEstablished, peer);
                    self.emit_ack(now);
                }
                SynInEstablished::Ignore => {
                    log.record(IgnoreReason::SynInEstablished, peer);
                }
                SynInEstablished::Reset => {
                    if seq::in_window(seg.seq, self.rcv_nxt, u32::from(RECV_WINDOW)) {
                        self.emit_rst(self.snd_nxt, None, now);
                        self.enter_reset();
                    } else {
                        log.record(IgnoreReason::SynInEstablished, peer);
                    }
                }
            }
            return;
        }

        // --- FIN without ACK ------------------------------------------------
        if seg.flags.fin() && !seg.flags.ack() && self.profile.require_ack_flag {
            log.record(IgnoreReason::FinWithoutAck, peer);
            return;
        }

        // --- ACK-less data ---------------------------------------------------
        if !seg.flags.ack() && self.profile.require_ack_flag {
            log.record(IgnoreReason::NoAckFlag, peer);
            return;
        }

        // --- ACK validation (tcp_ack): a future ACK discards the segment ----
        if seg.flags.ack() && self.profile.validate_ack_number && seq::gt(seg.ack, self.snd_nxt) {
            log.record(IgnoreReason::BadAckNumber, peer);
            self.emit_ack(now);
            return;
        }

        // --- Sequence window check -------------------------------------------
        let seg_len = seg.payload.len() as u32 + u32::from(seg.flags.fin());
        if seg_len > 0 {
            let seg_end = seg.seq.wrapping_add(seg_len);
            let window_end = self.rcv_nxt.wrapping_add(u32::from(RECV_WINDOW));
            let entirely_old = seq::le(seg_end, self.rcv_nxt);
            let beyond_window = seq::ge(seg.seq, window_end);
            if entirely_old || beyond_window {
                log.record(IgnoreReason::OutOfWindowSeq, peer);
                self.emit_ack(now); // duplicate ACK
                return;
            }
        }

        // --- Accept: ACK bookkeeping ------------------------------------------
        if seg.flags.ack() {
            self.handle_ack(seg.ack);
        }

        // --- Timestamp bookkeeping ---------------------------------------------
        if let Some((tsval, _)) = timestamps_of(seg) {
            if seq::le(seg.seq, self.rcv_nxt) {
                let newer = self.ts_recent.is_none_or(|r| tsval.wrapping_sub(r) < 0x8000_0000);
                if newer {
                    self.ts_recent = Some(tsval);
                }
            }
        }

        // --- Payload + FIN -------------------------------------------------------
        if seg_len > 0 {
            self.accept_payload(seg, now);
        } else if seg.flags.ack() && self.fin_sent {
            self.advance_close_states();
        }
    }

    fn handle_ack(&mut self, ack: u32) {
        if seq::gt(ack, self.snd_una) {
            let advanced = ack.wrapping_sub(self.snd_una) as usize;
            let data_acked = advanced.min(self.unacked.len());
            self.unacked.drain(..data_acked);
            self.snd_una = ack;
            if self.snd_una == self.snd_nxt {
                self.disarm_rto();
            }
        }
        if self.fin_sent && seq::ge(self.snd_una, self.snd_nxt) {
            self.advance_close_states();
        }
    }

    /// Our FIN has been acknowledged: advance through the closing states.
    fn advance_close_states(&mut self) {
        match self.state {
            TcpState::FinWait1 => self.state = TcpState::FinWait2,
            TcpState::Closing => self.enter_time_wait(),
            TcpState::LastAck => {
                self.state = TcpState::Closed;
                self.disarm_rto();
            }
            _ => {}
        }
    }

    fn enter_time_wait(&mut self) {
        self.state = TcpState::TimeWait;
        self.disarm_rto();
        // The expiry is armed by `schedule_time_wait`, which the endpoint
        // calls right after processing (it knows the current time).
    }

    fn enter_reset(&mut self) {
        self.state = TcpState::Closed;
        self.reset_by_peer = true;
        self.disarm_rto();
    }

    /// Insert payload (and FIN edge) into the receive stream.
    fn accept_payload(&mut self, seg: &TcpRepr, now: Micros) {
        if !self.state.can_receive_data() {
            return;
        }
        let base = self.irs.wrapping_add(1);
        if !seg.payload.is_empty() {
            let rel = seg.seq.wrapping_sub(base) as u64;
            self.asm.insert(rel, &seg.payload);
            self.asm.pull_into(&mut self.recv_buf);
            self.rcv_nxt = base.wrapping_add(self.asm.head() as u32);
        }
        if seg.flags.fin() {
            let fin_seq = seg.seq.wrapping_add(seg.payload.len() as u32);
            // Accept the FIN only when it lands exactly in order.
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.peer_closed = true;
                match self.state {
                    TcpState::Established | TcpState::SynRecv => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        if self.fin_sent && seq::ge(self.snd_una, self.snd_nxt) {
                            self.enter_time_wait();
                        } else {
                            self.state = TcpState::Closing;
                        }
                    }
                    TcpState::FinWait2 => self.enter_time_wait(),
                    _ => {}
                }
            }
        }
        self.emit_ack(now);
    }

    /// Give TIME_WAIT sockets a real expiry time (endpoint calls this when
    /// it observes the transition).
    pub fn schedule_time_wait(&mut self, now: Micros) {
        if self.state == TcpState::TimeWait && self.time_wait_deadline.is_none() {
            self.time_wait_deadline = Some(now + TIME_WAIT_LINGER);
        }
    }
}

/// Extract (tsval, tsecr) from a parsed segment.
pub fn timestamps_of(seg: &TcpRepr) -> Option<(u32, u32)> {
    seg.options.iter().find_map(|o| match o {
        TcpOption::Timestamps { tsval, tsecr } => Some((*tsval, *tsecr)),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple() -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 40000, Ipv4Addr::new(10, 0, 0, 2), 80)
    }

    fn p44() -> StackProfile {
        StackProfile::linux_4_4()
    }

    /// Drive two sockets against each other until quiescent; returns the
    /// number of segments exchanged.
    fn pump(a: &mut Socket, b: &mut Socket, now: Micros) -> usize {
        let mut n = 0;
        let mut log = IgnoreLog::default();
        loop {
            let from_a = std::mem::take(&mut a.out);
            let from_b = std::mem::take(&mut b.out);
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            for seg in from_a {
                n += 1;
                b.process(&seg, now, &mut log);
            }
            for seg in from_b {
                n += 1;
                a.process(&seg, now, &mut log);
            }
        }
        n
    }

    fn established_pair() -> (Socket, Socket) {
        let t = tuple();
        let mut client = Socket::connect(t, 1000, p44(), 0);
        let syn = client.out.remove(0);
        let mut server = Socket::accept(t.reversed(), 5000, syn.seq, timestamps_of(&syn).map(|x| x.0), p44(), 0);
        pump(&mut client, &mut server, 0);
        assert!(client.is_established());
        assert!(server.is_established());
        (client, server)
    }

    #[test]
    fn three_way_handshake() {
        let (c, s) = established_pair();
        assert_eq!(c.snd_nxt(), 1001);
        assert_eq!(s.rcv_nxt(), 1001);
        assert_eq!(s.snd_nxt(), 5001);
        assert_eq!(c.rcv_nxt(), 5001);
    }

    #[test]
    fn data_transfer_both_ways() {
        let (mut c, mut s) = established_pair();
        c.send(b"GET / HTTP/1.1\r\n\r\n", 1_000);
        pump(&mut c, &mut s, 1_000);
        assert_eq!(s.recv_drain(), b"GET / HTTP/1.1\r\n\r\n");
        s.send(b"HTTP/1.1 200 OK\r\n\r\n", 2_000);
        pump(&mut c, &mut s, 2_000);
        assert_eq!(c.recv_drain(), b"HTTP/1.1 200 OK\r\n\r\n");
    }

    #[test]
    fn large_send_segments_at_mss() {
        let (mut c, mut s) = established_pair();
        let data = vec![0x41u8; 4000];
        c.send(&data, 1_000);
        let seg_lens: Vec<usize> = c.out.iter().map(|x| x.payload.len()).collect();
        assert_eq!(seg_lens, vec![1460, 1460, 1080]);
        pump(&mut c, &mut s, 1_000);
        assert_eq!(s.recv_drain(), data);
    }

    #[test]
    fn graceful_close_four_way() {
        let (mut c, mut s) = established_pair();
        c.close(1_000);
        pump(&mut c, &mut s, 1_000);
        assert!(s.peer_closed());
        assert_eq!(s.state(), TcpState::CloseWait);
        s.close(2_000);
        pump(&mut c, &mut s, 2_000);
        assert_eq!(s.state(), TcpState::Closed);
        assert_eq!(c.state(), TcpState::TimeWait);
        c.schedule_time_wait(2_000);
        c.on_timer(2_000 + 2_000_000);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn rst_exact_seq_resets_rfc5961() {
        let (mut c, _s) = established_pair();
        let mut rst = TcpRepr::new(80, 40000);
        rst.flags = TcpFlags::RST;
        rst.seq = c.rcv_nxt();
        let mut log = IgnoreLog::default();
        c.process(&rst, 1_000, &mut log);
        assert!(c.is_closed());
        assert!(c.reset_by_peer);
    }

    #[test]
    fn rst_in_window_challenged_rfc5961() {
        let (mut c, _s) = established_pair();
        let mut rst = TcpRepr::new(80, 40000);
        rst.flags = TcpFlags::RST;
        rst.seq = c.rcv_nxt().wrapping_add(100); // in-window but not exact
        let mut log = IgnoreLog::default();
        c.process(&rst, 1_000, &mut log);
        assert!(!c.is_closed());
        assert!(log.contains(IgnoreReason::RstChallenged));
        assert_eq!(c.out.len(), 1, "challenge ACK emitted");
        assert!(c.out[0].flags.ack());
    }

    #[test]
    fn rst_in_window_resets_old_linux() {
        let t = tuple();
        let mut client = Socket::connect(t, 1000, StackProfile::linux_2_4_37(), 0);
        let syn = client.out.remove(0);
        let mut server = Socket::accept(t.reversed(), 5000, syn.seq, None, StackProfile::linux_2_4_37(), 0);
        pump(&mut client, &mut server, 0);
        let mut rst = TcpRepr::new(80, 40000);
        rst.flags = TcpFlags::RST;
        rst.seq = client.rcv_nxt().wrapping_add(100);
        let mut log = IgnoreLog::default();
        client.process(&rst, 1_000, &mut log);
        assert!(client.is_closed(), "classic stacks accept any in-window RST");
    }

    #[test]
    fn md5_option_segment_ignored() {
        let (mut s, _c) = established_pair();
        let mut seg = TcpRepr::new(80, 40000);
        seg.flags = TcpFlags::PSH_ACK;
        seg.seq = s.rcv_nxt();
        seg.ack = s.snd_nxt();
        seg.payload = b"evil".to_vec();
        seg.options.push(TcpOption::Md5Sig([0; 16]));
        let mut log = IgnoreLog::default();
        s.process(&seg, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::Md5Unexpected));
        assert_eq!(s.recv_len(), 0);
        assert_eq!(s.rcv_nxt(), seg.seq, "state unchanged");
    }

    #[test]
    fn md5_option_accepted_by_2_4_37() {
        let t = tuple();
        let prof = StackProfile::linux_2_4_37();
        let mut client = Socket::connect(t, 1000, prof, 0);
        let syn = client.out.remove(0);
        let mut server = Socket::accept(t.reversed(), 5000, syn.seq, None, prof, 0);
        pump(&mut client, &mut server, 0);
        let mut seg = TcpRepr::new(40000, 80);
        seg.flags = TcpFlags::PSH_ACK;
        seg.seq = server.rcv_nxt();
        seg.ack = server.snd_nxt();
        seg.payload = b"data".to_vec();
        seg.options.push(TcpOption::Md5Sig([0; 16]));
        let mut log = IgnoreLog::default();
        server.process(&seg, 1_000, &mut log);
        assert_eq!(server.recv_drain(), b"data", "2.4.37 has no MD5 check");
    }

    #[test]
    fn no_flag_data_ignored_modern_accepted_pre38() {
        for (prof, accepted) in [(p44(), false), (StackProfile::linux_pre_3_8(), true)] {
            let t = tuple();
            let mut client = Socket::connect(t, 1000, prof, 0);
            let syn = client.out.remove(0);
            let mut server = Socket::accept(t.reversed(), 5000, syn.seq, None, prof, 0);
            pump(&mut client, &mut server, 0);
            let mut seg = TcpRepr::new(40000, 80);
            seg.flags = TcpFlags::NONE;
            seg.seq = server.rcv_nxt();
            seg.payload = b"x".to_vec();
            let mut log = IgnoreLog::default();
            server.process(&seg, 1_000, &mut log);
            assert_eq!(server.recv_len() > 0, accepted, "{:?}", prof.version);
        }
    }

    #[test]
    fn future_ack_discards_data_segment() {
        let (mut s, _c) = established_pair();
        let mut seg = TcpRepr::new(80, 40000);
        seg.flags = TcpFlags::PSH_ACK;
        seg.seq = s.rcv_nxt();
        seg.ack = s.snd_nxt().wrapping_add(10_000); // acks unsent data
        seg.payload = b"junk".to_vec();
        let mut log = IgnoreLog::default();
        s.process(&seg, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::BadAckNumber));
        assert_eq!(s.recv_len(), 0);
    }

    #[test]
    fn old_timestamp_discarded_by_paws() {
        let (mut c, mut s) = established_pair();
        // Seed ts_recent with a current segment.
        c.send(b"a", 5_000_000);
        pump(&mut c, &mut s, 5_000_000);
        assert_eq!(s.recv_drain(), b"a");
        let mut seg = TcpRepr::new(40000, 80);
        seg.flags = TcpFlags::PSH_ACK;
        seg.seq = s.rcv_nxt();
        seg.ack = s.snd_nxt();
        seg.payload = b"old".to_vec();
        seg.options.push(TcpOption::Timestamps { tsval: 1, tsecr: 0 }); // ancient
        let mut log = IgnoreLog::default();
        s.process(&seg, 6_000_000, &mut log);
        assert!(log.contains(IgnoreReason::PawsOldTimestamp));
        assert_eq!(s.recv_len(), 0);
    }

    #[test]
    fn out_of_window_data_gets_dup_ack() {
        let (mut s, _c) = established_pair();
        let mut seg = TcpRepr::new(80, 40000);
        seg.flags = TcpFlags::PSH_ACK;
        seg.seq = s.rcv_nxt().wrapping_add(200_000); // far beyond window
        seg.ack = s.snd_nxt();
        seg.payload = b"way out".to_vec();
        let mut log = IgnoreLog::default();
        let before = s.rcv_nxt();
        s.process(&seg, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::OutOfWindowSeq));
        assert_eq!(s.rcv_nxt(), before);
        assert!(s.out.iter().any(|x| x.flags.ack()), "duplicate ACK sent");
    }

    #[test]
    fn syn_in_established_behaviors() {
        for (prof, expect_reset, expect_ack) in [
            (p44(), false, true),
            (StackProfile::linux_3_14(), false, false),
            (StackProfile::linux_2_4_37(), true, false),
        ] {
            let t = tuple();
            let mut client = Socket::connect(t, 1000, prof, 0);
            let syn = client.out.remove(0);
            let mut server = Socket::accept(t.reversed(), 5000, syn.seq, None, prof, 0);
            pump(&mut client, &mut server, 0);
            let mut seg = TcpRepr::new(40000, 80);
            seg.flags = TcpFlags::SYN;
            seg.seq = server.rcv_nxt(); // in-window
            let mut log = IgnoreLog::default();
            server.process(&seg, 1_000, &mut log);
            assert_eq!(server.is_closed(), expect_reset, "{:?}", prof.version);
            if expect_ack {
                assert!(server.out.iter().any(|x| x.flags.ack() && !x.flags.rst()));
            }
        }
    }

    #[test]
    fn fin_only_ignored_by_modern_stack() {
        let (mut s, _c) = established_pair();
        let mut seg = TcpRepr::new(80, 40000);
        seg.flags = TcpFlags::FIN;
        seg.seq = s.rcv_nxt();
        let mut log = IgnoreLog::default();
        s.process(&seg, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::FinWithoutAck));
        assert!(!s.peer_closed());
    }

    #[test]
    fn retransmission_on_timeout() {
        let t = tuple();
        let mut client = Socket::connect(t, 1000, p44(), 0);
        client.out.clear(); // drop the SYN on the floor
        assert!(client.next_deadline().is_some());
        client.on_timer(RTO_INITIAL + 1);
        assert_eq!(client.out.len(), 1, "SYN retransmitted");
        assert!(client.out[0].flags.syn());
    }

    #[test]
    fn data_retransmission_recovers_loss() {
        let (mut c, mut s) = established_pair();
        c.send(b"hello", 1_000);
        c.out.clear(); // lose the data segment
        c.on_timer(1_000 + RTO_INITIAL + 1);
        assert_eq!(c.out.len(), 1);
        pump(&mut c, &mut s, 500_000);
        assert_eq!(s.recv_drain(), b"hello");
    }

    #[test]
    fn connection_gives_up_after_max_retries() {
        let t = tuple();
        let mut client = Socket::connect(t, 1000, p44(), 0);
        for _ in 0..=MAX_RETRIES {
            let now = client.next_deadline().unwrap() + 1;
            client.out.clear();
            client.on_timer(now);
        }
        assert!(client.is_closed());
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let (mut _c, mut s) = established_pair();
        let base = s.rcv_nxt();
        let mk = |seqoff: u32, data: &[u8], ack: u32| {
            let mut seg = TcpRepr::new(40000, 80);
            seg.flags = TcpFlags::PSH_ACK;
            seg.seq = base.wrapping_add(seqoff);
            seg.ack = ack;
            seg.payload = data.to_vec();
            seg
        };
        let ack = s.snd_nxt();
        let mut log = IgnoreLog::default();
        s.process(&mk(6, b"world", ack), 1_000, &mut log);
        assert_eq!(s.recv_len(), 0);
        s.process(&mk(0, b"hello ", ack), 1_100, &mut log);
        assert_eq!(s.recv_drain(), b"hello world");
        assert_eq!(s.rcv_nxt(), base.wrapping_add(11));
    }

    #[test]
    fn syn_recv_ignores_wrong_ack_rst_ack() {
        // Table 3, row 4.
        let t = tuple();
        let mut client = Socket::connect(t, 1000, p44(), 0);
        let syn = client.out.remove(0);
        let mut server = Socket::accept(t.reversed(), 5000, syn.seq, None, p44(), 0);
        assert_eq!(server.state(), TcpState::SynRecv);
        let mut rst = TcpRepr::new(40000, 80);
        rst.flags = TcpFlags::RST_ACK;
        rst.seq = server.rcv_nxt();
        rst.ack = server.snd_nxt().wrapping_add(999); // wrong
        let mut log = IgnoreLog::default();
        server.process(&rst, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::BadAckNumber));
        assert_eq!(server.state(), TcpState::SynRecv, "TCB survives");
        // A correct RST/ACK does reset.
        rst.ack = server.snd_nxt();
        server.process(&rst, 1_100, &mut log);
        assert!(server.is_closed());
    }

    #[test]
    fn syn_sent_wrong_synack_elicits_rst_and_keeps_state() {
        let t = tuple();
        let mut client = Socket::connect(t, 1000, p44(), 0);
        client.out.clear();
        let mut synack = TcpRepr::new(80, 40000);
        synack.flags = TcpFlags::SYN_ACK;
        synack.seq = 7777;
        synack.ack = 9999; // doesn't ack our SYN (iss+1 = 1001)
        let mut log = IgnoreLog::default();
        client.process(&synack, 1_000, &mut log);
        assert!(log.contains(IgnoreReason::BadSynAckAck));
        assert_eq!(client.state(), TcpState::SynSent);
        assert_eq!(client.out.len(), 1);
        assert!(client.out[0].flags.rst());
        assert_eq!(client.out[0].seq, 9999, "RST seq mirrors the bogus ACK");
    }
}
