//! "Ignore path" instrumentation.
//!
//! Every point where the stack discards a packet without changing
//! connection state is one of the paper's *ignore paths* (§5.3). The stack
//! records an [`IgnoreEvent`] for each, which is exactly the observable the
//! differential analysis in `intang-ignorepath` diffs against the GFW model
//! to derive Table 3.

use intang_packet::FourTuple;

/// Why a packet was ignored. Variants map 1:1 onto Table 3 conditions plus
/// the handful of additional paths a real stack has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IgnoreReason {
    /// IP total length field > actual received length.
    BadIpTotalLen,
    /// TCP data offset below 20 bytes (header length < 20).
    BadTcpHeaderLen,
    /// TCP checksum incorrect.
    BadChecksum,
    /// Unsolicited RFC 2385 MD5 signature option present.
    Md5Unexpected,
    /// PAWS: timestamp older than the last validated timestamp.
    PawsOldTimestamp,
    /// ACK number outside the acceptable range (wrong acknowledgment).
    BadAckNumber,
    /// Segment carries no TCP flags at all.
    NoFlags,
    /// Segment carries only a FIN (no ACK) — ignored in modern stacks.
    FinWithoutAck,
    /// Data segment without the ACK flag (modern stacks require ACK).
    NoAckFlag,
    /// Sequence number entirely outside the receive window (a duplicate
    /// ACK / challenge ACK may still be emitted).
    OutOfWindowSeq,
    /// RST whose sequence was in-window but not exact under RFC 5961
    /// (challenge ACK emitted, connection unaffected).
    RstChallenged,
    /// RST with out-of-window sequence number.
    RstOutOfWindow,
    /// SYN received in ESTABLISHED (challenge-ACKed or silently dropped).
    SynInEstablished,
    /// SYN/ACK whose ACK number doesn't acknowledge our SYN (SYN_SENT).
    BadSynAckAck,
    /// Segment for a connection/port that doesn't exist (RST may be sent).
    NoSocket,
    /// Segment arrived in a state that cannot accept it (e.g. data in
    /// TIME_WAIT).
    WrongState,
}

impl std::fmt::Display for IgnoreReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IgnoreReason::BadIpTotalLen => "IP total length > actual length",
            IgnoreReason::BadTcpHeaderLen => "TCP header length < 20",
            IgnoreReason::BadChecksum => "TCP checksum incorrect",
            IgnoreReason::Md5Unexpected => "unsolicited MD5 option header",
            IgnoreReason::PawsOldTimestamp => "timestamps too old",
            IgnoreReason::BadAckNumber => "wrong acknowledgement number",
            IgnoreReason::NoFlags => "TCP packet with no flag",
            IgnoreReason::FinWithoutAck => "TCP packet with only FIN flag",
            IgnoreReason::NoAckFlag => "data segment without ACK flag",
            IgnoreReason::OutOfWindowSeq => "sequence number out of window",
            IgnoreReason::RstChallenged => "RST challenged (RFC 5961)",
            IgnoreReason::RstOutOfWindow => "RST out of window",
            IgnoreReason::SynInEstablished => "SYN in ESTABLISHED",
            IgnoreReason::BadSynAckAck => "SYN/ACK with wrong ACK number",
            IgnoreReason::NoSocket => "no matching socket",
            IgnoreReason::WrongState => "state cannot accept segment",
        };
        f.write_str(s)
    }
}

/// One recorded ignore event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IgnoreEvent {
    pub reason: IgnoreReason,
    /// Flow of the offending packet (as seen by the receiving endpoint).
    pub tuple: Option<FourTuple>,
}

/// A bounded log of ignore events, drained by tests and analyses.
#[derive(Debug, Default)]
pub struct IgnoreLog {
    events: Vec<IgnoreEvent>,
    /// Lifetime count of recorded events — unaffected by the storage cap
    /// and by `drain` (telemetry reads this).
    total: u64,
}

impl IgnoreLog {
    /// An empty log whose storage is leased from the thread-local pool
    /// (recycled capacity; contents identical to `IgnoreLog::default()`).
    pub(crate) fn pooled() -> IgnoreLog {
        IgnoreLog {
            events: crate::pool::take_ignore_buf(),
            total: 0,
        }
    }

    /// Hand the storage back to the pool (used by the endpoint on drop).
    pub(crate) fn recycle(&mut self) {
        crate::pool::put_ignore_buf(std::mem::take(&mut self.events));
    }

    pub fn record(&mut self, reason: IgnoreReason, tuple: Option<FourTuple>) {
        self.total += 1;
        if self.events.len() < 10_000 {
            self.events.push(IgnoreEvent { reason, tuple });
        }
    }

    /// Total events ever recorded (survives `drain` and the cap).
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn drain(&mut self) -> Vec<IgnoreEvent> {
        std::mem::take(&mut self.events)
    }

    pub fn events(&self) -> &[IgnoreEvent] {
        &self.events
    }

    pub fn contains(&self, reason: IgnoreReason) -> bool {
        self.events.iter().any(|e| e.reason == reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_drains() {
        let mut log = IgnoreLog::default();
        log.record(IgnoreReason::BadChecksum, None);
        log.record(IgnoreReason::NoFlags, None);
        assert!(log.contains(IgnoreReason::BadChecksum));
        assert!(!log.contains(IgnoreReason::Md5Unexpected));
        let drained = log.drain();
        assert_eq!(drained.len(), 2);
        assert!(log.events().is_empty());
    }

    #[test]
    fn display_matches_table3_wording() {
        assert_eq!(IgnoreReason::BadIpTotalLen.to_string(), "IP total length > actual length");
        assert_eq!(IgnoreReason::Md5Unexpected.to_string(), "unsolicited MD5 option header");
        assert_eq!(IgnoreReason::PawsOldTimestamp.to_string(), "timestamps too old");
    }
}
