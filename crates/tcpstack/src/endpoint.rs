//! The host-level TCP endpoint: IP-level validation, fragment reassembly,
//! socket demultiplexing, listeners, and wire emission.

use crate::ignore::{IgnoreLog, IgnoreReason};
use crate::profile::StackProfile;
use crate::socket::{Micros, Socket, TcpState};
use intang_packet::frag::{OverlapPolicy, Reassembler};
use intang_packet::tcp::{TcpFlags, TcpPacket, TcpRepr};
use intang_packet::{FourTuple, IpProtocol, Ipv4Packet, Ipv4Repr, ParseError, Wire};
use intang_telemetry::{Counter, MetricsSheet};
use std::net::Ipv4Addr;

/// Index of a socket inside an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SocketHandle(pub usize);

/// Cheap always-on counters for one endpoint (telemetry reads these once
/// per trial via [`TcpEndpoint::export_metrics`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct StackStats {
    /// TCP segments addressed to this endpoint that parsed far enough to
    /// be considered (pre-validation).
    pub segments_rx: u64,
    /// IP datagrams this endpoint emitted.
    pub segments_tx: u64,
    /// Segments carrying an RST flag seen by this endpoint.
    pub resets_rx: u64,
}

/// A host's TCP layer.
pub struct TcpEndpoint {
    pub addr: Ipv4Addr,
    pub profile: StackProfile,
    /// Every ignore-path hit, for tests and the differential analysis.
    pub ignore_log: IgnoreLog,
    pub stats: StackStats,
    /// Socket table. Slots of sockets passed to [`TcpEndpoint::retire_socket`]
    /// go on the free list and are reused by the next connect/accept, so a
    /// long-lived endpoint that retires finished flows stays bounded by its
    /// *concurrent* socket count (the table was historically grow-only,
    /// which forced multiplexers into one-endpoint-per-flow workarounds).
    sockets: Vec<Socket>,
    /// Parallel to `sockets`: true when the socket was opened by `connect`.
    client_flags: Vec<bool>,
    /// Parallel to `sockets`: slot retired, skipped by demux/poll/timers.
    retired: Vec<bool>,
    /// Indices of retired slots available for reuse.
    free: Vec<usize>,
    listeners: Vec<u16>,
    /// Handles of server sockets that completed their handshake and have
    /// not yet been claimed by the application.
    accepted: Vec<SocketHandle>,
    out: Vec<Wire>,
    ip_reasm: Reassembler,
    /// Scratch repr reused by `on_packet`: parsing a segment into it reuses
    /// the previous segment's `options`/`payload` capacity, so the receive
    /// path stops allocating once warm.
    rx_seg: TcpRepr,
    isn_counter: u32,
    ident_counter: u16,
    ephemeral_next: u16,
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        crate::pool::put_repr(std::mem::replace(&mut self.rx_seg, TcpRepr::new(0, 0)));
        // Dropping the sockets inside put_socket_table recycles their
        // queues; the table, datagram queue and ignore-log storage keep
        // their capacity for the next endpoint on this thread.
        crate::pool::put_socket_table(std::mem::take(&mut self.sockets));
        crate::pool::put_wire_queue(std::mem::take(&mut self.out));
        self.ignore_log.recycle();
    }
}

impl TcpEndpoint {
    pub fn new(addr: Ipv4Addr, profile: StackProfile) -> TcpEndpoint {
        TcpEndpoint {
            addr,
            profile,
            ignore_log: IgnoreLog::pooled(),
            stats: StackStats::default(),
            sockets: crate::pool::take_socket_table(),
            client_flags: Vec::new(),
            retired: Vec::new(),
            free: Vec::new(),
            listeners: Vec::new(),
            accepted: Vec::new(),
            out: crate::pool::take_wire_queue(),
            // Servers reassemble fragments; the "accepts junk like the GFW"
            // server variant (§3.4) is modeled by profiles that set
            // FirstWins via `set_ip_overlap`.
            ip_reasm: Reassembler::new(OverlapPolicy::LastWins),
            // Leased from the thread-local repr pool so a fresh endpoint
            // inherits a previous one's grown options/payload capacity
            // (returned in Drop).
            rx_seg: crate::pool::take_repr(0, 0),
            isn_counter: 0x1000_0000,
            ident_counter: 1,
            ephemeral_next: 40_000,
        }
    }

    /// Override the IP fragment overlap preference (server diversity, §3.4).
    pub fn set_ip_overlap(&mut self, policy: OverlapPolicy) {
        self.ip_reasm = Reassembler::new(policy);
    }

    pub fn listen(&mut self, port: u16) {
        if !self.listeners.contains(&port) {
            self.listeners.push(port);
        }
    }

    /// Open a client connection; emits the SYN immediately.
    pub fn connect(&mut self, dst: Ipv4Addr, dst_port: u16, now: Micros) -> SocketHandle {
        let src_port = self.ephemeral_next;
        self.ephemeral_next = self.ephemeral_next.wrapping_add(1).max(40_000);
        self.connect_from(src_port, dst, dst_port, now)
    }

    /// Open a client connection from a specific source port.
    pub fn connect_from(&mut self, src_port: u16, dst: Ipv4Addr, dst_port: u16, now: Micros) -> SocketHandle {
        let tuple = FourTuple::new(self.addr, src_port, dst, dst_port);
        let iss = self.next_isn();
        let sock = Socket::connect(tuple, iss, self.profile, now);
        let h = self.install_socket(sock, true);
        self.drain_socket(h.0);
        h
    }

    /// Place a socket in a free (retired) slot if one exists, else append.
    fn install_socket(&mut self, sock: Socket, client: bool) -> SocketHandle {
        match self.free.pop() {
            Some(idx) => {
                self.sockets[idx] = sock;
                self.client_flags[idx] = client;
                self.retired[idx] = false;
                SocketHandle(idx)
            }
            None => {
                self.sockets.push(sock);
                self.client_flags.push(client);
                self.retired.push(false);
                SocketHandle(self.sockets.len() - 1)
            }
        }
    }

    /// Retire one socket: it stops matching incoming segments, firing
    /// timers or being polled, and its slot is recycled by a later
    /// connect/accept. The handle must not be used again. Flows that end
    /// (metropolis retirement, forwarder teardown) call this so an
    /// endpoint's footprint tracks its concurrent — not lifetime — flow
    /// count.
    pub fn retire_socket(&mut self, h: SocketHandle) {
        let idx = h.0;
        if idx >= self.sockets.len() || self.retired[idx] {
            return;
        }
        // Flush anything the socket had queued (e.g. its final FIN/ACK).
        self.drain_socket(idx);
        self.retired[idx] = true;
        self.free.push(idx);
    }

    /// True when every live (non-retired) socket has reached a quiescent
    /// state — CLOSED, or TIME_WAIT where the only remaining action is the
    /// quietus timer. A multiplexer cell whose conversation is done can be
    /// dropped at this point without losing any future transmission.
    pub fn all_settled(&self) -> bool {
        self.sockets
            .iter()
            .enumerate()
            .all(|(i, s)| self.retired[i] || matches!(s.state(), TcpState::Closed | TcpState::TimeWait))
    }

    fn next_isn(&mut self) -> u32 {
        // Deterministic yet spread-out ISNs.
        self.isn_counter = self.isn_counter.wrapping_add(0x01ab_cd07);
        self.isn_counter
    }

    /// Pin the next ISN this endpoint hands out to exactly `base`.
    /// Wraparound property tests use this to start connections with ISNs
    /// near `u32::MAX` so every absolute-sequence comparison downstream
    /// gets exercised across the wrap.
    pub fn set_isn_base(&mut self, base: u32) {
        self.isn_counter = base.wrapping_sub(0x01ab_cd07);
    }

    pub fn socket(&mut self, h: SocketHandle) -> &mut Socket {
        &mut self.sockets[h.0]
    }

    pub fn socket_ref(&self, h: SocketHandle) -> &Socket {
        &self.sockets[h.0]
    }

    /// Server sockets that became ESTABLISHED since the last call.
    pub fn take_accepted(&mut self) -> Vec<SocketHandle> {
        std::mem::take(&mut self.accepted)
    }

    /// Process one incoming IPv4 datagram.
    pub fn on_packet(&mut self, wire: Wire, now: Micros) {
        // IP fragments first: buffer until a full datagram emerges.
        let Some(wire) = self.ip_reasm.push(wire) else { return };

        let Ok(ip) = Ipv4Packet::new_checked(&wire[..]) else { return };
        if ip.dst_addr() != self.addr {
            return; // not ours (e.g. ICMP for a probe tool that hooks elsewhere)
        }
        if self.profile.validate_ip_total_len && !ip.total_len_consistent() {
            self.ignore_log.record(IgnoreReason::BadIpTotalLen, None);
            return;
        }
        if ip.protocol() != IpProtocol::Tcp {
            return; // UDP/ICMP are handled by other layers of the host
        }
        let tcp = match TcpPacket::new_checked(ip.payload()) {
            Ok(t) => t,
            Err(ParseError::BadLength) => {
                self.ignore_log.record(IgnoreReason::BadTcpHeaderLen, None);
                return;
            }
            Err(_) => return,
        };
        if self.profile.validate_checksum && !tcp.verify_checksum(ip.src_addr(), ip.dst_addr()) {
            self.ignore_log.record(IgnoreReason::BadChecksum, None);
            return;
        }

        let remote = ip.src_addr();
        let tuple_local = FourTuple::new(self.addr, tcp.dst_port(), remote, tcp.src_port());
        // Move the scratch repr out (putting it back below) so `&seg` and
        // `&mut self` can coexist across the socket calls.
        let mut seg = std::mem::replace(&mut self.rx_seg, TcpRepr::new(0, 0));
        TcpRepr::parse_into(&tcp, &mut seg);
        self.stats.segments_rx += 1;
        if seg.flags.rst() {
            self.stats.resets_rx += 1;
        }
        self.dispatch_segment(&seg, tuple_local, remote, now);
        self.rx_seg = seg;
    }

    /// Demux one validated TCP segment to a socket, a listener, or the
    /// closed-port RST path.
    fn dispatch_segment(&mut self, seg: &TcpRepr, tuple_local: FourTuple, remote: Ipv4Addr, now: Micros) {
        // Demux: existing socket?
        if let Some(idx) = self
            .sockets
            .iter()
            .enumerate()
            .position(|(i, s)| !self.retired[i] && s.tuple == tuple_local && s.state() != TcpState::Closed)
        {
            let was_established = self.sockets[idx].is_established();
            self.sockets[idx].process(seg, now, &mut self.ignore_log);
            self.sockets[idx].schedule_time_wait(now);
            if !was_established && self.sockets[idx].is_established() && !self.is_client_socket(idx) {
                self.accepted.push(SocketHandle(idx));
            }
            self.drain_socket(idx);
            return;
        }

        // No socket. A SYN to a listening port opens one.
        if seg.flags.syn() && !seg.flags.ack() && self.listeners.contains(&seg.dst_port) {
            let iss = self.next_isn();
            let remote_ts = crate::socket::timestamps_of(seg).map(|(v, _)| v);
            let sock = Socket::accept(tuple_local, iss, seg.seq, remote_ts, self.profile, now);
            let h = self.install_socket(sock, false);
            self.drain_socket(h.0);
            return;
        }

        // Anything else to a dead port: RST (unless it *is* an RST).
        self.ignore_log.record(IgnoreReason::NoSocket, Some(tuple_local.reversed()));
        if !seg.flags.rst() {
            let (rst_seq, rst_ack, flags) = if seg.flags.ack() {
                (seg.ack, 0, TcpFlags::RST)
            } else {
                let seg_len = seg.payload.len() as u32 + u32::from(seg.flags.syn()) + u32::from(seg.flags.fin());
                (0, seg.seq.wrapping_add(seg_len), TcpFlags::RST_ACK)
            };
            let mut rst = crate::pool::take_repr(seg.dst_port, seg.src_port);
            rst.seq = rst_seq;
            rst.ack = rst_ack;
            rst.flags = flags;
            rst.window = 0;
            self.push_wire(remote, rst);
        }
    }

    fn is_client_socket(&self, idx: usize) -> bool {
        *self.client_flags.get(idx).unwrap_or(&true)
    }

    /// Wrap queued TCP segments of socket `idx` into IP datagrams.
    fn drain_socket(&mut self, idx: usize) {
        let dst = self.sockets[idx].tuple.dst;
        let mut segs = std::mem::take(&mut self.sockets[idx].out);
        for seg in segs.drain(..) {
            self.push_wire(dst, seg);
        }
        // Hand the drained (now empty) queue back so its capacity survives
        // to the next flush.
        self.sockets[idx].out = segs;
    }

    fn push_wire(&mut self, dst: Ipv4Addr, seg: TcpRepr) {
        let mut ip = Ipv4Repr::new(self.addr, dst, IpProtocol::Tcp);
        ip.ident = self.ident_counter;
        self.ident_counter = self.ident_counter.wrapping_add(1);
        let wire = intang_packet::wire::emit_tcp(&ip, &seg);
        self.stats.segments_tx += 1;
        self.out.push(wire);
        crate::pool::put_repr(seg);
    }

    /// Take all pending outgoing datagrams.
    pub fn poll_transmit(&mut self) -> Vec<Wire> {
        let mut out = Vec::new();
        self.poll_transmit_into(&mut out);
        out
    }

    /// Append all pending outgoing datagrams to `out` — the allocation-free
    /// variant for callers that keep a scratch vector across polls.
    pub fn poll_transmit_into(&mut self, out: &mut Vec<Wire>) {
        // App-level sends land in socket.out; sweep all live sockets.
        for idx in 0..self.sockets.len() {
            if !self.retired[idx] {
                self.drain_socket(idx);
            }
        }
        out.append(&mut self.out);
    }

    /// Earliest timer deadline across live sockets.
    pub fn next_deadline(&self) -> Option<Micros> {
        self.sockets
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.retired[*i])
            .filter_map(|(_, s)| s.next_deadline())
            .min()
    }

    /// Fire timers that are due.
    pub fn on_timer(&mut self, now: Micros) {
        for idx in 0..self.sockets.len() {
            if !self.retired[idx] && self.sockets[idx].next_deadline().is_some_and(|d| d <= now) {
                self.sockets[idx].on_timer(now);
                self.drain_socket(idx);
            }
        }
    }

    /// Number of live (non-closed, non-retired) sockets.
    pub fn live_sockets(&self) -> usize {
        self.sockets
            .iter()
            .enumerate()
            .filter(|(i, s)| !self.retired[*i] && s.state() != TcpState::Closed)
            .count()
    }

    /// Export this endpoint's counters into a telemetry sheet (called by
    /// the host element wrapper once per trial).
    pub fn export_metrics(&self, m: &mut MetricsSheet) {
        m.add(Counter::StackSegmentsRx, self.stats.segments_rx);
        m.add(Counter::StackSegmentsTx, self.stats.segments_tx);
        m.add(Counter::StackResetsRx, self.stats.resets_rx);
        m.add(Counter::StackSegmentsIgnored, self.ignore_log.total());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client_addr() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn server_addr() -> Ipv4Addr {
        Ipv4Addr::new(93, 184, 216, 34)
    }

    /// Shuttle packets between two endpoints until both go quiet.
    fn pump(a: &mut TcpEndpoint, b: &mut TcpEndpoint, now: Micros) {
        loop {
            let from_a = a.poll_transmit();
            let from_b = b.poll_transmit();
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            for w in from_a {
                b.on_packet(w, now);
            }
            for w in from_b {
                a.on_packet(w, now);
            }
        }
    }

    #[test]
    fn end_to_end_http_like_exchange() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let ch = client.connect(server_addr(), 80, 0);
        pump(&mut client, &mut server, 0);
        assert!(client.socket(ch).is_established());
        let accepted = server.take_accepted();
        assert_eq!(accepted.len(), 1);
        let sh = accepted[0];

        client.socket(ch).send(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n", 1_000);
        pump(&mut client, &mut server, 1_000);
        assert_eq!(server.socket(sh).recv_drain(), b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");

        server.socket(sh).send(b"HTTP/1.1 200 OK\r\n\r\nhi", 2_000);
        server.socket(sh).close(2_000);
        pump(&mut client, &mut server, 2_000);
        assert_eq!(client.socket(ch).recv_drain(), b"HTTP/1.1 200 OK\r\n\r\nhi");
        assert!(client.socket(ch).peer_closed());

        client.socket(ch).close(3_000);
        pump(&mut client, &mut server, 3_000);
        // The server initiated close, so it lingers in TIME_WAIT while the
        // client (LAST_ACK side) fully closes.
        assert_eq!(server.socket(sh).state(), TcpState::TimeWait);
        assert!(client.socket(ch).is_closed());
    }

    #[test]
    fn retired_socket_slot_is_reused_and_invisible() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let ch = client.connect(server_addr(), 80, 0);
        pump(&mut client, &mut server, 0);
        assert!(client.socket(ch).is_established());
        client.retire_socket(ch);
        assert_eq!(client.live_sockets(), 0);
        assert!(client.next_deadline().is_none(), "retired sockets fire no timers");
        // A new connection reuses the retired slot rather than growing the
        // table.
        let ch2 = client.connect(server_addr(), 80, 1_000);
        assert_eq!(ch2, ch, "slot recycled");
        pump(&mut client, &mut server, 1_000);
        assert!(client.socket(ch2).is_established());
    }

    #[test]
    fn all_settled_after_full_close() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let ch = client.connect(server_addr(), 80, 0);
        pump(&mut client, &mut server, 0);
        assert!(!server.all_settled(), "established connection is not settled");
        let sh = server.take_accepted()[0];
        server.socket(sh).send(b"hi", 1_000);
        server.socket(sh).close(1_000);
        pump(&mut client, &mut server, 1_000);
        client.socket(ch).close(2_000);
        pump(&mut client, &mut server, 2_000);
        assert_eq!(server.socket(sh).state(), TcpState::TimeWait);
        assert!(server.all_settled(), "TIME_WAIT counts as settled");
        assert!(client.all_settled());
    }

    #[test]
    fn syn_to_closed_port_gets_rst() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        // No listener on 81.
        let ch = client.connect(server_addr(), 81, 0);
        pump(&mut client, &mut server, 0);
        assert!(client.socket(ch).is_closed());
        assert!(client.socket(ch).reset_by_peer);
    }

    #[test]
    fn bad_checksum_dropped_before_socket() {
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let wire = intang_packet::PacketBuilder::tcp(client_addr(), server_addr(), 40000, 80)
            .flags(TcpFlags::SYN)
            .bad_checksum()
            .build();
        server.on_packet(wire, 0);
        assert!(server.ignore_log.contains(IgnoreReason::BadChecksum));
        assert!(server.poll_transmit().is_empty(), "no SYN/ACK for a corrupt SYN");
        assert_eq!(server.live_sockets(), 0);
    }

    #[test]
    fn inflated_total_len_dropped() {
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let wire = intang_packet::PacketBuilder::tcp(client_addr(), server_addr(), 40000, 80)
            .flags(TcpFlags::SYN)
            .inflated_total_len(32)
            .build();
        server.on_packet(wire, 0);
        assert!(server.ignore_log.contains(IgnoreReason::BadIpTotalLen));
        assert_eq!(server.live_sockets(), 0);
    }

    #[test]
    fn short_tcp_header_dropped() {
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let wire = intang_packet::PacketBuilder::tcp(client_addr(), server_addr(), 40000, 80)
            .flags(TcpFlags::SYN)
            .short_data_offset()
            .build();
        server.on_packet(wire, 0);
        assert!(server.ignore_log.contains(IgnoreReason::BadTcpHeaderLen));
    }

    #[test]
    fn unsolicited_synack_gets_rst() {
        // The TCB Reversal hazard (§5.2): a SYN/ACK reaching the server
        // draws an RST, which would tear down the GFW's reversed TCB.
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let wire = intang_packet::PacketBuilder::tcp(client_addr(), server_addr(), 40000, 80)
            .flags(TcpFlags::SYN_ACK)
            .seq(1234)
            .ack(5678)
            .build();
        server.on_packet(wire, 0);
        let out = server.poll_transmit();
        assert_eq!(out.len(), 1);
        let ip = Ipv4Packet::new_checked(&out[0][..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.flags().rst());
        assert_eq!(tcp.seq_number(), 5678, "RST seq mirrors the SYN/ACK's ack");
    }

    #[test]
    fn lost_synack_retransmitted_via_timer() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let _ch = client.connect(server_addr(), 80, 0);
        for w in client.poll_transmit() {
            server.on_packet(w, 0);
        }
        let _lost = server.poll_transmit(); // drop the SYN/ACK
        let deadline = server.next_deadline().unwrap();
        server.on_timer(deadline + 1);
        let retx = server.poll_transmit();
        assert_eq!(retx.len(), 1);
        let ip = Ipv4Packet::new_checked(&retx[0][..]).unwrap();
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert_eq!(tcp.flags(), TcpFlags::SYN_ACK);
    }

    #[test]
    fn fragmented_request_reassembled_by_server() {
        let mut client = TcpEndpoint::new(client_addr(), StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(server_addr(), StackProfile::linux_4_4());
        server.listen(80);
        let ch = client.connect(server_addr(), 80, 0);
        pump(&mut client, &mut server, 0);
        let sh = server.take_accepted()[0];

        // Take the data packet the client wants to send and fragment it.
        client.socket(ch).send(b"GET /fragmented HTTP/1.1\r\n\r\n", 1_000);
        let wires = client.poll_transmit();
        assert_eq!(wires.len(), 1);
        let frags = intang_packet::frag::fragment_at(&wires[0], &[16]);
        assert!(frags.len() >= 2);
        for f in frags {
            server.on_packet(f, 1_000);
        }
        assert_eq!(server.socket(sh).recv_drain(), b"GET /fragmented HTTP/1.1\r\n\r\n");
    }
}
