//! Thread-local arena of [`TcpRepr`] segment descriptors.
//!
//! Every outgoing segment used to construct a fresh repr whose
//! `options`/`payload` vectors allocated on first push — tens of
//! allocations per trial across handshake, data, ACK and teardown
//! segments. Reprs now cycle through a per-shard
//! [`intang_packet::arena::Arena`]: [`take_repr`] hands out a repr in
//! exactly the state `TcpRepr::new` would produce (so behavior is
//! unchanged) but with recycled capacity, and the endpoint returns each
//! repr after serializing it to the wire.

use crate::ignore::IgnoreEvent;
use crate::socket::Socket;
use intang_packet::arena::Arena;
use intang_packet::tcp::{TcpFlags, TcpRepr};
use intang_packet::Wire;
use std::cell::RefCell;

thread_local! {
    static REPRS: RefCell<Arena<TcpRepr>> = const { RefCell::new(Arena::new(64)) };
    /// Recycled byte buffers (socket receive/send queues, ignore-log
    /// storage): leased empty, returned cleared — only capacity survives.
    static BYTE_BUFS: RefCell<Arena<Vec<u8>>> = const { RefCell::new(Arena::new(16)) };
    /// Recycled segment queues (`Socket::out`, `unacked`).
    static SEG_QUEUES: RefCell<Arena<Vec<TcpRepr>>> = const { RefCell::new(Arena::new(16)) };
    /// Recycled socket tables (`TcpEndpoint::sockets`).
    static SOCKET_TABLES: RefCell<Arena<Vec<Socket>>> = const { RefCell::new(Arena::new(8)) };
    /// Recycled outgoing-datagram queues (`TcpEndpoint::out`).
    static WIRE_QUEUES: RefCell<Arena<Vec<Wire>>> = const { RefCell::new(Arena::new(8)) };
    /// Recycled ignore-log storage.
    static IGNORE_BUFS: RefCell<Arena<Vec<IgnoreEvent>>> = const { RefCell::new(Arena::new(8)) };
}

/// Lease an empty socket table with recycled capacity.
pub(crate) fn take_socket_table() -> Vec<Socket> {
    SOCKET_TABLES.try_with(|p| p.borrow_mut().take_with(Vec::new)).unwrap_or_default()
}

/// Return a socket table: dropping the sockets here recycles their queues.
pub(crate) fn put_socket_table(mut t: Vec<Socket>) {
    t.clear();
    let _ = SOCKET_TABLES.try_with(|p| p.borrow_mut().put(t));
}

/// Lease an empty outgoing-datagram queue with recycled capacity.
pub(crate) fn take_wire_queue() -> Vec<Wire> {
    WIRE_QUEUES.try_with(|p| p.borrow_mut().take_with(Vec::new)).unwrap_or_default()
}

/// Return an outgoing-datagram queue (wires inside are dropped).
pub(crate) fn put_wire_queue(mut q: Vec<Wire>) {
    q.clear();
    let _ = WIRE_QUEUES.try_with(|p| p.borrow_mut().put(q));
}

/// Lease empty ignore-log storage with recycled capacity.
pub(crate) fn take_ignore_buf() -> Vec<IgnoreEvent> {
    IGNORE_BUFS.try_with(|p| p.borrow_mut().take_with(Vec::new)).unwrap_or_default()
}

/// Return ignore-log storage for recycling.
pub(crate) fn put_ignore_buf(mut b: Vec<IgnoreEvent>) {
    b.clear();
    let _ = IGNORE_BUFS.try_with(|p| p.borrow_mut().put(b));
}

/// Lease an empty byte buffer with recycled capacity.
pub(crate) fn take_bytes() -> Vec<u8> {
    BYTE_BUFS.try_with(|p| p.borrow_mut().take_with(Vec::new)).unwrap_or_default()
}

/// Return a byte buffer for recycling (cleared here).
pub(crate) fn put_bytes(mut b: Vec<u8>) {
    b.clear();
    let _ = BYTE_BUFS.try_with(|p| p.borrow_mut().put(b));
}

/// Lease an empty segment queue with recycled capacity.
pub(crate) fn take_seg_queue() -> Vec<TcpRepr> {
    SEG_QUEUES.try_with(|p| p.borrow_mut().take_with(Vec::new)).unwrap_or_default()
}

/// Return a segment queue: the reprs inside go back to the repr arena,
/// the queue's capacity to the queue arena.
pub(crate) fn put_seg_queue(mut q: Vec<TcpRepr>) {
    for r in q.drain(..) {
        put_repr(r);
    }
    let _ = SEG_QUEUES.try_with(|p| p.borrow_mut().put(q));
}

/// Lease a repr equivalent to `TcpRepr::new(src_port, dst_port)`.
pub(crate) fn take_repr(src_port: u16, dst_port: u16) -> TcpRepr {
    let mut r = REPRS
        .try_with(|p| p.borrow_mut().take_with(|| TcpRepr::new(0, 0)))
        .unwrap_or_else(|_| TcpRepr::new(0, 0));
    r.src_port = src_port;
    r.dst_port = dst_port;
    r.seq = 0;
    r.ack = 0;
    r.flags = TcpFlags::NONE;
    r.window = 65535;
    r.options.clear();
    r.payload.clear();
    r.checksum_override = None;
    r.data_offset_words_override = None;
    r
}

/// Return a repr for recycling (a no-op during thread teardown).
pub(crate) fn put_repr(r: TcpRepr) {
    let _ = REPRS.try_with(|p| p.borrow_mut().put(r));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_repr_matches_a_fresh_one() {
        let mut dirty = take_repr(1, 2);
        dirty.seq = 99;
        dirty.ack = 98;
        dirty.flags = TcpFlags::PSH_ACK;
        dirty.window = 7;
        dirty.options.push(intang_packet::tcp::TcpOption::SackPermitted);
        dirty.payload.extend_from_slice(b"leftover");
        dirty.checksum_override = Some(0xbeef);
        dirty.data_offset_words_override = Some(4);
        put_repr(dirty);
        let clean = take_repr(40000, 80);
        assert_eq!(clean, TcpRepr::new(40000, 80));
    }
}
