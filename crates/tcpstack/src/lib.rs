//! # intang-tcpstack
//!
//! A complete, deterministic TCP endpoint whose packet-disposition behavior
//! is parameterized by a **version profile** modeling the Linux kernels the
//! paper analyzes (§5.3): 4.4, 4.0, 3.14, 2.6.34, 2.4.37 and the pre-3.8
//! behavior referenced in §3.4.
//!
//! The paper's "ignore path" methodology identifies all the points where a
//! server's TCP implementation *ignores* a received packet while the GFW
//! *accepts* it — each such discrepancy is a candidate insertion packet
//! (Table 3). This stack makes every one of those paths explicit: whenever
//! a packet is discarded, an [`ignore::IgnoreEvent`] records which path
//! fired, so tests and the `intang-ignorepath` differential analysis can
//! observe the stack's dispositions directly.
//!
//! Scope notes (in the smoltcp spirit of documenting omissions): no
//! congestion control, no SACK, no delayed ACK, no window scaling — none of
//! which affect the censorship mechanics under study. Retransmission is a
//! plain doubling RTO. Everything else needed by the paper is here:
//! three-way handshakes, the full state machine, in-order and out-of-order
//! reassembly with explicit overlap policies, RFC 5961 challenge ACKs,
//! RFC 2385 MD5 option rejection, PAWS, and version-specific handling of
//! flag-less and ACK-less segments.

pub mod endpoint;
pub mod ignore;
mod pool;
pub mod profile;
pub mod reasm;
pub mod socket;

pub use endpoint::{SocketHandle, TcpEndpoint};
pub use ignore::{IgnoreEvent, IgnoreReason};
pub use profile::{LinuxVersion, RstPolicy, StackProfile, SynInEstablished};
pub use socket::{Socket, TcpState};
