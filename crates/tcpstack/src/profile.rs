//! Version profiles: the knobs that differ across the TCP stacks the paper
//! cross-validates (§5.3) plus the pre-3.8 server oddity from §3.4.

use crate::reasm::SegmentOverlapPolicy;

/// Linux kernel versions studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinuxVersion {
    /// Linux 4.4 — the paper's primary analysis target (Table 3).
    L4_4,
    /// Linux 4.0 — behaves like 4.4 for every path the paper checks.
    L4_0,
    /// Linux 3.14 — silently ignores SYN in ESTABLISHED (no challenge ACK).
    L3_14,
    /// Linux 2.6.34 — accepts data segments without the ACK flag.
    L2_6_34,
    /// Linux 2.4.37 — accepts ACK-less data *and* has no MD5 option check.
    L2_4_37,
    /// "Linux versions prior to 3.8" (§3.4): sometimes accepts data with
    /// no TCP flags at all.
    Pre3_8,
}

impl std::fmt::Display for LinuxVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LinuxVersion::L4_4 => "Linux 4.4",
            LinuxVersion::L4_0 => "Linux 4.0",
            LinuxVersion::L3_14 => "Linux 3.14",
            LinuxVersion::L2_6_34 => "Linux 2.6.34",
            LinuxVersion::L2_4_37 => "Linux 2.4.37",
            LinuxVersion::Pre3_8 => "Linux <3.8",
        })
    }
}

/// How RST segments are validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RstPolicy {
    /// RFC 5961: only an RST whose sequence number equals `rcv_nxt` resets;
    /// an in-window (but inexact) RST elicits a challenge ACK.
    Rfc5961,
    /// Classic RFC 793: any in-window RST resets the connection.
    InWindow,
}

/// What happens when a SYN arrives on an ESTABLISHED connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynInEstablished {
    /// Linux ≥4.4 / RFC 5961: never accept; reply with a challenge ACK.
    ChallengeAck,
    /// Linux 3.14: silently ignore.
    Ignore,
    /// Old RFC 793 behavior: an in-window SYN resets the connection —
    /// the hazard §5.2 warns about for the Resync+Desync SYN insertion.
    Reset,
}

/// All behavior knobs for one TCP stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackProfile {
    pub version: LinuxVersion,
    /// Validate the TCP checksum (every real stack does; middleboxes and
    /// the GFW may not).
    pub validate_checksum: bool,
    /// Drop datagrams whose IP total length exceeds the received bytes.
    pub validate_ip_total_len: bool,
    /// Reject segments carrying an unsolicited RFC 2385 MD5 option.
    pub md5_check: bool,
    /// Enforce PAWS (reject segments with timestamps older than the last
    /// validated one).
    pub paws: bool,
    /// Require the ACK flag on data segments in ESTABLISHED.
    pub require_ack_flag: bool,
    /// Accept data segments with *no* flags at all (pre-3.8 oddity).
    pub accept_no_flag_data: bool,
    /// Ignore segments whose ACK number is outside the acceptable range.
    pub validate_ack_number: bool,
    pub rst_policy: RstPolicy,
    pub syn_in_established: SynInEstablished,
    /// How overlapping TCP segment bytes are merged on reassembly.
    pub overlap_policy: SegmentOverlapPolicy,
    /// Advertised and honored maximum segment size.
    pub mss: usize,
}

impl StackProfile {
    /// Linux 4.4: the Table 3 reference stack.
    pub fn linux_4_4() -> StackProfile {
        StackProfile {
            version: LinuxVersion::L4_4,
            validate_checksum: true,
            validate_ip_total_len: true,
            md5_check: true,
            paws: true,
            require_ack_flag: true,
            accept_no_flag_data: false,
            validate_ack_number: true,
            rst_policy: RstPolicy::Rfc5961,
            syn_in_established: SynInEstablished::ChallengeAck,
            overlap_policy: SegmentOverlapPolicy::FirstWins,
            mss: 1460,
        }
    }

    /// Linux 4.0: identical dispositions to 4.4 in the paper's checks.
    pub fn linux_4_0() -> StackProfile {
        StackProfile {
            version: LinuxVersion::L4_0,
            ..StackProfile::linux_4_4()
        }
    }

    /// Linux 3.14: SYN in ESTABLISHED silently ignored (§5.3).
    pub fn linux_3_14() -> StackProfile {
        StackProfile {
            version: LinuxVersion::L3_14,
            syn_in_established: SynInEstablished::Ignore,
            ..StackProfile::linux_4_4()
        }
    }

    /// Linux 2.6.34: data without ACK flag is *accepted* (§5.3), so the
    /// no-ACK insertion packet fails against it.
    pub fn linux_2_6_34() -> StackProfile {
        StackProfile {
            version: LinuxVersion::L2_6_34,
            require_ack_flag: false,
            rst_policy: RstPolicy::InWindow,
            syn_in_established: SynInEstablished::Reset,
            ..StackProfile::linux_4_4()
        }
    }

    /// Linux 2.4.37: additionally has no MD5 option check (§5.3).
    pub fn linux_2_4_37() -> StackProfile {
        StackProfile {
            version: LinuxVersion::L2_4_37,
            require_ack_flag: false,
            md5_check: false,
            rst_policy: RstPolicy::InWindow,
            syn_in_established: SynInEstablished::Reset,
            ..StackProfile::linux_4_4()
        }
    }

    /// "Prior to 3.8" (§3.4): sometimes accepts a data packet carrying no
    /// TCP flags, defeating the no-flag insertion packet.
    pub fn linux_pre_3_8() -> StackProfile {
        StackProfile {
            version: LinuxVersion::Pre3_8,
            accept_no_flag_data: true,
            require_ack_flag: false,
            rst_policy: RstPolicy::InWindow,
            syn_in_established: SynInEstablished::Reset,
            ..StackProfile::linux_4_4()
        }
    }

    /// All profiles, for cross-validation sweeps.
    pub fn all() -> Vec<StackProfile> {
        vec![
            StackProfile::linux_4_4(),
            StackProfile::linux_4_0(),
            StackProfile::linux_3_14(),
            StackProfile::linux_2_6_34(),
            StackProfile::linux_2_4_37(),
            StackProfile::linux_pre_3_8(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_differences_match_section_5_3() {
        let v44 = StackProfile::linux_4_4();
        let v40 = StackProfile::linux_4_0();
        let v314 = StackProfile::linux_3_14();
        let v2634 = StackProfile::linux_2_6_34();
        let v2437 = StackProfile::linux_2_4_37();

        // 4.0 differs from 4.4 only in its label.
        assert_eq!(
            StackProfile {
                version: v44.version,
                ..v40
            },
            v44
        );
        // 3.14 ignores SYN in ESTABLISHED instead of challenge-ACKing.
        assert_eq!(v314.syn_in_established, SynInEstablished::Ignore);
        assert_eq!(v44.syn_in_established, SynInEstablished::ChallengeAck);
        // 2.6.34 and 2.4.37 accept ACK-less data.
        assert!(!v2634.require_ack_flag);
        assert!(!v2437.require_ack_flag);
        assert!(v44.require_ack_flag);
        // Only 2.4.37 lacks the MD5 check.
        assert!(!v2437.md5_check);
        assert!(v2634.md5_check);
    }

    #[test]
    fn all_returns_six_distinct_versions() {
        let all = StackProfile::all();
        assert_eq!(all.len(), 6);
        let mut versions: Vec<_> = all.iter().map(|p| p.version).collect();
        versions.dedup();
        assert_eq!(versions.len(), 6);
    }
}
