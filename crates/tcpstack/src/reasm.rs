//! TCP receive-side reassembly with explicit overlap semantics.
//!
//! The in-order and out-of-order data-overlapping evasion strategies (§3.2)
//! hinge on *who wins* when two segments cover the same sequence range:
//! the GFW prefers one copy, the server another. [`SegmentOverlapPolicy`]
//! makes that choice a first-class parameter shared by the server stack and
//! the censor model.

use std::collections::BTreeMap;

/// Who wins when segment bytes overlap already-buffered bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOverlapPolicy {
    /// Bytes already received are kept; later overlaps are discarded.
    /// This is what in-order delivery on real servers amounts to: once a
    /// byte is consumed it can never be replaced.
    FirstWins,
    /// Later segments overwrite buffered (not yet consumed) bytes.
    /// Khattak et al. report the GFW preferring the *latter* of two
    /// out-of-order TCP segments with the same sequence and length.
    LastWins,
}

/// Sequence-space reassembly buffer.
///
/// Tracks data relative to the initial receive sequence. Contiguous bytes
/// at the head are drained with [`Assembler::pull`]; out-of-order segments
/// wait in a sparse map.
#[derive(Debug)]
pub struct Assembler {
    policy: SegmentOverlapPolicy,
    /// Next absolute offset (relative units) expected by the consumer.
    head: u64,
    /// Sparse buffered ranges: start offset -> bytes. Non-overlapping after
    /// normalization.
    segments: BTreeMap<u64, Vec<u8>>,
    /// Hard cap on buffered bytes (receive window worth of data).
    capacity: usize,
    /// Simcheck enablement, cached at construction.
    simcheck: bool,
    /// Highest head ever observed (simcheck: the head must never regress).
    max_head: u64,
}

impl Assembler {
    pub fn new(policy: SegmentOverlapPolicy) -> Assembler {
        Assembler {
            policy,
            head: 0,
            segments: BTreeMap::new(),
            capacity: 256 * 1024,
            simcheck: intang_simcheck::enabled(),
            max_head: 0,
        }
    }

    /// Total bytes currently buffered (not yet pulled).
    pub fn buffered(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// Next offset the consumer will read.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Insert `data` at absolute offset `offset` (relative sequence units).
    /// Bytes before `head` are trimmed (already consumed — FirstWins is
    /// structural there). Returns how many new bytes were stored.
    pub fn insert(&mut self, mut offset: u64, mut data: &[u8]) -> usize {
        // Trim anything already consumed.
        if offset < self.head {
            let skip = (self.head - offset) as usize;
            if skip >= data.len() {
                return 0;
            }
            data = &data[skip..];
            offset = self.head;
        }
        if data.is_empty() || self.buffered() >= self.capacity {
            return 0;
        }
        let mut stored = 0usize;
        let end = offset + data.len() as u64;

        // Work byte-range by byte-range against existing segments.
        // Collect the existing ranges that intersect [offset, end).
        let intersecting: Vec<u64> = self
            .segments
            .range(..end)
            .filter(|(s, seg)| **s + seg.len() as u64 > offset)
            .map(|(s, _)| *s)
            .collect();

        match self.policy {
            SegmentOverlapPolicy::FirstWins => {
                // Fill only the holes.
                let mut cursor = offset;
                for s in intersecting {
                    let seg_len = self.segments[&s].len() as u64;
                    if s > cursor {
                        let hole_end = s.min(end);
                        if cursor < hole_end {
                            let slice = &data[(cursor - offset) as usize..(hole_end - offset) as usize];
                            self.segments.insert(cursor, slice.to_vec());
                            stored += slice.len();
                        }
                    }
                    cursor = cursor.max(s + seg_len);
                }
                if cursor < end {
                    let slice = &data[(cursor - offset) as usize..];
                    self.segments.insert(cursor, slice.to_vec());
                    stored += slice.len();
                }
            }
            SegmentOverlapPolicy::LastWins => {
                // Punch out the overlap from existing segments, then insert.
                for s in intersecting {
                    let seg = self.segments.remove(&s).expect("key just observed");
                    let seg_end = s + seg.len() as u64;
                    // Left remainder (before `offset`).
                    if s < offset {
                        self.segments.insert(s, seg[..(offset - s) as usize].to_vec());
                    }
                    // Right remainder (after `end`).
                    if seg_end > end {
                        self.segments.insert(end, seg[(end - s) as usize..].to_vec());
                    }
                }
                self.segments.insert(offset, data.to_vec());
                stored += data.len();
            }
        }
        // A single buffered segment has nothing to merge with; skipping
        // normalization keeps the common in-order case allocation-light.
        if self.segments.len() > 1 {
            self.normalize();
        }
        if self.simcheck {
            self.validate("insert");
        }
        stored
    }

    /// Merge adjacent segments so ranges stay canonical.
    fn normalize(&mut self) {
        let keys: Vec<u64> = self.segments.keys().copied().collect();
        for k in keys {
            let Some(seg) = self.segments.get(&k) else { continue };
            let end = k + seg.len() as u64;
            if let Some(next) = self.segments.get(&end).cloned() {
                self.segments.remove(&end);
                self.segments.get_mut(&k).expect("still present").extend_from_slice(&next);
            }
        }
    }

    /// Drain all contiguous bytes at the head.
    pub fn pull(&mut self) -> Vec<u8> {
        let mut out = Vec::new();
        self.pull_into(&mut out);
        out
    }

    /// [`Assembler::pull`], appending into a caller-owned buffer — the
    /// allocation-free path for consumers that keep a receive buffer.
    /// Returns the number of bytes pulled.
    pub fn pull_into(&mut self, out: &mut Vec<u8>) -> usize {
        let before = out.len();
        while let Some(seg) = self.segments.remove(&self.head) {
            self.head += seg.len() as u64;
            out.extend_from_slice(&seg);
        }
        if self.simcheck {
            self.validate("pull");
        }
        out.len() - before
    }

    /// Simcheck: the head never regresses, buffered segments are non-empty
    /// and mutually disjoint, and nothing is buffered behind the head.
    /// Only called when checking was enabled at construction.
    fn validate(&mut self, op: &str) {
        if self.head < self.max_head {
            let (head, max) = (self.head, self.max_head);
            intang_simcheck::report(intang_simcheck::Family::Reassembly, || {
                format!("{op}: head regressed from {max} to {head}")
            });
        }
        self.max_head = self.max_head.max(self.head);
        let mut prev_end = self.head;
        for (&start, seg) in &self.segments {
            if seg.is_empty() || start < prev_end {
                let head = self.head;
                intang_simcheck::report(intang_simcheck::Family::Reassembly, || {
                    format!(
                        "{op}: segment [{start}, {}) overlaps previous end {prev_end} \
                         (head {head})",
                        start + seg.len() as u64
                    )
                });
            }
            prev_end = prev_end.max(start + seg.len() as u64);
        }
    }

    /// Test-only: regress the head so self-tests can prove the
    /// reassembly invariant check fires.
    #[doc(hidden)]
    pub fn force_head_for_test(&mut self, head: u64) {
        self.head = head;
    }

    /// True when out-of-order data is waiting beyond the head.
    pub fn has_gaps(&self) -> bool {
        !self.segments.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream() {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        a.insert(0, b"hello ");
        a.insert(6, b"world");
        assert_eq!(a.pull(), b"hello world");
        assert_eq!(a.head(), 11);
        assert!(!a.has_gaps());
    }

    #[test]
    fn out_of_order_waits_for_gap() {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        a.insert(6, b"world");
        assert_eq!(a.pull(), b"");
        assert!(a.has_gaps());
        a.insert(0, b"hello ");
        assert_eq!(a.pull(), b"hello world");
    }

    #[test]
    fn first_wins_keeps_earlier_overlap() {
        // The GFW prefill: junk arrives first at [0,4), then real data.
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        a.insert(0, b"JUNK");
        a.insert(0, b"real");
        assert_eq!(a.pull(), b"JUNK");
    }

    #[test]
    fn last_wins_overwrites() {
        let mut a = Assembler::new(SegmentOverlapPolicy::LastWins);
        a.insert(0, b"JUNK");
        a.insert(0, b"real");
        assert_eq!(a.pull(), b"real");
    }

    #[test]
    fn partial_overlap_first_wins_fills_holes_only() {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        a.insert(2, b"CD");
        a.insert(0, b"abcdef");
        assert_eq!(a.pull(), b"abCDef");
    }

    #[test]
    fn partial_overlap_last_wins_splits_existing() {
        let mut a = Assembler::new(SegmentOverlapPolicy::LastWins);
        a.insert(0, b"abcdef");
        a.insert(2, b"CD");
        assert_eq!(a.pull(), b"abCDef");
    }

    #[test]
    fn bytes_before_head_are_immutable() {
        // Once consumed, a retransmission cannot rewrite history even under
        // LastWins — this is what makes the *in-order* prefill strategy
        // work against real servers only via insertion discrepancies.
        let mut a = Assembler::new(SegmentOverlapPolicy::LastWins);
        a.insert(0, b"GET /");
        assert_eq!(a.pull(), b"GET /");
        a.insert(0, b"XXXXX");
        assert_eq!(a.pull(), b"");
        assert_eq!(a.head(), 5);
    }

    #[test]
    fn straddling_head_is_trimmed() {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        a.insert(0, b"abc");
        assert_eq!(a.pull(), b"abc");
        a.insert(1, b"bcdef");
        assert_eq!(a.pull(), b"def");
    }

    #[test]
    fn capacity_bound_respected() {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        let big = vec![0u8; 300 * 1024];
        let stored = a.insert(1, &big); // offset 1 so nothing can be pulled
        assert!(stored <= 300 * 1024);
        let more = a.insert(400 * 1024, b"x");
        assert_eq!(more, 0, "capacity reached");
    }
}
