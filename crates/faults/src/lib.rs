//! # intang-faults
//!
//! Seeded, deterministic fault injection for the YSINM reproduction.
//!
//! The paper's numbers were measured over noisy real Internet paths against
//! a censor that behaves inconsistently across time and vantage point
//! (Ensafi et al.: probabilistic, spatially non-uniform RST injection;
//! Winter & Lindskog: timing-variable active probing). This crate turns a
//! scenario seed into a [`FaultPlan`] — a concrete realization of that
//! noise for one trial:
//!
//! * per-link faults ([`intang_netsim::LinkFaults`]): Gilbert–Elliott loss
//!   bursts, reordering, duplication, latency jitter, MTU clamps;
//! * mid-trial **route flaps** that change a link's hop count (and thereby
//!   the TTL distance INTANG measured);
//! * censor-side **chaos** mapped onto `GfwConfig`'s `chaos_*` knobs;
//! * middlebox profile perturbation;
//! * the client **robustness** responses the engine should enable.
//!
//! Determinism contract: `FaultPlan::derive(cfg, trial_seed)` is a pure
//! function of its arguments. The trial seed already encodes (master seed,
//! vantage point, site, trial index), so a sweep re-run at any worker count
//! replays byte-identical plans — and `derive` returns `None` for a
//! zero-intensity config without consuming any randomness, keeping
//! fault-free runs byte-identical to pre-fault builds.

use intang_netsim::{Duration, GilbertElliott, Instant, LinkFaults, SimRng};

/// Sweep-level fault configuration: one master `intensity` in `[0, 1]`
/// plus per-category relative weights. All categories scale linearly with
/// intensity; an intensity of 0 disables the layer entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Master fault intensity in `[0, 1]`; 0.0 is an exact no-op.
    pub intensity: f64,
    /// Relative weight of link-level faults (loss bursts, reorder, dup,
    /// jitter, MTU clamps).
    pub link_weight: f64,
    /// Relative weight of mid-trial route flaps.
    pub route_weight: f64,
    /// Relative weight of censor chaos (injection rates, blacklist jitter,
    /// device flapping).
    pub censor_weight: f64,
    /// Relative weight of middlebox profile perturbation.
    pub middlebox_weight: f64,
}

impl FaultConfig {
    /// The default: no faults at all.
    pub fn off() -> FaultConfig {
        FaultConfig {
            intensity: 0.0,
            link_weight: 1.0,
            route_weight: 1.0,
            censor_weight: 1.0,
            middlebox_weight: 1.0,
        }
    }

    /// All categories scaled by one master intensity.
    pub fn at_intensity(intensity: f64) -> FaultConfig {
        FaultConfig {
            intensity,
            ..FaultConfig::off()
        }
    }

    pub fn enabled(&self) -> bool {
        self.intensity > 0.0
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::off()
    }
}

/// One mid-trial route change: at `at`, the chosen link's hop count moves
/// by `delta` (shrinking or growing the path), invalidating previously
/// measured TTL distances (§3.4: "routes are dynamic and could change
/// unexpectedly").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteFlap {
    pub at: Instant,
    /// Flap the link before the censor tap (client side) rather than the
    /// server-side link.
    pub pre_censor: bool,
    /// Hop-count change magnitude.
    pub delta: u8,
    /// Shrink the path instead of growing it.
    pub shrink: bool,
}

/// Censor-side chaos for one trial, mapped onto `GfwConfig::chaos_*`.
#[derive(Debug, Clone, PartialEq)]
pub struct CensorChaos {
    /// Probability an injection volley actually fires (1.0 = no chaos).
    pub rst_inject_prob: f64,
    /// Fractional blacklist-duration jitter (0.0 = none).
    pub blacklist_jitter: f64,
    /// Per-volley device flap probability (0.0 = none).
    pub device_flap_prob: f64,
}

impl CensorChaos {
    pub fn none() -> CensorChaos {
        CensorChaos {
            rst_inject_prob: 1.0,
            blacklist_jitter: 0.0,
            device_flap_prob: 0.0,
        }
    }
}

/// Client-engine robustness knobs a fault run enables (mirrors
/// `intang_core::RobustnessConfig`, re-declared here because the core
/// crate does not depend on this one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRobustness {
    pub reprotect_syn: bool,
    pub max_reprotects: u32,
    pub backoff: Duration,
    pub reprobe_on_reset: bool,
}

impl Default for ClientRobustness {
    fn default() -> ClientRobustness {
        ClientRobustness {
            reprotect_syn: true,
            max_reprotects: 4,
            backoff: Duration::from_millis(15),
            reprobe_on_reset: true,
        }
    }
}

/// The realized fault schedule for ONE trial: which links hurt and how,
/// when routes flap, how the censor misbehaves, and which robustness
/// responses the client engine turns on.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Faults on the client's access link.
    pub access: LinkFaults,
    /// Faults on the long-haul (censored) core link.
    pub core: LinkFaults,
    /// Faults on the server-side link.
    pub server: LinkFaults,
    /// Mid-trial route flaps, sorted by time.
    pub route_flaps: Vec<RouteFlap>,
    pub censor: CensorChaos,
    /// Perturbed `drop_no_flag` probability for the mid-path field filter,
    /// if the plan perturbs the middlebox profile at all.
    pub midpath_drop_no_flag: Option<f64>,
    pub client: ClientRobustness,
}

impl FaultPlan {
    /// Realize a plan from a per-trial seed. Pure: same `(cfg, seed)` →
    /// byte-identical plan, regardless of worker count or call order.
    /// Returns `None` (drawing no randomness) when faults are disabled.
    pub fn derive(cfg: &FaultConfig, trial_seed: u64) -> Option<FaultPlan> {
        if !cfg.enabled() {
            return None;
        }
        // Decorrelate the plan stream from the trial's own RNG stream.
        let mut rng = SimRng::seed_from(trial_seed ^ 0xFA17_5EED_C0FF_EE42);
        let li = (cfg.intensity * cfg.link_weight).clamp(0.0, 1.0);
        let ri = (cfg.intensity * cfg.route_weight).clamp(0.0, 1.0);
        let ci = (cfg.intensity * cfg.censor_weight).clamp(0.0, 1.0);
        let mi = (cfg.intensity * cfg.middlebox_weight).clamp(0.0, 1.0);

        Some(FaultPlan {
            access: access_faults(&mut rng, li),
            core: core_faults(&mut rng, li),
            server: server_faults(&mut rng, li),
            route_flaps: route_flaps(&mut rng, ri),
            censor: censor_chaos(&mut rng, ci),
            midpath_drop_no_flag: midpath_perturbation(&mut rng, mi),
            client: ClientRobustness::default(),
        })
    }

    /// True when every component of the plan is a no-op (possible at very
    /// low intensities — the draws all came up empty).
    pub fn is_inert(&self) -> bool {
        self.access.is_inert()
            && self.core.is_inert()
            && self.server.is_inert()
            && self.route_flaps.is_empty()
            && self.censor == CensorChaos::none()
            && self.midpath_drop_no_flag.is_none()
    }

    /// Candidate one-component simplifications of this plan, used by the
    /// simcheck shrinker to minimize a violating trial: each entry is the
    /// plan with exactly one component neutralized, labeled by what was
    /// dropped. Components that are already inert produce no candidate.
    pub fn shrink_candidates(&self) -> Vec<(&'static str, FaultPlan)> {
        let mut out = Vec::new();
        if !self.access.is_inert() {
            out.push((
                "access-link-faults",
                FaultPlan {
                    access: LinkFaults::default(),
                    ..self.clone()
                },
            ));
        }
        if !self.core.is_inert() {
            out.push((
                "core-link-faults",
                FaultPlan {
                    core: LinkFaults::default(),
                    ..self.clone()
                },
            ));
        }
        if !self.server.is_inert() {
            out.push((
                "server-link-faults",
                FaultPlan {
                    server: LinkFaults::default(),
                    ..self.clone()
                },
            ));
        }
        if !self.route_flaps.is_empty() {
            out.push((
                "route-flaps",
                FaultPlan {
                    route_flaps: Vec::new(),
                    ..self.clone()
                },
            ));
        }
        if self.censor != CensorChaos::none() {
            out.push((
                "censor-chaos",
                FaultPlan {
                    censor: CensorChaos::none(),
                    ..self.clone()
                },
            ));
        }
        if self.midpath_drop_no_flag.is_some() {
            out.push((
                "midpath-perturbation",
                FaultPlan {
                    midpath_drop_no_flag: None,
                    ..self.clone()
                },
            ));
        }
        out
    }
}

/// Uniform fraction in `[0, 1]` used to spread fault parameters.
fn frac(rng: &mut SimRng) -> f64 {
    rng.range_u64(0, 1_000_001) as f64 / 1_000_000.0
}

/// Access links sit inside the client's ISP: short, mostly clean. Jitter
/// only.
fn access_faults(rng: &mut SimRng, li: f64) -> LinkFaults {
    let mut f = LinkFaults::default();
    if li > 0.0 && rng.chance(0.5 * li) {
        f.jitter = Duration::from_micros(100 + (1_900.0 * li * frac(rng)) as u64);
    }
    f
}

/// The long-haul core link takes the brunt: burst loss, reordering,
/// duplication, jitter, and (rarely) a path-MTU clamp.
fn core_faults(rng: &mut SimRng, li: f64) -> LinkFaults {
    let mut f = LinkFaults::default();
    if li <= 0.0 {
        return f;
    }
    if rng.chance(0.85 * li) {
        // loss_good starts at 0; the trial builder folds in the link's own
        // residual loss so the burst channel never *reduces* natural loss.
        let p_enter = 0.01 + 0.05 * li * frac(rng);
        let p_exit = 0.25 + 0.25 * frac(rng);
        let loss_bad = 0.35 + 0.45 * li;
        f.burst = Some(GilbertElliott::new(p_enter, p_exit, 0.0, loss_bad));
    }
    if rng.chance(0.6 * li) {
        f.reorder_prob = 0.05 + 0.25 * li * frac(rng);
        f.reorder_delay = Duration::from_micros(2_000 + (10_000.0 * frac(rng)) as u64);
    }
    if rng.chance(0.5 * li) {
        f.dup_prob = 0.03 + 0.12 * li * frac(rng);
    }
    if rng.chance(0.7 * li) {
        f.jitter = Duration::from_micros((4_000.0 * li * frac(rng)) as u64 + 1);
    }
    if rng.chance(0.08 * li) {
        // Catastrophic but rare: full-size segments silently die; the trial
        // fails silently and the §5 diagnosis calls it middlebox
        // interference (which is what a real clamping hop looks like).
        f.mtu = Some(1_200);
    }
    f
}

/// Server-side links: milder burst loss and jitter.
fn server_faults(rng: &mut SimRng, li: f64) -> LinkFaults {
    let mut f = LinkFaults::default();
    if li <= 0.0 {
        return f;
    }
    if rng.chance(0.4 * li) {
        let p_enter = 0.005 + 0.03 * li * frac(rng);
        f.burst = Some(GilbertElliott::new(p_enter, 0.4, 0.0, 0.25 + 0.35 * li));
    }
    if rng.chance(0.5 * li) {
        f.jitter = Duration::from_micros((2_000.0 * li * frac(rng)) as u64 + 1);
    }
    f
}

fn route_flaps(rng: &mut SimRng, ri: f64) -> Vec<RouteFlap> {
    let mut flaps = Vec::new();
    if ri > 0.0 && rng.chance((0.7 * ri).min(1.0)) {
        let n = 1 + usize::from(rng.chance(0.35 * ri));
        for _ in 0..n {
            flaps.push(RouteFlap {
                // After the handshake window, well before the trial deadline.
                at: Instant(rng.range_u64(200_000, 2_500_000)),
                pre_censor: rng.chance(0.5),
                delta: 1 + (rng.next_u32() % 3) as u8,
                shrink: rng.chance(0.5),
            });
        }
        flaps.sort_by_key(|f| f.at);
    }
    flaps
}

fn censor_chaos(rng: &mut SimRng, ci: f64) -> CensorChaos {
    if ci <= 0.0 {
        return CensorChaos::none();
    }
    CensorChaos {
        // Ensafi et al.: reset injection rates vary by vantage point; at
        // full intensity a trial can see as little as ~45 % of volleys.
        rst_inject_prob: 1.0 - 0.55 * ci * frac(rng),
        blacklist_jitter: 0.4 * ci * frac(rng),
        device_flap_prob: 0.20 * ci * frac(rng),
    }
}

fn midpath_perturbation(rng: &mut SimRng, mi: f64) -> Option<f64> {
    if mi > 0.0 && rng.chance(0.35 * mi) {
        Some(0.3 + 0.5 * frac(rng))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_derives_nothing() {
        assert_eq!(FaultPlan::derive(&FaultConfig::off(), 12345), None);
        assert_eq!(FaultPlan::derive(&FaultConfig::at_intensity(0.0), 1), None);
    }

    #[test]
    fn same_seed_same_plan() {
        let cfg = FaultConfig::at_intensity(0.8);
        for seed in [1u64, 42, 0xdead_beef, u64::MAX] {
            assert_eq!(FaultPlan::derive(&cfg, seed), FaultPlan::derive(&cfg, seed));
        }
        assert_ne!(
            FaultPlan::derive(&cfg, 1),
            FaultPlan::derive(&cfg, 2),
            "different seeds should (almost surely) realize different plans"
        );
    }

    #[test]
    fn zero_weight_categories_stay_inert() {
        let cfg = FaultConfig {
            intensity: 1.0,
            link_weight: 0.0,
            route_weight: 0.0,
            censor_weight: 0.0,
            middlebox_weight: 0.0,
        };
        for seed in 0..50u64 {
            let plan = FaultPlan::derive(&cfg, seed).expect("enabled");
            assert!(plan.is_inert(), "all-zero weights must realize inert plans: {plan:?}");
        }
    }

    #[test]
    fn full_intensity_hits_most_trials() {
        let cfg = FaultConfig::at_intensity(1.0);
        let active = (0..100u64)
            .filter(|&s| !FaultPlan::derive(&cfg, s).expect("enabled").is_inert())
            .count();
        assert!(active > 90, "full intensity should fault nearly every trial, got {active}/100");
    }

    #[test]
    fn route_flaps_are_sorted_and_in_window() {
        let cfg = FaultConfig::at_intensity(1.0);
        for seed in 0..200u64 {
            let plan = FaultPlan::derive(&cfg, seed).expect("enabled");
            let times: Vec<u64> = plan.route_flaps.iter().map(|f| f.at.0).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted);
            for f in &plan.route_flaps {
                assert!((200_000..2_500_000).contains(&f.at.0));
                assert!((1..=3).contains(&f.delta));
            }
        }
    }

    #[test]
    fn censor_chaos_stays_in_probability_range() {
        let cfg = FaultConfig::at_intensity(1.0);
        for seed in 0..200u64 {
            let c = FaultPlan::derive(&cfg, seed).expect("enabled").censor;
            assert!((0.0..=1.0).contains(&c.rst_inject_prob));
            assert!(c.rst_inject_prob >= 0.45 - 1e-9);
            assert!((0.0..=0.4).contains(&c.blacklist_jitter));
            assert!((0.0..=0.2).contains(&c.device_flap_prob));
        }
    }
}
