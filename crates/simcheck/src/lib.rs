//! # intang-simcheck
//!
//! A zero-cost-when-disabled runtime invariant layer for the simulation.
//! The paper's conclusions hang on packet-level fidelity — checksum-valid
//! forged resets (§4), TCB teardown/resync legality (Table 3), in-order
//! reassembly — yet none of those properties were *checked* at runtime
//! before this crate existed. When enabled, every hop through the simulator
//! asserts:
//!
//! - **wire integrity** — IPv4 header and TCP checksums valid on every
//!   emitted packet, with an explicit allow-list for packets that are
//!   *deliberately* corrupt (the bad-checksum insertion discrepancy of
//!   Table 5);
//! - **header-index agreement** — the memoized [`intang_packet::Wire`]
//!   header cache matches a fresh parse of the raw bytes;
//! - **packet conservation** — per-simulation, every transmission ends in
//!   exactly one outcome (delivered, lost, TTL-expired, MTU-dropped, or
//!   off the edge of the world);
//! - **event-queue monotonicity** — simulated time never runs backwards;
//! - **GFW TCB legality** — no DPI hit or resync against a connection
//!   whose TCB was already torn down, no double-create;
//! - **reassembly sanity** — `head()` never regresses and buffered
//!   segments stay disjoint and ahead of the head.
//!
//! Enablement is a process-wide env var (`INTANG_SIMCHECK=1`) or a
//! thread-local override ([`set_thread`]) so that a sweep runner can turn
//! checking on per worker thread without touching the environment.
//! Consumers on hot paths cache [`enabled`] as a `bool` at construction
//! time, so the disabled-mode cost is a single field read per hop.
//!
//! Violations are collected in a capped thread-local sink (no panics, no
//! I/O, no RNG draws — checking must never perturb the simulation) and
//! drained by the sweep runner, which hands them to the shrinker in
//! `intang-experiments` to produce a minimal repro artifact.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::OnceLock;

use intang_packet::{FourTuple, FxHashMap, FxHashSet, IpProtocol, Ipv4Packet, TcpPacket};

/// The invariant families a violation can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// An emitted packet had an invalid IPv4 or TCP checksum that was not
    /// registered as a deliberate bad-checksum insertion.
    WireIntegrity,
    /// A `Wire`'s memoized header index disagreed with a fresh parse.
    HeaderIndex,
    /// Transmission outcome counters failed to reconcile.
    Conservation,
    /// The event queue yielded an event earlier than the current clock.
    TimeMonotonicity,
    /// The censor acted on a TCB that the shadow tracker says is dead.
    TcbLegality,
    /// A reassembly buffer regressed its head or held overlapping segments.
    Reassembly,
    /// A multi-flow run processed one flow's events out of (time, seq)
    /// order, or touched a flow after it retired.
    FlowOrder,
}

impl Family {
    /// Stable snake_case name, used in repro artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Family::WireIntegrity => "wire_integrity",
            Family::HeaderIndex => "header_index",
            Family::Conservation => "conservation",
            Family::TimeMonotonicity => "time_monotonicity",
            Family::TcbLegality => "tcb_legality",
            Family::Reassembly => "reassembly",
            Family::FlowOrder => "flow_order",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub family: Family,
    pub detail: String,
    /// Seed of the trial that was running, if the runner announced one.
    pub trial_seed: Option<u64>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.family, self.detail)
    }
}

/// Why the censor moved a TCB into (or out of) the resync state. The
/// variants mirror the Table 3 trigger list; passing one documents at the
/// call site which paper rule authorized the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncTrigger {
    /// An on-path RST/RST-ACK made the censor doubt its state (Table 3 r1).
    Rst,
    /// A second SYN with a different ISN (Table 3 r2).
    MultipleSyn,
    /// A SYN/ACK disagreeing with the recorded handshake (Table 3 r3).
    SynAckMismatch,
    /// Resync resolved by anchoring on a server SYN/ACK.
    ServerSynAck,
    /// Resync resolved by anchoring on the next client data packet.
    ClientData,
}

impl ResyncTrigger {
    pub fn name(self) -> &'static str {
        match self {
            ResyncTrigger::Rst => "rst",
            ResyncTrigger::MultipleSyn => "multiple_syn",
            ResyncTrigger::SynAckMismatch => "synack_mismatch",
            ResyncTrigger::ServerSynAck => "server_synack",
            ResyncTrigger::ClientData => "client_data",
        }
    }
}

/// Cap on stored violations per thread; past this we count but drop
/// details so a hot loop cannot balloon memory.
const SINK_CAP: usize = 64;
/// Cap on registered expected-bad-checksum packets per trial.
const EXPECT_CAP: usize = 4096;

/// Key identifying a deliberately-corrupt packet in a TTL-invariant way:
/// the bad-checksum discrepancy writes a *constant* checksum field value,
/// and per-hop TTL rewrites touch only the IP header, so
/// (flow, seq, checksum-field) survives the whole path.
type BadKey = (FourTuple, u32, u16);

#[derive(Default)]
struct Sink {
    trial_seed: Option<u64>,
    violations: Vec<Violation>,
    /// Total violations reported since the last drain, including ones
    /// dropped past `SINK_CAP`.
    total: u64,
    expected_bad: FxHashSet<BadKey>,
    /// Test-only corruption hook: when non-zero, the Nth checked TCP
    /// transmission of each trial gets its checksum flipped by the
    /// simulator (see [`corruption_due`]). Sticky across trials so the
    /// shrinker's replays reproduce the fault.
    corrupt_nth: u64,
    transmit_count: u64,
    /// Shadow of live censor TCBs, keyed by (device domain, flow): several
    /// censor devices can sit on one path, each with its own TCB table, so
    /// the flow alone does not identify a TCB.
    tcb_live: FxHashSet<(u64, FourTuple)>,
    /// Domains handed out this trial (deterministic: devices are
    /// constructed in path order, and [`begin_trial`] resets the counter).
    next_domain: u64,
    /// Multi-flow shadow: last (time µs, shard event seq) seen per flow id.
    flow_last: FxHashMap<u64, (u64, u64)>,
    /// Flow ids that already recorded their final outcome.
    flow_retired: FxHashSet<u64>,
}

thread_local! {
    static THREAD_ON: Cell<Option<bool>> = const { Cell::new(None) };
    static SINK: RefCell<Sink> = RefCell::new(Sink::default());
}

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("INTANG_SIMCHECK").map(|v| !v.is_empty() && v != "0").unwrap_or(false))
}

/// Is checking enabled on this thread? Thread-local override first, env
/// var (`INTANG_SIMCHECK=1`) otherwise. Hot paths should cache this at
/// construction time rather than calling it per packet.
pub fn enabled() -> bool {
    THREAD_ON.with(|c| c.get()).unwrap_or_else(env_enabled)
}

/// Override enablement for the current thread (`Some(true)`/`Some(false)`),
/// or fall back to the env var (`None`). Returns the previous override so
/// callers can restore it. Must be called *before* constructing the
/// simulations it should affect — they cache the flag.
pub fn set_thread(on: Option<bool>) -> Option<bool> {
    THREAD_ON.with(|c| c.replace(on))
}

/// Announce the start of a trial: records the seed for violation
/// attribution and resets per-trial state (expected-bad registry, TCB
/// shadow, corruption counter). Does *not* drain recorded violations —
/// use [`take_violations`] for that.
pub fn begin_trial(seed: u64) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.trial_seed = Some(seed);
        s.expected_bad.clear();
        s.tcb_live.clear();
        s.next_domain = 0;
        s.transmit_count = 0;
        s.flow_last.clear();
        s.flow_retired.clear();
    });
}

/// Seed announced by the last [`begin_trial`], if any.
pub fn current_trial_seed() -> Option<u64> {
    SINK.with(|s| s.borrow().trial_seed)
}

/// Record a violation. The detail closure only runs when checking is
/// enabled and the sink has room, so call sites can format lazily.
pub fn report(family: Family, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.total += 1;
        if s.violations.len() < SINK_CAP {
            let seed = s.trial_seed;
            let v = Violation {
                family,
                detail: detail(),
                trial_seed: seed,
            };
            s.violations.push(v);
        }
    });
}

/// Number of violations reported since the last drain (including any
/// dropped past the storage cap).
pub fn violation_total() -> u64 {
    SINK.with(|s| s.borrow().total)
}

/// Drain recorded violations and reset the counter.
pub fn take_violations() -> Vec<Violation> {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.total = 0;
        std::mem::take(&mut s.violations)
    })
}

// ---------------------------------------------------------------------------
// Wire integrity
// ---------------------------------------------------------------------------

fn bad_key(ip: &Ipv4Packet<&[u8]>, tcp: &TcpPacket<&[u8]>) -> BadKey {
    let ft = FourTuple::new(ip.src_addr(), tcp.src_port(), ip.dst_addr(), tcp.dst_port());
    (ft, tcp.seq_number(), tcp.checksum_field())
}

/// Register an emitted packet as *deliberately* checksum-corrupt (the
/// bad-checksum insertion discrepancy), so [`check_wire`] will not flag
/// it. No-op when checking is disabled, so production call sites pay
/// nothing in normal runs.
pub fn expect_bad_checksum(bytes: &[u8]) {
    if !enabled() {
        return;
    }
    let Ok(ip) = Ipv4Packet::new_checked(bytes) else { return };
    if ip.is_fragment() || ip.protocol() != IpProtocol::Tcp {
        return;
    }
    let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
    let key = bad_key(&ip, &tcp);
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        if s.expected_bad.len() < EXPECT_CAP {
            s.expected_bad.insert(key);
        }
    });
}

fn is_expected_bad(ip: &Ipv4Packet<&[u8]>, tcp: &TcpPacket<&[u8]>) -> bool {
    let key = bad_key(ip, tcp);
    SINK.with(|s| s.borrow().expected_bad.contains(&key))
}

/// Verify IPv4 header and TCP checksums of an emitted packet. Fragments
/// are checked for IP header integrity only (their TCP checksum is only
/// meaningful after reassembly); unparseable buffers are skipped — the
/// simulator forwards them as opaque bytes.
pub fn check_wire(bytes: &[u8], context: &str) {
    if !enabled() {
        return;
    }
    let Ok(ip) = Ipv4Packet::new_checked(bytes) else { return };
    if !ip.verify_header_checksum() {
        report(Family::WireIntegrity, || {
            format!("{context}: invalid IPv4 header checksum on {}", intang_packet::summarize(bytes))
        });
    }
    if ip.is_fragment() || ip.protocol() != IpProtocol::Tcp || !ip.total_len_consistent() {
        return;
    }
    let Ok(tcp) = TcpPacket::new_checked(ip.payload()) else { return };
    if !tcp.verify_checksum(ip.src_addr(), ip.dst_addr()) && !is_expected_bad(&ip, &tcp) {
        report(Family::WireIntegrity, || {
            format!(
                "{context}: stale TCP checksum {:#06x} on {}",
                tcp.checksum_field(),
                intang_packet::summarize(bytes)
            )
        });
    }
}

// ---------------------------------------------------------------------------
// Test-only corruption hook
// ---------------------------------------------------------------------------

/// Arm the corruption hook: the `nth` (1-based) TCP transmission checked
/// in each subsequent trial gets its TCP checksum flipped by the
/// simulator *before* the wire-integrity check runs, so the check — and
/// downstream, the shrinker — can be exercised against a known fault.
/// Sticky across [`begin_trial`] calls (the per-trial counter resets, the
/// arming does not) so shrinker replays reproduce it. Test-only.
pub fn arm_corruption(nth: u64) {
    SINK.with(|s| s.borrow_mut().corrupt_nth = nth);
}

/// Disarm the corruption hook.
pub fn disarm_corruption() {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.corrupt_nth = 0;
        s.transmit_count = 0;
    });
}

/// Called by the simulator once per checked TCP transmission (only when
/// checking is enabled); returns true when this is the armed Nth packet
/// of the trial and should be corrupted.
pub fn corruption_due() -> bool {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        if s.corrupt_nth == 0 {
            return false;
        }
        s.transmit_count += 1;
        s.transmit_count == s.corrupt_nth
    })
}

// ---------------------------------------------------------------------------
// GFW TCB legality shadow tracker
// ---------------------------------------------------------------------------

/// Claim a shadow domain for one censor device's TCB table. Devices are
/// constructed in path order before the trial runs, so the ids are
/// deterministic across replays; [`begin_trial`] resets the allocator.
/// Returns 0 when checking is disabled (the hooks no-op then anyway).
pub fn new_tcb_domain() -> u64 {
    if !enabled() {
        return 0;
    }
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.next_domain += 1;
        s.next_domain
    })
}

/// The censor device `domain` created a TCB for this flow. Flags a
/// double-create.
pub fn tcb_created(domain: u64, key: FourTuple) {
    if !enabled() {
        return;
    }
    let key = key.canonical();
    let dup = SINK.with(|s| !s.borrow_mut().tcb_live.insert((domain, key)));
    if dup {
        report(Family::TcbLegality, || {
            format!("duplicate TCB create in device domain {domain} for {key:?}")
        });
    }
}

/// The censor device `domain` removed (tore down or evicted) a TCB. Flags
/// a removal of a TCB the shadow tracker never saw created (or saw removed
/// already).
pub fn tcb_removed(domain: u64, key: FourTuple) {
    if !enabled() {
        return;
    }
    let key = key.canonical();
    let live = SINK.with(|s| s.borrow_mut().tcb_live.remove(&(domain, key)));
    if !live {
        report(Family::TcbLegality, || {
            format!("TCB removed but not live in device domain {domain}: {key:?}")
        });
    }
}

/// The censor device `domain` entered or resolved the resync state for a
/// flow. Legal only while the TCB is live (Table 3 triggers all presuppose
/// a tracked connection).
pub fn tcb_resync(domain: u64, key: FourTuple, trigger: ResyncTrigger) {
    if !enabled() {
        return;
    }
    let key = key.canonical();
    let live = SINK.with(|s| s.borrow().tcb_live.contains(&(domain, key)));
    if !live {
        report(Family::TcbLegality, || {
            format!("resync ({}) on dead TCB {key:?} in device domain {domain}", trigger.name())
        });
    }
}

/// The censor device `domain`'s DPI produced a detection for a flow. A hit
/// after teardown means the censor is acting on state it claims not to
/// have.
pub fn tcb_detection(domain: u64, key: FourTuple) {
    if !enabled() {
        return;
    }
    let key = key.canonical();
    let live = SINK.with(|s| s.borrow().tcb_live.contains(&(domain, key)));
    if !live {
        report(Family::TcbLegality, || {
            format!("DPI hit after TCB teardown in device domain {domain}: {key:?}")
        });
    }
}

// ---------------------------------------------------------------------------
// Multi-flow (metropolis) shadow: per-flow event order + flow conservation
// ---------------------------------------------------------------------------

/// A load-generator flow processed one event at `(at_micros, seq)`, where
/// `seq` is the owning shard's monotonically increasing event counter.
/// Flags (time, seq) going backwards within the flow — the multi-flow
/// extension of event-queue monotonicity — and any event landing on a flow
/// that already retired (acting on dead per-flow state, the flow-level
/// analog of TCB legality).
pub fn flow_event(flow: u64, at_micros: u64, seq: u64) {
    if !enabled() {
        return;
    }
    enum Bad {
        Order((u64, u64)),
        Retired,
    }
    let bad = SINK.with(|s| {
        let mut s = s.borrow_mut();
        if s.flow_retired.contains(&flow) {
            return Some(Bad::Retired);
        }
        match s.flow_last.insert(flow, (at_micros, seq)) {
            Some(prev) if prev > (at_micros, seq) => Some(Bad::Order(prev)),
            _ => None,
        }
    });
    match bad {
        Some(Bad::Order((pt, ps))) => report(Family::FlowOrder, || {
            format!("flow {flow}: event at ({at_micros}µs, seq {seq}) after ({pt}µs, seq {ps})")
        }),
        Some(Bad::Retired) => report(Family::FlowOrder, || {
            format!("flow {flow}: event at ({at_micros}µs, seq {seq}) after the flow retired")
        }),
        None => {}
    }
}

/// A flow recorded its final outcome. Flags a double-retire and a retire
/// of a flow that never processed an event — the per-flow analog of packet
/// conservation: every spawned flow ends in exactly one outcome.
pub fn flow_retired(flow: u64) {
    if !enabled() {
        return;
    }
    enum Bad {
        Double,
        NeverSeen,
    }
    let bad = SINK.with(|s| {
        let mut s = s.borrow_mut();
        if !s.flow_retired.insert(flow) {
            Some(Bad::Double)
        } else if !s.flow_last.contains_key(&flow) {
            Some(Bad::NeverSeen)
        } else {
            None
        }
    });
    match bad {
        Some(Bad::Double) => report(Family::Conservation, || format!("flow {flow}: retired twice")),
        Some(Bad::NeverSeen) => report(Family::Conservation, || {
            format!("flow {flow}: retired without ever processing an event")
        }),
        None => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ft() -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 1234, Ipv4Addr::new(10, 9, 0, 1), 80)
    }

    #[test]
    fn disabled_by_default_and_reporting_is_noop() {
        assert!(!enabled());
        report(Family::WireIntegrity, || unreachable!("detail must not run"));
        assert_eq!(violation_total(), 0);
    }

    #[test]
    fn thread_override_and_sink() {
        let prev = set_thread(Some(true));
        begin_trial(7);
        report(Family::Conservation, || "off by one".into());
        assert_eq!(violation_total(), 1);
        let vs = take_violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].family, Family::Conservation);
        assert_eq!(vs[0].trial_seed, Some(7));
        assert_eq!(violation_total(), 0);
        set_thread(prev);
    }

    #[test]
    fn sink_caps_but_keeps_counting() {
        let prev = set_thread(Some(true));
        take_violations();
        for _ in 0..(SINK_CAP + 10) {
            report(Family::Reassembly, || "x".into());
        }
        assert_eq!(violation_total(), (SINK_CAP + 10) as u64);
        assert_eq!(take_violations().len(), SINK_CAP);
        set_thread(prev);
    }

    #[test]
    fn tcb_shadow_flags_illegal_transitions() {
        let prev = set_thread(Some(true));
        begin_trial(1);
        take_violations();
        let d = new_tcb_domain();
        tcb_created(d, ft());
        tcb_detection(d, ft());
        assert_eq!(violation_total(), 0, "live TCB actions are legal");
        tcb_removed(d, ft());
        tcb_detection(d, ft());
        tcb_resync(d, ft(), ResyncTrigger::Rst);
        tcb_removed(d, ft());
        let vs = take_violations();
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| v.family == Family::TcbLegality));
        set_thread(prev);
    }

    #[test]
    fn tcb_shadow_canonicalizes_direction() {
        let prev = set_thread(Some(true));
        begin_trial(2);
        take_violations();
        let d = new_tcb_domain();
        tcb_created(d, ft());
        tcb_detection(d, ft().reversed());
        assert_eq!(violation_total(), 0);
        tcb_removed(d, ft().reversed());
        assert_eq!(violation_total(), 0);
        set_thread(prev);
    }

    #[test]
    fn tcb_domains_keep_devices_apart() {
        // Two censor devices on one path each track the same flow; the
        // shadow must not call the second create a duplicate.
        let prev = set_thread(Some(true));
        begin_trial(3);
        take_violations();
        let (d1, d2) = (new_tcb_domain(), new_tcb_domain());
        assert_ne!(d1, d2);
        tcb_created(d1, ft());
        tcb_created(d2, ft());
        tcb_removed(d1, ft());
        tcb_detection(d2, ft());
        assert_eq!(violation_total(), 0, "distinct domains never alias");
        tcb_detection(d1, ft());
        assert_eq!(take_violations().len(), 1, "the torn-down domain still flags");
        begin_trial(4);
        assert_eq!(new_tcb_domain(), 1, "begin_trial resets the allocator");
        set_thread(prev);
    }

    #[test]
    fn flow_shadow_orders_and_conserves() {
        let prev = set_thread(Some(true));
        begin_trial(5);
        take_violations();
        // In-order events on two interleaved flows are legal.
        flow_event(1, 100, 1);
        flow_event(2, 100, 2);
        flow_event(1, 100, 3);
        flow_event(1, 250, 4);
        assert_eq!(violation_total(), 0);
        // Same time, smaller shard seq: out of order within the flow.
        flow_event(1, 250, 3);
        let vs = take_violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].family, Family::FlowOrder);
        // One retire is conservation-legal; the second is not, and events
        // after retirement flag too.
        flow_retired(1);
        assert_eq!(violation_total(), 0);
        flow_retired(1);
        flow_event(1, 300, 10);
        let vs = take_violations();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[0].family, Family::Conservation);
        assert_eq!(vs[1].family, Family::FlowOrder);
        // Retiring a flow that never ran violates conservation.
        flow_retired(99);
        assert_eq!(take_violations()[0].family, Family::Conservation);
        set_thread(prev);
    }
}
