//! Packet traces: every arrival, drop, injection and TTL expiry, with
//! timestamps — the raw material for the Fig. 3 / Fig. 4 sequence diagrams
//! and for debugging strategy interactions.
//!
//! Element names are interned once into a per-trace name table; trace
//! records carry a compact [`NameId`] instead of a freshly allocated
//! `String`, so recording is allocation-free on the name side even for
//! million-event runs.
//!
//! Every record also carries a *lineage*: a [`TraceId`] of its own and an
//! optional parent id pointing at the event that caused it. The simulation
//! threads causation through the event queue (an `Emit` is parented on the
//! `Arrive` being processed; the resulting delivery's `Arrive` is parented
//! on the `Emit`; losses and TTL expiries on the emit that put the packet
//! on the link), so a full causal chain — "client SYN → GFW TCB created →
//! insertion RST absorbed" — can be rendered for any single packet with
//! [`Trace::render_lineage`].

use crate::element::Direction;
use crate::time::Instant;
use std::sync::Mutex;

/// Process-wide string pool backing every trace's name table. Element
/// names form a small closed set ("client", "GFW", "INTANG", ...), but a
/// sweep constructs one `Trace` per trial — interning into per-trace
/// `String`s re-allocated that same handful of names thousands of times.
/// Each distinct name is now leaked exactly once per process and shared as
/// a `&'static str` by all traces on all threads.
fn process_interned(name: &str) -> &'static str {
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("name pool poisoned");
    if let Some(&s) = pool.iter().find(|s| ***s == *name) {
        return s;
    }
    let s: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.push(s);
    s
}

/// Interned element name: an index into the trace's name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// Identity of one trace event, assigned sequentially from 1. Ids keep
/// advancing past the event cap so causal references stay coherent even
/// when the referenced event itself was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Where a trace event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// At element `index` named `name` (resolve via [`Trace::name`]).
    Element { index: usize, name: NameId },
    /// Inside the link after element `after` (router hop `hop`).
    Link { after: usize, hop: u8 },
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet arrived at an element.
    Arrive,
    /// Element emitted a packet (forward or inject).
    Emit,
    /// Packet lost on a link.
    Loss,
    /// Packet TTL expired at a router.
    TtlExpired,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// This event's own id (events are stored in ascending id order).
    pub id: TraceId,
    /// The event that caused this one, if causation is known: the `Emit`
    /// behind an `Arrive`/`Loss`/`TtlExpired`, the `Arrive` behind an
    /// `Emit`. `None` for injected bootstrap packets and timer-driven
    /// emissions.
    pub parent: Option<TraceId>,
    pub at: Instant,
    pub point: TracePoint,
    pub kind: TraceKind,
    pub dir: Direction,
    pub summary: String,
}

/// Default bound on stored events (overridable via [`Trace::set_cap`]).
pub const DEFAULT_TRACE_CAP: usize = 100_000;

/// A bounded in-memory trace. Disabled by default (experiments run millions
/// of packets); enable for diagnostics and figure generation.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    cap: usize,
    next_id: u64,
    /// Events that hit the cap and were not stored (they still consumed an
    /// id so lineage references remain valid).
    dropped: u64,
    /// Interned names, id = index. Doubles as the lookup index: the set is
    /// small enough (one entry per distinct element name) that a linear
    /// scan beats a map, and the `&'static str` entries come from the
    /// process-wide pool so interning allocates nothing per trace.
    names: Vec<&'static str>,
}

impl Drop for Trace {
    fn drop(&mut self) {
        // Hand the grown storage to the next trace on this thread (cleared
        // — only capacity is recycled).
        let mut events = std::mem::take(&mut self.events);
        let mut names = std::mem::take(&mut self.names);
        events.clear();
        names.clear();
        let _ = STORAGE_POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            p.0.put(events);
            p.1.put(names);
        });
    }
}

/// The recycled `Trace` storage pair: the event log and the name table.
type TraceStorageArenas = (
    intang_packet::arena::Arena<Vec<TraceEvent>>,
    intang_packet::arena::Arena<Vec<&'static str>>,
);

thread_local! {
    /// Recycled `events`/`names` buffers: sweeps build one `Trace` per
    /// trial and the vectors only ever need to grow, so leasing the grown
    /// capacity removes the per-trial growth allocations.
    static STORAGE_POOL: std::cell::RefCell<TraceStorageArenas> = const {
        std::cell::RefCell::new((
            intang_packet::arena::Arena::new(4),
            intang_packet::arena::Arena::new(4),
        ))
    };
}

impl Trace {
    pub fn new() -> Trace {
        STORAGE_POOL.with(|p| {
            let mut p = p.borrow_mut();
            Trace {
                enabled: false,
                events: p.0.take_with(Vec::new),
                cap: DEFAULT_TRACE_CAP,
                next_id: 0,
                dropped: 0,
                names: p.1.take_with(Vec::new),
            }
        })
    }

    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Change the stored-event bound. Takes effect for future records; does
    /// not discard events already stored.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Events that were recorded past the cap and not stored.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Intern `name`, returning its stable id (idempotent per string).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.lookup(name) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(process_interned(name));
        id
    }

    /// The id a name was interned under, if it has been.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.names.iter().position(|n| *n == name).map(|i| NameId(i as u32))
    }

    /// Resolve an interned id back to the element name.
    pub fn name(&self, id: NameId) -> &str {
        self.names[id.0 as usize]
    }

    /// Record one event with an optional causal parent. Returns the id the
    /// event was assigned, or `None` when the trace is disabled. Events
    /// past the cap still get an id (and count in [`Trace::dropped`]) so
    /// lineage chains queued before overflow stay coherent.
    pub fn record(
        &mut self,
        at: Instant,
        point: TracePoint,
        kind: TraceKind,
        dir: Direction,
        parent: Option<TraceId>,
        summary: String,
    ) -> Option<TraceId> {
        if !self.enabled {
            return None;
        }
        self.next_id += 1;
        let id = TraceId(self.next_id);
        if self.events.len() < self.cap {
            self.events.push(TraceEvent {
                id,
                parent,
                at,
                point,
                kind,
                dir,
                summary,
            });
        } else {
            self.dropped += 1;
        }
        Some(id)
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Look up a stored event by id (binary search; events are stored in
    /// ascending id order). `None` if the id fell past the cap.
    pub fn find(&self, id: TraceId) -> Option<&TraceEvent> {
        self.events.binary_search_by_key(&id, |e| e.id).ok().map(|i| &self.events[i])
    }

    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.next_id = 0;
    }

    fn format_event(&self, e: &TraceEvent) -> String {
        let loc = match &e.point {
            TracePoint::Element { name, .. } => self.name(*name).to_string(),
            TracePoint::Link { after, hop } => format!("link[{}]+{}", after, hop),
        };
        let kind = match e.kind {
            TraceKind::Arrive => "rx",
            TraceKind::Emit => "tx",
            TraceKind::Loss => "LOST",
            TraceKind::TtlExpired => "TTL!",
        };
        let lineage = match e.parent {
            Some(p) => format!("#{}<-#{}", e.id.0, p.0),
            None => format!("#{}", e.id.0),
        };
        format!(
            "{:>12}  {:<12} {:<4} {} {:<10} {}",
            format!("{}", e.at),
            loc,
            kind,
            e.dir,
            lineage,
            e.summary
        )
    }

    /// Render the trace as a textual sequence, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&self.format_event(e));
            out.push('\n');
        }
        if self.dropped > 0 {
            out.push_str(&format!("... {} event(s) dropped at cap {}\n", self.dropped, self.cap));
        }
        out
    }

    /// Render the causal chain ending at `id`, root first — a Fig. 3-style
    /// single-packet storyline. Chain links that fell past the cap are
    /// shown as elided.
    pub fn render_lineage(&self, id: TraceId) -> String {
        let mut chain = Vec::new();
        let mut cursor = Some(id);
        while let Some(cur) = cursor {
            match self.find(cur) {
                Some(e) => {
                    cursor = e.parent;
                    chain.push(Some(e));
                }
                None => {
                    chain.push(None);
                    break;
                }
            }
        }
        let mut out = String::new();
        for (depth, entry) in chain.iter().rev().enumerate() {
            let indent = "  ".repeat(depth);
            match entry {
                Some(e) => out.push_str(&format!("{}{}\n", indent, self.format_event(e))),
                None => out.push_str(&format!("{}(event evicted at cap)\n", indent)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elem(t: &mut Trace, name: &str) -> TracePoint {
        let n = t.intern(name);
        TracePoint::Element {
            index: n.0 as usize,
            name: n,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        let p = elem(&mut t, "x");
        let id = t.record(Instant(1), p, TraceKind::Arrive, Direction::ToServer, None, "p".into());
        assert_eq!(id, None);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = Trace::new();
        let a = t.intern("GFW");
        let b = t.intern("client");
        assert_ne!(a, b);
        assert_eq!(t.intern("GFW"), a);
        assert_eq!(t.lookup("GFW"), Some(a));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.name(a), "GFW");
    }

    #[test]
    fn interning_many_names_stays_consistent() {
        // The HashMap side index must agree with the name table even for
        // name counts where the old linear scan was the bottleneck.
        let mut t = Trace::new();
        let ids: Vec<NameId> = (0..1_000).map(|i| t.intern(&format!("elem{i}"))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(t.name(*id), format!("elem{i}"));
            assert_eq!(t.intern(&format!("elem{i}")), *id);
            assert_eq!(t.lookup(&format!("elem{i}")), Some(*id));
        }
    }

    #[test]
    fn enabled_trace_renders() {
        let mut t = Trace::new();
        t.enable();
        let gfw = t.intern("GFW");
        t.record(
            Instant(1_500),
            TracePoint::Element { index: 2, name: gfw },
            TraceKind::Arrive,
            Direction::ToServer,
            None,
            "SYN".into(),
        );
        t.record(
            Instant(2_000),
            TracePoint::Link { after: 2, hop: 3 },
            TraceKind::TtlExpired,
            Direction::ToServer,
            None,
            "RST ttl=0".into(),
        );
        let s = t.render();
        assert!(s.contains("GFW"));
        assert!(s.contains("TTL!"));
        assert!(s.contains("link[2]+3"));
    }

    #[test]
    fn lineage_chains_render_root_first() {
        let mut t = Trace::new();
        t.enable();
        let c = elem(&mut t, "client");
        let g = elem(&mut t, "GFW");
        let syn = t.record(Instant(0), c, TraceKind::Emit, Direction::ToServer, None, "SYN".into());
        let arrive = t.record(Instant(10), g, TraceKind::Arrive, Direction::ToServer, syn, "SYN".into());
        let rst = t.record(Instant(10), g, TraceKind::Emit, Direction::ToClient, arrive, "RST".into());
        let back = t
            .record(Instant(20), c, TraceKind::Arrive, Direction::ToClient, rst, "RST".into())
            .unwrap();

        assert_eq!(t.find(back).unwrap().parent, rst);
        let lineage = t.render_lineage(back);
        let lines: Vec<&str> = lineage.lines().collect();
        assert_eq!(lines.len(), 4, "{lineage}");
        assert!(lines[0].contains("SYN") && lines[0].contains("#1"), "{lineage}");
        assert!(lines[3].contains("RST") && lines[3].contains("#4<-#3"), "{lineage}");
    }

    #[test]
    fn overflow_counts_drops_and_keeps_ids_coherent() {
        let mut t = Trace::new();
        t.enable();
        t.set_cap(2);
        let p = elem(&mut t, "x");
        let a = t.record(Instant(0), p, TraceKind::Emit, Direction::ToServer, None, "a".into());
        let b = t.record(Instant(1), p, TraceKind::Emit, Direction::ToServer, a, "b".into());
        // Past the cap: not stored, but still identified and counted.
        let c = t.record(Instant(2), p, TraceKind::Emit, Direction::ToServer, b, "c".into());
        let d = t.record(Instant(3), p, TraceKind::Emit, Direction::ToServer, c, "d".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(c, Some(TraceId(3)));
        assert_eq!(d, Some(TraceId(4)));
        assert!(t.find(TraceId(3)).is_none());
        assert!(t.render().contains("2 event(s) dropped"));
        // Lineage through an evicted link reports the gap instead of lying.
        let lineage = t.render_lineage(TraceId(4));
        assert!(lineage.contains("evicted"), "id 4 itself was evicted: {lineage}");
        let lineage_b = t.render_lineage(b.unwrap());
        assert!(lineage_b.contains('a') && lineage_b.contains('b'));
    }

    #[test]
    fn clear_resets_ids_and_drop_counter() {
        let mut t = Trace::new();
        t.enable();
        t.set_cap(1);
        let p = elem(&mut t, "x");
        t.record(Instant(0), p, TraceKind::Emit, Direction::ToServer, None, "a".into());
        t.record(Instant(1), p, TraceKind::Emit, Direction::ToServer, None, "b".into());
        assert_eq!(t.dropped(), 1);
        t.clear();
        assert_eq!(t.dropped(), 0);
        let id = t.record(Instant(2), p, TraceKind::Emit, Direction::ToServer, None, "c".into());
        assert_eq!(id, Some(TraceId(1)), "ids restart after clear");
    }
}
