//! Packet traces: every arrival, drop, injection and TTL expiry, with
//! timestamps — the raw material for the Fig. 3 / Fig. 4 sequence diagrams
//! and for debugging strategy interactions.
//!
//! Element names are interned once into a per-trace name table; trace
//! records carry a compact [`NameId`] instead of a freshly allocated
//! `String`, so recording is allocation-free on the name side even for
//! million-event runs.

use crate::element::Direction;
use crate::time::Instant;

/// Interned element name: an index into the trace's name table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// Where a trace event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePoint {
    /// At element `index` named `name` (resolve via [`Trace::name`]).
    Element { index: usize, name: NameId },
    /// Inside the link after element `after` (router hop `hop`).
    Link { after: usize, hop: u8 },
}

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Packet arrived at an element.
    Arrive,
    /// Element emitted a packet (forward or inject).
    Emit,
    /// Packet lost on a link.
    Loss,
    /// Packet TTL expired at a router.
    TtlExpired,
}

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub at: Instant,
    pub point: TracePoint,
    pub kind: TraceKind,
    pub dir: Direction,
    pub summary: String,
}

/// A bounded in-memory trace. Disabled by default (experiments run millions
/// of packets); enable for diagnostics and figure generation.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    cap: usize,
    names: Vec<String>,
}

impl Trace {
    pub fn new() -> Trace {
        Trace { enabled: false, events: Vec::new(), cap: 100_000, names: Vec::new() }
    }

    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Intern `name`, returning its stable id (idempotent per string).
    pub fn intern(&mut self, name: &str) -> NameId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return NameId(i as u32);
        }
        self.names.push(name.to_string());
        NameId((self.names.len() - 1) as u32)
    }

    /// The id a name was interned under, if it has been.
    pub fn lookup(&self, name: &str) -> Option<NameId> {
        self.names.iter().position(|n| n == name).map(|i| NameId(i as u32))
    }

    /// Resolve an interned id back to the element name.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.0 as usize]
    }

    pub fn record(&mut self, at: Instant, point: TracePoint, kind: TraceKind, dir: Direction, summary: String) {
        if self.enabled && self.events.len() < self.cap {
            self.events.push(TraceEvent { at, point, kind, dir, summary });
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Render the trace as a textual sequence, one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let loc = match &e.point {
                TracePoint::Element { name, .. } => self.name(*name).to_string(),
                TracePoint::Link { after, hop } => format!("link[{}]+{}", after, hop),
            };
            let kind = match e.kind {
                TraceKind::Arrive => "rx",
                TraceKind::Emit => "tx",
                TraceKind::Loss => "LOST",
                TraceKind::TtlExpired => "TTL!",
            };
            out.push_str(&format!("{:>12}  {:<12} {:<4} {} {}\n", format!("{}", e.at), loc, kind, e.dir, e.summary));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        let x = t.intern("x");
        t.record(Instant(1), TracePoint::Element { index: 0, name: x }, TraceKind::Arrive, Direction::ToServer, "p".into());
        assert!(t.events().is_empty());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = Trace::new();
        let a = t.intern("GFW");
        let b = t.intern("client");
        assert_ne!(a, b);
        assert_eq!(t.intern("GFW"), a);
        assert_eq!(t.lookup("GFW"), Some(a));
        assert_eq!(t.lookup("nope"), None);
        assert_eq!(t.name(a), "GFW");
    }

    #[test]
    fn enabled_trace_renders() {
        let mut t = Trace::new();
        t.enable();
        let gfw = t.intern("GFW");
        t.record(
            Instant(1_500),
            TracePoint::Element { index: 2, name: gfw },
            TraceKind::Arrive,
            Direction::ToServer,
            "SYN".into(),
        );
        t.record(
            Instant(2_000),
            TracePoint::Link { after: 2, hop: 3 },
            TraceKind::TtlExpired,
            Direction::ToServer,
            "RST ttl=0".into(),
        );
        let s = t.render();
        assert!(s.contains("GFW"));
        assert!(s.contains("TTL!"));
        assert!(s.contains("link[2]+3"));
    }
}
