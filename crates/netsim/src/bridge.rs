//! Cross-domain message channels for parallel event domains.
//!
//! When a world is decomposed into independent event domains (each its own
//! [`crate::Simulation`] on its own worker thread), any packet that must
//! cross from one domain to another travels through a [`DomainBridge`]: a
//! pair of time-stamped mailboxes with a **conservative lookahead bound**.
//! The bound is the minimum latency of the link the bridge models — a
//! domain that has drained its inbox up to time `t` knows no peer can
//! retroactively deliver anything at or before `t + lookahead`, so it may
//! freely execute events up to that horizon without synchronizing
//! (classic conservative parallel discrete-event simulation, à la
//! Chandy–Misra null messages).
//!
//! The metropolis decomposition does not need bridges on its hot path —
//! censor state is partitioned so shards never exchange packets, which
//! makes every domain's safe horizon unbounded — but the bridge is the
//! mechanism that keeps the decomposition honest the moment a topology
//! *does* route traffic between domains (a shared upstream, cross-shard
//! NAT rebinding, a future inter-city backbone).
//!
//! Determinism: each mailbox entry carries `(time, sender sequence)`, and
//! [`Endpoint::drain_upto`] releases entries in exactly that order — the
//! same `(time, insertion-seq)` discipline as the in-domain event queue —
//! so the receiving domain's event stream is independent of *when* (in
//! wall-clock terms) the sender pushed.

use crate::time::Instant;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One timestamped cross-domain message. Carries owned bytes rather than a
/// [`intang_packet::Wire`]: wires are `Rc`-pooled per thread, so a packet
/// crossing domains is copied out on send and re-wrapped into the receiving
/// thread's pool on delivery.
#[derive(Debug, Clone)]
pub struct BridgeMsg {
    /// Arrival time in the receiving domain (sender emission time plus the
    /// bridge's latency — at least `lookahead`).
    pub at: Instant,
    /// Sender-side emission sequence, disambiguating same-time messages.
    pub seq: u64,
    pub bytes: Vec<u8>,
}

struct Lane {
    inbox: Mutex<VecDeque<BridgeMsg>>,
    /// Micros up to which the *sending* side has promised it will emit no
    /// further messages (its clock plus the lookahead bound).
    safe_until: AtomicU64,
    seq: AtomicU64,
}

impl Lane {
    fn new() -> Lane {
        Lane {
            inbox: Mutex::new(VecDeque::new()),
            safe_until: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }
}

/// A bidirectional bounded-lookahead channel between two event domains.
pub struct DomainBridge {
    /// Minimum cross-domain latency in microseconds; every `send` must
    /// schedule its arrival at least this far past the sender's clock.
    lookahead_us: u64,
    /// Lane 0 carries domain-A→domain-B traffic, lane 1 the reverse.
    lanes: [Lane; 2],
}

/// One side's handle on a [`DomainBridge`]: sends into its outbound lane,
/// drains its inbound lane. Cloneable and `Send` — each domain's worker
/// thread owns one.
#[derive(Clone)]
pub struct Endpoint {
    bridge: Arc<DomainBridge>,
    /// 0 = the A side (sends on lane 0, receives on lane 1).
    side: usize,
}

impl DomainBridge {
    /// Build a bridge with the given conservative lookahead (the minimum
    /// latency of the modeled link) and return its two endpoints.
    pub fn pair(lookahead_us: u64) -> (Endpoint, Endpoint) {
        assert!(lookahead_us > 0, "a zero-lookahead bridge cannot run conservatively");
        let bridge = Arc::new(DomainBridge {
            lookahead_us,
            lanes: [Lane::new(), Lane::new()],
        });
        (
            Endpoint {
                bridge: bridge.clone(),
                side: 0,
            },
            Endpoint { bridge, side: 1 },
        )
    }
}

impl Endpoint {
    /// Send a datagram, emitted at sender-clock `now`, to the peer domain.
    /// The arrival time is `now + lookahead` (the bridge's full latency);
    /// the message is ordered by `(arrival, send-seq)` on the peer's side.
    pub fn send(&self, now: Instant, bytes: Vec<u8>) {
        let lane = &self.bridge.lanes[self.side];
        let at = Instant(now.0 + self.bridge.lookahead_us);
        let seq = lane.seq.fetch_add(1, Ordering::Relaxed);
        let mut inbox = lane.inbox.lock().expect("bridge inbox poisoned");
        // Entries arrive in nondecreasing sender-clock order (the sender is
        // a monotone event loop), so push_back keeps the queue sorted.
        debug_assert!(inbox.back().is_none_or(|m| (m.at, m.seq) <= (at, seq)));
        inbox.push_back(BridgeMsg { at, seq, bytes });
    }

    /// Publish the sender-side clock: after this call the peer may safely
    /// execute events up to `now + lookahead`.
    pub fn advance(&self, now: Instant) {
        let lane = &self.bridge.lanes[self.side];
        lane.safe_until.fetch_max(now.0 + self.bridge.lookahead_us, Ordering::Release);
    }

    /// The receiving side's safe execution horizon: no message can later
    /// arrive at or before this time. The sender's clock starts at zero, so
    /// the horizon is never below one lookahead.
    pub fn safe_horizon(&self) -> Instant {
        let published = self.bridge.lanes[1 - self.side].safe_until.load(Ordering::Acquire);
        Instant(published.max(self.bridge.lookahead_us))
    }

    /// Drain every inbound message with `at <= upto`, in `(at, seq)` order.
    /// Callers must keep `upto` within [`Endpoint::safe_horizon`] to stay
    /// conservative.
    pub fn drain_upto(&self, upto: Instant, out: &mut Vec<BridgeMsg>) {
        let lane = &self.bridge.lanes[1 - self.side];
        let mut inbox = lane.inbox.lock().expect("bridge inbox poisoned");
        while inbox.front().is_some_and(|m| m.at <= upto) {
            out.push(inbox.pop_front().expect("checked front"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(n: u8) -> Vec<u8> {
        vec![n]
    }

    #[test]
    fn messages_arrive_after_the_lookahead_in_order() {
        let (a, b) = DomainBridge::pair(1_000);
        a.send(Instant(0), wire(1));
        a.send(Instant(0), wire(2)); // same time: seq breaks the tie
        a.send(Instant(500), wire(3));
        let mut got = Vec::new();
        b.drain_upto(Instant(999), &mut got);
        assert!(got.is_empty(), "nothing is deliverable before the lookahead");
        b.drain_upto(Instant(1_000), &mut got);
        assert_eq!(got.len(), 2);
        assert_eq!((&got[0].bytes[..], &got[1].bytes[..]), (&[1u8][..], &[2u8][..]));
        b.drain_upto(Instant(1_500), &mut got);
        assert_eq!(got.len(), 3);
        assert_eq!(got[2].at, Instant(1_500));
    }

    #[test]
    fn safe_horizon_tracks_the_peer_clock_plus_lookahead() {
        let (a, b) = DomainBridge::pair(250);
        assert_eq!(b.safe_horizon(), Instant(250), "initial horizon is one lookahead");
        a.advance(Instant(4_000));
        assert_eq!(b.safe_horizon(), Instant(4_250));
        a.advance(Instant(3_000)); // clocks never run backwards
        assert_eq!(b.safe_horizon(), Instant(4_250));
        // The reverse direction is independent.
        assert_eq!(a.safe_horizon(), Instant(250));
        b.advance(Instant(10));
        assert_eq!(a.safe_horizon(), Instant(260));
    }

    #[test]
    fn bridge_is_deterministic_across_threads() {
        // Two sender threads on opposite sides; each receiver drains only
        // up to its safe horizon. Whatever the wall-clock interleaving, the
        // delivered streams are fixed by (at, seq).
        let (a, b) = DomainBridge::pair(100);
        let a2 = a.clone();
        std::thread::scope(|s| {
            s.spawn(move || {
                for t in 0..50u64 {
                    a2.send(Instant(t * 10), wire((t % 256) as u8));
                    a2.advance(Instant(t * 10));
                }
                a2.advance(Instant(1_000_000));
            });
            s.spawn(move || {
                let mut got = Vec::new();
                loop {
                    let h = b.safe_horizon();
                    b.drain_upto(h, &mut got);
                    if h >= Instant(1_000_000) {
                        b.drain_upto(h, &mut got);
                        break;
                    }
                    std::thread::yield_now();
                }
                assert_eq!(got.len(), 50);
                assert!(got.windows(2).all(|w| (w[0].at, w[0].seq) < (w[1].at, w[1].seq)));
                assert_eq!(got[0].at, Instant(100), "emission time plus lookahead");
            });
        });
        let _ = a;
    }
}
