//! Flight recorder: a bounded ring of the most recent events per
//! simulation — "what happened right before".
//!
//! The trace (`crate::trace`) answers lineage questions but costs a
//! record per hop and is only enabled for dedicated replays; the flight
//! recorder is the always-affordable complement: a fixed-capacity ring of
//! compact fixed-size records ([`FlightRec`], no allocation per event)
//! that the simulation overwrites as it runs. When something goes wrong —
//! a simcheck violation's shrunken replay, or a panic mid-run — the ring
//! holds the last [`FLIGHT_CAP`] dispatches leading up to it, rendered
//! into the `.simcheck/` repro artifact and onto stderr respectively.
//!
//! Recording is enabled per-process with `INTANG_FLIGHT=1`, per-thread
//! with [`set_thread`], or implicitly whenever simcheck checking is on
//! (so every violation artifact gets a tail). Record fields come from the
//! wire's cached header index; unparseable payloads record lengths only.

use crate::element::Direction;
use crate::event::Event;
use crate::time::Instant;
use intang_packet::Wire;
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Ring capacity: enough to span several RTTs of a trial's hot phase
/// while keeping the per-sim footprint at a few KiB.
pub const FLIGHT_CAP: usize = 256;

/// What kind of dispatch a record captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    Deliver,
    Timer,
}

/// One dispatched event, summarized into plain scalars.
#[derive(Debug, Clone, Copy)]
pub struct FlightRec {
    pub at: Instant,
    pub elem: u16,
    pub kind: FlightKind,
    pub dir: Direction,
    /// IP protocol number (0 when unparseable or a timer).
    pub proto: u8,
    /// TCP flag bits (0 for non-TCP).
    pub flags: u8,
    /// Whole-datagram length in bytes (0 for timers).
    pub len: u16,
    pub src_port: u16,
    pub dst_port: u16,
    /// TCP sequence number (0 for non-TCP).
    pub seq: u32,
    /// Timer token (0 for delivers).
    pub token: u64,
}

impl FlightRec {
    /// Summarize a popped event at dispatch time.
    pub fn of(at: Instant, event: &Event) -> FlightRec {
        match event {
            Event::Deliver { elem, dir, wire, .. } => {
                let mut rec = FlightRec {
                    at,
                    elem: (*elem).min(u16::MAX as usize) as u16,
                    kind: FlightKind::Deliver,
                    dir: *dir,
                    proto: 0,
                    flags: 0,
                    len: wire.len().min(u16::MAX as usize) as u16,
                    src_port: 0,
                    dst_port: 0,
                    seq: 0,
                    token: 0,
                };
                if let Some(h) = wire.headers() {
                    rec.proto = h.protocol.into();
                    match h.tcp() {
                        Some(t) => {
                            rec.flags = t.flags.0;
                            rec.src_port = t.src_port;
                            rec.dst_port = t.dst_port;
                            rec.seq = t.seq;
                        }
                        None => {
                            if let intang_packet::L4Index::Udp(u) = h.l4 {
                                rec.src_port = u.src_port;
                                rec.dst_port = u.dst_port;
                            }
                        }
                    }
                }
                rec
            }
            Event::Timer { elem, token } => FlightRec {
                at,
                elem: (*elem).min(u16::MAX as usize) as u16,
                kind: FlightKind::Timer,
                dir: Direction::ToServer,
                proto: 0,
                flags: 0,
                len: 0,
                src_port: 0,
                dst_port: 0,
                seq: 0,
                token: *token,
            },
        }
    }
}

/// The bounded ring itself. Boxed into the simulation only when enabled,
/// so the disabled cost is one `Option` check per dispatch.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Vec<FlightRec>,
    /// Next write position once the ring is full.
    head: usize,
    /// Total records ever written (>= ring.len()).
    total: u64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            ring: Vec::with_capacity(FLIGHT_CAP),
            head: 0,
            total: 0,
        }
    }

    pub fn record(&mut self, rec: FlightRec) {
        if self.ring.len() < FLIGHT_CAP {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
            self.head = (self.head + 1) % FLIGHT_CAP;
        }
        self.total += 1;
    }

    /// Records ever written (the ring holds the last
    /// `min(total, FLIGHT_CAP)` of them).
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FlightRec> {
        let (wrapped, linear) = self.ring.split_at(self.head);
        linear.iter().chain(wrapped.iter())
    }

    /// Render the ring as indented text, resolving element indices to
    /// names through `name` (the simulation supplies its element table).
    pub fn render(&self, mut name: impl FnMut(usize) -> String) -> String {
        let mut out = String::new();
        let dropped = self.total - self.ring.len() as u64;
        let _ = writeln!(
            out,
            "flight recorder: last {} of {} dispatches{}",
            self.ring.len(),
            self.total,
            if dropped > 0 { " (older overwritten)" } else { "" }
        );
        for rec in self.iter() {
            let elem = name(usize::from(rec.elem));
            match rec.kind {
                FlightKind::Timer => {
                    let _ = writeln!(out, "  [{:>10}us] {:<12} timer token={:#x}", rec.at.0, elem, rec.token);
                }
                FlightKind::Deliver => {
                    let _ = write!(
                        out,
                        "  [{:>10}us] {:<12} deliver {} proto={} len={}",
                        rec.at.0, elem, rec.dir, rec.proto, rec.len
                    );
                    if rec.src_port != 0 || rec.dst_port != 0 {
                        let _ = write!(out, " {}->{}", rec.src_port, rec.dst_port);
                    }
                    if rec.proto == 6 {
                        let _ = write!(out, " seq={} flags={}", rec.seq, intang_packet::TcpFlags(rec.flags));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}

/// Test/diagnostic hook: summarize a wire the way dispatch would.
pub fn summarize_wire(at: Instant, elem: usize, dir: Direction, wire: &Wire) -> FlightRec {
    FlightRec::of(
        at,
        &Event::Deliver {
            elem,
            dir,
            wire: wire.clone(),
            cause: None,
        },
    )
}

fn env_enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| matches!(std::env::var("INTANG_FLIGHT"), Ok(v) if !v.is_empty() && v != "0"))
}

thread_local! {
    static THREAD_ON: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Should simulations constructed on this thread carry a flight ring?
/// (Simcheck-enabled sims carry one regardless, so violation artifacts
/// always have a tail to dump.)
pub fn enabled() -> bool {
    THREAD_ON.with(Cell::get).unwrap_or_else(env_enabled)
}

/// Thread-local override (`Some(on)`) or defer to the environment
/// (`None`). Returns the previous override so callers can restore it.
pub fn set_thread(on: Option<bool>) -> Option<bool> {
    THREAD_ON.with(|c| c.replace(on))
}

/// The current thread-local override, for replaying onto worker threads.
pub fn thread_override() -> Option<bool> {
    THREAD_ON.with(Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_rec(at: u64, token: u64) -> FlightRec {
        FlightRec::of(Instant(at), &Event::Timer { elem: 0, token })
    }

    #[test]
    fn ring_wraps_keeping_the_newest() {
        let mut r = FlightRecorder::new();
        for i in 0..(FLIGHT_CAP as u64 + 10) {
            r.record(timer_rec(i, i));
        }
        assert_eq!(r.len(), FLIGHT_CAP);
        assert_eq!(r.total(), FLIGHT_CAP as u64 + 10);
        let times: Vec<u64> = r.iter().map(|rec| rec.at.0).collect();
        assert_eq!(times.first(), Some(&10), "oldest surviving record");
        assert_eq!(times.last(), Some(&(FLIGHT_CAP as u64 + 9)));
        assert!(times.windows(2).all(|w| w[0] < w[1]), "oldest-first iteration");
    }

    #[test]
    fn render_mentions_wrap_and_resolves_names() {
        let mut r = FlightRecorder::new();
        for i in 0..(FLIGHT_CAP as u64 + 1) {
            r.record(timer_rec(i, 7));
        }
        let text = r.render(|i| format!("elem{i}"));
        assert!(text.contains("older overwritten"), "{text}");
        assert!(text.contains("elem0"), "{text}");
        assert!(text.contains("token=0x7"), "{text}");
        assert_eq!(text.lines().count(), FLIGHT_CAP + 1);
    }

    #[test]
    fn deliver_records_tcp_fields() {
        let wire = intang_packet::PacketBuilder::tcp(std::net::Ipv4Addr::new(10, 0, 0, 1), std::net::Ipv4Addr::new(10, 0, 0, 2), 1234, 80)
            .flags(intang_packet::TcpFlags::SYN)
            .seq(99)
            .build();
        let rec = summarize_wire(Instant(5), 3, Direction::ToServer, &wire);
        assert_eq!(rec.kind, FlightKind::Deliver);
        assert_eq!(rec.proto, 6);
        assert_eq!(rec.src_port, 1234);
        assert_eq!(rec.dst_port, 80);
        assert_eq!(rec.seq, 99);
        assert_eq!(rec.elem, 3);
        assert!(rec.len > 0);
    }

    #[test]
    fn thread_override_round_trips() {
        assert_eq!(thread_override(), None);
        let prev = set_thread(Some(true));
        assert!(enabled());
        set_thread(prev);
        assert_eq!(thread_override(), None);
    }
}
