//! Virtual time. Microsecond resolution, 64-bit — enough for centuries of
//! simulated traffic.

/// A point in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(pub u64);

/// A span of simulated time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Instant {
    pub const ZERO: Instant = Instant(0);

    pub fn micros(self) -> u64 {
        self.0
    }

    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    pub fn saturating_sub(self, other: Instant) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Duration {
    pub const ZERO: Duration = Duration(0);

    pub const fn from_micros(us: u64) -> Duration {
        Duration(us)
    }

    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000)
    }

    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000)
    }

    pub fn micros(self) -> u64 {
        self.0
    }
}

impl std::ops::Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        Instant(self.0 + d.0)
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl std::ops::Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }
}

fn fmt_micros(us: u64, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    if us >= 1_000_000 {
        write!(f, "{}.{:06}s", us / 1_000_000, us % 1_000_000)
    } else if us >= 1_000 {
        write!(f, "{}.{:03}ms", us / 1_000, us % 1_000)
    } else {
        write!(f, "{}us", us)
    }
}

impl std::fmt::Display for Instant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_micros(self.0, f)
    }
}

impl std::fmt::Display for Duration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fmt_micros(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Instant::ZERO + Duration::from_millis(5) + Duration::from_micros(1);
        assert_eq!(t.micros(), 5_001);
        assert_eq!(Duration::from_secs(2).micros(), 2_000_000);
        assert_eq!((Duration::from_millis(20) * 3).micros(), 60_000);
        assert_eq!(t.saturating_sub(Instant(6_000)), Duration::ZERO);
        assert_eq!(Instant(6_000).saturating_sub(t), Duration(999));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Instant(12)), "12us");
        assert_eq!(format!("{}", Instant(12_345)), "12.345ms");
        assert_eq!(format!("{}", Instant(3_000_001)), "3.000001s");
    }
}
