//! Batched-dispatch enablement and diagnostics.
//!
//! The event loop drains equal-timestamp runs as one batch (see
//! [`crate::Simulation::step_batch`]). Batching is result-identical to
//! single-step dispatch — the determinism suite runs both ways — so the
//! toggle exists purely for that A/B: a process-wide env var
//! (`INTANG_BATCH=0` force-disables, default on) plus a thread-local
//! override mirroring `intang_simcheck::set_thread`, so the test matrix can
//! flip modes per thread without touching the environment. Simulations
//! cache the flag at construction time.
//!
//! Batch-size statistics are process-global relaxed atomics (the
//! `intang_packet::wire::pool_stats` pattern): they are scheduling- and
//! mode-dependent diagnostics, reported only by `bench_sweep` — never in a
//! `MetricsSheet`, which must stay byte-identical with batching on or off.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

fn env_enabled() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| std::env::var("INTANG_BATCH").map(|v| !v.is_empty() && v != "0").unwrap_or(true))
}

thread_local! {
    static THREAD_ON: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Is batched dispatch enabled on this thread? Thread-local override
/// first, env var (`INTANG_BATCH`, default on) otherwise.
pub fn enabled() -> bool {
    THREAD_ON.with(|c| c.get()).unwrap_or_else(env_enabled)
}

/// Override batching for the current thread (`Some(true)`/`Some(false)`),
/// or fall back to the env var (`None`). Returns the previous override.
/// Must be called *before* constructing the simulations it should affect —
/// they cache the flag.
pub fn set_thread(on: Option<bool>) -> Option<bool> {
    THREAD_ON.with(|c| c.replace(on))
}

/// The current thread's override, if any. The sweep executor reads this on
/// the calling thread and replays it inside each worker thread, so a
/// caller-side [`set_thread`] governs simulations constructed by workers
/// too (thread-locals do not inherit across `thread::scope`).
pub fn thread_override() -> Option<bool> {
    THREAD_ON.with(|c| c.get())
}

/// Batch-size histogram buckets: sizes 1, 2–3, 4–7, … (powers of two),
/// last bucket open-ended.
pub const HIST_BUCKETS: usize = 8;

static BATCHES: AtomicU64 = AtomicU64::new(0);
static BATCHED_EVENTS: AtomicU64 = AtomicU64::new(0);
static HIST: [AtomicU64; HIST_BUCKETS] = [const { AtomicU64::new(0) }; HIST_BUCKETS];

/// Histogram bucket for a batch of `n` events (`n >= 1`).
pub fn bucket(n: u64) -> usize {
    (63 - n.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Fold one simulation's batch accounting into the process-wide totals
/// (called on `Simulation` drop; per-sim counts are plain integers so the
/// event loop itself touches no atomics).
pub fn note_run(batches: u64, events: u64, hist: &[u64; HIST_BUCKETS]) {
    if batches == 0 {
        return;
    }
    BATCHES.fetch_add(batches, Ordering::Relaxed);
    BATCHED_EVENTS.fetch_add(events, Ordering::Relaxed);
    for (slot, &n) in HIST.iter().zip(hist) {
        if n > 0 {
            slot.fetch_add(n, Ordering::Relaxed);
        }
    }
}

/// Process-wide batch statistics since start (or the last [`reset_stats`]):
/// `(batches, events, histogram)`.
pub fn stats() -> (u64, u64, [u64; HIST_BUCKETS]) {
    let mut hist = [0u64; HIST_BUCKETS];
    for (out, slot) in hist.iter_mut().zip(&HIST) {
        *out = slot.load(Ordering::Relaxed);
    }
    (BATCHES.load(Ordering::Relaxed), BATCHED_EVENTS.load(Ordering::Relaxed), hist)
}

/// Zero the process-wide statistics (bench isolation between workloads).
pub fn reset_stats() {
    BATCHES.store(0, Ordering::Relaxed);
    BATCHED_EVENTS.store(0, Ordering::Relaxed);
    for slot in &HIST {
        slot.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 1);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(7), 2);
        assert_eq!(bucket(8), 3);
        assert_eq!(bucket(1 << 40), HIST_BUCKETS - 1);
    }

    #[test]
    fn thread_override_round_trips() {
        let prev = set_thread(Some(false));
        assert!(!enabled());
        set_thread(Some(true));
        assert!(enabled());
        set_thread(prev);
    }

    #[test]
    fn note_run_accumulates() {
        let (b0, e0, _) = stats();
        let mut hist = [0u64; HIST_BUCKETS];
        hist[0] = 2;
        hist[1] = 1;
        note_run(3, 4, &hist);
        let (b1, e1, h1) = stats();
        assert_eq!(b1 - b0, 3);
        assert_eq!(e1 - e0, 4);
        assert!(h1[0] >= 2 && h1[1] >= 1);
    }
}
