//! The event queue: a hierarchical timing wheel with FIFO tie-breaking.
//!
//! Replaces the original `BinaryHeap` queue with a two-tier structure
//! shaped by the simulator's delay distribution:
//!
//! * **Front tier** — all events inside the cursor's current 4096 µs
//!   *epoch* (the level-0 span) live in a small binary min-heap keyed by
//!   `(time, insertion-seq)`. Simulated deadlines cluster at the
//!   link-latency scale (~1 ms), so the overwhelming majority of events
//!   spend their whole life here, at contiguous-array heap speed — a slot
//!   array at 1 µs granularity pays a cache miss per touched slot, which
//!   benches (`queue/*`) showed is slower than the heap at simulation
//!   queue sizes (tens of events).
//! * **Upper tiers** — five classic wheel levels of 64 slots (6 bits per
//!   level, 2^42 µs ≈ 52-day horizon) absorb far deadlines with O(1)
//!   pushes and per-level occupancy bitmaps, so retransmit timeouts and
//!   quiescence guards never bloat the front heap. Anything beyond the
//!   horizon waits in an overflow list and migrates in when the cursor
//!   catches up.
//!
//! The epoch only advances when the front heap is empty (a cascade or an
//! overflow migration), which is what makes the split sound: every front
//! event precedes every upper-level event, and upper levels are totally
//! ordered among themselves by the shared cursor prefix. Slot storage and
//! the front heap's buffer are recycled through a thread-local pool across
//! `EventQueue` lifetimes (a simulation is built per trial), so queue
//! construction and steady-state operation stay off the allocator.
//!
//! Pop order is **exactly** `(time, insertion-seq)` — identical to the old
//! heap, including pushes scheduled in the past (they clamp to the cursor's
//! epoch and pop immediately, still ordered by their original timestamp).
//! Golden traces and the determinism suite depend on this;
//! `tests/properties.rs` drives a randomized interleaving against a
//! reference heap to lock it in.

use crate::element::Direction;
use crate::time::Instant;
use crate::trace::TraceId;
use intang_packet::Wire;
use std::collections::BinaryHeap;

/// Something scheduled to happen.
#[derive(Debug)]
pub enum Event {
    /// Deliver `wire`, traveling in `dir`, to element `elem`. `cause` is
    /// the trace id of the emission that put the packet in flight (lineage
    /// threading; `None` when tracing is off or the packet was injected).
    Deliver {
        elem: usize,
        dir: Direction,
        wire: Wire,
        cause: Option<TraceId>,
    },
    /// Fire element `elem`'s timer with `token`.
    Timer { elem: usize, token: u64 },
}

#[derive(Debug)]
struct Queued {
    at: Instant,
    seq: u64,
    event: Event,
}

/// Front-heap entry: min-heap by `(at, seq)` (comparison reversed for
/// `std`'s max-heap).
#[derive(Debug)]
struct FrontItem(Queued);

impl PartialEq for FrontItem {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl Eq for FrontItem {}
impl PartialOrd for FrontItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FrontItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.0.at, other.0.seq).cmp(&(self.0.at, self.0.seq))
    }
}

/// The front tier spans one `1 << L0_BITS` µs epoch of the cursor.
const L0_BITS: usize = 12;
/// Bits per upper wheel level; each upper level has 64 slots.
const LEVEL_BITS: usize = 6;
const SLOTS: usize = 1 << LEVEL_BITS;
/// Upper levels above the front tier.
const UP_LEVELS: usize = 5;
/// Times within `wheel_now + 2^HORIZON_BITS` µs live in the wheel proper.
const HORIZON_BITS: u32 = (L0_BITS + LEVEL_BITS * UP_LEVELS) as u32;
const TOTAL_SLOTS: usize = UP_LEVELS * SLOTS;

/// Deterministic event queue: pops strictly in `(time, insertion order)`.
#[derive(Debug)]
pub struct EventQueue {
    /// Current-epoch events, popped directly.
    front: BinaryHeap<FrontItem>,
    /// `TOTAL_SLOTS` upper-level buckets, level-major (recycled via the
    /// thread-local storage pool). Bucket vectors keep their capacity
    /// across reuse, so the steady state allocates nothing.
    slots: Vec<Vec<Queued>>,
    /// Per-upper-level occupancy bitmap: bit `s` set ⇔
    /// `slots[u * SLOTS + s]` is non-empty.
    occ_up: [u64; UP_LEVELS],
    /// The wheel cursor: a lower bound on every event time in the wheel
    /// (monotone; only ever advanced to popped times / cascade slot bases).
    /// Its bits above `L0_BITS` name the front epoch.
    wheel_now: u64,
    /// Events currently in upper-level slots (excludes front and overflow).
    upper_len: usize,
    /// Events beyond the wheel horizon, unordered; migrated in when the
    /// wheel drains. Every overflow time exceeds every wheel time.
    overflow: Vec<Queued>,
    /// Earliest `(at, seq)` in `overflow`, maintained on push.
    overflow_min: Option<(Instant, u64)>,
    next_seq: u64,
    len: usize,
    /// Deliver events currently queued (packets in flight, excluding
    /// timers) — a gauge for the telemetry time-series.
    deliver_len: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Retired queue storage: the upper-level slot table plus the front heap's
/// buffer, both capacity-warm.
type RetiredStorage = (Vec<Vec<Queued>>, Vec<FrontItem>);

std::thread_local! {
    /// Retired (slots, front-buffer) storage, capacity-warm. A simulation
    /// is built per trial; recycling keeps queue construction off the
    /// allocator.
    static STORAGE_POOL: std::cell::RefCell<Vec<RetiredStorage>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Max retired storages kept per thread (sims rarely nest deeper).
const STORAGE_POOL_CAP: usize = 4;

impl Drop for EventQueue {
    fn drop(&mut self) {
        // Clear only the buckets the bitmaps say are occupied (a dropped
        // mid-run queue may hold events), then hand the storage back.
        for (u, &bits) in self.occ_up.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let s = word.trailing_zeros() as usize;
                word &= word - 1;
                self.slots[u * SLOTS + s].clear();
            }
        }
        let storage = std::mem::take(&mut self.slots);
        let mut front_buf = std::mem::take(&mut self.front).into_vec();
        front_buf.clear();
        if storage.len() == TOTAL_SLOTS {
            let _ = STORAGE_POOL.try_with(|pool| {
                let mut pool = pool.borrow_mut();
                if pool.len() < STORAGE_POOL_CAP {
                    pool.push((storage, front_buf));
                }
            });
        }
    }
}

impl EventQueue {
    pub fn new() -> Self {
        let (slots, front_buf) = STORAGE_POOL
            .try_with(|pool| pool.borrow_mut().pop())
            .ok()
            .flatten()
            .unwrap_or_else(|| (std::iter::repeat_with(Vec::new).take(TOTAL_SLOTS).collect(), Vec::new()));
        EventQueue {
            front: BinaryHeap::from(front_buf),
            slots,
            occ_up: [0; UP_LEVELS],
            wheel_now: 0,
            upper_len: 0,
            overflow: Vec::new(),
            overflow_min: None,
            next_seq: 0,
            len: 0,
            deliver_len: 0,
        }
    }

    pub fn push(&mut self, at: Instant, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        if matches!(event, Event::Deliver { .. }) {
            self.deliver_len += 1;
        }
        self.insert(Queued { at, seq, event });
    }

    /// Place one entry into the front heap, an upper-level slot, or the
    /// overflow. Past-due times clamp to the cursor (current epoch), where
    /// the front heap's `(at, seq)` order still yields them first.
    fn insert(&mut self, q: Queued) {
        let t = q.at.0.max(self.wheel_now);
        let masked = t ^ self.wheel_now;
        if masked >> L0_BITS == 0 {
            // Same epoch as the cursor: the common, cascade-free case.
            self.front.push(FrontItem(q));
            return;
        }
        if masked >> HORIZON_BITS != 0 {
            if self.overflow_min.is_none_or(|m| (q.at, q.seq) < m) {
                self.overflow_min = Some((q.at, q.seq));
            }
            self.overflow.push(q);
            return;
        }
        // The highest differing bit picks the upper level; within it, the
        // time's own 6-bit block picks the slot.
        let up = ((63 - masked.leading_zeros()) as usize - L0_BITS) / LEVEL_BITS;
        let slot = ((t >> (L0_BITS + up * LEVEL_BITS)) & (SLOTS - 1) as u64) as usize;
        self.occ_up[up] |= 1 << slot;
        self.slots[up * SLOTS + slot].push(q);
        self.upper_len += 1;
    }

    /// Refill the wheel from overflow once it drains. Sound because every
    /// overflow time is strictly beyond every wheel time (they differ from
    /// the cursor above the horizon bit), so migration can never reorder.
    fn migrate_overflow(&mut self) {
        debug_assert!(self.front.is_empty() && self.upper_len == 0 && !self.overflow.is_empty());
        let min_at = self.overflow.iter().map(|q| q.at.0).min().expect("overflow non-empty");
        self.wheel_now = self.wheel_now.max(min_at);
        let pending = std::mem::take(&mut self.overflow);
        self.overflow_min = None;
        for q in pending {
            self.insert(q);
        }
    }

    pub fn pop(&mut self) -> Option<(Instant, Event)> {
        if self.len == 0 {
            return None;
        }
        loop {
            if let Some(FrontItem(q)) = self.front.pop() {
                // The front min is the global min: upper levels and
                // overflow hold strictly-later epochs only.
                self.len -= 1;
                if matches!(q.event, Event::Deliver { .. }) {
                    self.deliver_len -= 1;
                }
                self.wheel_now = self.wheel_now.max(q.at.0);
                return Some((q.at, q.event));
            }
            if self.upper_len == 0 {
                self.migrate_overflow();
                continue;
            }
            // Cascade: advance the cursor to the earliest occupied upper
            // slot's base time and re-insert its entries — each lands in
            // the (new) front epoch or a strictly lower upper level. Upper
            // levels are totally ordered: every level-u event precedes
            // every level-(u+1) event (shared cursor prefix above block u).
            let up = (0..UP_LEVELS).find(|&u| self.occ_up[u] != 0).expect("upper_len > 0");
            let slot = self.occ_up[up].trailing_zeros() as usize;
            let shift = L0_BITS + up * LEVEL_BITS;
            let base = (self.wheel_now & (!0u64 << (shift + LEVEL_BITS))) | ((slot as u64) << shift);
            debug_assert!(base > self.wheel_now);
            self.wheel_now = base;
            let idx = up * SLOTS + slot;
            let mut bucket = std::mem::take(&mut self.slots[idx]);
            self.occ_up[up] &= !(1 << slot);
            self.upper_len -= bucket.len();
            for q in bucket.drain(..) {
                self.insert(q);
            }
            // Hand the (empty) allocation back so reuse stays alloc-free.
            self.slots[idx] = bucket;
        }
    }

    /// Drain the entire run of events sharing the minimal timestamp into
    /// `out` (appended in exact `(time, insertion-seq)` pop order); returns
    /// the run length. Equivalent to calling [`EventQueue::pop`] until the
    /// head time changes — but after the first pop locates the minimum, the
    /// rest of the run drains straight off the front heap: same-time events
    /// share the cursor's epoch, and upper levels / overflow hold strictly
    /// later epochs only, so no cascade checks are needed mid-run.
    pub fn pop_batch(&mut self, out: &mut Vec<(Instant, Event)>) -> usize {
        let Some((at, event)) = self.pop() else {
            return 0;
        };
        out.push((at, event));
        let mut n = 1;
        while let Some(FrontItem(q)) = self.front.peek() {
            if q.at != at {
                break;
            }
            let FrontItem(q) = self.front.pop().expect("peeked non-empty");
            self.len -= 1;
            if matches!(q.event, Event::Deliver { .. }) {
                self.deliver_len -= 1;
            }
            out.push((q.at, q.event));
            n += 1;
        }
        n
    }

    pub fn peek_time(&self) -> Option<Instant> {
        if let Some(FrontItem(q)) = self.front.peek() {
            return Some(q.at);
        }
        if self.upper_len > 0 {
            let up = (0..UP_LEVELS).find(|&u| self.occ_up[u] != 0).expect("upper_len > 0");
            let slot = self.occ_up[up].trailing_zeros() as usize;
            return self.slots[up * SLOTS + slot].iter().map(|q| q.at).min();
        }
        self.overflow_min.map(|(at, _)| at)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Deliver events currently queued — packets in flight, excluding
    /// timers (see [`intang_telemetry::series::GaugeId::InflightPackets`]).
    pub fn deliver_len(&self) -> usize {
        self.deliver_len
    }

    /// Simcheck probe: every queued event must sit in exactly one of the
    /// front heap, an upper-level slot, or the overflow, and the
    /// bookkeeping totals must agree. Returns a description of the
    /// imbalance, or `None` when coherent. O(1).
    pub fn structural_imbalance(&self) -> Option<String> {
        let held = self.front.len() + self.upper_len + self.overflow.len();
        (held != self.len).then(|| {
            format!(
                "event queue holds {held} events (front {} + upper {} + overflow {}) but len says {}",
                self.front.len(),
                self.upper_len,
                self.overflow.len(),
                self.len
            )
        })
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn token_of(e: Event) -> u64 {
        match e {
            Event::Timer { token, .. } => token,
            _ => unreachable!(),
        }
    }

    fn drain(q: &mut EventQueue) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| q.pop()).map(|(at, e)| (at.0, token_of(e))).collect()
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(Instant(10), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(5), Event::Timer { elem: 0, token: 2 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 3 });
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, t)| t).collect();
        assert_eq!(order, vec![2, 1, 3], "time order, then insertion order");
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Instant(7), Event::Timer { elem: 1, token: 0 });
        assert_eq!(q.peek_time(), Some(Instant(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cascades_across_levels() {
        let mut q = EventQueue::new();
        // One event per wheel level, pushed in reverse time order.
        let times = [1u64 << 32, 1 << 20, 1 << 13, 70, 3];
        for (i, &t) in times.iter().enumerate() {
            q.push(Instant(t), Event::Timer { elem: 0, token: i as u64 });
        }
        assert_eq!(q.peek_time(), Some(Instant(3)));
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(drain(&mut q).into_iter().map(|(at, _)| at).collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn past_due_push_pops_first_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Instant(100), Event::Timer { elem: 0, token: 0 });
        assert_eq!(q.pop().unwrap().0, Instant(100));
        // The cursor sits at 100; these land in its epoch but must still
        // pop by (time, seq).
        q.push(Instant(40), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(7), Event::Timer { elem: 0, token: 2 });
        q.push(Instant(40), Event::Timer { elem: 0, token: 3 });
        q.push(Instant(100), Event::Timer { elem: 0, token: 4 });
        assert_eq!(q.peek_time(), Some(Instant(7)));
        assert_eq!(drain(&mut q), vec![(7, 2), (40, 1), (40, 3), (100, 4)]);
    }

    #[test]
    fn overflow_beyond_horizon_migrates_back() {
        let far = 1u64 << 43; // past the 2^42 µs horizon
        let mut q = EventQueue::new();
        q.push(Instant(far + 1), Event::Timer { elem: 0, token: 0 });
        q.push(Instant(5), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(far), Event::Timer { elem: 0, token: 2 });
        assert_eq!(q.peek_time(), Some(Instant(5)));
        assert_eq!(drain(&mut q), vec![(5, 1), (far, 2), (far + 1, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn epoch_boundary_keeps_order() {
        // Events straddling a 4096 µs epoch edge: the later one waits in
        // an upper level and cascades into the front only after the epoch
        // advances.
        let mut q = EventQueue::new();
        q.push(Instant(4_095), Event::Timer { elem: 0, token: 0 });
        q.push(Instant(4_097), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(4_096), Event::Timer { elem: 0, token: 2 });
        assert_eq!(drain(&mut q), vec![(4_095, 0), (4_096, 2), (4_097, 1)]);
    }

    #[test]
    fn pop_batch_drains_equal_time_runs_in_seq_order() {
        let mut q = EventQueue::new();
        q.push(Instant(10), Event::Timer { elem: 0, token: 0 });
        q.push(Instant(5), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 2 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 3 });
        q.push(Instant(4_200), Event::Timer { elem: 0, token: 4 }); // next epoch
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 1, "lone minimum");
        assert_eq!(q.pop_batch(&mut out), 3, "the t=10 run drains together");
        assert_eq!(q.pop_batch(&mut out), 1, "upper-level event after cascade");
        assert_eq!(q.pop_batch(&mut out), 0);
        let seen: Vec<(u64, u64)> = out.into_iter().map(|(at, e)| (at.0, token_of(e))).collect();
        assert_eq!(seen, vec![(5, 1), (10, 0), (10, 2), (10, 3), (4_200, 4)]);
        assert!(q.is_empty());
        assert!(q.structural_imbalance().is_none());
    }

    #[test]
    fn pop_batch_only_takes_the_current_minimum_run() {
        // Same-time events pushed *after* a batch was drained form their own
        // later batch (higher seq), exactly like repeated single pops.
        let mut q = EventQueue::new();
        q.push(Instant(10), Event::Timer { elem: 0, token: 0 });
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 1);
        q.push(Instant(10), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 2 });
        assert_eq!(q.pop_batch(&mut out), 2, "new same-time pushes drain next");
        let seen: Vec<u64> = out.into_iter().map(|(_, e)| token_of(e)).collect();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn deliver_len_tracks_only_deliver_events() {
        let mut q = EventQueue::new();
        q.push(Instant(1), Event::Timer { elem: 0, token: 0 });
        q.push(
            Instant(2),
            Event::Deliver {
                elem: 0,
                dir: Direction::ToServer,
                wire: vec![1, 2, 3].into(),
                cause: None,
            },
        );
        q.push(
            Instant(2),
            Event::Deliver {
                elem: 0,
                dir: Direction::ToServer,
                wire: vec![4].into(),
                cause: None,
            },
        );
        assert_eq!(q.deliver_len(), 2);
        assert_eq!(q.len(), 3);
        q.pop(); // timer
        assert_eq!(q.deliver_len(), 2);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), 2, "both delivers share t=2");
        assert_eq!(q.deliver_len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_global_order() {
        let mut q = EventQueue::new();
        q.push(Instant(50), Event::Timer { elem: 0, token: 0 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 1 });
        assert_eq!(q.pop().unwrap().0, Instant(10));
        q.push(Instant(20), Event::Timer { elem: 0, token: 2 });
        q.push(Instant(50), Event::Timer { elem: 0, token: 3 });
        assert_eq!(drain(&mut q), vec![(20, 2), (50, 0), (50, 3)]);
    }
}
