//! The event queue: a time-ordered heap with FIFO tie-breaking.

use crate::element::Direction;
use crate::time::Instant;
use crate::trace::TraceId;
use intang_packet::Wire;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Something scheduled to happen.
#[derive(Debug)]
pub enum Event {
    /// Deliver `wire`, traveling in `dir`, to element `elem`. `cause` is
    /// the trace id of the emission that put the packet in flight (lineage
    /// threading; `None` when tracing is off or the packet was injected).
    Deliver {
        elem: usize,
        dir: Direction,
        wire: Wire,
        cause: Option<TraceId>,
    },
    /// Fire element `elem`'s timer with `token`.
    Timer { elem: usize, token: u64 },
}

#[derive(Debug)]
struct Queued {
    at: Instant,
    seq: u64,
    event: Event,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic event queue: pops strictly in `(time, insertion order)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Queued>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue::default()
    }

    pub fn push(&mut self, at: Instant, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Queued { at, seq, event }));
    }

    pub fn pop(&mut self) -> Option<(Instant, Event)> {
        self.heap.pop().map(|Reverse(q)| (q.at, q.event))
    }

    pub fn peek_time(&self) -> Option<Instant> {
        self.heap.peek().map(|Reverse(q)| q.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.push(Instant(10), Event::Timer { elem: 0, token: 1 });
        q.push(Instant(5), Event::Timer { elem: 0, token: 2 });
        q.push(Instant(10), Event::Timer { elem: 0, token: 3 });
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 1, 3], "time order, then insertion order");
    }

    #[test]
    fn peek_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Instant(7), Event::Timer { elem: 1, token: 0 });
        assert_eq!(q.peek_time(), Some(Instant(7)));
        assert_eq!(q.len(), 1);
    }
}
