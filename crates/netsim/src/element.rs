//! The `Element` trait: anything that sits on the path and processes
//! packets — hosts, middleboxes, and the censor tap.

use crate::rng::SimRng;
use crate::time::{Duration, Instant};
use intang_packet::Wire;
use intang_telemetry::{GaugeSample, MetricsSheet};

/// Which way a packet is traveling along the path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the client (element 0) toward the server (last element).
    ToServer,
    /// From the server back toward the client.
    ToClient,
}

impl Direction {
    pub fn reversed(self) -> Direction {
        match self {
            Direction::ToServer => Direction::ToClient,
            Direction::ToClient => Direction::ToServer,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::ToServer => "->",
            Direction::ToClient => "<-",
        })
    }
}

/// One packet emission requested by an element.
#[derive(Debug)]
pub(crate) struct Emission {
    pub dir: Direction,
    pub wire: Wire,
    pub delay: Duration,
}

/// Context handed to an element while it runs. Lets it emit packets,
/// schedule timers, and draw randomness — all recorded by the simulation so
/// the run stays deterministic.
pub struct Ctx<'a> {
    pub now: Instant,
    pub rng: &'a mut SimRng,
    pub(crate) emissions: Vec<Emission>,
    pub(crate) timers: Vec<(Instant, u64)>,
}

impl<'a> Ctx<'a> {
    #[cfg(test)]
    pub(crate) fn new(now: Instant, rng: &'a mut SimRng) -> Self {
        Ctx {
            now,
            rng,
            emissions: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Build a context around caller-provided scratch buffers (must be
    /// empty). The simulation lends its reusable buffers here so the event
    /// loop allocates nothing per event once the buffers have grown.
    pub(crate) fn with_buffers(now: Instant, rng: &'a mut SimRng, emissions: Vec<Emission>, timers: Vec<(Instant, u64)>) -> Self {
        debug_assert!(emissions.is_empty() && timers.is_empty());
        Ctx {
            now,
            rng,
            emissions,
            timers,
        }
    }

    /// Send `wire` onward in direction `dir` immediately (from this
    /// element's position). For an in-path element handling a packet this is
    /// "forward it"; for a host it is "transmit".
    pub fn send(&mut self, dir: Direction, wire: Wire) {
        self.send_delayed(dir, wire, Duration::ZERO);
    }

    /// Send after a local processing delay (still from this element's
    /// position — link latency is added on top by the simulation).
    pub fn send_delayed(&mut self, dir: Direction, wire: Wire, delay: Duration) {
        self.emissions.push(Emission { dir, wire, delay });
    }

    /// Arrange for `on_timer(token)` to fire at absolute time `at`.
    pub fn set_timer(&mut self, at: Instant, token: u64) {
        self.timers.push((at, token));
    }
}

/// A path element. Elements are positioned on a linear path and see every
/// packet that traverses their position.
pub trait Element {
    /// Short name for traces ("client", "GFW", "NAT", ...).
    fn name(&self) -> &str;

    /// A packet arrived at this element traveling in `dir`.
    ///
    /// In-path elements (middleboxes) forward it — possibly modified — with
    /// `ctx.send(dir, wire)`, or drop it by not sending. On-path elements
    /// (the censor tap) MUST forward the original wire unchanged and may
    /// additionally inject packets in either direction. Hosts consume
    /// packets addressed to them.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire);

    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Export this element's counters into a [`MetricsSheet`]. Called once
    /// per trial by [`crate::Simulation::export_metrics`] — never on the
    /// packet hot path — so elements keep incrementing their own cheap
    /// local counters and translate them here. Default: nothing to export.
    fn export_metrics(&self, _m: &mut MetricsSheet) {}

    /// Contribute instantaneous gauge readings (table sizes, tracked-flow
    /// counts) to a telemetry time-series sample. Called on the sim-time
    /// cadence only when gauge sampling is enabled (see
    /// [`intang_telemetry::series`]); must be read-only so sampling can
    /// never perturb the run. Default: nothing to report.
    fn sample_gauges(&self, _g: &mut GaugeSample) {}
}

/// A trivial element that forwards everything untouched (useful as a
/// placeholder middlebox slot and in tests).
#[derive(Debug, Default)]
pub struct PassThrough {
    label: String,
}

impl PassThrough {
    pub fn new(label: &str) -> Self {
        PassThrough { label: label.to_string() }
    }
}

impl Element for PassThrough {
    fn name(&self) -> &str {
        if self.label.is_empty() {
            "pass"
        } else {
            &self.label
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
        ctx.send(dir, wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reverses() {
        assert_eq!(Direction::ToServer.reversed(), Direction::ToClient);
        assert_eq!(Direction::ToClient.reversed(), Direction::ToServer);
    }

    #[test]
    fn ctx_records_emissions_and_timers() {
        let mut rng = SimRng::seed_from(1);
        let mut ctx = Ctx::new(Instant(5), &mut rng);
        ctx.send(Direction::ToServer, vec![1, 2, 3].into());
        ctx.send_delayed(Direction::ToClient, vec![4].into(), Duration::from_millis(20));
        ctx.set_timer(Instant(1_000), 42);
        assert_eq!(ctx.emissions.len(), 2);
        assert_eq!(ctx.emissions[1].delay, Duration::from_millis(20));
        assert_eq!(ctx.timers, vec![(Instant(1_000), 42)]);
    }
}
