//! # intang-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on which
//! the YSINM reproduction runs its clients, middleboxes, censor taps and
//! servers.
//!
//! A [`Simulation`] owns a linear **path** of [`Element`]s — exactly the
//! paper's threat model (Fig. 1):
//!
//! ```text
//! [0] client host ── link ── [1..] client-side middleboxes ── link ──
//!     [k] GFW tap ── link ── [..] server-side middleboxes ── link ── [n-1] server host
//! ```
//!
//! Every link models latency, loss and a number of routers. Routers
//! decrement the IPv4 TTL in place; a packet whose TTL expires is dropped
//! and a real ICMP time-exceeded datagram is sent back — which is what makes
//! INTANG's tcptraceroute-style hop estimation (§7.1) work inside the
//! simulator.
//!
//! Determinism: the event queue is ordered by `(time, sequence)` and all
//! randomness flows from one seeded [`rng::SimRng`], so a `(scenario, seed)`
//! pair always reproduces the same run.

pub mod batch;
pub mod bridge;
pub mod element;
pub mod event;
pub mod faults;
pub mod flight;
pub mod link;
pub mod pcap;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use element::{Ctx, Direction, Element};
pub use faults::{GilbertElliott, LinkFaults};
pub use link::Link;
pub use rng::SimRng;
pub use sim::Simulation;
pub use time::{Duration, Instant};
pub use trace::{Trace, TraceEvent, TraceId, TracePoint};
