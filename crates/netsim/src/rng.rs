//! Deterministic randomness for the simulation.
//!
//! One `SimRng` per simulation; every stochastic decision (link loss, GFW
//! overload misses, middlebox "sometimes drops", reset TTL jitter) draws
//! from it, so a seed fully determines a run.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seedable simulation RNG with convenience helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    pub fn seed_from(seed: u64) -> SimRng {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.inner.random::<f64>() < p
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.random_range(lo..hi)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.random_range(0..n)
    }

    /// A fresh random u32 (e.g. an ISN or IP ident).
    pub fn next_u32(&mut self) -> u32 {
        self.inner.random()
    }

    /// A fresh random u16.
    pub fn next_u16(&mut self) -> u16 {
        self.inner.random()
    }

    /// Derive an independent child RNG (stable given the parent's state).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.inner.random())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SimRng::seed_from(42);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SimRng::seed_from(7);
        let mut child = a.fork();
        // The child stream should not be identical to the parent's
        // continued stream.
        let parent_next: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let child_next: Vec<u32> = (0..8).map(|_| child.next_u32()).collect();
        assert_ne!(parent_next, child_next);
    }
}
