//! Deterministic randomness for the simulation.
//!
//! One `SimRng` per simulation; every stochastic decision (link loss, GFW
//! overload misses, middlebox "sometimes drops", reset TTL jitter) draws
//! from it, so a seed fully determines a run.
//!
//! The generator is a self-contained xoshiro256++ (the same algorithm the
//! `rand` crate's `SmallRng` uses on 64-bit targets), seeded through
//! SplitMix64 — no external dependencies, so the workspace builds in
//! registry-less environments.

/// Seedable simulation RNG with convenience helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    pub fn seed_from(seed: u64) -> SimRng {
        // SplitMix64 expansion of the 64-bit seed into the full state, as
        // recommended by the xoshiro authors (and done by rand_core's
        // `seed_from_u64`).
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        // xoshiro256++ must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        SimRng { s }
    }

    /// The raw xoshiro256++ step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bernoulli draw: true with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        debug_assert!(lo < hi);
        lo + self.bounded(u64::from(hi - lo)) as u32
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.bounded(hi - lo)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.bounded(n as u64) as usize
    }

    /// Uniform draw in `[0, n)` via Lemire's multiply-shift reduction.
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// A fresh random u32 (e.g. an ISN or IP ident).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A fresh random u16.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Derive an independent child RNG (stable given the parent's state).
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next_u64();
        SimRng::seed_from(seed)
    }
}

/// Derive the seed of an independent per-lane RNG stream from a base seed
/// and a lane index (SplitMix64 finalizer over the pair). Sharded elements
/// (the GFW's censor lanes, the shim's per-shard draw streams) use this so
/// lane `i` produces the same stream no matter how lanes are grouped into
/// event domains — the property the parallel metropolis' byte-identity
/// rests on.
pub fn lane_seed(base: u64, lane: u32) -> u64 {
    let mut z = base ^ u64::from(lane).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6c61_6e65_5f72_6e67; // "lane_rng"
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SimRng::seed_from(42);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut r = SimRng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = r.range_u32(5, 15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
            let w = r.range_u64(100, 200);
            assert!((100..200).contains(&w));
            let i = r.index(7);
            assert!(i < 7);
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn lane_seeds_are_distinct_and_stable() {
        let a = lane_seed(7, 0);
        let b = lane_seed(7, 1);
        let c = lane_seed(8, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(lane_seed(7, 0), a, "pure function of (base, lane)");
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SimRng::seed_from(7);
        let mut child = a.fork();
        // The child stream should not be identical to the parent's
        // continued stream.
        let parent_next: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let child_next: Vec<u32> = (0..8).map(|_| child.next_u32()).collect();
        assert_ne!(parent_next, child_next);
    }
}
