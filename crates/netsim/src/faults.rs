//! Per-link fault mechanics: burst loss (Gilbert–Elliott), reordering,
//! duplication, latency jitter, and MTU clamps.
//!
//! This module holds the *mechanisms* the event loop applies in
//! [`crate::Simulation`]; the seeded plan deciding which link suffers which
//! fault lives in the `intang-faults` crate (which depends on this one).
//!
//! The inert [`LinkFaults::default`] performs **zero** extra RNG draws and
//! adds zero latency inside `Simulation::transmit`, so a fault-free
//! simulation stays byte-identical to one built before this module existed.

use crate::rng::SimRng;
use crate::time::Duration;

/// The classic two-state Gilbert–Elliott burst-loss channel.
///
/// Each packet first drives the state machine (good → bad with `p_enter`,
/// bad → good with `p_exit`), then is lost with the loss rate of the state
/// it landed in. Mean burst length is `1 / p_exit` packets.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    /// Per-packet probability of entering the bad (burst) state.
    pub p_enter: f64,
    /// Per-packet probability of leaving the bad state.
    pub p_exit: f64,
    /// Loss rate in the good state (typically the link's residual loss).
    pub loss_good: f64,
    /// Loss rate inside a burst.
    pub loss_bad: f64,
    in_burst: bool,
}

impl GilbertElliott {
    pub fn new(p_enter: f64, p_exit: f64, loss_good: f64, loss_bad: f64) -> GilbertElliott {
        GilbertElliott {
            p_enter,
            p_exit,
            loss_good,
            loss_bad,
            in_burst: false,
        }
    }

    /// Advance the channel by one packet; returns true when the packet is
    /// lost. All randomness comes from `rng`, so a replay from the same
    /// seed reproduces the same burst schedule.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        if self.in_burst {
            if rng.chance(self.p_exit) {
                self.in_burst = false;
            }
        } else if rng.chance(self.p_enter) {
            self.in_burst = true;
        }
        let p = if self.in_burst { self.loss_bad } else { self.loss_good };
        rng.chance(p)
    }

    pub fn in_burst(&self) -> bool {
        self.in_burst
    }
}

/// Fault set applied to one link, carried on [`crate::Link`].
///
/// The default is inert: every branch in `Simulation::transmit` guards on
/// the zero value, so a default-faulted link draws no extra randomness and
/// delivers with unmodified timing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkFaults {
    /// Burst-loss channel; when set it *replaces* the link's independent
    /// `loss` draw (configure `loss_good` to keep residual loss).
    pub burst: Option<GilbertElliott>,
    /// Probability a delivered packet is held back `reorder_delay` extra —
    /// long enough that packets emitted after it arrive first.
    pub reorder_prob: f64,
    /// Extra in-flight delay for reordered packets.
    pub reorder_delay: Duration,
    /// Probability a delivered packet arrives twice (second copy trails
    /// shortly behind the first).
    pub dup_prob: f64,
    /// Uniform extra latency in `[0, jitter]` added to each traversal.
    pub jitter: Duration,
    /// Drop frames whose wire length exceeds this clamp (path-MTU fault).
    pub mtu: Option<usize>,
}

impl LinkFaults {
    /// True when this fault set changes nothing — the fast-path guard the
    /// event loop uses to keep fault-free runs byte-identical.
    pub fn is_inert(&self) -> bool {
        self.burst.is_none() && self.reorder_prob <= 0.0 && self.dup_prob <= 0.0 && self.jitter == Duration::ZERO && self.mtu.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_faults_are_inert() {
        assert!(LinkFaults::default().is_inert());
        let f = LinkFaults {
            dup_prob: 0.1,
            ..LinkFaults::default()
        };
        assert!(!f.is_inert());
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        let mut rng = SimRng::seed_from(7);
        let mut ge = GilbertElliott::new(0.05, 0.25, 0.0, 1.0);
        let losses: Vec<bool> = (0..2_000).map(|_| ge.step(&mut rng)).collect();
        let lost = losses.iter().filter(|&&l| l).count();
        // Stationary bad-state share is p_enter / (p_enter + p_exit) ≈ 1/6.
        assert!((150..600).contains(&lost), "burst loss calibrated, got {lost}");
        // Losses cluster: count runs of consecutive losses vs. singletons.
        let runs = losses.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(
            runs > lost / 4,
            "losses arrive in bursts ({runs} adjacent pairs over {lost} losses)"
        );
    }

    #[test]
    fn gilbert_elliott_replays_identically() {
        let run = |seed: u64| -> Vec<bool> {
            let mut rng = SimRng::seed_from(seed);
            let mut ge = GilbertElliott::new(0.08, 0.3, 0.01, 0.8);
            (0..500).map(|_| ge.step(&mut rng)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
