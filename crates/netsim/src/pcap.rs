//! Classic libpcap export for simulated traffic.
//!
//! Packet captures are how the paper's measurements were actually analyzed;
//! being able to open a simulated run in Wireshark closes the tooling loop.
//! The writer emits the classic (non-ng) format with the `LINKTYPE_RAW`
//! link type (value 101): each record is a bare IPv4 datagram, exactly what
//! travels through the simulator.

use crate::time::Instant;

/// libpcap global header magic (microsecond timestamps, host endian).
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_RAW: packets start directly with the IPv4/IPv6 header.
const LINKTYPE_RAW: u32 = 101;

/// An in-memory pcap file under construction.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: Vec<u8>,
    packets: usize,
}

impl Default for PcapWriter {
    fn default() -> Self {
        PcapWriter::new()
    }
}

impl PcapWriter {
    pub fn new() -> PcapWriter {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        PcapWriter { buf, packets: 0 }
    }

    /// Append one datagram captured at simulated time `at`.
    pub fn record(&mut self, at: Instant, wire: &[u8]) {
        let secs = (at.micros() / 1_000_000) as u32;
        let usecs = (at.micros() % 1_000_000) as u32;
        self.buf.extend_from_slice(&secs.to_le_bytes());
        self.buf.extend_from_slice(&usecs.to_le_bytes());
        self.buf.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&(wire.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(wire);
        self.packets += 1;
    }

    pub fn packet_count(&self) -> usize {
        self.packets
    }

    /// The complete pcap file bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Write to disk.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, &self.buf)
    }
}

/// Parse-back support (used by tests and by tools that post-process their
/// own captures). Returns `(timestamp, datagram)` pairs.
pub fn parse(bytes: &[u8]) -> Option<Vec<(Instant, Vec<u8>)>> {
    if bytes.len() < 24 {
        return None;
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if magic != MAGIC {
        return None;
    }
    let linktype = u32::from_le_bytes(bytes[20..24].try_into().ok()?);
    if linktype != LINKTYPE_RAW {
        return None;
    }
    let mut out = Vec::new();
    let mut pos = 24;
    while pos + 16 <= bytes.len() {
        let secs = u32::from_le_bytes(bytes[pos..pos + 4].try_into().ok()?);
        let usecs = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().ok()?);
        let incl = u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().ok()?) as usize;
        pos += 16;
        if pos + incl > bytes.len() {
            return None;
        }
        out.push((
            Instant(u64::from(secs) * 1_000_000 + u64::from(usecs)),
            bytes[pos..pos + incl].to_vec(),
        ));
        pos += incl;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut w = PcapWriter::new();
        let p1 = vec![0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8];
        w.record(Instant(1_500_000), &p1);
        w.record(Instant(2_000_001), &[0u8; 40]);
        assert_eq!(w.packet_count(), 2);
        let parsed = parse(w.as_bytes()).expect("valid pcap");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, Instant(1_500_000));
        assert_eq!(parsed[0].1, p1);
        assert_eq!(parsed[1].0, Instant(2_000_001));
        assert_eq!(parsed[1].1.len(), 40);
    }

    #[test]
    fn header_is_libpcap_classic_raw() {
        let w = PcapWriter::new();
        let b = w.as_bytes();
        assert_eq!(b.len(), 24, "just the global header");
        assert_eq!(u32::from_le_bytes(b[0..4].try_into().unwrap()), 0xa1b2_c3d4);
        assert_eq!(u32::from_le_bytes(b[20..24].try_into().unwrap()), 101);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&[1, 2, 3]).is_none());
        assert!(parse(&[0u8; 24]).is_none(), "wrong magic");
        // Truncated record.
        let mut w = PcapWriter::new();
        w.record(Instant(1), &[0u8; 20]);
        let mut b = w.as_bytes().to_vec();
        b.truncate(b.len() - 5);
        assert!(parse(&b).is_none());
    }
}
