//! Links: latency, loss, and routers that decrement TTL.

use crate::faults::LinkFaults;
use crate::time::Duration;
use std::net::Ipv4Addr;

/// A link between two adjacent path elements, containing `hops` routers.
///
/// Each router decrements the IPv4 TTL; if it reaches zero the packet dies
/// there and the router answers with ICMP time-exceeded. Router addresses
/// are derived from `router_base` so traceroute output is stable.
#[derive(Debug, Clone)]
pub struct Link {
    /// One-way propagation + queueing latency for the whole link.
    pub latency: Duration,
    /// Independent loss probability applied once per traversal.
    pub loss: f64,
    /// Number of TTL-decrementing routers on this link (may be 0 for a
    /// same-rack hop, e.g. GFW devices co-located with the server, §7.1).
    pub hops: u8,
    /// Base address for router identities on this link.
    pub router_base: Ipv4Addr,
    /// Injected fault set (burst loss, reorder, dup, jitter, MTU clamp).
    /// Inert by default — see [`LinkFaults::is_inert`].
    pub faults: LinkFaults,
}

impl Link {
    pub fn new(latency: Duration, hops: u8) -> Link {
        Link {
            latency,
            loss: 0.0,
            hops,
            router_base: Ipv4Addr::new(172, 16, 0, 0),
            faults: LinkFaults::default(),
        }
    }

    pub fn with_loss(mut self, loss: f64) -> Link {
        self.loss = loss;
        self
    }

    pub fn with_faults(mut self, faults: LinkFaults) -> Link {
        self.faults = faults;
        self
    }

    pub fn with_router_base(mut self, base: Ipv4Addr) -> Link {
        self.router_base = base;
        self
    }

    /// Address of the `i`-th router on this link (1-based).
    pub fn router_addr(&self, i: u8) -> Ipv4Addr {
        let base = u32::from(self.router_base);
        Ipv4Addr::from(base.wrapping_add(u32::from(i)))
    }

    /// Per-router latency share (the total stays `latency`).
    pub fn per_hop_latency(&self) -> Duration {
        if self.hops == 0 {
            self.latency
        } else {
            Duration::from_micros(self.latency.micros() / u64::from(self.hops).max(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_addresses_are_distinct_and_stable() {
        let l = Link::new(Duration::from_millis(10), 4).with_router_base(Ipv4Addr::new(172, 16, 9, 0));
        let addrs: Vec<_> = (1..=4).map(|i| l.router_addr(i)).collect();
        assert_eq!(addrs[0], Ipv4Addr::new(172, 16, 9, 1));
        assert_eq!(addrs[3], Ipv4Addr::new(172, 16, 9, 4));
        let mut dedup = addrs.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
    }

    #[test]
    fn per_hop_latency_splits() {
        let l = Link::new(Duration::from_millis(10), 5);
        assert_eq!(l.per_hop_latency(), Duration::from_millis(2));
        let l0 = Link::new(Duration::from_millis(3), 0);
        assert_eq!(l0.per_hop_latency(), Duration::from_millis(3));
    }
}
