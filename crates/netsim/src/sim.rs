//! The simulation proper: a linear path of elements joined by links, driven
//! by a deterministic event loop.

use crate::element::{Ctx, Direction, Element, Emission};
use crate::event::{Event, EventQueue};
use crate::link::Link;
use crate::rng::SimRng;
use crate::time::{Duration, Instant};
use crate::trace::{NameId, Trace, TraceId, TraceKind, TracePoint};
use intang_packet::arena::Arena;
use intang_packet::{icmp, Wire};
use intang_telemetry::series::CADENCE_US;
use intang_telemetry::{Counter, GaugeId, GaugeSample, MetricsSheet, SeriesSheet, SpanId};
use std::cell::RefCell;

/// The six recycled `Simulation` construction buffers, in declaration
/// order: emission scratch, timer scratch, batch drain ring, element
/// table, element-name table, link table.
type SimScratchArenas = (
    Arena<Vec<Emission>>,
    Arena<Vec<(Instant, u64)>>,
    Arena<Vec<(Instant, Event)>>,
    Arena<Vec<Box<dyn Element>>>,
    Arena<Vec<NameId>>,
    Arena<Vec<Link>>,
);

thread_local! {
    /// Recycled buffers for `Simulation`s built on this thread: a sweep
    /// constructs one simulation per trial, and these vectors only ever
    /// need to *grow* — handing the grown capacity to the next trial
    /// removes the per-trial growth allocations (the three event-loop
    /// scratch buffers plus the element/name/link tables). Behavior is
    /// unaffected: leased vectors are always empty.
    static SCRATCH_POOL: RefCell<SimScratchArenas> = const {
        RefCell::new((
            Arena::new(4),
            Arena::new(4),
            Arena::new(4),
            Arena::new(4),
            Arena::new(4),
            Arena::new(4),
        ))
    };
}

/// A linear-path network simulation.
///
/// Elements are indexed left (client, 0) to right (server, n-1);
/// `links[i]` joins `elements[i]` and `elements[i+1]`.
///
/// ```
/// use intang_netsim::{Simulation, Link, Duration, Direction, Instant};
/// use intang_netsim::element::PassThrough;
///
/// let mut sim = Simulation::new(1);
/// sim.add_element(Box::new(PassThrough::new("client")));
/// sim.add_link(Link::new(Duration::from_millis(10), 3)); // 3 routers
/// sim.add_element(Box::new(PassThrough::new("server")));
///
/// let pkt = intang_packet::PacketBuilder::tcp(
///     "10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap(), 1000, 80,
/// ).build();
/// sim.inject_at(0, Direction::ToServer, pkt, Instant::ZERO);
/// sim.run_to_quiescence(100);
/// assert_eq!(sim.delivered, 1);
/// ```
pub struct Simulation {
    pub now: Instant,
    pub rng: SimRng,
    pub trace: Trace,
    elements: Vec<Box<dyn Element>>,
    /// Interned trace name per element, parallel to `elements`.
    element_names: Vec<NameId>,
    links: Vec<Link>,
    queue: EventQueue,
    /// Reusable per-event scratch buffers lent to `Ctx` (see `step`); kept
    /// here so the event loop stops allocating once they have grown.
    scratch_emissions: Vec<Emission>,
    scratch_timers: Vec<(Instant, u64)>,
    /// Reusable drain ring for [`Simulation::step_batch`]; like the other
    /// scratch buffers it grows once and is then lent out per batch.
    scratch_batch: Vec<(Instant, Event)>,
    /// Total packets that fully traversed at least one link (statistics).
    pub delivered: u64,
    /// Packets lost to link loss.
    pub lost: u64,
    /// Packets that died of TTL expiry.
    pub ttl_expired: u64,
    /// Events popped from the queue over the simulation's lifetime.
    pub events_processed: u64,
    /// Fault-layer statistics (all zero unless a link carries
    /// non-inert [`crate::faults::LinkFaults`]).
    pub duplicated: u64,
    pub reordered: u64,
    pub mtu_dropped: u64,
    /// Losses incurred while a Gilbert–Elliott channel was in its burst state.
    pub burst_losses: u64,
    /// Whether `intang-simcheck` invariant checking was enabled when this
    /// simulation was constructed; cached so the disabled-mode cost per
    /// hop is one field read.
    simcheck: bool,
    /// Whether batched dispatch was enabled when this simulation was
    /// constructed (see [`crate::batch`]); cached like `simcheck`.
    batching: bool,
    /// Batches dispatched / events dispatched in batches / log₂ batch-size
    /// histogram — plain integers on the hot path, folded into the
    /// process-wide [`crate::batch::stats`] on drop.
    batch_batches: u64,
    batch_events: u64,
    batch_hist: [u64; crate::batch::HIST_BUCKETS],
    /// Conservation accounting (simcheck): total transmissions attempted.
    sc_emitted: u64,
    /// Conservation accounting (simcheck): emissions past the edge of the
    /// world (no adjacent link in the emitted direction).
    sc_edge: u64,
    /// Gauge time-series sampler, present only when series telemetry was
    /// enabled at construction (see [`intang_telemetry::series`]). Boxed so
    /// the disabled-mode cost is one pointer-width `Option` check.
    series: Option<Box<SeriesRecorder>>,
    /// Flight recorder ring, present when flight recording or simcheck was
    /// enabled at construction (see [`crate::flight`]).
    flight: Option<Box<crate::flight::FlightRecorder>>,
}

/// Sim-time gauge sampler: samples every element plus the substrate gauges
/// on the [`CADENCE_US`] cadence as the event loop advances the clock.
struct SeriesRecorder {
    sheet: SeriesSheet,
    /// Next cadence tick index to sample (tick `k` samples at sim-time
    /// `k * CADENCE_US`).
    next_tick: u64,
    /// Thread-local live-buffer / lease counts at construction, so the
    /// gauges report this simulation's own footprint rather than whatever
    /// the surrounding sweep worker has outstanding.
    wire_base: u64,
    arena_base: u64,
}

impl Drop for Simulation {
    fn drop(&mut self) {
        // A panic mid-run takes the simulation down with it: dump the
        // flight ring to stderr so the crash report shows what the event
        // loop was doing right before.
        if std::thread::panicking() && self.flight.as_ref().is_some_and(|f| !f.is_empty()) {
            if let Some(dump) = self.flight_dump() {
                eprintln!("{dump}");
            }
        }
        // Diagnostics only: fold this run's batch accounting into the
        // process-wide totals (never into a MetricsSheet — batching on/off
        // must not change telemetry bytes).
        crate::batch::note_run(self.batch_batches, self.batch_events, &self.batch_hist);
        // Hand the grown scratch buffers to the next simulation on this
        // thread (cleared — only capacity is recycled).
        let mut emissions = std::mem::take(&mut self.scratch_emissions);
        let mut timers = std::mem::take(&mut self.scratch_timers);
        let mut batch = std::mem::take(&mut self.scratch_batch);
        let mut elements = std::mem::take(&mut self.elements);
        let mut element_names = std::mem::take(&mut self.element_names);
        let mut links = std::mem::take(&mut self.links);
        emissions.clear();
        timers.clear();
        batch.clear();
        elements.clear();
        element_names.clear();
        links.clear();
        let _ = SCRATCH_POOL.try_with(|p| {
            let mut p = p.borrow_mut();
            p.0.put(emissions);
            p.1.put(timers);
            p.2.put(batch);
            p.3.put(elements);
            p.4.put(element_names);
            p.5.put(links);
        });
    }
}

impl Simulation {
    pub fn new(seed: u64) -> Simulation {
        Simulation {
            now: Instant::ZERO,
            rng: SimRng::seed_from(seed),
            trace: Trace::new(),
            elements: SCRATCH_POOL.with(|p| p.borrow_mut().3.take_with(Vec::new)),
            element_names: SCRATCH_POOL.with(|p| p.borrow_mut().4.take_with(Vec::new)),
            links: SCRATCH_POOL.with(|p| p.borrow_mut().5.take_with(Vec::new)),
            queue: EventQueue::new(),
            scratch_emissions: SCRATCH_POOL.with(|p| p.borrow_mut().0.take_with(Vec::new)),
            scratch_timers: SCRATCH_POOL.with(|p| p.borrow_mut().1.take_with(Vec::new)),
            scratch_batch: SCRATCH_POOL.with(|p| p.borrow_mut().2.take_with(Vec::new)),
            delivered: 0,
            lost: 0,
            ttl_expired: 0,
            events_processed: 0,
            duplicated: 0,
            reordered: 0,
            mtu_dropped: 0,
            burst_losses: 0,
            simcheck: intang_simcheck::enabled(),
            batching: crate::batch::enabled(),
            batch_batches: 0,
            batch_events: 0,
            batch_hist: [0; crate::batch::HIST_BUCKETS],
            sc_emitted: 0,
            sc_edge: 0,
            series: intang_telemetry::series::enabled().then(|| {
                Box::new(SeriesRecorder {
                    sheet: SeriesSheet::new(),
                    next_tick: 0,
                    wire_base: intang_packet::wire::live_buffers(),
                    arena_base: intang_packet::arena::live(),
                })
            }),
            flight: (intang_simcheck::enabled() || crate::flight::enabled()).then(|| Box::new(crate::flight::FlightRecorder::new())),
        }
    }

    /// Append an element to the right end of the path; returns its index.
    /// Every element after the first must be preceded by [`Simulation::add_link`].
    pub fn add_element(&mut self, e: Box<dyn Element>) -> usize {
        assert!(
            self.elements.is_empty() || self.links.len() == self.elements.len(),
            "add_link must be called between add_element calls"
        );
        let name = self.trace.intern(e.name());
        self.elements.push(e);
        self.element_names.push(name);
        self.elements.len() - 1
    }

    /// Append the link that will join the last added element to the next.
    pub fn add_link(&mut self, l: Link) {
        assert!(!self.elements.is_empty(), "add an element before a link");
        assert_eq!(self.links.len(), self.elements.len() - 1, "one link per element gap");
        self.links.push(l);
    }

    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Deliver a packet to an element at a given time (test/bootstrap hook).
    pub fn inject_at(&mut self, elem: usize, dir: Direction, wire: Wire, at: Instant) {
        self.queue.push(
            at,
            Event::Deliver {
                elem,
                dir,
                wire,
                cause: None,
            },
        );
    }

    /// Schedule a timer for an element (bootstrap hook; elements normally
    /// use [`Ctx::set_timer`]).
    pub fn schedule_timer(&mut self, elem: usize, at: Instant, token: u64) {
        self.queue.push(at, Event::Timer { elem, token });
    }

    /// Run until the queue empties or `deadline` passes. Returns the number
    /// of events processed.
    ///
    /// With batching enabled (the default, see [`crate::batch`]), each
    /// iteration drains the whole equal-timestamp run at the head of the
    /// queue via [`Simulation::step_batch`]; the batch shares the head's
    /// timestamp, so the deadline test on the head covers every event in
    /// it. Result-identical to single-step mode either way.
    pub fn run_until(&mut self, deadline: Instant) -> u64 {
        let _s = intang_telemetry::span(SpanId::EventLoop);
        let mut n = 0;
        if self.batching {
            while let Some(t) = self.queue.peek_time() {
                if t > deadline {
                    break;
                }
                if self.series.is_some() {
                    self.sample_series_upto(t);
                }
                n += self.step_batch();
            }
        } else {
            while let Some(t) = self.queue.peek_time() {
                if t > deadline {
                    break;
                }
                if self.series.is_some() {
                    self.sample_series_upto(t);
                }
                self.step();
                n += 1;
            }
        }
        if self.series.is_some() {
            self.sample_series_upto(deadline);
        }
        if self.now < deadline {
            self.now = deadline;
        }
        n
    }

    /// Run until the queue is fully drained (or `max_events` as a runaway
    /// guard). Returns events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Sample every cadence tick up to and including `upto` into the gauge
    /// series. Called just before dispatching the events at `upto` (and
    /// once with the deadline when the loop idles out), so tick `k`
    /// observes the world as it stood *before* any event at `k·cadence` —
    /// a pure function of the event history, independent of how the sweep
    /// schedules trials across workers.
    fn sample_series_upto(&mut self, upto: Instant) {
        let Some(mut rec) = self.series.take() else { return };
        while rec.next_tick.saturating_mul(CADENCE_US) <= upto.0 {
            let mut g = GaugeSample::default();
            for e in &self.elements {
                e.sample_gauges(&mut g);
            }
            g.add(GaugeId::EventQueueDepth, self.queue.len() as u64);
            g.add(GaugeId::InflightPackets, self.queue.deliver_len() as u64);
            g.add(
                GaugeId::WireBuffers,
                intang_packet::wire::live_buffers().saturating_sub(rec.wire_base),
            );
            g.add(GaugeId::ArenaLeased, intang_packet::arena::live().saturating_sub(rec.arena_base));
            rec.sheet.push_sample(&g);
            rec.next_tick += 1;
        }
        self.series = Some(rec);
    }

    /// Detach the accumulated gauge series (if sampling was enabled).
    /// Subsequent `run_until` calls would resume sampling into a fresh
    /// sheet; trials take it once at the end.
    pub fn take_series(&mut self) -> Option<Box<SeriesSheet>> {
        self.series.take().map(|rec| Box::new(rec.sheet))
    }

    /// Snapshot every element's gauges plus the queue-depth substrate
    /// gauges at the current instant — the manual-sampling hook for
    /// drivers that run several simulations on one shared cadence (the
    /// parallel metropolis domains) and zip-sum the raw samples
    /// themselves. The thread-relative pool gauges (`WireBuffers`,
    /// `ArenaLeased`) are deliberately omitted: they measure a *thread's*
    /// outstanding buffers and cannot be decomposed across domains.
    pub fn sample_gauges_now(&self) -> GaugeSample {
        let mut g = GaugeSample::default();
        for e in &self.elements {
            e.sample_gauges(&mut g);
        }
        g.add(GaugeId::EventQueueDepth, self.queue.len() as u64);
        g.add(GaugeId::InflightPackets, self.queue.deliver_len() as u64);
        g
    }

    /// Render the flight-recorder ring (if one is attached), resolving
    /// element indices to their names.
    pub fn flight_dump(&self) -> Option<String> {
        self.flight
            .as_ref()
            .map(|f| f.render(|i| self.elements.get(i).map_or_else(|| format!("elem{i}"), |e| e.name().to_string())))
    }

    /// Pre-dispatch invariants for a popped head time: clock monotonicity
    /// and queue-structure coherence. One enablement read per call — which
    /// batching turns into one per *batch*.
    fn pre_dispatch_checks(&mut self, at: Instant) {
        if self.simcheck {
            if at < self.now {
                let now = self.now;
                intang_simcheck::report(intang_simcheck::Family::TimeMonotonicity, || {
                    format!("event at {at:?} popped while the clock was already at {now:?}")
                });
            }
            if let Some(desc) = self.queue.structural_imbalance() {
                intang_simcheck::report(intang_simcheck::Family::Conservation, || desc);
            }
        } else {
            debug_assert!(at >= self.now, "time went backwards");
        }
    }

    /// Process a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        self.pre_dispatch_checks(at);
        self.now = at;
        self.events_processed += 1;
        let tracing = self.trace.is_enabled();
        self.dispatch(at, event, tracing);
        true
    }

    /// Drain and process the entire equal-timestamp run at the head of the
    /// queue: one clock update, one trace-enablement check and one
    /// simcheck-enablement load for the whole run, with the events
    /// dispatched in exact pop order (so emissions are appended in pop
    /// order and `(time, insertion-seq)` semantics are untouched — events
    /// pushed *by* the batch carry later seqs and drain in a later batch,
    /// exactly as under single-stepping). Returns the number of events
    /// processed (0 = queue empty).
    pub fn step_batch(&mut self) -> u64 {
        let mut ring = std::mem::take(&mut self.scratch_batch);
        debug_assert!(ring.is_empty());
        let n = self.queue.pop_batch(&mut ring);
        if n == 0 {
            self.scratch_batch = ring;
            return 0;
        }
        let at = ring[0].0;
        self.pre_dispatch_checks(at);
        self.now = at;
        self.events_processed += n as u64;
        self.batch_batches += 1;
        self.batch_events += n as u64;
        self.batch_hist[crate::batch::bucket(n as u64)] += 1;
        let tracing = self.trace.is_enabled();
        for (at, event) in ring.drain(..) {
            self.dispatch(at, event, tracing);
        }
        self.scratch_batch = ring;
        n as u64
    }

    /// Deliver one already-popped event to its element and apply the
    /// effects. `at` is the event's timestamp (== `self.now` by the time
    /// this runs; passed through to keep trace records exact). `tracing`
    /// is the caller's hoisted `trace.is_enabled()` read — per batch in
    /// [`Simulation::step_batch`], per event in [`Simulation::step`].
    fn dispatch(&mut self, at: Instant, event: Event, tracing: bool) {
        if let Some(f) = &mut self.flight {
            f.record(crate::flight::FlightRec::of(at, &event));
        }
        // Lend the simulation's scratch buffers to the element context so no
        // Vec is allocated per event; they come back (drained, capacity
        // intact) after the effects are applied.
        let scratch_em = std::mem::take(&mut self.scratch_emissions);
        let scratch_tm = std::mem::take(&mut self.scratch_timers);
        let (mut emissions, mut timers);
        match event {
            Event::Deliver { elem, dir, wire, cause } => {
                // Lineage: the arrival is caused by the emission that put
                // the packet in flight; everything the element now emits is
                // caused by this arrival. The `tracing` guard keeps the
                // disabled-trace hot path free of argument construction.
                let arrive_id = if tracing {
                    self.trace.record(
                        at,
                        TracePoint::Element {
                            index: elem,
                            name: self.element_names[elem],
                        },
                        TraceKind::Arrive,
                        dir,
                        cause,
                        intang_packet::summarize(&wire),
                    )
                } else {
                    None
                };
                let mut ctx = Ctx::with_buffers(at, &mut self.rng, scratch_em, scratch_tm);
                self.elements[elem].on_packet(&mut ctx, dir, wire);
                (emissions, timers) = (ctx.emissions, ctx.timers);
                self.apply_effects(elem, arrive_id, &mut emissions, &mut timers);
            }
            Event::Timer { elem, token } => {
                let mut ctx = Ctx::with_buffers(at, &mut self.rng, scratch_em, scratch_tm);
                self.elements[elem].on_timer(&mut ctx, token);
                (emissions, timers) = (ctx.emissions, ctx.timers);
                self.apply_effects(elem, None, &mut emissions, &mut timers);
            }
        }
        self.scratch_emissions = emissions;
        self.scratch_timers = timers;
    }

    fn apply_effects(&mut self, from: usize, cause: Option<TraceId>, emissions: &mut Vec<Emission>, timers: &mut Vec<(Instant, u64)>) {
        for (mut at, token) in timers.drain(..) {
            if at < self.now {
                at = self.now;
            }
            self.queue.push(at, Event::Timer { elem: from, token });
        }
        for em in emissions.drain(..) {
            self.transmit(from, em, cause);
        }
    }

    /// Move a packet from element `from` across the adjacent link in
    /// `em.dir`, applying TTL decrements, loss and latency. `cause` is the
    /// trace id of the arrival that provoked the emission (lineage).
    fn transmit(&mut self, from: usize, em: Emission, cause: Option<TraceId>) {
        let Emission { dir, mut wire, delay } = em;
        let emit_id = if self.trace.is_enabled() {
            self.trace.record(
                self.now,
                TracePoint::Element {
                    index: from,
                    name: self.element_names[from],
                },
                TraceKind::Emit,
                dir,
                cause,
                intang_packet::summarize(&wire),
            )
        } else {
            None
        };
        if self.simcheck {
            self.check_emission(&mut wire, from);
        }
        self.sc_emitted += 1;
        let link_idx = match dir {
            Direction::ToServer => {
                if from + 1 >= self.elements.len() {
                    self.sc_edge += 1;
                    return; // emitted past the right edge of the world
                }
                from
            }
            Direction::ToClient => {
                if from == 0 {
                    self.sc_edge += 1;
                    return; // emitted past the left edge of the world
                }
                from - 1
            }
        };
        let to = match dir {
            Direction::ToServer => from + 1,
            Direction::ToClient => from - 1,
        };
        // Copy out the link's scalar fields rather than cloning the whole
        // struct per transmit; the router address is derived on demand.
        let (hops, latency, loss, per_hop) = {
            let l = &self.links[link_idx];
            (l.hops, l.latency, l.loss, l.per_hop_latency())
        };
        let depart = self.now + delay;

        // Walk the routers in one step: a single TTL writedown plus one
        // checksum refresh is byte-identical to per-hop decrements, and
        // `Wire::decrement_ttl` keeps the cached header index warm (TTL and
        // checksum are not indexed fields). Unparseable payloads glide
        // through unrouted, exactly as before.
        if hops > 0 && wire.ttl().is_some() {
            let ttl0 = wire.ttl().expect("checked above");
            if ttl0 > hops {
                wire.decrement_ttl(hops);
            } else {
                // Dies at the router that writes TTL 0: hop `ttl0`, or the
                // first router when the packet already arrived with TTL 0.
                let hop = ttl0.max(1);
                wire.decrement_ttl(hop);
                self.ttl_expired += 1;
                let died_at = depart + per_hop * u64::from(hop);
                let ttl_id = if self.trace.is_enabled() {
                    self.trace.record(
                        died_at,
                        TracePoint::Link { after: link_idx, hop },
                        TraceKind::TtlExpired,
                        dir,
                        emit_id,
                        intang_packet::summarize(&wire),
                    )
                } else {
                    None
                };
                // ICMP time-exceeded travels back to the emitting side; its
                // lineage parent is the expiry that generated it.
                if let Some(te) = icmp::time_exceeded_for(self.links[link_idx].router_addr(hop), &wire) {
                    let back_at = died_at + per_hop * u64::from(hop);
                    self.queue.push(
                        back_at,
                        Event::Deliver {
                            elem: from,
                            dir: dir.reversed(),
                            wire: te,
                            cause: ttl_id,
                        },
                    );
                }
                return;
            }
        }

        // Fault layer. Every branch guards on the inert default, so a
        // fault-free link draws no extra randomness and keeps its timing —
        // the property that makes zero-intensity fault runs byte-identical.
        let faults_active = !self.links[link_idx].faults.is_inert();
        if faults_active {
            if let Some(mtu) = self.links[link_idx].faults.mtu {
                if wire.len() > mtu {
                    self.mtu_dropped += 1;
                    if self.trace.is_enabled() {
                        self.trace.record(
                            depart,
                            TracePoint::Link { after: link_idx, hop: 0 },
                            TraceKind::Loss,
                            dir,
                            emit_id,
                            intang_packet::summarize(&wire),
                        );
                    }
                    return;
                }
            }
        }

        let lost = if faults_active && self.links[link_idx].faults.burst.is_some() {
            // The burst channel replaces the link's independent loss draw.
            let ge = self.links[link_idx].faults.burst.as_mut().expect("checked above");
            let lost = ge.step(&mut self.rng);
            if lost && ge.in_burst() {
                self.burst_losses += 1;
            }
            lost
        } else {
            self.rng.chance(loss)
        };
        if lost {
            self.lost += 1;
            if self.trace.is_enabled() {
                self.trace.record(
                    depart,
                    TracePoint::Link { after: link_idx, hop: 0 },
                    TraceKind::Loss,
                    dir,
                    emit_id,
                    intang_packet::summarize(&wire),
                );
            }
            return;
        }

        let mut arrival = depart + latency;
        if faults_active {
            let f = &self.links[link_idx].faults;
            let (jitter, reorder_prob, reorder_delay, dup_prob) = (f.jitter, f.reorder_prob, f.reorder_delay, f.dup_prob);
            if jitter > Duration::ZERO {
                arrival = arrival + Duration::from_micros(self.rng.range_u64(0, jitter.micros() + 1));
            }
            if reorder_prob > 0.0 && self.rng.chance(reorder_prob) {
                // Held back long enough that later emissions overtake it.
                self.reordered += 1;
                arrival = arrival + reorder_delay;
            }
            if dup_prob > 0.0 && self.rng.chance(dup_prob) {
                self.duplicated += 1;
                self.delivered += 1;
                self.queue.push(
                    arrival + Duration::from_micros(150),
                    Event::Deliver {
                        elem: to,
                        dir,
                        wire: wire.clone(),
                        cause: emit_id,
                    },
                );
            }
        }

        self.delivered += 1;
        self.queue.push(
            arrival,
            Event::Deliver {
                elem: to,
                dir,
                wire,
                cause: emit_id,
            },
        );
    }

    /// Per-emission simcheck: the test-only corruption hook, header-cache
    /// coherency, and wire integrity (IPv4 + TCP checksums) of every
    /// packet an element puts on the wire. Only called when checking is
    /// enabled; read-only except for the armed corruption hook.
    fn check_emission(&mut self, wire: &mut Wire, from: usize) {
        if let Some(h) = wire.headers() {
            if h.tcp().is_some() && !h.is_fragment() && intang_simcheck::corruption_due() {
                // Armed fault injection: flip a TCP checksum byte so the
                // integrity check (and downstream, the shrinker) has a
                // real violation to chew on.
                let off = usize::from(h.ip_header_len) + 16;
                wire.bytes_mut()[off] ^= 0xAA;
            }
        }
        if let Some(desc) = wire.check_header_cache() {
            let name = self.elements[from].name();
            intang_simcheck::report(intang_simcheck::Family::HeaderIndex, || format!("emitted by {name}: {desc}"));
        }
        intang_simcheck::check_wire(wire, self.elements[from].name());
    }

    /// Simcheck: verify that every transmission is accounted for by
    /// exactly one outcome. Duplication delivers an extra copy without a
    /// new emission, hence the `delivered - duplicated` term.
    pub fn simcheck_reconcile(&self) {
        if !self.simcheck {
            return;
        }
        let accounted = self.sc_edge + self.ttl_expired + self.mtu_dropped + self.lost + (self.delivered - self.duplicated);
        if self.sc_emitted != accounted {
            intang_simcheck::report(intang_simcheck::Family::Conservation, || {
                format!(
                    "packet conservation broken: emitted {} but accounted {} \
                     (edge {} + ttl {} + mtu {} + lost {} + delivered {} - dup {})",
                    self.sc_emitted,
                    accounted,
                    self.sc_edge,
                    self.ttl_expired,
                    self.mtu_dropped,
                    self.lost,
                    self.delivered,
                    self.duplicated
                )
            });
        }
    }

    /// Test-only: skew the conservation ledger so self-tests can prove
    /// [`Simulation::simcheck_reconcile`] actually fires.
    #[doc(hidden)]
    pub fn simcheck_skew_for_test(&mut self) {
        self.sc_emitted += 1;
    }

    /// Immutable access to an element (for assertions in tests).
    pub fn element(&self, idx: usize) -> &dyn Element {
        self.elements[idx].as_ref()
    }

    /// Mutable access to a link — lets experiments model *route dynamics*
    /// (§3.4: "routes are dynamic and could change unexpectedly", making
    /// previously measured TTLs wrong) by changing hop counts mid-run.
    pub fn link_mut(&mut self, idx: usize) -> &mut Link {
        &mut self.links[idx]
    }

    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Mutable access to an element (for wiring in handles after build).
    pub fn element_mut(&mut self, idx: usize) -> &mut dyn Element {
        self.elements[idx].as_mut()
    }

    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Pending `Deliver` events (packets in flight), the number the
    /// internal series recorder reports as `InflightPackets`. Exposed so
    /// external samplers — the parallel metropolis driver samples each
    /// event domain between epoch chunks — can reproduce the built-in
    /// recorder's substrate gauges exactly.
    pub fn pending_deliveries(&self) -> usize {
        self.queue.deliver_len()
    }

    /// Export the simulation's substrate counters plus every element's
    /// counters into `m`. Elements are visited in path order (left to
    /// right), so the export is deterministic for a given topology.
    pub fn export_metrics(&self, m: &mut MetricsSheet) {
        let before_delivered = self.simcheck.then(|| m.counter(Counter::NetsimDelivered));
        m.add(Counter::NetsimEvents, self.events_processed);
        m.add(Counter::NetsimDelivered, self.delivered);
        m.add(Counter::NetsimLost, self.lost);
        m.add(Counter::NetsimTtlExpired, self.ttl_expired);
        m.add(Counter::NetsimDuplicated, self.duplicated);
        m.add(Counter::NetsimReordered, self.reordered);
        m.add(Counter::NetsimMtuDropped, self.mtu_dropped);
        m.add(Counter::NetsimBurstLosses, self.burst_losses);
        m.add(Counter::TraceEventsDropped, self.trace.dropped());
        if let Some(before) = before_delivered {
            // Reconcile the outcome ledger, and the ledger against what
            // the telemetry sheet actually absorbed.
            self.simcheck_reconcile();
            let delta = m.counter(Counter::NetsimDelivered) - before;
            if delta != self.delivered {
                let delivered = self.delivered;
                intang_simcheck::report(intang_simcheck::Family::Conservation, || {
                    format!(
                        "telemetry sheet absorbed {delta} delivered packets but the \
                         simulation counted {delivered}"
                    )
                });
            }
        }
        for e in &self.elements {
            e.export_metrics(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::PassThrough;
    use intang_packet::{Ipv4Packet, PacketBuilder, TcpFlags};
    use std::cell::RefCell;
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    /// Records everything that reaches it.
    struct Sink {
        got: Rc<RefCell<Vec<(Instant, Wire)>>>,
    }

    impl Element for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _dir: Direction, wire: Wire) {
            self.got.borrow_mut().push((ctx.now, wire));
        }
    }

    fn pkt(ttl: u8) -> Wire {
        PacketBuilder::tcp(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), 1000, 80)
            .flags(TcpFlags::SYN)
            .ttl(ttl)
            .build()
    }

    type DeliveryLog = Rc<RefCell<Vec<(Instant, Wire)>>>;

    fn two_node_sim(link: Link) -> (Simulation, DeliveryLog) {
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        sim.add_element(Box::new(PassThrough::new("client")));
        sim.add_link(link);
        sim.add_element(Box::new(Sink { got: got.clone() }));
        (sim, got)
    }

    #[test]
    fn packet_crosses_link_with_latency_and_ttl_decrement() {
        let (mut sim, got) = two_node_sim(Link::new(Duration::from_millis(10), 3));
        // Injecting a ToServer packet *at* element 0 makes the pass-through
        // client forward it onto the link.
        sim.inject_at(0, Direction::ToServer, pkt(64), Instant::ZERO);
        sim.run_to_quiescence(100);
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        let (at, wire) = &got[0];
        assert_eq!(*at, Instant(10_000));
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert_eq!(ip.ttl(), 61, "three routers decremented TTL");
        assert!(ip.verify_header_checksum());
    }

    #[test]
    fn ttl_expiry_stops_packet_short_of_destination() {
        let (mut sim, got) = two_node_sim(Link::new(Duration::from_millis(9), 3));
        // TTL 2 dies at the second router of a 3-hop link.
        sim.inject_at(0, Direction::ToServer, pkt(2), Instant::ZERO);
        sim.run_to_quiescence(100);
        assert!(got.borrow().is_empty(), "packet must not reach the sink");
        assert_eq!(sim.ttl_expired, 1);
        assert_eq!(sim.delivered, 0);
    }

    #[test]
    fn icmp_reaches_original_sender_through_elements() {
        // client(sink-recorder that also forwards) - link(5 hops) - server
        struct Fwd {
            got: Rc<RefCell<Vec<Wire>>>,
        }
        impl Element for Fwd {
            fn name(&self) -> &str {
                "client"
            }
            fn on_packet(&mut self, ctx: &mut Ctx<'_>, dir: Direction, wire: Wire) {
                if dir == Direction::ToClient {
                    self.got.borrow_mut().push(wire);
                } else {
                    ctx.send(dir, wire);
                }
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(3);
        sim.add_element(Box::new(Fwd { got: got.clone() }));
        sim.add_link(Link::new(Duration::from_millis(20), 5));
        sim.add_element(Box::new(PassThrough::new("server")));
        sim.inject_at(0, Direction::ToServer, pkt(3), Instant::ZERO);
        sim.run_to_quiescence(100);
        let got = got.borrow();
        assert_eq!(got.len(), 1, "ICMP time-exceeded came back to the client");
        let (router, quote) = intang_packet::icmp::parse_time_exceeded(&got[0]).unwrap();
        assert_eq!(quote.orig_dst, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(quote.dst_port, 80);
        // Died at hop 3 of the link after element 0.
        assert_eq!(router, sim.links[0].router_addr(3));
    }

    #[test]
    fn lossy_link_drops_deterministically() {
        let link = Link::new(Duration::from_millis(1), 1).with_loss(0.5);
        let (mut sim, got) = two_node_sim(link);
        for i in 0..100 {
            sim.inject_at(0, Direction::ToServer, pkt(64), Instant(i * 1_000));
        }
        sim.run_to_quiescence(1_000);
        let received = got.borrow().len();
        assert_eq!(received as u64, sim.delivered);
        assert_eq!(sim.lost + sim.delivered, 100);
        assert!((30..70).contains(&received), "loss roughly calibrated, got {received}");

        // Replay with the same seed: identical outcome.
        let link = Link::new(Duration::from_millis(1), 1).with_loss(0.5);
        let (mut sim2, got2) = two_node_sim(link);
        for i in 0..100 {
            sim2.inject_at(0, Direction::ToServer, pkt(64), Instant(i * 1_000));
        }
        sim2.run_to_quiescence(1_000);
        assert_eq!(got2.borrow().len(), received);
    }

    #[test]
    fn run_until_cannot_double_pop_across_the_deadline() {
        // Regression guard for the deadline boundary: an event scheduled
        // exactly AT the deadline runs in that call (once), later events
        // stay queued, and re-running with the same deadline is a no-op.
        struct TimerBox {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Element for TimerBox {
            fn name(&self) -> &str {
                "t"
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _d: Direction, _w: Wire) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, token: u64) {
                self.fired.borrow_mut().push(token);
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        sim.add_element(Box::new(TimerBox { fired: fired.clone() }));
        sim.schedule_timer(0, Instant(1_000), 1);
        sim.schedule_timer(0, Instant(2_000), 2); // exactly at the deadline
        sim.schedule_timer(0, Instant(3_000), 3);

        assert_eq!(sim.run_until(Instant(2_000)), 2, "boundary event included once");
        assert_eq!(*fired.borrow(), vec![1, 2]);
        assert_eq!(sim.now, Instant(2_000));
        assert_eq!(sim.pending_events(), 1, "post-deadline event still queued");

        assert_eq!(sim.run_until(Instant(2_000)), 0, "same deadline re-run is a no-op");
        assert_eq!(*fired.borrow(), vec![1, 2]);

        assert_eq!(sim.run_until(Instant(5_000)), 1);
        assert_eq!(*fired.borrow(), vec![1, 2, 3], "each event popped exactly once");
        assert_eq!(sim.now, Instant(5_000), "clock advances to the idle deadline");
    }

    #[test]
    fn batched_run_matches_single_step_run() {
        // Same seed, same injected load (including same-time collisions and
        // loss draws): batched and single-step dispatch must agree on every
        // observable — clock, counters, deliveries and the trace.
        let build_and_run = |batch: bool| {
            let prev = crate::batch::set_thread(Some(batch));
            let link = Link::new(Duration::from_millis(1), 2).with_loss(0.3);
            let (mut sim, got) = two_node_sim(link);
            sim.trace.enable();
            for i in 0..60u64 {
                // Three same-time injections per wave → real batches.
                let t = Instant((i / 3) * 500);
                sim.inject_at(0, Direction::ToServer, pkt(64), t);
            }
            let n = sim.run_until(Instant(1_000_000));
            crate::batch::set_thread(prev);
            let deliveries: Vec<(Instant, Vec<u8>)> = got.borrow().iter().map(|(at, w)| (*at, w.to_vec())).collect();
            let trace: Vec<String> = sim.trace.events().iter().map(|e| format!("{e:?}")).collect();
            (n, sim.now, sim.delivered, sim.lost, sim.events_processed, deliveries, trace)
        };
        let single = build_and_run(false);
        let batched = build_and_run(true);
        assert_eq!(single, batched);
    }

    #[test]
    fn lineage_threads_from_injection_to_delivery() {
        use crate::trace::TraceKind;
        let (mut sim, _got) = two_node_sim(Link::new(Duration::from_millis(10), 3));
        sim.trace.enable();
        sim.inject_at(0, Direction::ToServer, pkt(64), Instant::ZERO);
        sim.run_to_quiescence(100);
        let events = sim.trace.events();
        // inject → Arrive(client, no parent) → Emit(client, parent=arrive)
        // → Arrive(sink, parent=emit)
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, TraceKind::Arrive);
        assert_eq!(events[0].parent, None, "injected packet has no cause");
        assert_eq!(events[1].kind, TraceKind::Emit);
        assert_eq!(events[1].parent, Some(events[0].id));
        assert_eq!(events[2].kind, TraceKind::Arrive);
        assert_eq!(events[2].parent, Some(events[1].id));
        // The rendered lineage of the final arrival walks back to the root.
        let lineage = sim.trace.render_lineage(events[2].id);
        assert_eq!(lineage.lines().count(), 3, "{lineage}");
    }

    #[test]
    fn icmp_lineage_points_at_the_ttl_expiry() {
        use crate::trace::TraceKind;
        let (mut sim, _got) = two_node_sim(Link::new(Duration::from_millis(9), 3));
        sim.trace.enable();
        sim.inject_at(0, Direction::ToServer, pkt(2), Instant::ZERO);
        sim.run_to_quiescence(100);
        let events = sim.trace.events();
        let ttl = events.iter().find(|e| e.kind == TraceKind::TtlExpired).expect("ttl event");
        let icmp_arrive = events
            .iter()
            .find(|e| e.kind == TraceKind::Arrive && e.parent == Some(ttl.id))
            .expect("ICMP arrival parented on the expiry");
        assert_eq!(icmp_arrive.dir, Direction::ToClient);
    }

    #[test]
    fn export_metrics_reports_substrate_counters() {
        use intang_telemetry::{Counter, MetricsSheet};
        let (mut sim, _got) = two_node_sim(Link::new(Duration::from_millis(10), 3));
        sim.inject_at(0, Direction::ToServer, pkt(64), Instant::ZERO);
        sim.run_to_quiescence(100);
        let mut m = MetricsSheet::new();
        sim.export_metrics(&mut m);
        assert_eq!(m.counter(Counter::NetsimDelivered), 1);
        assert_eq!(m.counter(Counter::NetsimEvents), sim.events_processed);
        assert!(sim.events_processed >= 2);
        assert_eq!(m.counter(Counter::TraceEventsDropped), 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerBox {
            fired: Rc<RefCell<Vec<u64>>>,
        }
        impl Element for TimerBox {
            fn name(&self) -> &str {
                "t"
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _d: Direction, _w: Wire) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired.borrow_mut().push(token);
                if token == 1 {
                    ctx.set_timer(ctx.now + Duration::from_millis(5), 99);
                }
            }
        }
        let fired = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new(1);
        sim.add_element(Box::new(TimerBox { fired: fired.clone() }));
        sim.schedule_timer(0, Instant(2_000), 2);
        sim.schedule_timer(0, Instant(1_000), 1);
        sim.run_to_quiescence(10);
        assert_eq!(*fired.borrow(), vec![1, 2, 99]);
        assert_eq!(sim.now, Instant(6_000));
    }
}
