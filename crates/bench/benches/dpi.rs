//! DPI engine benchmarks, including the DESIGN.md ablation: the streaming
//! Aho–Corasick matcher vs a naive re-scan of the buffered stream on every
//! segment (what a lazy censor implementation would do).

use intang_bench::clean_stream;
use intang_bench::harness::{bench, bench_bytes};
use intang_gfw::dpi::{Automaton, RuleSet, StreamMatcher};
use std::hint::black_box;

fn bench_scan_throughput() {
    let aut = Automaton::build(&RuleSet::paper_default());
    for size in [1_460usize, 16 * 1024, 256 * 1024] {
        let data = clean_stream(size);
        bench_bytes(&format!("dpi/scan/{size}"), size as u64, || black_box(aut.scan(black_box(&data))));
    }
}

/// Ablation: streaming matcher (state carried across segments) vs naive
/// full-buffer re-scan per arriving segment. The naive variant is
/// quadratic in stream length — this is why the censor model keeps one
/// `u32` of matcher state per flow instead.
fn bench_streaming_vs_rescan() {
    let aut = Automaton::build(&RuleSet::paper_default());
    let segments: Vec<Vec<u8>> = (0..64).map(|_| clean_stream(1_460)).collect();

    bench("dpi/ablation-64-segments/streaming", || {
        let mut m = StreamMatcher::new();
        let mut hits = 0;
        for s in &segments {
            hits += m.feed(&aut, black_box(s)).len();
        }
        black_box(hits)
    });
    bench("dpi/ablation-64-segments/naive-rescan", || {
        let mut buffer: Vec<u8> = Vec::new();
        let mut hits = 0;
        for s in &segments {
            buffer.extend_from_slice(s);
            hits += aut.scan(black_box(&buffer)).len();
        }
        black_box(hits)
    });
}

fn bench_automaton_build() {
    bench("dpi/build-paper-ruleset", || black_box(Automaton::build(&RuleSet::paper_default())));
    // A larger blacklist, like the Alexa-derived poisoned-domain list §6
    // probes with.
    let mut rules = RuleSet::empty();
    for i in 0..500 {
        rules = rules.with_domain(&format!("blocked-domain-{i}.example.com"));
    }
    bench("dpi/build-500-domains", || black_box(Automaton::build(&rules)));
}

fn main() {
    bench_scan_throughput();
    bench_streaming_vs_rescan();
    bench_automaton_build();
}
