//! Censor-tap benchmarks: per-packet analysis cost through the full
//! element (TCB lookup, stream feed, DPI), TCB creation under SYN load,
//! and the reset injector.

use intang_bench::harness::{bench, bench_bytes, bench_elems};
use intang_gfw::reset::ResetInjector;
use intang_gfw::{GfwConfig, GfwElement};
use intang_netsim::element::PassThrough;
use intang_netsim::{Direction, Duration, Instant, Link, Simulation};
use intang_packet::{PacketBuilder, TcpFlags};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn tap_world() -> Simulation {
    let mut sim = Simulation::new(1);
    sim.add_element(Box::new(PassThrough::new("a")));
    sim.add_link(Link::new(Duration::from_micros(1), 0));
    let (gfw, _h) = GfwElement::new(GfwConfig::evolved().deterministic());
    sim.add_element(Box::new(gfw));
    sim.add_link(Link::new(Duration::from_micros(1), 0));
    sim.add_element(Box::new(PassThrough::new("b")));
    sim
}

/// Cost of pushing one established flow's data segment past the tap
/// (world setup included once per iteration; dominated by the tap).
fn bench_data_segment_analysis() {
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(203, 0, 113, 1);
    let payload = intang_bench::clean_stream(1_460);

    bench_bytes("censor/per-packet/clean-data-segment", 1_460, || {
        let mut sim = tap_world();
        let syn = PacketBuilder::tcp(client, server, 40_000, 80).seq(1).flags(TcpFlags::SYN).build();
        sim.inject_at(0, Direction::ToServer, syn, Instant::ZERO);
        sim.run_to_quiescence(100);
        let data = PacketBuilder::tcp(client, server, 40_000, 80)
            .seq(2)
            .ack(1)
            .flags(TcpFlags::PSH_ACK)
            .payload(&payload)
            .build();
        sim.inject_at(0, Direction::ToServer, data, Instant(1_000));
        sim.run_to_quiescence(100);
        black_box(sim.delivered)
    });
}

/// SYN flood: TCB table growth and hashing under new-flow pressure.
fn bench_tcb_creation_rate() {
    let client = Ipv4Addr::new(10, 0, 0, 1);
    let server = Ipv4Addr::new(203, 0, 113, 1);
    bench_elems("censor/tcb/1000-syns", 1_000, || {
        let mut sim = tap_world();
        for i in 0..1_000u32 {
            let syn = PacketBuilder::tcp(client, server, 10_000 + (i % 50_000) as u16, 80)
                .seq(i)
                .flags(TcpFlags::SYN)
                .build();
            sim.inject_at(0, Direction::ToServer, syn, Instant(u64::from(i)));
        }
        sim.run_to_quiescence(100_000);
        black_box(sim.delivered)
    });
}

/// The §2.1 injection volley itself.
fn bench_reset_injection() {
    let client = (Ipv4Addr::new(10, 0, 0, 1), 40_000u16);
    let server = (Ipv4Addr::new(203, 0, 113, 1), 80u16);
    let mut inj = ResetInjector::new();
    let mut rng = intang_netsim::SimRng::seed_from(5);
    bench("censor/type2-volley", || {
        black_box(inj.type2(black_box(server), black_box(client), 1_000, 2_000))
    });
    bench("censor/type1-rst", || {
        black_box(inj.type1(&mut rng, black_box(server), black_box(client), 1_000))
    });
}

fn main() {
    bench_data_segment_analysis();
    bench_tcb_creation_rate();
    bench_reset_injection();
}
