//! Event-queue benchmarks: the timing wheel under simulation-shaped load.
//!
//! The sweep's per-event budget is a few hundred nanoseconds, so queue
//! push/pop overhead is a first-order term. These benches replay the
//! queue access patterns the simulator actually produces — small resident
//! queues (tens of events), link-delay pushes clustered at the
//! millisecond scale, and an advancing time cursor — and compare against
//! a `BinaryHeap` reference to keep the wheel honest.

use intang_bench::harness::bench_elems;
use intang_netsim::event::{Event, EventQueue};
use intang_netsim::Instant;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

/// Deterministic xorshift so both queues see identical schedules.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Simulation-shaped delays: mostly ~1 ms link hops, some short timers,
/// occasional long (retransmit-scale) deadlines.
fn delay(rng: &mut Rng) -> u64 {
    match rng.next() % 10 {
        0..=5 => 1_000 + rng.next() % 512,
        6..=7 => 1 + rng.next() % 64,
        8 => 15_000 + rng.next() % 4_096,
        _ => 200_000 + rng.next() % 65_536,
    }
}

/// Steady-state churn: hold `resident` events, then pop one / push one per
/// step, cursor advancing like sim time.
fn churn_wheel(resident: usize, steps: u64) -> u64 {
    let mut q = EventQueue::new();
    let mut rng = Rng(0x2017_1cc7);
    let mut now = 0u64;
    for _ in 0..resident {
        q.push(Instant(now + delay(&mut rng)), Event::Timer { elem: 0, token: 0 });
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let (at, _) = q.pop().expect("resident events");
        now = at.0;
        acc = acc.wrapping_add(now);
        q.push(Instant(now + delay(&mut rng)), Event::Timer { elem: 0, token: 0 });
    }
    acc
}

fn churn_heap(resident: usize, steps: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u64, u64)>> = BinaryHeap::new();
    let mut rng = Rng(0x2017_1cc7);
    let mut now = 0u64;
    let mut seq = 0u64;
    for _ in 0..resident {
        q.push(Reverse((now + delay(&mut rng), seq, 0)));
        seq += 1;
    }
    let mut acc = 0u64;
    for _ in 0..steps {
        let Reverse((at, _, _)) = q.pop().expect("resident events");
        now = at;
        acc = acc.wrapping_add(now);
        q.push(Reverse((now + delay(&mut rng), seq, 0)));
        seq += 1;
    }
    acc
}

fn main() {
    const STEPS: u64 = 4_096;
    for resident in [8usize, 32, 256] {
        bench_elems(&format!("queue/wheel/churn-{resident}"), STEPS, || {
            black_box(churn_wheel(resident, STEPS))
        });
        bench_elems(&format!("queue/heap-ref/churn-{resident}"), STEPS, || {
            black_box(churn_heap(resident, STEPS))
        });
    }
}
