//! End-to-end trial benchmarks: the unit of work behind every Table 1 /
//! Table 4 cell — client + INTANG + middleboxes + censor + server,
//! handshake to classified outcome.

use intang_bench::harness::bench;
use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, TrialSpec};
use std::hint::black_box;

fn bench_trial_per_strategy() {
    let scenario = Scenario::paper_inside(2017);
    let site = &scenario.websites[0];
    let vp = &scenario.vantage_points[0];
    for (name, kind) in [
        ("no-strategy", StrategyKind::NoStrategy),
        ("in-order-overlap", StrategyKind::InOrderOverlap(Discrepancy::SmallTtl)),
        ("improved-teardown", StrategyKind::ImprovedTeardown),
        ("tcb-creation+resync-desync", StrategyKind::TcbCreationResyncDesync),
        ("teardown+tcb-reversal", StrategyKind::TeardownTcbReversal),
    ] {
        let mut seed = 0u64;
        bench(&format!("trial/{name}"), || {
            seed += 1;
            let mut spec = TrialSpec::new(vp, site, Some(kind), true, seed);
            spec.route_change_prob = 0.0;
            black_box(run_http_trial(&spec).outcome)
        });
    }
}

fn bench_dns_trial() {
    use intang_experiments::trial_dns::{run_dns_trial, DnsTrialSpec, DYN1};
    let scenario = Scenario::paper_inside(2017);
    let vp = &scenario.vantage_points[0];
    let mut seed = 0u64;
    bench("trial/dns-over-tcp-forwarded", || {
        seed += 1;
        let spec = DnsTrialSpec {
            vp,
            resolver: DYN1,
            use_intang: true,
            seed,
            nat_prob: 0.0,
        };
        black_box(run_dns_trial(&spec))
    });
}

fn main() {
    bench_trial_per_strategy();
    bench_dns_trial();
}
