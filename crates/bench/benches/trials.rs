//! End-to-end trial benchmarks: the unit of work behind every Table 1 /
//! Table 4 cell — client + INTANG + middleboxes + censor + server,
//! handshake to classified outcome.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use intang_core::{Discrepancy, StrategyKind};
use intang_experiments::scenario::Scenario;
use intang_experiments::trial::{run_http_trial, TrialSpec};
use std::hint::black_box;

fn bench_trial_per_strategy(c: &mut Criterion) {
    let scenario = Scenario::paper_inside(2017);
    let site = &scenario.websites[0];
    let vp = &scenario.vantage_points[0];
    let mut g = c.benchmark_group("trial");
    g.sample_size(20);
    for (name, kind) in [
        ("no-strategy", StrategyKind::NoStrategy),
        ("in-order-overlap", StrategyKind::InOrderOverlap(Discrepancy::SmallTtl)),
        ("improved-teardown", StrategyKind::ImprovedTeardown),
        ("tcb-creation+resync-desync", StrategyKind::TcbCreationResyncDesync),
        ("teardown+tcb-reversal", StrategyKind::TeardownTcbReversal),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut spec = TrialSpec::new(vp, site, Some(kind), true, seed);
                spec.route_change_prob = 0.0;
                black_box(run_http_trial(&spec).outcome)
            });
        });
    }
    g.finish();
}

fn bench_dns_trial(c: &mut Criterion) {
    use intang_experiments::trial_dns::{run_dns_trial, DnsTrialSpec, DYN1};
    let scenario = Scenario::paper_inside(2017);
    let vp = &scenario.vantage_points[0];
    let mut g = c.benchmark_group("trial");
    g.sample_size(20);
    g.bench_function("dns-over-tcp-forwarded", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let spec = DnsTrialSpec { vp, resolver: DYN1, use_intang: true, seed, nat_prob: 0.0 };
            black_box(run_dns_trial(&spec))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_trial_per_strategy, bench_dns_trial);
criterion_main!(benches);
