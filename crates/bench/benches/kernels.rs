//! Hot-path kernel microbenchmarks: the SIMD-width checksum accumulator vs
//! the scalar reference, the DPI clean-byte skip loop vs the plain
//! node-by-node walk, RFC 1624 incremental checksum update vs a full
//! header re-sum, and the shard-arena lease/return cycle vs fresh heap
//! allocation. These isolate the kernels that the batched engine leans on;
//! `scripts/ci.sh` runs this bench under `INTANG_BENCH_BUDGET_MS` as a
//! smoke test (it asserts kernel/reference agreement on every iteration,
//! so a silently-diverging kernel fails CI here before the property suite).

use intang_bench::clean_stream;
use intang_bench::harness::bench_bytes;
use intang_gfw::dpi::{Automaton, RuleSet, StreamMatcher};
use intang_packet::arena::Arena;
use intang_packet::checksum;
use std::hint::black_box;

/// Fold a 32-bit accumulator into a 16-bit ones-complement sum (the only
/// way `sum_words` accumulators are ever consumed).
fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

fn bench_checksum() {
    for size in [40usize, 576, 1_460, 64 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 + 7) as u8).collect();
        assert_eq!(
            fold(checksum::sum_words(0, &data)),
            fold(checksum::sum_words_scalar(0, &data)),
            "wide kernel must agree with the scalar reference"
        );
        bench_bytes(&format!("checksum/wide/{size}"), size as u64, || {
            black_box(checksum::sum_words(0, black_box(&data)))
        });
        bench_bytes(&format!("checksum/scalar/{size}"), size as u64, || {
            black_box(checksum::sum_words_scalar(0, black_box(&data)))
        });
    }
}

fn bench_incremental_update() {
    // A representative IPv4 header: the per-hop TTL writedown rewrites one
    // 16-bit word, so RFC 1624 adjustment competes against a 20-byte re-sum.
    let mut header: Vec<u8> = (0..20u8).collect();
    header[10] = 0;
    header[11] = 0;
    let check = checksum::checksum(&header);
    let old = u16::from_be_bytes([header[8], header[9]]);
    let new = old.wrapping_sub(0x0100); // TTL - 1 in the high byte
    bench_bytes("checksum/rfc1624-incremental/20", 20, || {
        black_box(checksum::incremental_update(black_box(check), old, new))
    });
    bench_bytes("checksum/full-resum/20", 20, || black_box(checksum::checksum(black_box(&header))));
}

fn bench_dpi_skip() {
    let aut = Automaton::build(&RuleSet::paper_default());
    assert!(aut.node_count() > 1);
    for size in [1_460usize, 64 * 1024] {
        // Clean traffic is the common case the skip loop exists for: no
        // byte anchors a pattern, so the matcher stays at the root.
        let data = clean_stream(size);
        let mut a = StreamMatcher::new();
        let mut b = StreamMatcher::new();
        assert_eq!(a.feed(&aut, &data), b.feed_reference(&aut, &data));
        bench_bytes(&format!("dpi/skip-loop/clean/{size}"), size as u64, || {
            let mut m = StreamMatcher::new();
            black_box(m.feed(&aut, black_box(&data)))
        });
        bench_bytes(&format!("dpi/reference-walk/clean/{size}"), size as u64, || {
            let mut m = StreamMatcher::new();
            black_box(m.feed_reference(&aut, black_box(&data)))
        });
    }
}

fn bench_arena_lease() {
    // The shard-arena cycle the stacks use for per-trial scratch: lease a
    // Vec whose capacity survived the previous trial, push a segment's
    // worth of bytes, hand it back. Compared against paying the allocator
    // on every cycle.
    let mut arena: Arena<Vec<u8>> = Arena::new(8);
    // Prime the free list so the steady state (hits, not misses) is measured.
    for _ in 0..8 {
        let mut v = arena.take_with(Vec::new);
        v.reserve(1_460);
        arena.put(v);
    }
    bench_bytes("arena/lease-fill-return/1460", 1_460, || {
        let mut v = arena.take_with(Vec::new);
        v.extend_from_slice(black_box(&[0u8; 1_460]));
        v.clear();
        arena.put(v);
    });
    bench_bytes("arena/fresh-alloc-fill-drop/1460", 1_460, || {
        let mut v: Vec<u8> = Vec::new();
        v.extend_from_slice(black_box(&[0u8; 1_460]));
        black_box(&v);
    });
}

fn main() {
    bench_checksum();
    bench_incremental_update();
    bench_dpi_skip();
    bench_arena_lease();
}
