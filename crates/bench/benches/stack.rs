//! TCP stack benchmarks: handshake cost, bulk transfer through the
//! endpoint pair, and the reassembly buffer under out-of-order load.

use intang_bench::harness::{bench, bench_bytes};
use intang_tcpstack::reasm::{Assembler, SegmentOverlapPolicy};
use intang_tcpstack::{StackProfile, TcpEndpoint};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn pump(a: &mut TcpEndpoint, b: &mut TcpEndpoint, now: u64) {
    loop {
        let fa = a.poll_transmit();
        let fb = b.poll_transmit();
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for w in fa {
            b.on_packet(w, now);
        }
        for w in fb {
            a.on_packet(w, now);
        }
    }
}

fn bench_handshake() {
    let ca = Ipv4Addr::new(10, 0, 0, 1);
    let sa = Ipv4Addr::new(10, 0, 0, 2);
    bench("stack/handshake", || {
        let mut client = TcpEndpoint::new(ca, StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(sa, StackProfile::linux_4_4());
        server.listen(80);
        let h = client.connect(sa, 80, 0);
        pump(&mut client, &mut server, 0);
        black_box(client.socket(h).is_established())
    });
}

fn bench_bulk_transfer() {
    let ca = Ipv4Addr::new(10, 0, 0, 1);
    let sa = Ipv4Addr::new(10, 0, 0, 2);
    let data = intang_bench::clean_stream(256 * 1024);
    bench_bytes("stack/bulk/256KiB", data.len() as u64, || {
        let mut client = TcpEndpoint::new(ca, StackProfile::linux_4_4());
        let mut server = TcpEndpoint::new(sa, StackProfile::linux_4_4());
        server.listen(80);
        let h = client.connect(sa, 80, 0);
        pump(&mut client, &mut server, 0);
        client.socket(h).send(&data, 1_000);
        pump(&mut client, &mut server, 1_000);
        let sh = server.take_accepted()[0];
        black_box(server.socket(sh).recv_drain().len())
    });
}

fn bench_assembler() {
    let chunk = vec![0u8; 1_460];
    bench_bytes("stack/assembler/in-order-64", 64 * 1_460, || {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        for i in 0..64u64 {
            a.insert(i * 1_460, &chunk);
            black_box(a.pull());
        }
    });
    bench_bytes("stack/assembler/reverse-order-64", 64 * 1_460, || {
        let mut a = Assembler::new(SegmentOverlapPolicy::FirstWins);
        for i in (0..64u64).rev() {
            a.insert(i * 1_460, &chunk);
        }
        black_box(a.pull().len())
    });
}

fn main() {
    bench_handshake();
    bench_bulk_transfer();
    bench_assembler();
}
