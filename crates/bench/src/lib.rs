//! # intang-bench
//!
//! Benchmark support crate. The Criterion benches live in `benches/`:
//!
//! * `dpi` — keyword-engine throughput: streaming Aho–Corasick vs the
//!   naive rescan it replaces (the DESIGN.md ablation);
//! * `censor` — the censor tap's per-packet cost: TCB lifecycle, stream
//!   feeding, reset injection;
//! * `stack` — TCP endpoint handshake and bulk-transfer cost;
//! * `trials` — full end-to-end trial throughput per strategy (the unit of
//!   work behind every Table 1/4 cell).
//!
//! Success-rate *ablations* (insertion redundancy, the δ TTL heuristic,
//! cache layers) are experiments, not timings — they live in the
//! `ablations` binary of `intang-experiments`.

/// A canonical censored HTTP request used across benches.
pub fn censored_request() -> Vec<u8> {
    intang_packet::http::HttpRequest::get("/search?q=ultrasurf", "bench.example").encode()
}

/// A long clean stream with no sensitive content (worst case for DPI).
pub fn clean_stream(len: usize) -> Vec<u8> {
    (0..len).map(|i| b"the quick brown fox jumps over it "[i % 34]).collect()
}
