//! # intang-bench
//!
//! Benchmark support crate. The benches live in `benches/` as plain
//! `harness = false` binaries driven by the std-only timing [`harness`]
//! below (no criterion — the build environment has no registry access):
//!
//! * `dpi` — keyword-engine throughput: streaming Aho–Corasick vs the
//!   naive rescan it replaces (the DESIGN.md ablation);
//! * `censor` — the censor tap's per-packet cost: TCB lifecycle, stream
//!   feeding, reset injection;
//! * `stack` — TCP endpoint handshake and bulk-transfer cost;
//! * `trials` — full end-to-end trial throughput per strategy (the unit of
//!   work behind every Table 1/4 cell).
//!
//! Sweep-level wall-clock numbers (the work-stealing executor speedup)
//! come from the `bench_sweep` binary in `intang-experiments`, which
//! writes `BENCH_sweep.json`.
//!
//! Success-rate *ablations* (insertion redundancy, the δ TTL heuristic,
//! cache layers) are experiments, not timings — they live in the
//! `ablations` binary of `intang-experiments`.

/// A canonical censored HTTP request used across benches.
pub fn censored_request() -> Vec<u8> {
    intang_packet::http::HttpRequest::get("/search?q=ultrasurf", "bench.example").encode()
}

/// A long clean stream with no sensitive content (worst case for DPI).
pub fn clean_stream(len: usize) -> Vec<u8> {
    (0..len).map(|i| b"the quick brown fox jumps over it "[i % 34]).collect()
}

/// Minimal std-only timing harness: warm up once, then run each case for a
/// fixed wall-clock budget and report mean ns/iter (plus throughput when a
/// per-iteration byte or element count is given).
pub mod harness {
    use std::time::{Duration, Instant};

    fn budget() -> Duration {
        if std::env::args().any(|a| a == "--quick") {
            Duration::from_millis(40)
        } else {
            Duration::from_millis(300)
        }
    }

    /// Time `f` for the harness budget; returns mean ns/iter.
    pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> f64 {
        std::hint::black_box(f()); // warmup
        let budget = budget();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            std::hint::black_box(f());
            iters += 1;
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{name:<44} {ns:>14.0} ns/iter   ({iters} iters)");
        ns
    }

    /// Like [`bench`], also reporting MiB/s for `bytes` processed per iter.
    pub fn bench_bytes<R>(name: &str, bytes: u64, f: impl FnMut() -> R) -> f64 {
        let ns = bench(name, f);
        let mibs = bytes as f64 / (ns / 1e9) / (1024.0 * 1024.0);
        println!("{:<44} {mibs:>14.1} MiB/s", format!("  └ {bytes} B/iter"));
        ns
    }

    /// Like [`bench`], also reporting elements/s for `n` items per iter.
    pub fn bench_elems<R>(name: &str, n: u64, f: impl FnMut() -> R) -> f64 {
        let ns = bench(name, f);
        let rate = n as f64 / (ns / 1e9);
        println!("{:<44} {rate:>14.0} elems/s", format!("  └ {n} elems/iter"));
        ns
    }
}
