//! A fast, deterministic hasher for hot-path lookup tables.
//!
//! The simulator keys its per-packet tables (censor TCBs, engine flows,
//! middlebox conntracks, blacklists) by small fixed-size values —
//! [`FourTuple`](crate::FourTuple)s, addresses, ports. `std`'s default
//! SipHash is DoS-resistant but costs more than the table lookup itself
//! for such keys; none of these tables ever hash attacker-controlled input
//! across a trust boundary, so the resistance buys nothing here.
//!
//! `FxHasher` is the word-at-a-time multiply-xor scheme used by rustc
//! (`rustc-hash`): fold each 8-byte word into the state with a rotate, an
//! xor and a multiply by a single odd constant. Unlike `RandomState` it is
//! seed-free, so iteration order — while still arbitrary — is identical
//! across processes, which keeps replay debugging sane. Correctness never
//! depends on iteration order anywhere these maps are used (the sweep's
//! golden traces already prove that: `RandomState` reseeds every process
//! and the traces are byte-stable).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over native words (the rustc-hash scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for w in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized and seed-free.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std` maps keyed by small
/// non-adversarial values.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let tuple = (0x0a00_0001u32, 40000u16, 0xcb00_7109u32, 80u16);
        assert_eq!(hash_of(&tuple), hash_of(&tuple));
        assert_ne!(hash_of(&tuple), hash_of(&(tuple.0, tuple.1, tuple.2, 81u16)));
    }

    #[test]
    fn tail_bytes_affect_hash() {
        assert_ne!(hash_of(&[1u8, 2, 3]), hash_of(&[1u8, 2, 4]));
        assert_ne!(hash_of(&[0u8; 9]), hash_of(&[0u8; 10]));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, (i % 7) as u16), u64::from(i) * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, (i % 7) as u16)), Some(&(u64::from(i) * 3)));
        }
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }
}
