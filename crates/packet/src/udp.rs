//! UDP datagram view and representation.

use crate::{checksum, ParseError, Result};
use std::net::Ipv4Addr;

pub const HEADER_LEN: usize = 8;
const PROTO_UDP: u8 = 17;

/// Zero-copy view over a UDP datagram (header + payload).
#[derive(Debug, Clone, Copy)]
pub struct UdpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpPacket<T> {
    pub fn new_unchecked(buffer: T) -> Self {
        UdpPacket { buffer }
    }

    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = UdpPacket::new_unchecked(buffer);
        let data = pkt.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        if usize::from(pkt.length()) < HEADER_LEN || data.len() < usize::from(pkt.length()) {
            return Err(ParseError::BadLength);
        }
        Ok(pkt)
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data()[0], self.data()[1]])
    }

    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data()[2], self.data()[3]])
    }

    pub fn length(&self) -> u16 {
        u16::from_be_bytes([self.data()[4], self.data()[5]])
    }

    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.data()[6], self.data()[7]])
    }

    pub fn payload(&self) -> &[u8] {
        &self.data()[HEADER_LEN..usize::from(self.length())]
    }

    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        // A zero checksum means "not computed" and is legal for IPv4 UDP.
        if self.checksum_field() == 0 {
            return true;
        }
        checksum::verify_transport(src, dst, PROTO_UDP, &self.data()[..usize::from(self.length())])
    }
}

/// High-level UDP description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub payload: Vec<u8>,
}

impl UdpRepr {
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpRepr {
            src_port,
            dst_port,
            payload,
        }
    }

    pub fn parse<T: AsRef<[u8]>>(pkt: &UdpPacket<T>) -> UdpRepr {
        UdpRepr {
            src_port: pkt.src_port(),
            dst_port: pkt.dst_port(),
            payload: pkt.payload().to_vec(),
        }
    }

    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len());
        self.emit_into(src, dst, &mut buf);
        buf
    }

    /// Serialize by appending to `out`. Byte-identical to [`UdpRepr::emit`].
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut Vec<u8>) {
        let base = out.len();
        let len = HEADER_LEN + self.payload.len();
        out.resize(base + HEADER_LEN, 0);
        out.extend_from_slice(&self.payload);
        let buf = &mut out[base..];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&(len as u16).to_be_bytes());
        let mut ck = checksum::transport_checksum(src, dst, PROTO_UDP, buf);
        if ck == 0 {
            ck = 0xffff; // 0 is reserved for "no checksum"
        }
        buf[6..8].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a1() -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 0, 1)
    }
    fn a2() -> Ipv4Addr {
        Ipv4Addr::new(10, 1, 0, 2)
    }

    #[test]
    fn round_trip() {
        let repr = UdpRepr::new(5353, 53, b"query".to_vec());
        let wire = repr.emit(a1(), a2());
        let pkt = UdpPacket::new_checked(&wire[..]).unwrap();
        assert_eq!(pkt.src_port(), 5353);
        assert_eq!(pkt.dst_port(), 53);
        assert_eq!(pkt.payload(), b"query");
        assert!(pkt.verify_checksum(a1(), a2()));
        assert_eq!(UdpRepr::parse(&pkt), repr);
    }

    #[test]
    fn corrupt_checksum_detected() {
        let repr = UdpRepr::new(1, 2, b"x".to_vec());
        let mut wire = repr.emit(a1(), a2());
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        let pkt = UdpPacket::new_checked(&wire[..]).unwrap();
        assert!(!pkt.verify_checksum(a1(), a2()));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(UdpPacket::new_checked(&[0u8; 4][..]).unwrap_err(), ParseError::Truncated);
        // Declared length larger than buffer.
        let mut wire = UdpRepr::new(1, 2, vec![]).emit(a1(), a2());
        wire[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(UdpPacket::new_checked(&wire[..]).unwrap_err(), ParseError::BadLength);
    }
}
