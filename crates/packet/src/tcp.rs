//! TCP segment view and representation.
//!
//! Implements everything the paper's insertion packets need: arbitrary flag
//! combinations (including *no* flags), the RFC 2385 MD5 signature option,
//! RFC 7323 timestamps, deliberately wrong checksums, and a data-offset
//! override to emit the "TCP header length < 20" malformation of Table 3.

use crate::{checksum, ParseError, Result};
use std::net::Ipv4Addr;

pub const HEADER_LEN: usize = 20;
const PROTO_TCP: u8 = 6;

/// TCP flag bitset. `FIN|SYN|RST|PSH|ACK|URG` in wire order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const NONE: TcpFlags = TcpFlags(0);
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);

    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    pub const RST_ACK: TcpFlags = TcpFlags(0x14);
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);

    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn fin(self) -> bool {
        self.contains(TcpFlags::FIN)
    }
    pub fn syn(self) -> bool {
        self.contains(TcpFlags::SYN)
    }
    pub fn rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }
    pub fn psh(self) -> bool {
        self.contains(TcpFlags::PSH)
    }
    pub fn ack(self) -> bool {
        self.contains(TcpFlags::ACK)
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("[noflag]");
        }
        let mut s = String::new();
        for (bit, ch) in [
            (TcpFlags::SYN, 'S'),
            (TcpFlags::FIN, 'F'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, '.'),
            (TcpFlags::URG, 'U'),
        ] {
            if self.contains(bit) {
                s.push(ch);
            }
        }
        f.write_str(&s)
    }
}

/// TCP options we parse and emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpOption {
    Mss(u16),
    WindowScale(u8),
    SackPermitted,
    /// RFC 7323 timestamps: (TSval, TSecr).
    Timestamps {
        tsval: u32,
        tsecr: u32,
    },
    /// RFC 2385 TCP MD5 signature option. The 16-byte digest is opaque to
    /// us; an *unsolicited* MD5 option causes modern Linux to drop the
    /// segment while the GFW processes it (Table 3).
    Md5Sig([u8; 16]),
    /// Unknown option kind with raw payload, preserved verbatim.
    Unknown {
        kind: u8,
        data: Vec<u8>,
    },
}

impl TcpOption {
    fn wire_len(&self) -> usize {
        match self {
            TcpOption::Mss(_) => 4,
            TcpOption::WindowScale(_) => 3,
            TcpOption::SackPermitted => 2,
            TcpOption::Timestamps { .. } => 10,
            TcpOption::Md5Sig(_) => 18,
            TcpOption::Unknown { data, .. } => 2 + data.len(),
        }
    }

    fn emit(&self, out: &mut Vec<u8>) {
        match self {
            TcpOption::Mss(v) => {
                out.extend_from_slice(&[2, 4]);
                out.extend_from_slice(&v.to_be_bytes());
            }
            TcpOption::WindowScale(v) => out.extend_from_slice(&[3, 3, *v]),
            TcpOption::SackPermitted => out.extend_from_slice(&[4, 2]),
            TcpOption::Timestamps { tsval, tsecr } => {
                out.extend_from_slice(&[8, 10]);
                out.extend_from_slice(&tsval.to_be_bytes());
                out.extend_from_slice(&tsecr.to_be_bytes());
            }
            TcpOption::Md5Sig(digest) => {
                out.extend_from_slice(&[19, 18]);
                out.extend_from_slice(digest);
            }
            TcpOption::Unknown { kind, data } => {
                out.push(*kind);
                out.push((2 + data.len()) as u8);
                out.extend_from_slice(data);
            }
        }
    }
}

/// Maximum number of parsed options per header: the options area is at most
/// 40 bytes and every non-NOP option occupies at least 2, so 20 always fits.
pub const MAX_OPTIONS: usize = 20;

/// A fixed-capacity, inline list of TCP options. Replaces `Vec<TcpOption>`
/// on the parse path so per-packet option parsing performs no heap
/// allocation (the `Unknown` variant still owns its payload, but no real
/// stack emits unknown options on the hot path). Dereferences to
/// `&[TcpOption]`, so slice methods (`iter`, `contains`, `is_empty`, ...)
/// work unchanged.
#[derive(Debug, Clone)]
pub struct TcpOptionList {
    items: [TcpOption; MAX_OPTIONS],
    len: u8,
}

impl TcpOptionList {
    pub fn new() -> TcpOptionList {
        TcpOptionList {
            // Inert filler, never observable past `len`.
            items: std::array::from_fn(|_| TcpOption::SackPermitted),
            len: 0,
        }
    }

    /// Append an option; returns `false` (dropping it) when full. A valid
    /// options area can never overflow the capacity — see [`MAX_OPTIONS`].
    pub fn push(&mut self, opt: TcpOption) -> bool {
        let at = usize::from(self.len);
        if at == MAX_OPTIONS {
            return false;
        }
        self.items[at] = opt;
        self.len += 1;
        true
    }

    pub fn as_slice(&self) -> &[TcpOption] {
        &self.items[..usize::from(self.len)]
    }

    pub fn to_vec(&self) -> Vec<TcpOption> {
        self.as_slice().to_vec()
    }
}

impl Default for TcpOptionList {
    fn default() -> TcpOptionList {
        TcpOptionList::new()
    }
}

impl std::ops::Deref for TcpOptionList {
    type Target = [TcpOption];
    fn deref(&self) -> &[TcpOption] {
        self.as_slice()
    }
}

impl PartialEq for TcpOptionList {
    fn eq(&self, other: &TcpOptionList) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for TcpOptionList {}

impl PartialEq<Vec<TcpOption>> for TcpOptionList {
    fn eq(&self, other: &Vec<TcpOption>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl PartialEq<[TcpOption]> for TcpOptionList {
    fn eq(&self, other: &[TcpOption]) -> bool {
        self.as_slice() == other
    }
}

impl<'a> IntoIterator for &'a TcpOptionList {
    type Item = &'a TcpOption;
    type IntoIter = std::slice::Iter<'a, TcpOption>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<TcpOption> for TcpOptionList {
    fn from_iter<I: IntoIterator<Item = TcpOption>>(iter: I) -> TcpOptionList {
        let mut list = TcpOptionList::new();
        for o in iter {
            if !list.push(o) {
                break;
            }
        }
        list
    }
}

/// Parse the options region of a TCP header. Tolerant: stops at end-of-list
/// or on malformed lengths (returning what was parsed so far), matching how
/// real stacks skip unparseable trailing options. Allocation-free for every
/// standard option kind.
pub fn parse_options(mut raw: &[u8]) -> TcpOptionList {
    let mut opts = TcpOptionList::new();
    while let Some((&kind, rest)) = raw.split_first() {
        match kind {
            0 => break,      // end of option list
            1 => raw = rest, // NOP padding
            _ => {
                let Some(&len) = rest.first() else { break };
                let len = usize::from(len);
                if len < 2 || raw.len() < len {
                    break;
                }
                let body = &raw[2..len];
                let opt = match (kind, body.len()) {
                    (2, 2) => TcpOption::Mss(u16::from_be_bytes([body[0], body[1]])),
                    (3, 1) => TcpOption::WindowScale(body[0]),
                    (4, 0) => TcpOption::SackPermitted,
                    (8, 8) => TcpOption::Timestamps {
                        tsval: u32::from_be_bytes([body[0], body[1], body[2], body[3]]),
                        tsecr: u32::from_be_bytes([body[4], body[5], body[6], body[7]]),
                    },
                    (19, 16) => {
                        let mut d = [0u8; 16];
                        d.copy_from_slice(body);
                        TcpOption::Md5Sig(d)
                    }
                    _ => TcpOption::Unknown { kind, data: body.to_vec() },
                };
                if !opts.push(opt) {
                    break;
                }
                raw = &raw[len..];
            }
        }
    }
    opts
}

/// Zero-copy view over a TCP segment (header + payload).
#[derive(Debug, Clone, Copy)]
pub struct TcpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpPacket<T> {
    pub fn new_unchecked(buffer: T) -> Self {
        TcpPacket { buffer }
    }

    /// Validate the fixed header and the data offset. A data offset below 5
    /// words (the "TCP header length < 20" malformation) is a parse error:
    /// real stacks drop such segments in `tcp_v4_rcv`.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = TcpPacket::new_unchecked(buffer);
        let data = pkt.buffer.as_ref();
        if data.len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        let off = pkt.header_len();
        if off < HEADER_LEN {
            return Err(ParseError::BadLength);
        }
        if data.len() < off {
            return Err(ParseError::Truncated);
        }
        Ok(pkt)
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.data()[0], self.data()[1]])
    }

    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.data()[2], self.data()[3]])
    }

    pub fn seq_number(&self) -> u32 {
        u32::from_be_bytes([self.data()[4], self.data()[5], self.data()[6], self.data()[7]])
    }

    pub fn ack_number(&self) -> u32 {
        u32::from_be_bytes([self.data()[8], self.data()[9], self.data()[10], self.data()[11]])
    }

    /// Header length in bytes as declared by the data-offset field.
    pub fn header_len(&self) -> usize {
        usize::from(self.data()[12] >> 4) * 4
    }

    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.data()[13] & 0x3f)
    }

    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.data()[14], self.data()[15]])
    }

    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.data()[16], self.data()[17]])
    }

    pub fn options_raw(&self) -> &[u8] {
        &self.data()[HEADER_LEN..self.header_len()]
    }

    pub fn options(&self) -> TcpOptionList {
        parse_options(self.options_raw())
    }

    pub fn has_md5_option(&self) -> bool {
        self.options().iter().any(|o| matches!(o, TcpOption::Md5Sig(_)))
    }

    pub fn timestamps(&self) -> Option<(u32, u32)> {
        self.options().iter().find_map(|o| match o {
            TcpOption::Timestamps { tsval, tsecr } => Some((*tsval, *tsecr)),
            _ => None,
        })
    }

    pub fn payload(&self) -> &[u8] {
        &self.data()[self.header_len().min(self.data().len())..]
    }

    /// Verify the TCP checksum against the pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        checksum::verify_transport(src, dst, PROTO_TCP, self.data())
    }
}

/// High-level TCP segment description. `emit` serializes it (payload
/// included) and computes — or deliberately corrupts — the checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpRepr {
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub options: Vec<TcpOption>,
    pub payload: Vec<u8>,
    /// When set, the checksum field is forced to this (wrong) value instead
    /// of the computed one — the classic bad-checksum insertion packet.
    pub checksum_override: Option<u16>,
    /// When set, the data-offset field is forced to this many *words*,
    /// enabling the "TCP header length < 20" malformation.
    pub data_offset_words_override: Option<u8>,
}

impl TcpRepr {
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        TcpRepr {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags: TcpFlags::NONE,
            window: 65535,
            options: Vec::new(),
            payload: Vec::new(),
            checksum_override: None,
            data_offset_words_override: None,
        }
    }

    pub fn parse<T: AsRef<[u8]>>(pkt: &TcpPacket<T>) -> TcpRepr {
        let mut repr = TcpRepr::new(0, 0);
        TcpRepr::parse_into(pkt, &mut repr);
        repr
    }

    /// Parse into an existing repr, reusing its `options`/`payload`
    /// capacity — the hot receive paths keep one scratch repr per endpoint
    /// so steady-state parsing allocates nothing.
    pub fn parse_into<T: AsRef<[u8]>>(pkt: &TcpPacket<T>, out: &mut TcpRepr) {
        out.src_port = pkt.src_port();
        out.dst_port = pkt.dst_port();
        out.seq = pkt.seq_number();
        out.ack = pkt.ack_number();
        out.flags = pkt.flags();
        out.window = pkt.window();
        out.options.clear();
        out.options.extend_from_slice(pkt.options().as_slice());
        out.payload.clear();
        out.payload.extend_from_slice(pkt.payload());
        out.checksum_override = None;
        out.data_offset_words_override = None;
    }

    /// Serialize into a raw TCP segment for the given IP endpoints.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.emit_into(src, dst, &mut buf);
        buf
    }

    /// Serialize by appending to `out` — the allocation-free path used with
    /// a reusable scratch buffer. Byte-identical to [`TcpRepr::emit`].
    pub fn emit_into(&self, src: Ipv4Addr, dst: Ipv4Addr, out: &mut Vec<u8>) {
        let base = out.len();
        out.resize(base + HEADER_LEN, 0);
        // Options are emitted straight into `out`, then padded to a 4-byte
        // boundary with end-of-list + zeros.
        for o in &self.options {
            o.emit(out);
        }
        while !(out.len() - base).is_multiple_of(4) {
            out.push(0);
        }
        let header_len = out.len() - base;
        debug_assert!(header_len - HEADER_LEN <= 40, "TCP options exceed 40 bytes");
        out.extend_from_slice(&self.payload);
        let buf = &mut out[base..];
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        let words = self.data_offset_words_override.unwrap_or((header_len / 4) as u8);
        buf[12] = words << 4;
        buf[13] = self.flags.0;
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        let ck = match self.checksum_override {
            Some(bad) => bad,
            None => checksum::transport_checksum(src, dst, PROTO_TCP, buf),
        };
        buf[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Total wire length of the emitted segment.
    pub fn wire_len(&self) -> usize {
        let mut olen: usize = self.options.iter().map(|o| o.wire_len()).sum();
        olen = (olen + 3) & !3;
        HEADER_LEN + olen + self.payload.len()
    }
}

/// Sequence-number arithmetic helpers (mod 2^32, RFC 793 style).
pub mod seq {
    /// `a < b` in sequence space.
    pub fn lt(a: u32, b: u32) -> bool {
        (a != b) && (b.wrapping_sub(a) < 0x8000_0000)
    }

    /// `a <= b` in sequence space.
    pub fn le(a: u32, b: u32) -> bool {
        b.wrapping_sub(a) < 0x8000_0000
    }

    /// `a > b` in sequence space.
    pub fn gt(a: u32, b: u32) -> bool {
        lt(b, a)
    }

    /// `a >= b` in sequence space.
    pub fn ge(a: u32, b: u32) -> bool {
        le(b, a)
    }

    /// Is `x` within the half-open window `[start, start+len)`?
    pub fn in_window(x: u32, start: u32, len: u32) -> bool {
        x.wrapping_sub(start) < len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a1() -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, 1)
    }
    fn a2() -> Ipv4Addr {
        Ipv4Addr::new(198, 51, 100, 7)
    }

    fn sample_repr() -> TcpRepr {
        TcpRepr {
            seq: 0x1234_5678,
            ack: 0x9abc_def0,
            flags: TcpFlags::PSH_ACK,
            window: 29200,
            options: vec![TcpOption::Mss(1460), TcpOption::Timestamps { tsval: 100, tsecr: 200 }],
            payload: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
            ..TcpRepr::new(40001, 80)
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample_repr();
        let wire = repr.emit(a1(), a2());
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        assert_eq!(pkt.src_port(), 40001);
        assert_eq!(pkt.dst_port(), 80);
        assert_eq!(pkt.seq_number(), 0x1234_5678);
        assert_eq!(pkt.ack_number(), 0x9abc_def0);
        assert_eq!(pkt.flags(), TcpFlags::PSH_ACK);
        assert_eq!(pkt.window(), 29200);
        assert_eq!(pkt.payload(), b"GET / HTTP/1.1\r\n\r\n");
        assert!(pkt.verify_checksum(a1(), a2()));
        let opts = pkt.options();
        assert!(opts.contains(&TcpOption::Mss(1460)));
        assert_eq!(pkt.timestamps(), Some((100, 200)));
    }

    #[test]
    fn bad_checksum_override() {
        let repr = TcpRepr {
            checksum_override: Some(0xdead),
            ..sample_repr()
        };
        let wire = repr.emit(a1(), a2());
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        assert!(!pkt.verify_checksum(a1(), a2()));
        assert_eq!(pkt.checksum_field(), 0xdead);
    }

    #[test]
    fn md5_option_round_trip() {
        let digest = [7u8; 16];
        let repr = TcpRepr {
            options: vec![TcpOption::Md5Sig(digest)],
            ..sample_repr()
        };
        let wire = repr.emit(a1(), a2());
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        assert!(pkt.has_md5_option());
        assert!(pkt.options().contains(&TcpOption::Md5Sig(digest)));
    }

    #[test]
    fn no_flag_segment() {
        let repr = TcpRepr {
            flags: TcpFlags::NONE,
            ..sample_repr()
        };
        let wire = repr.emit(a1(), a2());
        let pkt = TcpPacket::new_checked(&wire[..]).unwrap();
        assert!(pkt.flags().is_empty());
        assert_eq!(format!("{}", pkt.flags()), "[noflag]");
    }

    #[test]
    fn short_data_offset_rejected_by_checked_parse() {
        let repr = TcpRepr {
            data_offset_words_override: Some(3),
            ..sample_repr()
        };
        let wire = repr.emit(a1(), a2());
        assert_eq!(TcpPacket::new_checked(&wire[..]).unwrap_err(), ParseError::BadLength);
    }

    #[test]
    fn options_parser_tolerates_garbage() {
        // kind=99 len=0 is malformed; parser must stop without panicking.
        let opts = parse_options(&[99, 0, 1, 2, 3]);
        assert!(opts.is_empty());
        // NOP NOP then timestamps.
        let mut raw = vec![1, 1, 8, 10];
        raw.extend_from_slice(&5u32.to_be_bytes());
        raw.extend_from_slice(&6u32.to_be_bytes());
        let opts = parse_options(&raw);
        assert_eq!(opts, vec![TcpOption::Timestamps { tsval: 5, tsecr: 6 }]);
    }

    #[test]
    fn seq_arithmetic_wraps() {
        use super::seq;
        assert!(seq::lt(0xffff_fff0, 0x10));
        assert!(seq::gt(0x10, 0xffff_fff0));
        assert!(seq::le(5, 5));
        assert!(seq::ge(5, 5));
        assert!(seq::in_window(0x5, 0xffff_fff0, 0x100));
        assert!(!seq::in_window(0x200, 0xffff_fff0, 0x100));
    }
}
