//! Shard arenas: bounded recycling pools for hot-path transients.
//!
//! A sweep runs thousands of short trials per worker shard, and each trial
//! used to pay the same small allocations over and over: TCP segment reprs,
//! drain buffers, event-queue scratch. An [`Arena`] keeps a bounded
//! free-list of such objects so a shard's steady state re-uses yesterday's
//! capacity instead of round-tripping the global allocator. The intended
//! deployment is one thread-local arena per object type per subsystem (see
//! `intang_tcpstack::pool` and the wire pool in [`crate::wire`]): shards
//! never contend, and because an arena only recycles *capacity* — every
//! `take` hands out an object in a caller-defined reset state — behavior is
//! bit-identical to allocating fresh.
//!
//! Hit/miss counters aggregate process-wide (the `pool_stats` pattern):
//! scheduling-dependent diagnostics for `bench_sweep`, never part of the
//! deterministic metrics merge.

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` across every arena in the process since start (or the
/// last [`reset_stats`]). A hit is an object served from a free-list; a
/// miss fell through to a fresh construction.
pub fn stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

/// Zero the process-wide arena counters (benchmark warm-up boundary).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

thread_local! {
    /// Objects currently leased from this thread's arenas (taken and not
    /// yet returned). A plain thread-local gauge: leases are a pure
    /// function of the code the thread runs, so — unlike free-list sizes,
    /// which depend on what previous trials warmed up — deltas of this
    /// counter are deterministic per trial and safe to feed the telemetry
    /// time-series.
    static LIVE: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Objects currently leased from this thread's arenas.
pub fn live() -> u64 {
    LIVE.with(std::cell::Cell::get)
}

/// A bounded free-list of `T`s. Not a true bump arena — objects here own
/// normal heap storage — but it plays the same role per shard: transient
/// objects are leased, used for one trial step, and returned with their
/// capacity intact.
#[derive(Debug)]
pub struct Arena<T> {
    free: Vec<T>,
    max_free: usize,
}

impl<T> Arena<T> {
    /// An empty arena retaining at most `max_free` returned objects
    /// (returns beyond that are dropped, bounding worst-case hoarding).
    pub const fn new(max_free: usize) -> Arena<T> {
        Arena {
            free: Vec::new(),
            max_free,
        }
    }

    /// Lease an object: recycled if one is free, otherwise `make()`.
    /// The caller is responsible for resetting recycled state — arenas
    /// return objects exactly as [`Arena::put`] received them.
    pub fn take_with(&mut self, make: impl FnOnce() -> T) -> T {
        LIVE.with(|c| c.set(c.get() + 1));
        match self.free.pop() {
            Some(t) => {
                HITS.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => {
                MISSES.fetch_add(1, Ordering::Relaxed);
                make()
            }
        }
    }

    /// Return an object to the free-list (dropped if the arena is full).
    pub fn put(&mut self, item: T) {
        LIVE.with(|c| c.set(c.get().saturating_sub(1)));
        if self.free.len() < self.max_free {
            self.free.push(item);
        }
    }

    /// Objects currently on the free-list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_recycles_and_preserves_capacity() {
        let mut a: Arena<Vec<u8>> = Arena::new(4);
        let mut v = a.take_with(Vec::new);
        v.reserve(1024);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        v.clear();
        a.put(v);
        let v2 = a.take_with(Vec::new);
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "same buffer came back");
    }

    #[test]
    fn bounded_free_list_drops_overflow() {
        let mut a: Arena<Box<u32>> = Arena::new(2);
        a.put(Box::new(1));
        a.put(Box::new(2));
        a.put(Box::new(3));
        assert_eq!(a.free_len(), 2);
    }

    #[test]
    fn live_gauge_tracks_leases() {
        let base = live();
        let mut a: Arena<Vec<u8>> = Arena::new(4);
        let v = a.take_with(Vec::new);
        let w = a.take_with(Vec::new);
        assert_eq!(live(), base + 2);
        a.put(v);
        assert_eq!(live(), base + 1);
        a.put(w);
        assert_eq!(live(), base);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let (h0, m0) = stats();
        let mut a: Arena<Vec<u8>> = Arena::new(4);
        let v = a.take_with(Vec::new); // miss
        a.put(v);
        let _v = a.take_with(Vec::new); // hit
        let (h1, m1) = stats();
        assert!(h1 > h0);
        assert!(m1 > m0);
    }
}
