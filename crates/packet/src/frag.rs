//! IPv4 fragmentation and reassembly.
//!
//! The out-of-order data-overlapping strategy of §3.2 relies on sending two
//! IP fragments with the *same offset and length* but different contents:
//! the GFW keeps the **first** such fragment, while receivers and
//! reassembling middleboxes may keep either. [`OverlapPolicy`] makes the
//! preference explicit so the GFW, middleboxes and servers can be
//! configured per the paper's findings.

use crate::{Ipv4Packet, Ipv4Repr, Wire};

/// Emit a header + payload straight into a pooled [`Wire`].
fn emit_wire(repr: &Ipv4Repr, payload: &[u8]) -> Wire {
    let mut w = Wire::with_capacity(crate::ipv4::HEADER_LEN + payload.len());
    repr.emit_into(payload, w.vec_mut());
    w
}

/// Who wins when two fragments cover the same byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Keep the bytes already buffered (the GFW's IP-fragment behavior).
    FirstWins,
    /// Later data overwrites earlier data (BSD-style / the GFW's behavior
    /// for overlapping *TCP segments*).
    LastWins,
}

/// Split a full (non-fragment) IPv4 datagram into fragments at the given
/// payload byte boundaries. `boundaries` are offsets into the transport
/// payload and must be multiples of 8 (IP fragment granularity).
pub fn fragment_at(wire: &[u8], boundaries: &[usize]) -> Vec<Wire> {
    let pkt = Ipv4Packet::new_checked(wire).expect("fragment_at requires a valid datagram");
    assert!(!pkt.is_fragment(), "cannot re-fragment a fragment");
    let payload = pkt.payload();
    let mut cuts: Vec<usize> = Vec::with_capacity(boundaries.len() + 2);
    cuts.push(0);
    for &b in boundaries {
        assert_eq!(b % 8, 0, "fragment boundaries must be 8-byte aligned");
        if b > 0 && b < payload.len() {
            cuts.push(b);
        }
    }
    cuts.push(payload.len());
    cuts.sort_unstable();
    cuts.dedup();

    let base = Ipv4Repr::parse(&pkt);
    let mut out = Vec::new();
    for w in cuts.windows(2) {
        let (start, end) = (w[0], w[1]);
        let repr = Ipv4Repr {
            dont_fragment: false,
            more_fragments: end < payload.len(),
            frag_offset: start,
            total_len_override: None,
            ..base
        };
        out.push(emit_wire(&repr, &payload[start..end]));
    }
    out
}

/// Build a single raw fragment carrying `data` at payload offset `offset`
/// for the flow described by `base` (same ident ties fragments together).
pub fn raw_fragment(base: &Ipv4Repr, offset: usize, more: bool, data: &[u8]) -> Wire {
    let repr = Ipv4Repr {
        dont_fragment: false,
        more_fragments: more,
        frag_offset: offset,
        total_len_override: None,
        ..*base
    };
    emit_wire(&repr, data)
}

/// A reassembly buffer for one (src, dst, ident, protocol) key.
#[derive(Debug)]
struct Assembly {
    /// Sparse payload bytes; `None` = hole.
    bytes: Vec<Option<u8>>,
    /// Total payload length once the last fragment is seen.
    total: Option<usize>,
    base: Ipv4Repr,
}

/// IPv4 fragment reassembler with a configurable overlap policy.
///
/// Keyed on (src, dst, ident, protocol) like real stacks. `push` returns the
/// reassembled full datagram as soon as it completes.
#[derive(Debug)]
pub struct Reassembler {
    policy: OverlapPolicy,
    pending: Vec<((std::net::Ipv4Addr, std::net::Ipv4Addr, u16, u8), Assembly)>,
    /// Cap on simultaneously pending assemblies (oldest evicted first).
    capacity: usize,
}

impl Reassembler {
    pub fn new(policy: OverlapPolicy) -> Self {
        Reassembler {
            policy,
            pending: Vec::new(),
            capacity: 64,
        }
    }

    /// Feed one datagram. Non-fragments are returned unchanged. Fragments
    /// are buffered; when an assembly completes, the full datagram is
    /// returned.
    pub fn push(&mut self, wire: Wire) -> Option<Wire> {
        let pkt = match Ipv4Packet::new_checked(&wire[..]) {
            Ok(p) => p,
            Err(_) => return Some(wire), // pass through unparseable data
        };
        if !pkt.is_fragment() {
            return Some(wire);
        }
        let key = (pkt.src_addr(), pkt.dst_addr(), pkt.ident(), u8::from(pkt.protocol()));
        let offset = pkt.frag_offset();
        let more = pkt.more_fragments();
        let data = pkt.payload().to_vec();
        let base = Ipv4Repr::parse(&pkt);

        let idx = match self.pending.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                if self.pending.len() >= self.capacity {
                    self.pending.remove(0);
                }
                self.pending.push((
                    key,
                    Assembly {
                        bytes: Vec::new(),
                        total: None,
                        base,
                    },
                ));
                self.pending.len() - 1
            }
        };
        let asm = &mut self.pending[idx].1;
        let end = offset + data.len();
        if asm.bytes.len() < end {
            asm.bytes.resize(end, None);
        }
        for (i, b) in data.iter().enumerate() {
            let slot = &mut asm.bytes[offset + i];
            match (self.policy, slot.is_some()) {
                (OverlapPolicy::FirstWins, true) => {} // keep existing byte
                _ => *slot = Some(*b),
            }
        }
        if !more {
            asm.total = Some(asm.total.map_or(end, |t| t.max(end)));
        }
        let complete = match asm.total {
            Some(t) => asm.bytes.len() >= t && asm.bytes[..t].iter().all(Option::is_some),
            None => false,
        };
        if complete {
            let t = asm.total.unwrap();
            let payload: Vec<u8> = asm.bytes[..t].iter().map(|b| b.unwrap()).collect();
            let repr = Ipv4Repr {
                dont_fragment: true,
                more_fragments: false,
                frag_offset: 0,
                total_len_override: None,
                ..asm.base
            };
            self.pending.remove(idx);
            Some(emit_wire(&repr, &payload))
        } else {
            None
        }
    }

    /// Number of in-progress assemblies (for tests / resource accounting).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// Reassemble a complete set of fragments in one call (test helper).
pub fn reassemble(policy: OverlapPolicy, frags: impl IntoIterator<Item = Wire>) -> Option<Wire> {
    let mut r = Reassembler::new(policy);
    let mut done = None;
    for f in frags {
        if let Some(d) = r.push(f) {
            done = Some(d);
        }
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpProtocol;
    use std::net::Ipv4Addr;

    fn base() -> Ipv4Repr {
        Ipv4Repr {
            ident: 0x4242,
            ..Ipv4Repr::new(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), IpProtocol::Tcp)
        }
    }

    fn full_datagram(payload: &[u8]) -> Wire {
        Wire::from_vec(base().emit(payload))
    }

    #[test]
    fn fragment_and_reassemble() {
        let payload: Vec<u8> = (0..64u8).collect();
        let wire = full_datagram(&payload);
        let frags = fragment_at(&wire, &[16, 40]);
        assert_eq!(frags.len(), 3);
        let out = reassemble(OverlapPolicy::LastWins, frags).unwrap();
        let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert_eq!(pkt.payload(), &payload[..]);
        assert!(!pkt.is_fragment());
    }

    #[test]
    fn out_of_order_fragments_complete() {
        let payload: Vec<u8> = (0..32u8).collect();
        let wire = full_datagram(&payload);
        let mut frags = fragment_at(&wire, &[16]);
        frags.reverse();
        let out = reassemble(OverlapPolicy::LastWins, frags).unwrap();
        assert_eq!(Ipv4Packet::new_checked(&out[..]).unwrap().payload(), &payload[..]);
    }

    #[test]
    fn overlap_first_wins_keeps_garbage() {
        // The paper's out-of-order IP fragment evasion: garbage at [8,16)
        // arrives first, real data second. FirstWins (the GFW) keeps garbage.
        let b = base();
        let garbage = raw_fragment(&b, 8, true, &[0xAA; 8]);
        let real_tail = raw_fragment(&b, 8, false, &[0x11; 8]);
        let head = raw_fragment(&b, 0, true, &[0x22; 8]);
        let out = reassemble(OverlapPolicy::FirstWins, vec![garbage, real_tail, head]).unwrap();
        let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert_eq!(&pkt.payload()[8..], &[0xAA; 8], "GFW keeps the first (garbage) fragment");
    }

    #[test]
    fn overlap_last_wins_takes_real_data() {
        let b = base();
        let garbage = raw_fragment(&b, 8, true, &[0xAA; 8]);
        let real_tail = raw_fragment(&b, 8, false, &[0x11; 8]);
        let head = raw_fragment(&b, 0, true, &[0x22; 8]);
        let out = reassemble(OverlapPolicy::LastWins, vec![garbage, real_tail, head]).unwrap();
        let pkt = Ipv4Packet::new_checked(&out[..]).unwrap();
        assert_eq!(&pkt.payload()[8..], &[0x11; 8], "receiver keeps the later (real) fragment");
    }

    #[test]
    fn distinct_idents_do_not_mix() {
        let b1 = base();
        let b2 = Ipv4Repr { ident: 0x9999, ..base() };
        let mut r = Reassembler::new(OverlapPolicy::LastWins);
        assert!(r.push(raw_fragment(&b1, 0, true, &[1; 8])).is_none());
        assert!(r.push(raw_fragment(&b2, 0, true, &[2; 8])).is_none());
        assert_eq!(r.pending_count(), 2);
        let done = r.push(raw_fragment(&b1, 8, false, &[3; 8])).unwrap();
        let pkt = Ipv4Packet::new_checked(&done[..]).unwrap();
        assert_eq!(pkt.payload(), &[1, 1, 1, 1, 1, 1, 1, 1, 3, 3, 3, 3, 3, 3, 3, 3]);
        assert_eq!(r.pending_count(), 1);
    }

    #[test]
    fn non_fragment_passes_through() {
        let wire = full_datagram(b"hello");
        let mut r = Reassembler::new(OverlapPolicy::FirstWins);
        assert_eq!(r.push(wire.clone()), Some(wire));
    }
}
