//! Minimal HTTP/1.1 request/response codec.
//!
//! Enough to reproduce the paper's workload: GET requests whose target or
//! Host header can carry a sensitive keyword (the paper uses `ultrasurf` in
//! the request), and simple full responses including the 301-with-keyword-
//! in-Location case that §3.3 mentions the GFW can detect on some paths.

use crate::{ParseError, Result};

/// An HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    pub target: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpRequest {
    pub fn get(target: &str, host: &str) -> HttpRequest {
        HttpRequest {
            method: "GET".into(),
            target: target.into(),
            headers: vec![
                ("Host".into(), host.into()),
                ("User-Agent".into(), "intang-repro/0.1".into()),
                ("Accept".into(), "*/*".into()),
                ("Connection".into(), "close".into()),
            ],
            body: Vec::new(),
        }
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serialize by appending to `out` — the allocation-free path for
    /// reused buffers. Byte-identical to [`HttpRequest::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        encode_headers_into(&self.headers, out);
        out.extend_from_slice(&self.body);
    }

    /// Would [`HttpRequest::decode`] succeed on `data`? Same validation,
    /// no `String`/`Vec` construction — the per-poll completeness probe
    /// servers run on every received chunk.
    pub fn is_complete(data: &[u8]) -> bool {
        let Ok((head, rest)) = split_head(data) else { return false };
        let mut lines = head.split("\r\n");
        let Some(request_line) = lines.next() else { return false };
        let mut parts = request_line.split(' ');
        if parts.next().is_none() || parts.next().is_none() {
            return false;
        }
        let Some(version) = parts.next() else { return false };
        if !version.starts_with("HTTP/1.") {
            return false;
        }
        match scan_content_length(lines) {
            Some(clen) => rest.len() >= clen,
            None => false,
        }
    }

    /// Parse a request from a complete byte stream (headers terminated by
    /// CRLFCRLF). Body length from Content-Length when present.
    pub fn decode(data: &[u8]) -> Result<HttpRequest> {
        let (head, rest) = split_head(data)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(ParseError::Malformed)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().ok_or(ParseError::Malformed)?.to_string();
        let target = parts.next().ok_or(ParseError::Malformed)?.to_string();
        let version = parts.next().ok_or(ParseError::Malformed)?;
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::Unsupported);
        }
        let headers = parse_headers(lines)?;
        let clen = content_length(&headers);
        if rest.len() < clen {
            return Err(ParseError::Truncated);
        }
        Ok(HttpRequest {
            method,
            target,
            headers,
            body: rest[..clen].to_vec(),
        })
    }
}

/// An HTTP/1.1 response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    pub status: u16,
    pub reason: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl HttpResponse {
    pub fn ok(body: &[u8]) -> HttpResponse {
        HttpResponse {
            status: 200,
            reason: "OK".into(),
            headers: vec![
                ("Content-Type".into(), "text/html".into()),
                ("Content-Length".into(), body.len().to_string()),
                ("Connection".into(), "close".into()),
            ],
            body: body.to_vec(),
        }
    }

    /// A 301 redirect to HTTPS: the Location header copies the request
    /// target, which is how a sensitive keyword leaks into the *response*
    /// (§3.3 — the reason HTTPS-default sites were excluded).
    pub fn redirect_to_https(host: &str, target: &str) -> HttpResponse {
        HttpResponse {
            status: 301,
            reason: "Moved Permanently".into(),
            headers: vec![
                ("Location".into(), format!("https://{}{}", host, target)),
                ("Content-Length".into(), "0".into()),
                ("Connection".into(), "close".into()),
            ],
            body: Vec::new(),
        }
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serialize by appending to `out` — byte-identical to
    /// [`HttpResponse::encode`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"HTTP/1.1 ");
        push_decimal(out, u64::from(self.status));
        out.push(b' ');
        out.extend_from_slice(self.reason.as_bytes());
        out.extend_from_slice(b"\r\n");
        encode_headers_into(&self.headers, out);
        out.extend_from_slice(&self.body);
    }

    /// Would [`HttpResponse::decode`] succeed on `data`? Same validation,
    /// no `String`/`Vec` construction — clients probe this on every
    /// received chunk and only pay for the real decode once it passes.
    pub fn is_complete(data: &[u8]) -> bool {
        let Ok((head, rest)) = split_head(data) else { return false };
        let mut lines = head.split("\r\n");
        let Some(status_line) = lines.next() else { return false };
        let mut parts = status_line.splitn(3, ' ');
        let Some(version) = parts.next() else { return false };
        if !version.starts_with("HTTP/1.") {
            return false;
        }
        match parts.next().map(str::parse::<u16>) {
            Some(Ok(_)) => {}
            _ => return false,
        }
        match scan_content_length(lines) {
            Some(clen) => rest.len() >= clen,
            None => false,
        }
    }

    pub fn decode(data: &[u8]) -> Result<HttpResponse> {
        let (head, rest) = split_head(data)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(ParseError::Malformed)?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().ok_or(ParseError::Malformed)?;
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::Unsupported);
        }
        let status: u16 = parts
            .next()
            .ok_or(ParseError::Malformed)?
            .parse()
            .map_err(|_| ParseError::Malformed)?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        let clen = content_length(&headers);
        if rest.len() < clen {
            return Err(ParseError::Truncated);
        }
        Ok(HttpResponse {
            status,
            reason,
            headers,
            body: rest[..clen].to_vec(),
        })
    }
}

fn encode_headers_into(headers: &[(String, String)], out: &mut Vec<u8>) {
    for (k, v) in headers {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
}

fn push_decimal(out: &mut Vec<u8>, n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    let mut n = n;
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// Walk header lines the way [`parse_headers`] + [`content_length`] would,
/// without materializing them: `None` for a malformed line, otherwise the
/// effective Content-Length (0 when absent or unparsable — matching
/// [`content_length`]).
fn scan_content_length<'a>(lines: impl Iterator<Item = &'a str>) -> Option<usize> {
    let mut clen = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':')?;
        if clen.is_none() && k.trim().eq_ignore_ascii_case("content-length") {
            clen = Some(v.trim().parse().unwrap_or(0));
        }
    }
    Some(clen.unwrap_or(0))
}

fn split_head(data: &[u8]) -> Result<(&str, &[u8])> {
    let pos = data.windows(4).position(|w| w == b"\r\n\r\n").ok_or(ParseError::Truncated)?;
    let head = std::str::from_utf8(&data[..pos]).map_err(|_| ParseError::Malformed)?;
    Ok((head, &data[pos + 4..]))
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Vec<(String, String)>> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (k, v) = line.split_once(':').ok_or(ParseError::Malformed)?;
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }
    Ok(headers)
}

fn content_length(headers: &[(String, String)]) -> usize {
    headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = HttpRequest::get("/search?q=ultrasurf", "www.example.com");
        let wire = req.encode();
        let back = HttpRequest::decode(&wire).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.header("host"), Some("www.example.com"));
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::ok(b"<html>hi</html>");
        let wire = resp.encode();
        let back = HttpResponse::decode(&wire).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.status, 200);
        assert_eq!(back.body, b"<html>hi</html>");
    }

    #[test]
    fn redirect_copies_keyword_into_location() {
        let resp = HttpResponse::redirect_to_https("example.com", "/ultrasurf");
        let wire = resp.encode();
        let s = String::from_utf8(wire).unwrap();
        assert!(s.contains("Location: https://example.com/ultrasurf"));
    }

    #[test]
    fn encode_into_matches_format_based_encoding() {
        let req = HttpRequest::get("/search?q=ultrasurf", "www.example.com");
        let expected = {
            let mut out = format!("{} {} HTTP/1.1\r\n", req.method, req.target).into_bytes();
            for (k, v) in &req.headers {
                out.extend_from_slice(format!("{}: {}\r\n", k, v).as_bytes());
            }
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(&req.body);
            out
        };
        assert_eq!(req.encode(), expected);

        let resp = HttpResponse::ok(b"<html>hi</html>");
        let expected = {
            let mut out = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason).into_bytes();
            for (k, v) in &resp.headers {
                out.extend_from_slice(format!("{}: {}\r\n", k, v).as_bytes());
            }
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(&resp.body);
            out
        };
        assert_eq!(resp.encode(), expected);
    }

    #[test]
    fn is_complete_agrees_with_decode() {
        let full = HttpRequest::get("/ultrasurf", "example.com").encode();
        // Every prefix, the full message, and the full message with junk
        // appended must agree with what decode says.
        for cut in 0..=full.len() {
            assert_eq!(
                HttpRequest::is_complete(&full[..cut]),
                HttpRequest::decode(&full[..cut]).is_ok(),
                "cut={cut}"
            );
        }
        let mut with_body = HttpRequest::get("/post", "example.com");
        with_body.headers.push(("Content-Length".into(), "5".into()));
        with_body.body = b"12345".to_vec();
        let wire = with_body.encode();
        for cut in 0..=wire.len() {
            assert_eq!(
                HttpRequest::is_complete(&wire[..cut]),
                HttpRequest::decode(&wire[..cut]).is_ok(),
                "cut={cut}"
            );
        }
        // Malformed header line: both must reject.
        let bad = b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n";
        assert_eq!(HttpRequest::is_complete(bad), HttpRequest::decode(bad).is_ok());
        // Wrong protocol version: both must reject.
        let bad = b"GET / SPDY/9\r\n\r\n";
        assert_eq!(HttpRequest::is_complete(bad), HttpRequest::decode(bad).is_ok());
    }

    #[test]
    fn response_is_complete_agrees_with_decode() {
        let full = HttpResponse::ok(b"<html>hi</html>").encode();
        for cut in 0..=full.len() {
            assert_eq!(
                HttpResponse::is_complete(&full[..cut]),
                HttpResponse::decode(&full[..cut]).is_ok(),
                "cut={cut}"
            );
        }
        let bad = b"HTTP/1.1 abc OK\r\n\r\n";
        assert_eq!(HttpResponse::is_complete(bad), HttpResponse::decode(bad).is_ok());
        let bad = b"SPDY/9 200 OK\r\n\r\n";
        assert_eq!(HttpResponse::is_complete(bad), HttpResponse::decode(bad).is_ok());
        let bad = b"HTTP/1.1 200 OK\r\nno-colon\r\n\r\n";
        assert_eq!(HttpResponse::is_complete(bad), HttpResponse::decode(bad).is_ok());
    }

    #[test]
    fn truncated_body_detected() {
        let mut resp = HttpResponse::ok(b"full body");
        resp.headers.retain(|(k, _)| !k.eq_ignore_ascii_case("content-length"));
        resp.headers.push(("Content-Length".into(), "100".into()));
        let wire = resp.encode();
        assert_eq!(HttpResponse::decode(&wire).unwrap_err(), ParseError::Truncated);
    }

    #[test]
    fn request_split_across_packets_concatenates() {
        // What the GFW's reassembly must handle: keyword split in halves.
        let req = HttpRequest::get("/ultrasurf", "example.com").encode();
        let (a, b) = req.split_at(req.len() / 2);
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert!(HttpRequest::decode(&joined).is_ok());
        assert!(HttpRequest::decode(a).is_err());
    }
}
