//! # intang-packet
//!
//! Wire-format codecs for the "Your State is Not Mine" (IMC 2017)
//! reproduction. Everything that travels through the simulated network is a
//! real IPv4 datagram serialized to bytes: the censor, the middleboxes and
//! the endpoints all parse the same octets, exactly as they would on a wire.
//!
//! The crate follows the smoltcp idiom: a zero-copy *view* type
//! ([`ipv4::Ipv4Packet`], [`tcp::TcpPacket`], ...) that reads/writes fields
//! in place, plus a high-level *representation* type ([`ipv4::Ipv4Repr`],
//! [`tcp::TcpRepr`], ...) that can be parsed from and emitted into a view.
//!
//! Unlike a normal stack, this crate must also be able to produce
//! **deliberately malformed** packets — wrong checksums, absent TCP flags,
//! inflated IP total lengths, unsolicited MD5 signature options — because
//! those are precisely the "insertion packets" the paper's evasion
//! strategies are built from (§3.2, §5.3, Table 3, Table 5). The
//! [`builder::PacketBuilder`] API exposes every such knob.

pub mod arena;
pub mod builder;
pub mod checksum;
pub mod dns;
pub mod frag;
pub mod fxhash;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod tcp;
pub mod udp;
pub mod wire;

pub use builder::PacketBuilder;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ipv4::{IpProtocol, Ipv4Packet, Ipv4Repr};
pub use tcp::{TcpFlags, TcpOption, TcpOptionList, TcpPacket, TcpRepr};
pub use wire::{HeaderIndex, L4Index, TcpIndex, UdpIndex, Wire};

use std::net::Ipv4Addr;

/// Errors produced when parsing wire data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A header length field is inconsistent with the buffer.
    BadLength,
    /// A version or type field has an unsupported value.
    Unsupported,
    /// A checksum failed validation (only returned by explicit verify calls).
    BadChecksum,
    /// The payload is not a valid message of the expected upper protocol.
    Malformed,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseError::Truncated => "buffer truncated",
            ParseError::BadLength => "inconsistent length field",
            ParseError::Unsupported => "unsupported version or type",
            ParseError::BadChecksum => "checksum mismatch",
            ParseError::Malformed => "malformed message",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Convenience result alias for parse operations.
pub type Result<T> = std::result::Result<T, ParseError>;

/// The four-tuple identifying a TCP or UDP flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    pub src: Ipv4Addr,
    pub src_port: u16,
    pub dst: Ipv4Addr,
    pub dst_port: u16,
}

impl FourTuple {
    pub fn new(src: Ipv4Addr, src_port: u16, dst: Ipv4Addr, dst_port: u16) -> Self {
        FourTuple {
            src,
            src_port,
            dst,
            dst_port,
        }
    }

    /// The same flow seen from the opposite direction.
    pub fn reversed(&self) -> FourTuple {
        FourTuple {
            src: self.dst,
            src_port: self.dst_port,
            dst: self.src,
            dst_port: self.src_port,
        }
    }

    /// A direction-independent key: both directions of a flow map to the
    /// same value. Used by middleboxes and the censor to find one shared
    /// record for a connection.
    pub fn canonical(&self) -> FourTuple {
        if (self.src, self.src_port) <= (self.dst, self.dst_port) {
            *self
        } else {
            self.reversed()
        }
    }
}

impl std::fmt::Display for FourTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} -> {}:{}", self.src, self.src_port, self.dst, self.dst_port)
    }
}

/// Direction-independent shard assignment for a host *pair*: both
/// directions of every flow between `a` and `b` — whatever the ports —
/// land in the same shard (SplitMix64 over the sorted address pair).
///
/// This is the partition key that makes censor state shardable: the GFW's
/// blacklist is pair-keyed and its TCB interactions (eviction pressure,
/// collateral resets, resync storms) only couple flows that share a
/// `(client, server)` pair, so hashing addresses alone — never ports —
/// keeps every cross-flow interaction inside one shard.
pub fn pair_shard(a: Ipv4Addr, b: Ipv4Addr, shards: u32) -> u32 {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut x = (u64::from(u32::from(lo)) << 32) | u64::from(u32::from(hi));
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % u64::from(shards.max(1))) as u32
}

/// Extract the four-tuple from a raw IPv4+TCP/UDP datagram, if present.
pub fn four_tuple_of(wire: &[u8]) -> Option<FourTuple> {
    let ip = Ipv4Packet::new_checked(wire).ok()?;
    if ip.frag_offset() != 0 {
        return None;
    }
    let (sp, dp) = match ip.protocol() {
        IpProtocol::Tcp => {
            let t = TcpPacket::new_checked(ip.payload()).ok()?;
            (t.src_port(), t.dst_port())
        }
        IpProtocol::Udp => {
            let u = udp::UdpPacket::new_checked(ip.payload()).ok()?;
            (u.src_port(), u.dst_port())
        }
        _ => return None,
    };
    Some(FourTuple::new(ip.src_addr(), sp, ip.dst_addr(), dp))
}

/// Recompute the IPv4 header checksum — and, for non-fragmented TCP
/// datagrams, the TCP checksum — in place. The one shared helper every
/// site that mutates `seq`/`ack`/flags/addresses *after* serialization
/// must call before putting the packet back on the wire; hand-rolled
/// per-site refresh code is how stale-checksum bugs happen.
///
/// Returns `false` (buffer untouched) when the bytes are not a valid
/// IPv4 datagram. A deliberately-bad checksum (the Table 5 insertion
/// discrepancy) must be reapplied *after* calling this.
pub fn refresh_checksums(bytes: &mut [u8]) -> bool {
    let Ok(ip) = Ipv4Packet::new_checked(&bytes[..]) else {
        return false;
    };
    let ihl = ip.header_len();
    let src = ip.src_addr();
    let dst = ip.dst_addr();
    let seg_end = usize::from(ip.total_len()).max(ihl).min(bytes.len());
    let tcp_ok = !ip.is_fragment() && ip.protocol() == IpProtocol::Tcp && seg_end - ihl >= tcp::HEADER_LEN;
    if tcp_ok {
        let seg = &mut bytes[ihl..seg_end];
        seg[16..18].copy_from_slice(&[0, 0]);
        let ck = checksum::transport_checksum(src, dst, u8::from(IpProtocol::Tcp), seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
    }
    bytes[10..12].copy_from_slice(&[0, 0]);
    let ck = checksum::checksum(&bytes[..ihl]);
    bytes[10..12].copy_from_slice(&ck.to_be_bytes());
    true
}

/// A compact human-readable summary of a datagram, used in traces and the
/// figure-3/figure-4 sequence diagrams.
pub fn summarize(wire: &[u8]) -> String {
    let Ok(ip) = Ipv4Packet::new_checked(wire) else {
        return format!("<{} bytes, unparseable>", wire.len());
    };
    if ip.more_fragments() || ip.frag_offset() != 0 {
        return format!(
            "{} > {} IPfrag off={} len={}{}",
            ip.src_addr(),
            ip.dst_addr(),
            ip.frag_offset(),
            ip.payload().len(),
            if ip.more_fragments() { " MF" } else { "" }
        );
    }
    match ip.protocol() {
        IpProtocol::Tcp => match TcpPacket::new_checked(ip.payload()) {
            Ok(t) => {
                let mut extras = String::new();
                if !t.verify_checksum(ip.src_addr(), ip.dst_addr()) {
                    extras.push_str(" badcsum");
                }
                if t.options().iter().any(|o| matches!(o, TcpOption::Md5Sig(_))) {
                    extras.push_str(" md5");
                }
                format!(
                    "{}:{} > {}:{} {} seq={} ack={} len={} ttl={}{}",
                    ip.src_addr(),
                    t.src_port(),
                    ip.dst_addr(),
                    t.dst_port(),
                    t.flags(),
                    t.seq_number(),
                    t.ack_number(),
                    t.payload().len(),
                    ip.ttl(),
                    extras,
                )
            }
            Err(_) => format!("{} > {} TCP <malformed>", ip.src_addr(), ip.dst_addr()),
        },
        IpProtocol::Udp => match udp::UdpPacket::new_checked(ip.payload()) {
            Ok(u) => format!(
                "{}:{} > {}:{} UDP len={}",
                ip.src_addr(),
                u.src_port(),
                ip.dst_addr(),
                u.dst_port(),
                u.payload().len()
            ),
            Err(_) => format!("{} > {} UDP <malformed>", ip.src_addr(), ip.dst_addr()),
        },
        IpProtocol::Icmp => match icmp::IcmpPacket::new_checked(ip.payload()) {
            Ok(i) => {
                format!("{} > {} ICMP type={} code={}", ip.src_addr(), ip.dst_addr(), i.msg_type(), i.code())
            }
            Err(_) => format!("{} > {} ICMP <malformed>", ip.src_addr(), ip.dst_addr()),
        },
        p => format!("{} > {} proto={:?}", ip.src_addr(), ip.dst_addr(), p),
    }
}

#[cfg(test)]
mod pair_shard_tests {
    use super::*;

    #[test]
    fn pair_shard_is_direction_and_port_independent() {
        let c = Ipv4Addr::new(10, 1, 0, 7);
        let s = Ipv4Addr::new(203, 0, 113, 3);
        let base = pair_shard(c, s, 8);
        assert_eq!(pair_shard(s, c, 8), base, "both directions share a shard");
        assert!(base < 8);
        // Every flow between the pair co-locates regardless of ports: the
        // function never sees them.
        assert_eq!(pair_shard(c, s, 8), base);
        assert_eq!(pair_shard(c, s, 1), 0);
    }

    #[test]
    fn pair_shard_spreads_distinct_pairs() {
        let site = Ipv4Addr::new(203, 0, 113, 1);
        let mut seen = [false; 4];
        for i in 0..64u8 {
            seen[pair_shard(Ipv4Addr::new(10, 1, 0, i), site, 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 client addresses should touch all 4 shards");
    }
}
