//! ICMP: echo request/reply and time-exceeded.
//!
//! Time-exceeded messages are what make the paper's TTL-scoped insertion
//! packets *measurable*: INTANG estimates the hop count to the server with a
//! tcptraceroute-style probe (§7.1) and then sets the insertion TTL to
//! `hops - δ`. Our simulated routers emit real time-exceeded datagrams
//! embedding the expired packet's IP header + 8 bytes, exactly like RFC 792.

use crate::{checksum, ipv4, ParseError, Result};
use std::net::Ipv4Addr;

pub const HEADER_LEN: usize = 8;

pub const TYPE_ECHO_REPLY: u8 = 0;
pub const TYPE_ECHO_REQUEST: u8 = 8;
pub const TYPE_TIME_EXCEEDED: u8 = 11;

/// Zero-copy view over an ICMP message.
#[derive(Debug, Clone, Copy)]
pub struct IcmpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> IcmpPacket<T> {
    pub fn new_unchecked(buffer: T) -> Self {
        IcmpPacket { buffer }
    }

    pub fn new_checked(buffer: T) -> Result<Self> {
        let pkt = IcmpPacket::new_unchecked(buffer);
        if pkt.buffer.as_ref().len() < HEADER_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(pkt)
    }

    fn data(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    pub fn msg_type(&self) -> u8 {
        self.data()[0]
    }

    pub fn code(&self) -> u8 {
        self.data()[1]
    }

    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.data()[2], self.data()[3]])
    }

    /// The 4 "rest of header" bytes (ident+seq for echo, unused for
    /// time-exceeded).
    pub fn rest(&self) -> [u8; 4] {
        [self.data()[4], self.data()[5], self.data()[6], self.data()[7]]
    }

    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.data()[4], self.data()[5]])
    }

    pub fn seq_no(&self) -> u16 {
        u16::from_be_bytes([self.data()[6], self.data()[7]])
    }

    pub fn payload(&self) -> &[u8] {
        &self.data()[HEADER_LEN..]
    }

    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.data())
    }
}

/// High-level ICMP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpRepr {
    EchoRequest {
        ident: u16,
        seq_no: u16,
        payload: Vec<u8>,
    },
    EchoReply {
        ident: u16,
        seq_no: u16,
        payload: Vec<u8>,
    },
    /// TTL expired in transit; carries the offending datagram's IP header
    /// plus the first 8 bytes of its payload.
    TimeExceeded {
        original: Vec<u8>,
    },
}

impl IcmpRepr {
    pub fn parse<T: AsRef<[u8]>>(pkt: &IcmpPacket<T>) -> Result<IcmpRepr> {
        match (pkt.msg_type(), pkt.code()) {
            (TYPE_ECHO_REQUEST, 0) => Ok(IcmpRepr::EchoRequest {
                ident: pkt.ident(),
                seq_no: pkt.seq_no(),
                payload: pkt.payload().to_vec(),
            }),
            (TYPE_ECHO_REPLY, 0) => Ok(IcmpRepr::EchoReply {
                ident: pkt.ident(),
                seq_no: pkt.seq_no(),
                payload: pkt.payload().to_vec(),
            }),
            (TYPE_TIME_EXCEEDED, 0) => Ok(IcmpRepr::TimeExceeded {
                original: pkt.payload().to_vec(),
            }),
            _ => Err(ParseError::Unsupported),
        }
    }

    pub fn emit(&self) -> Vec<u8> {
        let (ty, rest, payload): (u8, [u8; 4], &[u8]) = match self {
            IcmpRepr::EchoRequest { ident, seq_no, payload } => {
                let mut r = [0u8; 4];
                r[0..2].copy_from_slice(&ident.to_be_bytes());
                r[2..4].copy_from_slice(&seq_no.to_be_bytes());
                (TYPE_ECHO_REQUEST, r, payload)
            }
            IcmpRepr::EchoReply { ident, seq_no, payload } => {
                let mut r = [0u8; 4];
                r[0..2].copy_from_slice(&ident.to_be_bytes());
                r[2..4].copy_from_slice(&seq_no.to_be_bytes());
                (TYPE_ECHO_REPLY, r, payload)
            }
            IcmpRepr::TimeExceeded { original } => (TYPE_TIME_EXCEEDED, [0u8; 4], original),
        };
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        buf[0] = ty;
        buf[4..8].copy_from_slice(&rest);
        buf[HEADER_LEN..].copy_from_slice(payload);
        let ck = checksum::checksum(&buf);
        buf[2..4].copy_from_slice(&ck.to_be_bytes());
        buf
    }
}

/// Build a complete time-exceeded IPv4 datagram from `router` back to the
/// source of the expired datagram `expired_wire`.
pub fn time_exceeded_for(router: Ipv4Addr, expired_wire: &[u8]) -> Option<crate::Wire> {
    let expired = ipv4::Ipv4Packet::new_checked(expired_wire).ok()?;
    let quote_len = (expired.header_len() + 8).min(expired_wire.len());
    let ip = ipv4::Ipv4Repr::new(router, expired.src_addr(), ipv4::IpProtocol::Icmp);
    // Assemble directly in the (pooled) wire buffer: IP header space, ICMP
    // header, quoted bytes, then checksum and header fill in place. Routers
    // on lossy/TTL-scoped paths emit these per expiry, so the old
    // quote-vec + `IcmpRepr::emit` intermediates were two allocations per
    // expired packet. Byte-identical to emitting via `IcmpRepr`.
    let mut w = crate::Wire::with_capacity(ipv4::HEADER_LEN + HEADER_LEN + quote_len);
    let out = w.vec_mut();
    out.resize(ipv4::HEADER_LEN + HEADER_LEN, 0);
    out[ipv4::HEADER_LEN] = TYPE_TIME_EXCEEDED;
    out.extend_from_slice(&expired_wire[..quote_len]);
    let ck = checksum::checksum(&out[ipv4::HEADER_LEN..]);
    out[ipv4::HEADER_LEN + 2..ipv4::HEADER_LEN + 4].copy_from_slice(&ck.to_be_bytes());
    ip.finish_in_place(0, out);
    Some(w)
}

/// Given a received time-exceeded datagram, recover the (dst, protocol,
/// src_port, dst_port, seq) of the original expired packet. Used by the
/// tcptraceroute-style hop estimator to match responses to probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiredQuote {
    pub orig_src: Ipv4Addr,
    pub orig_dst: Ipv4Addr,
    pub protocol: ipv4::IpProtocol,
    pub src_port: u16,
    pub dst_port: u16,
    /// TCP sequence number of the quoted segment (0 for non-TCP).
    pub seq: u32,
}

pub fn parse_time_exceeded(wire: &[u8]) -> Option<(Ipv4Addr, ExpiredQuote)> {
    let ip = ipv4::Ipv4Packet::new_checked(wire).ok()?;
    if ip.protocol() != ipv4::IpProtocol::Icmp {
        return None;
    }
    let icmp = IcmpPacket::new_checked(ip.payload()).ok()?;
    if icmp.msg_type() != TYPE_TIME_EXCEEDED {
        return None;
    }
    let quoted = icmp.payload();
    let orig = ipv4::Ipv4Packet::new_checked(quoted).ok()?;
    let transport = orig.payload();
    // Only the first 8 transport bytes are guaranteed to be quoted.
    if transport.len() < 8 {
        return None;
    }
    let src_port = u16::from_be_bytes([transport[0], transport[1]]);
    let dst_port = u16::from_be_bytes([transport[2], transport[3]]);
    let seq = match orig.protocol() {
        ipv4::IpProtocol::Tcp => u32::from_be_bytes([transport[4], transport[5], transport[6], transport[7]]),
        _ => 0,
    };
    Some((
        ip.src_addr(),
        ExpiredQuote {
            orig_src: orig.src_addr(),
            orig_dst: orig.dst_addr(),
            protocol: orig.protocol(),
            src_port,
            dst_port,
            seq,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpFlags, TcpRepr};
    use crate::{IpProtocol, Ipv4Repr};

    #[test]
    fn echo_round_trip() {
        let repr = IcmpRepr::EchoRequest {
            ident: 42,
            seq_no: 7,
            payload: b"ping".to_vec(),
        };
        let wire = repr.emit();
        let pkt = IcmpPacket::new_checked(&wire[..]).unwrap();
        assert!(pkt.verify_checksum());
        assert_eq!(IcmpRepr::parse(&pkt).unwrap(), repr);
    }

    #[test]
    fn time_exceeded_quotes_original() {
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let server = Ipv4Addr::new(93, 184, 216, 34);
        let router = Ipv4Addr::new(172, 16, 5, 9);
        let tcp = TcpRepr {
            seq: 0xdeadbeef,
            flags: TcpFlags::SYN,
            ..TcpRepr::new(40000, 80)
        };
        let ip = Ipv4Repr {
            ttl: 1,
            ..Ipv4Repr::new(client, server, IpProtocol::Tcp)
        };
        let expired = ip.emit(&tcp.emit(client, server));

        let te = time_exceeded_for(router, &expired).unwrap();
        let (from, quote) = parse_time_exceeded(&te).unwrap();
        assert_eq!(from, router);
        assert_eq!(quote.orig_src, client);
        assert_eq!(quote.orig_dst, server);
        assert_eq!(quote.protocol, IpProtocol::Tcp);
        assert_eq!(quote.src_port, 40000);
        assert_eq!(quote.dst_port, 80);
        assert_eq!(quote.seq, 0xdeadbeef);

        // The ICMP datagram must be addressed back to the expired packet's source.
        let outer = crate::Ipv4Packet::new_checked(&te[..]).unwrap();
        assert_eq!(outer.dst_addr(), client);
    }

    #[test]
    fn time_exceeded_matches_repr_emit_path() {
        // The in-place assembly must stay byte-identical to the readable
        // IcmpRepr-based construction it replaced.
        let client = Ipv4Addr::new(10, 0, 0, 1);
        let server = Ipv4Addr::new(93, 184, 216, 34);
        let router = Ipv4Addr::new(172, 16, 5, 9);
        for payload_len in [0usize, 3, 8, 40] {
            let tcp = TcpRepr {
                seq: 0x01020304,
                flags: TcpFlags::PSH_ACK,
                payload: vec![0xa5; payload_len],
                ..TcpRepr::new(40000, 80)
            };
            let ip = Ipv4Repr {
                ttl: 1,
                ..Ipv4Repr::new(client, server, IpProtocol::Tcp)
            };
            let expired = ip.emit(&tcp.emit(client, server));

            let fast = time_exceeded_for(router, &expired).unwrap();

            let quote_len = (ipv4::HEADER_LEN + 8).min(expired.len());
            let msg = IcmpRepr::TimeExceeded {
                original: expired[..quote_len].to_vec(),
            }
            .emit();
            let outer = Ipv4Repr::new(router, client, IpProtocol::Icmp);
            let slow = outer.emit(&msg);
            assert_eq!(&fast[..], &slow[..], "payload_len={payload_len}");
        }
    }

    #[test]
    fn parse_rejects_non_icmp() {
        let a = Ipv4Addr::new(1, 1, 1, 1);
        let ip = Ipv4Repr::new(a, a, IpProtocol::Tcp);
        let wire = ip.emit(&[0u8; 20]);
        assert!(parse_time_exceeded(&wire).is_none());
    }
}
