//! High-level construction of complete IPv4/TCP/UDP datagrams, including
//! every deliberate malformation used by the paper's insertion packets.
//!
//! ```
//! use intang_packet::{PacketBuilder, TcpFlags};
//! use std::net::Ipv4Addr;
//!
//! let client = Ipv4Addr::new(10, 0, 0, 1);
//! let server = Ipv4Addr::new(93, 184, 216, 34);
//! // A TTL-limited RST insertion packet (TCB-teardown strategy, §3.2):
//! let wire = PacketBuilder::tcp(client, server, 40000, 80)
//!     .seq(12345)
//!     .flags(TcpFlags::RST)
//!     .ttl(8)
//!     .build();
//! assert!(intang_packet::Ipv4Packet::new_checked(&wire[..]).is_ok());
//! ```

use crate::ipv4::{IpProtocol, Ipv4Repr};
use crate::tcp::{TcpFlags, TcpOption, TcpRepr};
use crate::udp::UdpRepr;
use crate::wire::Wire;
use std::cell::RefCell;
use std::net::Ipv4Addr;

/// Fluent builder for one IPv4 datagram carrying TCP or UDP.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    ip: Ipv4Repr,
    tcp: Option<TcpRepr>,
    udp: Option<UdpRepr>,
}

impl PacketBuilder {
    /// Start a TCP datagram.
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16) -> Self {
        PacketBuilder {
            ip: Ipv4Repr::new(src, dst, IpProtocol::Tcp),
            tcp: Some(TcpRepr::new(src_port, dst_port)),
            udp: None,
        }
    }

    /// Start a UDP datagram.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        PacketBuilder {
            ip: Ipv4Repr::new(src, dst, IpProtocol::Udp),
            tcp: None,
            udp: Some(UdpRepr::new(src_port, dst_port, payload)),
        }
    }

    fn tcp_mut(&mut self) -> &mut TcpRepr {
        self.tcp.as_mut().expect("not a TCP builder")
    }

    pub fn seq(mut self, v: u32) -> Self {
        self.tcp_mut().seq = v;
        self
    }

    pub fn ack(mut self, v: u32) -> Self {
        self.tcp_mut().ack = v;
        self
    }

    pub fn flags(mut self, f: TcpFlags) -> Self {
        self.tcp_mut().flags = f;
        self
    }

    pub fn window(mut self, w: u16) -> Self {
        self.tcp_mut().window = w;
        self
    }

    pub fn payload(mut self, data: &[u8]) -> Self {
        self.tcp_mut().payload = data.to_vec();
        self
    }

    pub fn option(mut self, opt: TcpOption) -> Self {
        self.tcp_mut().options.push(opt);
        self
    }

    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ip.ttl = ttl;
        self
    }

    pub fn ident(mut self, ident: u16) -> Self {
        self.ip.ident = ident;
        self
    }

    // ---- deliberate malformations (insertion-packet discrepancies) ----

    /// Force a wrong TCP checksum (the classic bad-checksum insertion).
    pub fn bad_checksum(mut self) -> Self {
        self.tcp_mut().checksum_override = Some(0xbeef);
        self
    }

    /// Attach an unsolicited RFC 2385 MD5 signature option (Table 3 / §5.3).
    pub fn md5_option(self) -> Self {
        self.option(TcpOption::Md5Sig([0x5a; 16]))
    }

    /// Attach RFC 7323 timestamps; `tsval` far in the past yields the
    /// "timestamps too old" PAWS discard of Table 3.
    pub fn timestamps(self, tsval: u32, tsecr: u32) -> Self {
        self.option(TcpOption::Timestamps { tsval, tsecr })
    }

    /// Declare an IP total length larger than the real buffer (Table 3).
    pub fn inflated_total_len(mut self, extra: u16) -> Self {
        let real = (crate::ipv4::HEADER_LEN
            + self.tcp.as_ref().map(|t| t.wire_len()).unwrap_or(0)
            + self.udp.as_ref().map(|u| 8 + u.payload.len()).unwrap_or(0)) as u16;
        self.ip.total_len_override = Some(real + extra);
        self
    }

    /// Declare a TCP data offset below 5 words ("TCP header length < 20").
    pub fn short_data_offset(mut self) -> Self {
        self.tcp_mut().data_offset_words_override = Some(4);
        self
    }

    /// Serialize into a wire datagram. The transport segment is staged in a
    /// thread-local scratch buffer and the datagram lands in a pooled
    /// [`Wire`], so steady-state packet construction allocates nothing.
    pub fn build(self) -> Wire {
        thread_local! {
            static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
        }
        let PacketBuilder { ip, tcp, udp } = self;
        SCRATCH
            .try_with(|scratch| {
                let mut transport = scratch.borrow_mut();
                transport.clear();
                match (&tcp, &udp) {
                    (Some(t), None) => t.emit_into(ip.src, ip.dst, &mut transport),
                    (None, Some(u)) => u.emit_into(ip.src, ip.dst, &mut transport),
                    _ => unreachable!("builder always holds exactly one transport"),
                }
                let mut wire = Wire::with_capacity(crate::ipv4::HEADER_LEN + transport.len());
                ip.emit_into(&transport, wire.vec_mut());
                wire
            })
            .expect("packet built during thread teardown")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ipv4Packet, TcpPacket};

    fn c() -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, 1)
    }
    fn s() -> Ipv4Addr {
        Ipv4Addr::new(203, 0, 113, 5)
    }

    #[test]
    fn builds_valid_syn() {
        let wire = PacketBuilder::tcp(c(), s(), 40000, 80)
            .seq(1000)
            .flags(TcpFlags::SYN)
            .option(TcpOption::Mss(1460))
            .build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(ip.verify_header_checksum());
        assert!(ip.total_len_consistent());
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(tcp.flags().syn());
        assert!(tcp.verify_checksum(c(), s()));
    }

    #[test]
    fn malformations_compose() {
        let wire = PacketBuilder::tcp(c(), s(), 1, 2).payload(b"junk").bad_checksum().ttl(3).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert_eq!(ip.ttl(), 3);
        let tcp = TcpPacket::new_checked(ip.payload()).unwrap();
        assert!(!tcp.verify_checksum(c(), s()));
    }

    #[test]
    fn inflated_total_len_flagged() {
        let wire = PacketBuilder::tcp(c(), s(), 1, 2).payload(b"abc").inflated_total_len(64).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert!(!ip.total_len_consistent());
    }

    #[test]
    fn udp_builder() {
        let wire = PacketBuilder::udp(c(), s(), 5000, 53, b"q".to_vec()).ttl(60).build();
        let ip = Ipv4Packet::new_checked(&wire[..]).unwrap();
        assert_eq!(ip.protocol(), IpProtocol::Udp);
        assert_eq!(ip.ttl(), 60);
    }
}
