//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header sum.
//!
//! Two implementations share the module:
//!
//! * [`sum_words_scalar`] — the original byte-pair loop, kept as the
//!   reference the property suite (`tests/properties.rs`) compares against.
//! * [`sum_words`] — the hot-path kernel: the body of the buffer is read as
//!   64-bit words (32 bytes, four independent end-around-carry chains per
//!   step, so the adds pipeline instead of serializing on one carry chain)
//!   and only the sub-8-byte tail falls back to the scalar loop. The wide
//!   body is summed in *little-endian* word order and swapped once at the
//!   end: byte-swapping is multiplication by 256 modulo 65535, so it
//!   commutes with ones-complement addition and one final `swap_bytes`
//!   re-expresses the whole body sum in big-endian word order. Stable
//!   `std`-only code — the word loads compile to unaligned vector-width
//!   moves, no `std::arch` required.
//!
//! [`incremental_update`] implements RFC 1624 checksum adjustment (used by
//! the per-hop TTL writedown, which historically re-summed the whole IPv4
//! header).

use std::net::Ipv4Addr;

/// Fold a 32-bit accumulator into a 16-bit ones-complement sum.
fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Fold a 64-bit accumulator into a 16-bit ones-complement sum.
fn fold64(mut acc: u64) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Reference implementation: sum `data` as big-endian 16-bit words into
/// `acc`, two bytes at a time (no final complement). Byte-for-byte the
/// pre-kernel behavior; the property suite pins [`sum_words`] against it.
pub fn sum_words_scalar(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Sum `data` as big-endian 16-bit words into `acc` (no final complement).
///
/// Equivalent to [`sum_words_scalar`] modulo 65535 — i.e. identical once
/// folded, which is the only way accumulators are consumed.
pub fn sum_words(acc: u32, data: &[u8]) -> u32 {
    if data.len() < 32 {
        return sum_words_scalar(acc, data);
    }
    // Body: 32-byte steps, four independent end-around-carry chains.
    let mut lanes = [0u64; 4];
    let mut chunks = data.chunks_exact(32);
    for chunk in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().expect("8-byte slice"));
            let (s, c) = lane.overflowing_add(w);
            // End-around carry; `s` tops out at u64::MAX - 1 when `c` is
            // set, so this add cannot overflow again.
            *lane = s.wrapping_add(u64::from(c));
        }
    }
    let mut rest = chunks.remainder();
    // Mid tail: remaining whole 8-byte words onto lane 0.
    let mut words = rest.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_le_bytes(w.try_into().expect("8-byte slice"));
        let (s, c) = lanes[0].overflowing_add(w);
        lanes[0] = s.wrapping_add(u64::from(c));
    }
    rest = words.remainder();
    // Fold the little-endian body down to 16 bits, then one swap moves it
    // into big-endian word order (swap16(x) == 256·x mod 65535 distributes
    // over ones-complement addition).
    let mut body = 0u64;
    for lane in lanes {
        body += u64::from(fold64(lane));
    }
    let body_be = fold64(body).swap_bytes();
    // Final sub-8-byte tail (handles the odd trailing byte) runs in
    // big-endian order directly.
    sum_words_scalar(acc + u32::from(body_be), rest)
}

/// The Internet checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    let _s = intang_telemetry::span(intang_telemetry::SpanId::Checksum);
    !fold(sum_words(0, data))
}

/// The pseudo-header partial sum used by TCP and UDP checksums. Pure
/// arithmetic on the address halves — no word loop.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: usize) -> u32 {
    let s = src.octets();
    let d = dst.octets();
    u32::from(u16::from_be_bytes([s[0], s[1]]))
        + u32::from(u16::from_be_bytes([s[2], s[3]]))
        + u32::from(u16::from_be_bytes([d[0], d[1]]))
        + u32::from(u16::from_be_bytes([d[2], d[3]]))
        + u32::from(protocol)
        + length as u32
}

/// Checksum of a TCP/UDP segment including its pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let _s = intang_telemetry::span(intang_telemetry::SpanId::Checksum);
    let acc = pseudo_header_sum(src, dst, protocol, segment.len());
    !fold(sum_words(acc, segment))
}

/// Verify a buffer that embeds its own checksum field: summing the whole
/// buffer (checksum field included) must yield `0xffff` before complement.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(0, data)) == 0xffff
}

/// Verify a transport segment against its pseudo-header.
pub fn verify_transport(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> bool {
    let acc = pseudo_header_sum(src, dst, protocol, segment.len());
    fold(sum_words(acc, segment)) == 0xffff
}

/// RFC 1624 incremental checksum update: the stored checksum field
/// `check` of a buffer whose 16-bit word `old` became `new`, without
/// re-summing anything else. `HC' = ~(~HC + ~m + m')` — the eqn. 3 form,
/// which unlike RFC 1141 also handles the `-0` corner.
pub fn incremental_update(check: u16, old: u16, new: u16) -> u16 {
    !fold(u32::from(!check) + u32::from(!old) + u32::from(new))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example words from RFC 1071 §3: 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // The ones-complement sum of these words is 0xddf2, checksum is !0xddf2.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = [0xab, 0xcd, 0x12, 0x00];
        let odd = [0xab, 0xcd, 0x12];
        assert_eq!(checksum(&even), checksum(&odd));
    }

    #[test]
    fn kernel_matches_scalar_across_lengths_and_fills() {
        // Deterministic pseudo-random fill; every length through several
        // 32-byte boundaries, plus all-0x00/0xff extremes (the fold
        // representative corners).
        let mut state = 0x9e37_79b9u32;
        let data: Vec<u8> = (0..300)
            .map(|_| {
                state = state.wrapping_mul(747796405).wrapping_add(2891336453);
                (state >> 24) as u8
            })
            .collect();
        for len in 0..data.len() {
            let a = fold(sum_words(0, &data[..len]));
            let b = fold(sum_words_scalar(0, &data[..len]));
            assert_eq!(a, b, "len {len}");
            let ones = vec![0xffu8; len];
            assert_eq!(fold(sum_words(7, &ones)), fold(sum_words_scalar(7, &ones)), "ones len {len}");
        }
    }

    #[test]
    fn incremental_update_matches_recompute() {
        // A realistic IPv4 header; rewrite the (TTL, protocol) word through
        // every TTL value and compare against a full re-sum.
        let mut hdr = [
            0x45, 0x00, 0x00, 0x54, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let ck = checksum(&hdr);
        hdr[10..12].copy_from_slice(&ck.to_be_bytes());
        for new_ttl in (0u8..=255).rev() {
            let old_word = u16::from_be_bytes([hdr[8], hdr[9]]);
            let new_word = u16::from_be_bytes([new_ttl, hdr[9]]);
            let old_ck = u16::from_be_bytes([hdr[10], hdr[11]]);
            let inc = incremental_update(old_ck, old_word, new_word);
            hdr[8] = new_ttl;
            hdr[10..12].copy_from_slice(&[0, 0]);
            let full = checksum(&hdr);
            hdr[10..12].copy_from_slice(&full.to_be_bytes());
            assert_eq!(inc, full, "ttl {new_ttl}");
            assert!(verify(&hdr));
        }
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0x00, 0x00];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn transport_round_trip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&4321u16.to_be_bytes());
        seg[2..4].copy_from_slice(&80u16.to_be_bytes());
        let ck = transport_checksum(src, dst, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport(src, dst, 6, &seg));
        // The pseudo-header sum is order-insensitive (ones-complement
        // addition commutes), so perturb the protocol and payload instead.
        assert!(!verify_transport(src, dst, 17, &seg));
        seg[20] ^= 0x01;
        assert!(!verify_transport(src, dst, 6, &seg));
    }

    #[test]
    fn zero_length_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
