//! The Internet checksum (RFC 1071) and the TCP/UDP pseudo-header sum.

use std::net::Ipv4Addr;

/// Fold a 32-bit accumulator into a 16-bit ones-complement sum.
fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Sum `data` as big-endian 16-bit words into `acc` (no final complement).
pub fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// The Internet checksum of a buffer.
pub fn checksum(data: &[u8]) -> u16 {
    !fold(sum_words(0, data))
}

/// The pseudo-header partial sum used by TCP and UDP checksums.
pub fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, length: usize) -> u32 {
    let mut acc = 0u32;
    acc = sum_words(acc, &src.octets());
    acc = sum_words(acc, &dst.octets());
    acc += u32::from(protocol);
    acc += length as u32;
    acc
}

/// Checksum of a TCP/UDP segment including its pseudo-header.
pub fn transport_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let acc = pseudo_header_sum(src, dst, protocol, segment.len());
    !fold(sum_words(acc, segment))
}

/// Verify a buffer that embeds its own checksum field: summing the whole
/// buffer (checksum field included) must yield `0xffff` before complement.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(0, data)) == 0xffff
}

/// Verify a transport segment against its pseudo-header.
pub fn verify_transport(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> bool {
    let acc = pseudo_header_sum(src, dst, protocol, segment.len());
    fold(sum_words(acc, segment)) == 0xffff
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example words from RFC 1071 §3: 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // The ones-complement sum of these words is 0xddf2, checksum is !0xddf2.
        assert_eq!(checksum(&data), !0xddf2);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = [0xab, 0xcd, 0x12, 0x00];
        let odd = [0xab, 0xcd, 0x12];
        assert_eq!(checksum(&even), checksum(&odd));
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x06, 0x00, 0x00];
        let ck = checksum(&data);
        data[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 0x01;
        assert!(!verify(&data));
    }

    #[test]
    fn transport_round_trip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![0u8; 24];
        seg[0..2].copy_from_slice(&4321u16.to_be_bytes());
        seg[2..4].copy_from_slice(&80u16.to_be_bytes());
        let ck = transport_checksum(src, dst, 6, &seg);
        seg[16..18].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_transport(src, dst, 6, &seg));
        // The pseudo-header sum is order-insensitive (ones-complement
        // addition commutes), so perturb the protocol and payload instead.
        assert!(!verify_transport(src, dst, 17, &seg));
        seg[20] ^= 0x01;
        assert!(!verify_transport(src, dst, 6, &seg));
    }

    #[test]
    fn zero_length_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
    }
}
